//! Umbrella crate for the WAFL free-block-search reproduction.
//!
//! Re-exports every workspace crate under a stable prefix so examples and
//! integration tests can use one dependency. See `README.md` for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub use wafl_bitmap as bitmap;
pub use wafl_core as aa;
pub use wafl_fs as fs;
pub use wafl_harness as harness;
pub use wafl_media as media;
pub use wafl_raid as raid;
pub use wafl_types as types;
pub use wafl_workloads as workloads;
