#!/usr/bin/env bash
# Regenerate the recorded performance baseline (BENCH_bitmap.json,
# BENCH_cp.json, BENCH_alloc.json, BENCH_parallel.json, and
# BENCH_obs.json at the repo root). BENCH_parallel.json sweeps the
# sharded CP pipeline at write_shards = 1/2/4/8 against the wafl-oracle
# sequential baseline (the retired write_shards = 0 pipeline). Run on an
# otherwise idle machine; numbers are means over fixed iteration counts,
# see docs/perf.md.
#
#   scripts/bench_baseline.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p wafl-harness --example bench_baseline -- --out-dir .
