#!/usr/bin/env bash
# Regenerate the recorded performance baseline (BENCH_bitmap.json and
# BENCH_cp.json at the repo root). Run on an otherwise idle machine;
# numbers are means over fixed iteration counts, see docs/perf.md.
#
#   scripts/bench_baseline.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p wafl-harness --bin bench_baseline -- --out-dir .
