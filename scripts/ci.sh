#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests — and optionally the full
# crash-consistency torture loop or a benchmark smoke run.
#
#   scripts/ci.sh               # fast gates (fmt, clippy, tests)
#   scripts/ci.sh --torture     # fast gates + 200-seed torture run
#   scripts/ci.sh --bench-smoke # fast gates + one untimed iteration of
#                               # every criterion bench (compile + run)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q

if [[ "${1:-}" == "--torture" ]]; then
  run cargo test --release -p wafl-fs --test crash_consistency -- --ignored
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  run cargo bench -p wafl-bench -- --test
fi

echo "CI gates passed."
