#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, the observability and scrub
# smoke checks — and optionally one of the release-mode torture loops or
# a benchmark smoke run.
#
#   scripts/ci.sh                 # fast gates (fmt, clippy, tests, smokes)
#   scripts/ci.sh --torture       # fast gates + 200-seed crash torture
#   scripts/ci.sh --scrub-torture # fast gates + 200-seed runtime-scrub
#                                 # torture (release: debug builds assert
#                                 # on latent counter scribbles)
#   scripts/ci.sh --bench-smoke   # fast gates + one untimed iteration of
#                                 # every criterion bench (compile + run)
#   scripts/ci.sh --obs-smoke     # the observability smoke check alone
#   scripts/ci.sh --scrub-smoke   # the scrub smoke check alone
#   scripts/ci.sh --alloc-smoke   # the allocation-throughput gate alone
#   scripts/ci.sh --par-smoke     # the sharded-pipeline gate alone
#   scripts/ci.sh --oracle-parity # the wafl-oracle parity sweep alone
#   scripts/ci.sh --trace-smoke   # the flight-recorder export gate alone
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# Metrics invariants on a small cache-guided volume: snapshot covers the
# allocator/HBPS/CP/mount families and every cache-guided pick stays
# within one bin width of the true best score.
obs_smoke() {
  run cargo run --release -p wafl-harness --bin obs_smoke >/dev/null
}

# Online-scrub invariants: two injected counter scribbles are detected,
# quarantined, repaired, and released, and health returns to Healthy.
scrub_smoke() {
  run cargo run --release -p wafl-harness --bin scrub_smoke >/dev/null
}

# Allocation-throughput gate: the cache-guided hot path must not fall
# below 1.0x the cache-less sweep on the overwrite+CP workload
# (best-of-3 trials per arm to damp scheduler noise).
alloc_smoke() {
  run cargo run --release -p wafl-harness --bin alloc_smoke
}

# Sharded-pipeline gate: the sharded CP front end (write_shards=4) must
# run >= 1.3x the sequential reference planner (the test-only
# wafl-oracle crate, which preserves the retired write_shards=0
# pipeline) on the overwrite+CP workload with zero parity diffs against
# it. The gate itself fails if both arms resolve to the same planner.
par_smoke() {
  run cargo run --release -p wafl-harness --example par_smoke
}

# Oracle-parity gate: the release-mode seed x shard-count sweep pinning
# the sharded pipeline to the wafl-oracle sequential planner — physical
# and virtual layout page-exact, mappings identical, per-group costing
# f64-bit-identical. Zero plan diffs allowed.
oracle_parity() {
  run cargo test --release -p wafl-fs --test oracle_parity -- --ignored
}

# Flight-recorder gate: a small sharded simulate with --trace must write
# Chrome trace JSON that re-parses and validates — balanced begin/end
# spans, CP-ordered tracks, one track per write shard — and trace-report
# must render its quantile/utilization summary from the file.
trace_smoke() {
  local out
  out="$(mktemp -d)/trace.json"
  run cargo run --release -p wafl-cli --bin wafl-sim -- simulate \
    --device-blocks 20480 --ops 5000 --churn 0.2 --write-shards 4 \
    --trace "$out" >/dev/null
  run cargo run --release -p wafl-cli --bin wafl-sim -- trace-report \
    "$out" --expect-shards 4 >/dev/null
}

if [[ "${1:-}" == "--obs-smoke" ]]; then
  obs_smoke
  echo "CI gates passed."
  exit 0
fi

if [[ "${1:-}" == "--scrub-smoke" ]]; then
  scrub_smoke
  echo "CI gates passed."
  exit 0
fi

if [[ "${1:-}" == "--alloc-smoke" ]]; then
  alloc_smoke
  echo "CI gates passed."
  exit 0
fi

if [[ "${1:-}" == "--par-smoke" ]]; then
  par_smoke
  echo "CI gates passed."
  exit 0
fi

if [[ "${1:-}" == "--oracle-parity" ]]; then
  oracle_parity
  echo "CI gates passed."
  exit 0
fi

if [[ "${1:-}" == "--trace-smoke" ]]; then
  trace_smoke
  echo "CI gates passed."
  exit 0
fi

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test -q
obs_smoke
scrub_smoke
alloc_smoke
par_smoke
oracle_parity
trace_smoke

if [[ "${1:-}" == "--torture" ]]; then
  run cargo test --release -p wafl-fs --test crash_consistency -- --ignored
fi

if [[ "${1:-}" == "--scrub-torture" ]]; then
  run cargo test --release -p wafl-fs --test scrub_torture -- --ignored
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  run cargo bench -p wafl-bench -- --test
fi

echo "CI gates passed."
