//! Flash Pool-style mixed aggregates (§2.1): SSD and HDD RAID groups in
//! one aggregate, with the SSD tier bias steering write traffic to the
//! fast media.

use wafl_repro::fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;
use wafl_repro::workloads::{run, HotCold};

fn flash_pool(bias: f64) -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            raid_groups: vec![
                RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 128 * 240,
                    profile: MediaProfile {
                        erase_block_blocks: 128,
                        ..MediaProfile::ssd()
                    },
                },
                RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                },
            ],
            ssd_tier_bias: bias,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 1,
                parity_devices: 0,
                device_blocks: 1,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            80_000,
        )],
        9,
    )
    .unwrap()
}

fn ssd_share(bias: f64) -> f64 {
    let mut agg = flash_pool(bias);
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    // Enterprise skew: 90 % of overwrites hit 10 % of the LUN.
    let mut w = HotCold::new(VolumeId(0), 80_000, 0.1, 0.9, 13);
    let stats = run(&mut agg, &mut w, 60_000, 4096).unwrap();
    let ssd = stats.cp.per_rg[0].blocks as f64;
    let hdd = stats.cp.per_rg[1].blocks as f64;
    ssd / (ssd + hdd)
}

#[test]
fn tier_bias_steers_writes_to_ssd() {
    let unbiased = ssd_share(1.0);
    let biased = ssd_share(8.0);
    assert!(
        biased > unbiased + 0.15,
        "bias must raise the SSD share: {unbiased:.2} -> {biased:.2}"
    );
    // The SSD tier holds ~19 % of the capacity; the bias should at least
    // move it well past its capacity-proportional share.
    assert!(biased > 0.30, "biased SSD share {biased:.2}");
}

#[test]
fn mixed_aggregate_accounting_is_exact() {
    let mut agg = flash_pool(4.0);
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    let mut w = HotCold::new(VolumeId(0), 80_000, 0.2, 0.8, 14);
    run(&mut agg, &mut w, 40_000, 4096).unwrap();
    assert_eq!(
        agg.bitmap().space_len() - agg.bitmap().free_blocks(),
        80_000
    );
    assert!(wafl_repro::fs::iron::check(&agg).unwrap().is_clean());
    // Both groups saw traffic; the SSD group's FTL has realistic WA.
    let wa = agg.groups()[0].mean_write_amplification();
    assert!((1.0..4.0).contains(&wa), "WA {wa}");
}
