//! End-to-end integration tests: the whole stack (types → bitmap → raid →
//! media → AA caches → file system → workloads) driven through realistic
//! multi-volume scenarios, with cross-layer invariants checked at every
//! stage.

use wafl_repro::fs::{
    aging, cleaning, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec,
};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::{AaSizingPolicy, ChecksumStyle, VolumeId};
use wafl_repro::workloads::{run, FileChurn, OltpMix, RandomOverwrite, SequentialWrite};

/// Cross-layer invariant: physical occupancy equals the sum of live
/// mappings across volumes plus orphaned aging seeds; every volume's
/// virtual occupancy equals its live mappings; every mapped logical block
/// resolves to an allocated physical block in exactly one RAID group.
fn check_invariants(agg: &Aggregate, orphan_blocks: u64) {
    let mut live_total = 0u64;
    for vol in agg.volumes() {
        let mut live = 0u64;
        for l in 0..vol.logical_blocks() {
            if let Some(vvbn) = vol.lookup_logical(l) {
                live += 1;
                assert!(
                    !vol.bitmap().is_free(vvbn).unwrap(),
                    "mapped vvbn {vvbn} must be allocated in {}",
                    vol.id
                );
                let pvbn = vol.lookup_vvbn(vvbn).expect("mapped vvbn must have a pvbn");
                assert!(
                    !agg.bitmap().is_free(pvbn).unwrap(),
                    "mapped pvbn {pvbn} must be allocated"
                );
                assert_eq!(
                    agg.groups()
                        .iter()
                        .filter(|g| g.geometry.contains(pvbn))
                        .count(),
                    1,
                    "pvbn {pvbn} must live in exactly one RAID group"
                );
            }
        }
        assert_eq!(
            vol.size_blocks() - vol.free_blocks(),
            live,
            "virtual occupancy of {} must equal its live mappings",
            vol.id
        );
        live_total += live;
    }
    assert_eq!(
        agg.bitmap().space_len() - agg.bitmap().free_blocks(),
        live_total + orphan_blocks,
        "physical occupancy must equal live mappings plus aging seeds"
    );
}

fn build_multi_vol() -> Aggregate {
    let spec = |_: usize| RaidGroupSpec {
        data_devices: 3,
        parity_devices: 1,
        device_blocks: 8 * 4096,
        profile: MediaProfile::hdd(),
    };
    Aggregate::new(
        AggregateConfig {
            raid_groups: (0..2).map(spec).collect(),
            ..AggregateConfig::single_group(spec(0))
        },
        &[
            (
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                40_000,
            ),
            (
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: Some(4096),
                },
                30_000,
            ),
            (
                FlexVolConfig {
                    size_blocks: 2 * 32768,
                    aa_cache: false, // one volume without a cache
                    aa_blocks: None,
                },
                20_000,
            ),
        ],
        77,
    )
    .unwrap()
}

#[test]
fn multi_volume_mixed_workloads_preserve_invariants() {
    let mut agg = build_multi_vol();
    // Different workload on each volume, interleaved over several rounds.
    let mut w0 = RandomOverwrite::new(VolumeId(0), 40_000, 1);
    let mut w1 = OltpMix::new(vec![(VolumeId(1), 30_000)], 0.4, 2);
    let mut w2 = FileChurn::new(VolumeId(2), 32, 500, 200, 3);
    for round in 0..3 {
        run(&mut agg, &mut w0, 8000, 2048).unwrap();
        run(&mut agg, &mut w1, 8000, 2048).unwrap();
        run(&mut agg, &mut w2, 8000, 2048).unwrap();
        check_invariants(&agg, 0);
        assert!(agg.cp_count() > round * 3, "CPs must be flowing");
    }
}

#[test]
fn overwrite_storm_is_space_neutral() {
    let mut agg = build_multi_vol();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    let free_p = agg.bitmap().free_blocks();
    let free_v = agg.volumes()[0].free_blocks();
    // Three full overwrite passes: COW must not leak a single block.
    let mut w = RandomOverwrite::new(VolumeId(0), 40_000, 9);
    run(&mut agg, &mut w, 120_000, 4096).unwrap();
    assert_eq!(agg.bitmap().free_blocks(), free_p);
    assert_eq!(agg.volumes()[0].free_blocks(), free_v);
    check_invariants(&agg, 0);
}

#[test]
fn cleaning_and_traffic_interleave_safely() {
    let mut agg = build_multi_vol();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 40_000, 4096, 5).unwrap();
    for _ in 0..3 {
        cleaning::clean_top_aas(&mut agg, 0, 1).unwrap();
        let mut w = RandomOverwrite::new(VolumeId(0), 40_000, 6);
        run(&mut agg, &mut w, 5000, 2048).unwrap();
        check_invariants(&agg, 0);
    }
}

#[test]
fn full_lifecycle_age_crash_remount_continue() {
    let mut agg = build_multi_vol();
    for v in 0..3u32 {
        aging::fill_volume(&mut agg, VolumeId(v), 4096).unwrap();
    }
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 30_000, 4096, 8).unwrap();
    check_invariants(&agg, 0);

    // Persist, crash, TopAA-mount.
    let image = mount::save_topaa(&agg);
    mount::crash(&mut agg);
    let stats = mount::mount_with_topaa(&mut agg, &image).unwrap();
    // 2 RAID groups + 2 volume caches (volume 2 has none).
    assert_eq!(stats.metafile_blocks_read, 2 + 2 * 2);
    check_invariants(&agg, 0);

    // Traffic resumes against the seeded caches.
    let mut w = OltpMix::new(vec![(VolumeId(0), 40_000), (VolumeId(1), 30_000)], 0.5, 10);
    run(&mut agg, &mut w, 20_000, 2048).unwrap();
    mount::complete_background_rebuild(&mut agg).unwrap();
    for g in agg.groups() {
        if let Some(c) = g.cache() {
            // Active AAs may legitimately be outside the heap.
            assert!(c.len() as u32 >= g.topology().aa_count() - 1);
        }
    }
    check_invariants(&agg, 0);
}

#[test]
fn sequential_fill_on_azcs_smr_stays_intervention_free_when_aligned() {
    let zone = 2048u64;
    let mut agg = Aggregate::new(
        AggregateConfig {
            checksum: ChecksumStyle::Azcs,
            aa_policy_override: Some(AaSizingPolicy::DeviceUnitsAzcsAligned {
                unit_blocks: zone,
                units: 2,
            }),
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 3,
                parity_devices: 1,
                device_blocks: zone * 8,
                profile: MediaProfile {
                    zone_blocks: zone,
                    ..MediaProfile::smr()
                },
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 2 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            30_000,
        )],
        4,
    )
    .unwrap();
    let mut w = SequentialWrite::new(VolumeId(0), 30_000);
    run(&mut agg, &mut w, 30_000, 2048).unwrap();
    let interventions = agg.groups()[0].smr_interventions();
    // Aligned AAs keep checksum writes in-line; the small residue comes
    // from AA columns landing mid-zone when the pick order jumps (§3.2.3
    // reduces, not eliminates, interventions). 30 000 blocks written;
    // anything beyond a few dozen interventions would mean checksum
    // misalignment. (The fig9 harness test asserts the aligned-vs-
    // misaligned ratio.)
    assert!(
        interventions < 100,
        "aligned sequential fill should be nearly intervention-free, got {interventions}"
    );
}

#[test]
fn deletes_release_space_in_both_vbn_spaces() {
    let mut agg = build_multi_vol();
    aging::fill_volume(&mut agg, VolumeId(1), 4096).unwrap();
    let vol = &agg.volumes()[1];
    let (free_p, free_v) = (agg.bitmap().free_blocks(), vol.free_blocks());
    // Delete a third of the volume.
    for l in (0..30_000).step_by(3) {
        agg.client_delete(VolumeId(1), l).unwrap();
    }
    agg.run_cp().unwrap();
    assert_eq!(agg.bitmap().free_blocks(), free_p + 10_000);
    assert_eq!(agg.volumes()[1].free_blocks(), free_v + 10_000);
    // Deleted blocks read as holes.
    assert_eq!(agg.client_read(VolumeId(1), 0).unwrap(), 0.0);
    assert!(agg.client_read(VolumeId(1), 1).unwrap() > 0.0);
    check_invariants(&agg, 0);
}
