//! Snapshot semantics across the full stack: COW pinning, deferred frees,
//! deletion bursts, and their interaction with cleaning, mounting, and
//! the paper's free-space nonuniformity story (§4.1.1).

use wafl_repro::fs::{
    aging, cleaning, iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec,
};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;
use wafl_repro::workloads::{run, RandomOverwrite};

fn agg() -> Aggregate {
    Aggregate::new(
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 16 * 4096,
            profile: MediaProfile::hdd(),
        }),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        21,
    )
    .unwrap()
}

#[test]
fn snapshot_pins_blocks_through_overwrites() {
    let mut a = agg();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let occupied = a.bitmap().space_len() - a.bitmap().free_blocks();
    assert_eq!(occupied, 60_000);

    let snap = a.snapshot_create(VolumeId(0)).unwrap();
    assert_eq!(a.snapshots(VolumeId(0)), &[snap]);

    // Overwrite a third of the volume: old blocks stay pinned, so
    // occupancy grows by exactly the overwritten count.
    for l in 0..20_000 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    assert_eq!(
        a.bitmap().space_len() - a.bitmap().free_blocks(),
        60_000 + 20_000,
        "pinned blocks must not free while the snapshot lives"
    );
    assert_eq!(a.volumes()[0].detached_blocks(), 20_000);
    assert!(iron::check(&a).unwrap().is_clean());

    // Deleting the snapshot releases exactly the detached blocks at the
    // next CP.
    let stats = a.snapshot_delete(VolumeId(0), snap).unwrap();
    assert_eq!(stats.blocks_released, 20_000);
    assert_eq!(stats.blocks_still_referenced, 40_000);
    a.run_cp().unwrap();
    assert_eq!(a.bitmap().space_len() - a.bitmap().free_blocks(), 60_000);
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn overlapping_snapshots_free_only_on_last_reference() {
    let mut a = agg();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let s1 = a.snapshot_create(VolumeId(0)).unwrap();
    let s2 = a.snapshot_create(VolumeId(0)).unwrap();
    for l in 0..10_000 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    let occupied = a.bitmap().space_len() - a.bitmap().free_blocks();
    assert_eq!(occupied, 70_000);

    // Deleting one of two snapshots frees nothing: s2 still pins.
    let st = a.snapshot_delete(VolumeId(0), s1).unwrap();
    assert_eq!(st.blocks_released, 0);
    a.run_cp().unwrap();
    assert_eq!(a.bitmap().space_len() - a.bitmap().free_blocks(), 70_000);

    let st = a.snapshot_delete(VolumeId(0), s2).unwrap();
    assert_eq!(st.blocks_released, 10_000);
    a.run_cp().unwrap();
    assert_eq!(a.bitmap().space_len() - a.bitmap().free_blocks(), 60_000);
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn snapshot_delete_burst_creates_empty_regions() {
    // The §4.1.1 mechanism: a snapshot taken before heavy churn pins a
    // big, colocated set of old blocks; deleting it releases them in a
    // burst, leaving emptier-than-average AAs the cache then finds.
    // Sized so no AA is empty before the burst (6 AAs, ~80 % peak use).
    let mut a = Aggregate::new(
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 6 * 4096,
            profile: MediaProfile::hdd(),
        }),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        21,
    )
    .unwrap();
    // Peak occupancy ~85 k of 98 k blocks: every AA gets traffic, so no
    // AA is completely empty before the deletion burst.
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let snap = a.snapshot_create(VolumeId(0)).unwrap();
    aging::random_overwrite_churn(&mut a, VolumeId(0), 25_000, 4096, 33).unwrap();
    let best_before = a.groups()[0].cache().unwrap().best().unwrap().1;
    a.snapshot_delete(VolumeId(0), snap).unwrap();
    a.run_cp().unwrap();
    let best_after = a.groups()[0].cache().unwrap().best().unwrap().1;
    assert!(
        best_after > best_before,
        "the deletion burst must improve the best AA: {best_before} -> {best_after}"
    );
    let r = iron::check(&a).unwrap();
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn cleaning_relocates_pinned_blocks_safely() {
    let mut a = agg();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let snap = a.snapshot_create(VolumeId(0)).unwrap();
    for l in 0..20_000 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    // Cleaning moves live AND pinned blocks; the snapshot must survive.
    cleaning::clean_top_aas(&mut a, 0, 3).unwrap();
    assert!(iron::check(&a).unwrap().is_clean());
    let st = a.snapshot_delete(VolumeId(0), snap).unwrap();
    assert_eq!(st.blocks_released, 20_000);
    a.run_cp().unwrap();
    assert_eq!(a.bitmap().space_len() - a.bitmap().free_blocks(), 60_000);
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn snapshots_survive_crash_and_remount() {
    let mut a = agg();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let snap = a.snapshot_create(VolumeId(0)).unwrap();
    for l in 0..5_000 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    // Crash drops caches, not persistent state (snapshots live in the
    // volume metadata, which our model keeps with the volume).
    let image = mount::save_topaa(&a);
    mount::crash(&mut a);
    mount::mount_with_topaa(&mut a, &image).unwrap();
    let mut w = RandomOverwrite::new(VolumeId(0), 60_000, 41);
    run(&mut a, &mut w, 10_000, 2048).unwrap();
    mount::complete_background_rebuild(&mut a).unwrap();
    let st = a.snapshot_delete(VolumeId(0), snap).unwrap();
    assert!(st.blocks_released > 0);
    a.run_cp().unwrap();
    let r = iron::check(&a).unwrap();
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn deleting_unknown_snapshot_errors() {
    let mut a = agg();
    let snap = a.snapshot_create(VolumeId(0)).unwrap();
    a.snapshot_delete(VolumeId(0), snap).unwrap();
    assert!(a.snapshot_delete(VolumeId(0), snap).is_err());
    assert!(a.snapshots(VolumeId(0)).is_empty());
}
