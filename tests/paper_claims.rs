//! Fast cross-crate checks of the paper's qualitative claims, at smaller
//! scale than the harness experiments (which have their own shape tests
//! in `wafl-harness`).

use wafl_repro::aa::{Hbps, HbpsConfig};
use wafl_repro::fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::{MediaProfile, SsdFtl};
use wafl_repro::types::{AaId, AaScore, VolumeId};
use wafl_repro::workloads::{run, RandomOverwrite};

/// §3.3.2: "this AA cache uses exactly two pages of memory" — verified
/// against a volume with a million AAs' worth of score traffic.
#[test]
fn hbps_memory_is_constant() {
    let big = Hbps::build(
        HbpsConfig::default(),
        (0..2_000_000u32).map(|i| (AaId(i), AaScore(i % 32_769))),
    )
    .unwrap();
    assert_eq!(big.memory_bytes(), 8192);
    assert_eq!(big.tracked(), 2_000_000);
}

/// §3.3.2: the error margin of the default configuration is 3.125 %.
#[test]
fn hbps_error_margin_is_3_125_percent() {
    assert!((HbpsConfig::default().error_margin() - 0.03125).abs() < 1e-12);
}

/// §2: sustaining 1 GiB/s of overwrites means finding 256 Ki free blocks
/// per second. The AA-cache query path must be orders of magnitude faster
/// than that budget (~4 µs per block).
#[test]
fn free_block_search_meets_the_gibps_budget() {
    let mut hbps = Hbps::build(
        HbpsConfig::default(),
        (0..1_000_000u32).map(|i| (AaId(i), AaScore((i * 31) % 32_769))),
    )
    .unwrap();
    let t = std::time::Instant::now();
    let mut picks = 0u64;
    for _ in 0..256 {
        // One pick hands out an AA worth ~32 Ki blocks.
        if hbps.take_best().is_some() {
            picks += 1;
        }
    }
    let per_block_ns = t.elapsed().as_nanos() as f64 / (picks as f64 * 32_768.0);
    assert!(
        per_block_ns < 4_000.0,
        "AA selection costs {per_block_ns:.1} ns per block of budget"
    );
}

/// §2.2/§4.1: random overwrites fragment free space; the caches keep
/// finding regions emptier than the aggregate average anyway.
#[test]
fn caches_beat_average_on_aged_systems() {
    let mut agg = Aggregate::new(
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 16 * 4096,
            profile: MediaProfile::hdd(),
        }),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: Some(4096),
            },
            120_000,
        )],
        55,
    )
    .unwrap();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 240_000, 4096, 56).unwrap();
    let mut w = RandomOverwrite::new(VolumeId(0), 120_000, 57);
    let stats = run(&mut agg, &mut w, 40_000, 4096).unwrap();
    let avg_free = agg.free_fraction();
    let picked = stats.cp.agg_pick_free_mean();
    assert!(
        picked > avg_free + 0.03,
        "cache picks {picked:.3} should beat the aggregate average {avg_free:.3}"
    );
}

/// §3.2.2: clustered (AA-style) overwrite streams yield lower FTL write
/// amplification than scattered ones on the same device — the raw media
/// mechanism behind Figures 6 and 8.
#[test]
fn clustered_invalidation_lowers_write_amplification() {
    let n = 64 * 256u32;
    let mut clustered = SsdFtl::new(n, 64, 0.07).unwrap();
    let mut scattered = SsdFtl::new(n, 64, 0.07).unwrap();
    for lpn in 0..n {
        clustered.host_write(lpn).unwrap();
        scattered.host_write(lpn).unwrap();
    }
    clustered.reset_stats();
    scattered.reset_stats();
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // Clustered: rewrite whole 1024-page segments in random order.
    let mut segs: Vec<u32> = (0..n / 1024).collect();
    for _ in 0..4 {
        segs.shuffle(&mut rng);
        for &s in &segs {
            for off in 0..1024 {
                clustered.host_write(s * 1024 + off).unwrap();
            }
        }
    }
    // Scattered: the same volume of uniform random single-page writes.
    for _ in 0..4 * n as u64 {
        scattered.host_write(rng.random_range(0..n)).unwrap();
    }
    assert!(
        clustered.write_amplification() + 0.3 < scattered.write_amplification(),
        "clustered WA {} vs scattered {}",
        clustered.write_amplification(),
        scattered.write_amplification()
    );
}

/// §3.4: TopAA mount cost is O(groups + volumes), not O(capacity).
#[test]
fn topaa_cost_independent_of_capacity() {
    use wafl_repro::fs::mount;
    let build = |device_blocks: u64| {
        Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1000,
            )],
            1,
        )
        .unwrap()
    };
    let mut small = build(8 * 4096);
    let mut large = build(128 * 4096);
    let si = mount::save_topaa(&small);
    let li = mount::save_topaa(&large);
    mount::crash(&mut small);
    mount::crash(&mut large);
    let s = mount::mount_with_topaa(&mut small, &si).unwrap();
    let l = mount::mount_with_topaa(&mut large, &li).unwrap();
    assert_eq!(s.metafile_blocks_read, l.metafile_blocks_read);
    let sc = {
        mount::crash(&mut small);
        mount::mount_cold(&mut small).unwrap()
    };
    let lc = {
        mount::crash(&mut large);
        mount::mount_cold(&mut large).unwrap()
    };
    assert!(lc.metafile_blocks_read > 10 * sc.metafile_blocks_read / 2);
}
