//! Randomized full-system stress: interleaves every mutating operation
//! the stack supports — overwrites, deletes, snapshots, segment cleaning,
//! aggregate growth, crash/remount, delayed-free draining — and audits
//! the cross-structure invariants with `iron::check` after every phase.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_repro::fs::snapshot::SnapshotId;
use wafl_repro::fs::{
    cleaning, iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec,
};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;

struct Driver {
    agg: Aggregate,
    rng: StdRng,
    snaps: Vec<(VolumeId, SnapshotId)>,
    image: Option<wafl_repro::fs::mount::TopAaImage>,
}

impl Driver {
    fn new(seed: u64, batched_frees: bool) -> Driver {
        let spec = RaidGroupSpec {
            data_devices: 3,
            parity_devices: 1,
            device_blocks: 8 * 4096,
            profile: MediaProfile::hdd(),
        };
        let agg = Aggregate::new(
            AggregateConfig {
                batched_frees,
                free_pages_per_cp: 2,
                ..AggregateConfig::single_group(spec)
            },
            &[
                (
                    FlexVolConfig {
                        size_blocks: 4 * 32768,
                        aa_cache: true,
                        aa_blocks: None,
                    },
                    25_000,
                ),
                (
                    FlexVolConfig {
                        size_blocks: 2 * 32768,
                        aa_cache: false,
                        aa_blocks: None,
                    },
                    15_000,
                ),
            ],
            seed,
        )
        .unwrap();
        Driver {
            agg,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED),
            snaps: Vec::new(),
            image: None,
        }
    }

    fn random_vol(&mut self) -> (VolumeId, u64) {
        if self.rng.random_bool(0.7) {
            (VolumeId(0), 25_000)
        } else {
            (VolumeId(1), 15_000)
        }
    }

    fn phase(&mut self, step: u32) {
        match step % 11 {
            // Bursts of overwrites, CP'd.
            0..=4 => {
                for _ in 0..self.rng.random_range(500..3000) {
                    let (vol, ws) = self.random_vol();
                    let l = self.rng.random_range(0..ws);
                    self.agg.client_overwrite(vol, l).unwrap();
                }
                self.agg.run_cp().unwrap();
            }
            // Deletions.
            5 => {
                for _ in 0..self.rng.random_range(100..1000) {
                    let (vol, ws) = self.random_vol();
                    let l = self.rng.random_range(0..ws);
                    self.agg.client_delete(vol, l).unwrap();
                }
                self.agg.run_cp().unwrap();
            }
            // Snapshot create (bounded count to keep occupancy in range).
            6 => {
                if self.snaps.len() < 2 {
                    let (vol, _) = self.random_vol();
                    let id = self.agg.snapshot_create(vol).unwrap();
                    self.snaps.push((vol, id));
                }
            }
            // Snapshot delete.
            7 => {
                if !self.snaps.is_empty() {
                    let i = self.rng.random_range(0..self.snaps.len());
                    let (vol, id) = self.snaps.swap_remove(i);
                    self.agg.snapshot_delete(vol, id).unwrap();
                    self.agg.run_cp().unwrap();
                }
            }
            // Segment cleaning of a random group.
            8 => {
                let g = self.rng.random_range(0..self.agg.groups().len());
                let _ = cleaning::clean_top_aas(&mut self.agg, g, 1);
            }
            // Crash and remount (alternating paths).
            9 => {
                let image = self
                    .image
                    .take()
                    .unwrap_or_else(|| mount::save_topaa(&self.agg));
                mount::crash(&mut self.agg);
                if self.rng.random_bool(0.5) {
                    // The image may be stale (taken a phase ago): safety
                    // over quality, like a lagging TopAA write.
                    if mount::mount_with_topaa(&mut self.agg, &image).is_err() {
                        mount::mount_cold(&mut self.agg).unwrap();
                    }
                    mount::complete_background_rebuild(&mut self.agg).unwrap();
                } else {
                    mount::mount_cold(&mut self.agg).unwrap();
                }
            }
            // Stash a TopAA image to use (stale) at the next crash; grow
            // the aggregate once mid-run.
            _ => {
                self.image = Some(mount::save_topaa(&self.agg));
                if self.agg.groups().len() < 2 {
                    self.agg
                        .add_raid_group(RaidGroupSpec {
                            data_devices: 3,
                            parity_devices: 1,
                            device_blocks: 8 * 4096,
                            profile: MediaProfile::hdd(),
                        })
                        .unwrap();
                }
            }
        }
    }

    fn audit(&mut self, step: u32) {
        // Drain pending reclamation so iron's leak accounting is exact,
        // then audit everything.
        while self.agg.free_log().pending() > 0 {
            self.agg.run_cp().unwrap();
        }
        // A stale TopAA mount can leave heap scores lagging until the
        // background rebuild runs; finish it before auditing.
        mount::complete_background_rebuild(&mut self.agg).unwrap();
        let report = iron::check(&self.agg).unwrap();
        // Stale-score drift from lagging TopAA images is repairable, not
        // corruption; everything else must be pristine.
        assert_eq!(report.broken_mappings, 0, "step {step}: {report:?}");
        assert_eq!(report.owner_mismatches, 0, "step {step}: {report:?}");
        assert_eq!(report.leaked_blocks, 0, "step {step}: {report:?}");
        assert_eq!(
            report.volume_accounting_errors, 0,
            "step {step}: {report:?}"
        );
        if report.stale_scores > 0 {
            iron::repair(&mut self.agg).unwrap();
            let fixed = iron::check(&self.agg).unwrap();
            assert!(fixed.is_clean(), "step {step}: unrepairable {fixed:?}");
        }
    }
}

#[test]
fn randomized_lifecycle_keeps_every_invariant() {
    for seed in [1u64, 2, 3] {
        let mut d = Driver::new(seed, false);
        for step in 0..44 {
            d.phase(step);
            if step % 11 == 10 {
                d.audit(step);
            }
        }
        d.audit(u32::MAX);
    }
}

#[test]
fn randomized_lifecycle_with_batched_frees() {
    let mut d = Driver::new(7, true);
    for step in 0..44 {
        d.phase(step);
        if step % 11 == 10 {
            d.audit(step);
        }
    }
    d.audit(u32::MAX);
}
