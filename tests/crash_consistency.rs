//! Crash/remount consistency: the TopAA metafile is a performance hint,
//! never a correctness dependency. Whatever state it captures — current,
//! stale, or absent — a remounted system must allocate correctly, and a
//! damaged image must fail loudly rather than corrupt allocation.

use wafl_repro::fs::{aging, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::{AaSizingPolicy, VolumeId, WaflError};
use wafl_repro::workloads::{run, RandomOverwrite};

fn build() -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            // Small AAs so the 512-entry TopAA block is a strict subset.
            aa_policy_override: Some(AaSizingPolicy::Stripes { stripes: 64 }),
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 32 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            80_000,
        )],
        13,
    )
    .unwrap()
}

#[test]
fn stale_topaa_image_is_safe() {
    let mut agg = build();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    // Snapshot the TopAA image, then keep running (image goes stale).
    let stale = mount::save_topaa(&agg);
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 60_000, 4096, 21).unwrap();
    let free_before = agg.bitmap().free_blocks();

    mount::crash(&mut agg);
    mount::mount_with_topaa(&mut agg, &stale).unwrap();
    // Stale scores steer allocation suboptimally but never incorrectly:
    // a full traffic round completes with perfect space accounting.
    let mut w = RandomOverwrite::new(VolumeId(0), 80_000, 22);
    run(&mut agg, &mut w, 30_000, 2048).unwrap();
    assert_eq!(agg.bitmap().free_blocks(), free_before);
    mount::complete_background_rebuild(&mut agg).unwrap();
    // After the rebuild, cached scores agree with the bitmap everywhere.
    let g = &agg.groups()[0];
    let cache = g.cache().unwrap();
    for aa in 0..g.topology().aa_count() {
        let aa = wafl_repro::types::AaId(aa);
        let truth = g.topology().score_from_bitmap(agg.bitmap(), aa);
        let cached = cache.score_of(aa);
        assert_eq!(cached, truth, "post-rebuild score mismatch at {aa}");
    }
}

#[test]
fn repeated_crashes_between_cps() {
    let mut agg = build();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    for round in 0..5 {
        let image = mount::save_topaa(&agg);
        mount::crash(&mut agg);
        if round % 2 == 0 {
            mount::mount_with_topaa(&mut agg, &image).unwrap();
        } else {
            mount::mount_cold(&mut agg).unwrap();
        }
        let mut w = RandomOverwrite::new(VolumeId(0), 80_000, round);
        run(&mut agg, &mut w, 5_000, 1024).unwrap();
    }
    // Occupancy still exactly the working set.
    assert_eq!(
        agg.bitmap().space_len() - agg.bitmap().free_blocks(),
        80_000
    );
}

#[test]
fn corrupted_topaa_blocks_are_rejected() {
    let mut agg = build();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    let mut image = mount::save_topaa(&agg);

    // Scribble the RAID-aware block: scores out of order.
    if let Some(wafl_repro::fs::mount::RgTopAa::Heap(block)) = image.rg_blocks[0].as_mut() {
        block[4..8].copy_from_slice(&0u32.to_le_bytes());
        block[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    }
    mount::crash(&mut agg);
    let err = mount::mount_with_topaa(&mut agg, &image);
    assert!(
        matches!(err, Err(WaflError::CorruptMetafile { .. })),
        "scribbled TopAA must be detected, got {err:?}"
    );
    // The cold path (the WAFL Iron analogue: recompute from bitmaps)
    // always works.
    mount::mount_cold(&mut agg).unwrap();
    let mut w = RandomOverwrite::new(VolumeId(0), 80_000, 3);
    run(&mut agg, &mut w, 5_000, 1024).unwrap();
}

#[test]
fn corrupted_hbps_pages_are_rejected() {
    let mut agg = build();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    let mut image = mount::save_topaa(&agg);
    if let Some((hist, _)) = image.vol_pages[0].as_mut() {
        hist[0] ^= 0xFF; // break the magic
    }
    mount::crash(&mut agg);
    assert!(matches!(
        mount::mount_with_topaa(&mut agg, &image),
        Err(WaflError::CorruptMetafile { .. })
    ));
}

#[test]
fn mount_without_any_image_equals_cold_build() {
    let mut agg = build();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 40_000, 4096, 31).unwrap();
    let best_live = agg.groups()[0].cache().unwrap().best().unwrap().1;
    mount::crash(&mut agg);
    let stats = mount::mount_cold(&mut agg).unwrap();
    assert!(stats.metafile_blocks_read > 0);
    assert_eq!(stats.background_pages_remaining, 0);
    let best_cold = agg.groups()[0].cache().unwrap().best().unwrap().1;
    assert_eq!(
        best_live, best_cold,
        "cold rebuild recovers the live best score"
    );
}
