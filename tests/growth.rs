//! Aggregate growth (§3.1/§4.2): adding RAID groups to a live aggregate,
//! reproducing the imbalanced-aging situation Figure 7 studies — old
//! groups fragmented, new groups empty — through the real growth path.

use wafl_repro::fs::{
    aging, iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec,
};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::{MediaType, VolumeId};
use wafl_repro::workloads::{run, OltpMix, RandomOverwrite};

fn spec() -> RaidGroupSpec {
    RaidGroupSpec {
        data_devices: 3,
        parity_devices: 1,
        device_blocks: 8 * 4096,
        profile: MediaProfile::hdd(),
    }
}

#[test]
fn grown_group_extends_the_pvbn_space() {
    let mut a = Aggregate::new(
        AggregateConfig::single_group(spec()),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            40_000,
        )],
        3,
    )
    .unwrap();
    let before = a.bitmap().space_len();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    let id = a.add_raid_group(spec()).unwrap();
    assert_eq!(id.get(), 1);
    assert_eq!(a.groups().len(), 2);
    assert_eq!(a.bitmap().space_len(), before * 2);
    // The new group is fully free and cached.
    let g = &a.groups()[1];
    assert_eq!(
        g.cache().unwrap().best().unwrap().1.get() as u64,
        g.stripes_per_aa * 3
    );
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn writes_flow_to_the_new_group_after_growth() {
    // The Figure 7 situation created organically: age one group, grow,
    // then watch the allocator favour the new group.
    let mut a = Aggregate::new(
        AggregateConfig::single_group(spec()),
        &[(
            FlexVolConfig {
                size_blocks: 16 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        3,
    )
    .unwrap();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    aging::random_overwrite_churn(&mut a, VolumeId(0), 60_000, 4096, 9).unwrap();
    a.add_raid_group(spec()).unwrap();
    let mut w = OltpMix::new(vec![(VolumeId(0), 60_000)], 0.5, 10);
    let stats = run(&mut a, &mut w, 40_000, 4096).unwrap();
    assert!(
        stats.cp.per_rg[1].blocks > stats.cp.per_rg[0].blocks,
        "fresh group {} vs aged {}",
        stats.cp.per_rg[1].blocks,
        stats.cp.per_rg[0].blocks
    );
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn growth_survives_crash_and_remount() {
    let mut a = Aggregate::new(
        AggregateConfig::single_group(spec()),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            40_000,
        )],
        3,
    )
    .unwrap();
    aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
    a.add_raid_group(spec()).unwrap();
    for l in 0..5000 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    let image = mount::save_topaa(&a);
    assert_eq!(image.block_count(), 2 + 2); // two heap blocks + one volume
    mount::crash(&mut a);
    mount::mount_with_topaa(&mut a, &image).unwrap();
    let mut w = RandomOverwrite::new(VolumeId(0), 40_000, 12);
    run(&mut a, &mut w, 10_000, 2048).unwrap();
    mount::complete_background_rebuild(&mut a).unwrap();
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn can_grow_with_an_object_store_tier() {
    let mut a = Aggregate::new(AggregateConfig::single_group(spec()), &[], 3).unwrap();
    let id = a
        .add_raid_group(RaidGroupSpec {
            data_devices: 1,
            parity_devices: 0,
            device_blocks: 4 * 32768,
            profile: MediaProfile::object_store(),
        })
        .unwrap();
    assert!(a.groups()[id.index()].hbps_cache().is_some());
    // Misconfigured object tier rejected.
    assert!(a
        .add_raid_group(RaidGroupSpec {
            data_devices: 2,
            parity_devices: 1,
            device_blocks: 1024,
            profile: MediaProfile::object_store(),
        })
        .is_err());
    assert_eq!(a.groups().len(), 2);
    assert_eq!(a.groups()[1].profile.media, MediaType::ObjectStore);
}
