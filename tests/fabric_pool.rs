//! Fabric Pool-style configurations (§2.1/§3.3.2): physical ranges backed
//! by natively redundant object storage use the two-page HBPS cache, not
//! the max-heap, and their TopAA persistence is the two embedded pages.

use wafl_repro::fs::{aging, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::{VolumeId, WaflError};
use wafl_repro::workloads::{run, RandomOverwrite};

fn fabric_pool() -> Aggregate {
    // One SSD performance tier + one object-store capacity tier.
    Aggregate::new(
        AggregateConfig {
            raid_groups: vec![
                RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 64 * 512,
                    profile: MediaProfile::ssd(),
                },
                RaidGroupSpec {
                    data_devices: 1,
                    parity_devices: 0,
                    device_blocks: 8 * 32768,
                    profile: MediaProfile::object_store(),
                },
            ],
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 1,
                parity_devices: 0,
                device_blocks: 1,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            100_000,
        )],
        9,
    )
    .unwrap()
}

#[test]
fn object_store_range_uses_hbps_cache() {
    let agg = fabric_pool();
    // The SSD group gets the heap; the object range gets the HBPS.
    assert!(agg.groups()[0].cache().is_some());
    assert!(agg.groups()[0].hbps_cache().is_none());
    assert!(agg.groups()[1].cache().is_none());
    let hbps = agg.groups()[1]
        .hbps_cache()
        .expect("object range uses HBPS");
    // Constant two-page memory, tracking all the range's AAs.
    assert_eq!(hbps.memory_bytes(), 2 * 4096);
    assert_eq!(hbps.tracked(), 8);
    // Object-store AAs are consecutive-VBN sized (32 Ki), not stripes.
    assert_eq!(agg.groups()[1].stripes_per_aa, 32768);
}

#[test]
fn misconfigured_object_store_rejected() {
    // Native redundancy means no parity devices and one logical device.
    let bad = AggregateConfig::single_group(RaidGroupSpec {
        data_devices: 2,
        parity_devices: 1,
        device_blocks: 32768,
        profile: MediaProfile::object_store(),
    });
    assert!(matches!(
        Aggregate::new(bad, &[], 1),
        Err(WaflError::InvalidConfig { .. })
    ));
}

#[test]
fn traffic_spreads_across_tiers_and_stays_consistent() {
    let mut agg = fabric_pool();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    let mut w = RandomOverwrite::new(VolumeId(0), 100_000, 3);
    let stats = run(&mut agg, &mut w, 60_000, 4096).unwrap();
    // Both tiers absorbed writes.
    assert!(stats.cp.per_rg[0].blocks > 0, "SSD tier idle");
    assert!(stats.cp.per_rg[1].blocks > 0, "object tier idle");
    // Space accounting across the mixed aggregate is exact.
    assert_eq!(
        agg.bitmap().space_len() - agg.bitmap().free_blocks(),
        100_000
    );
}

#[test]
fn object_store_topaa_is_two_pages_and_restores_complete() {
    let mut agg = fabric_pool();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    aging::random_overwrite_churn(&mut agg, VolumeId(0), 50_000, 4096, 5).unwrap();
    let image = mount::save_topaa(&agg);
    // 1 block (SSD heap) + 2 (object HBPS) + 2 (volume HBPS).
    assert_eq!(image.block_count(), 5);

    mount::crash(&mut agg);
    let stats = mount::mount_with_topaa(&mut agg, &image).unwrap();
    assert_eq!(stats.metafile_blocks_read, 5);
    // The HBPS-cached range needs no background completion; only the
    // heap-seeded SSD group does.
    assert!(agg.groups()[1].hbps_cache().is_some());
    mount::complete_background_rebuild(&mut agg).unwrap();

    // And traffic keeps flowing.
    let mut w = RandomOverwrite::new(VolumeId(0), 100_000, 6);
    run(&mut agg, &mut w, 10_000, 2048).unwrap();
    assert_eq!(
        agg.bitmap().space_len() - agg.bitmap().free_blocks(),
        100_000
    );
}

#[test]
fn object_writes_pack_into_few_puts_when_colocated() {
    // The §2.5 analogue for object stores: colocated VBNs make fewer,
    // larger PUTs. Compare the object tier's media time for sequential
    // versus scattered allocation by toggling the cache.
    let run_with = |cache: bool| {
        let mut cfg = fabric_pool().config().clone();
        cfg.raid_aware_cache = cache;
        let mut agg = Aggregate::new(
            cfg,
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                100_000,
            )],
            9,
        )
        .unwrap();
        aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut agg, VolumeId(0), 100_000, 4096, 7).unwrap();
        let mut w = RandomOverwrite::new(VolumeId(0), 100_000, 8);
        run(&mut agg, &mut w, 30_000, 4096).unwrap().cp
    };
    let guided = run_with(true);
    let random = run_with(false);
    let per_block =
        |cp: &wafl_repro::fs::CpStats| cp.per_rg[1].media_us / cp.per_rg[1].blocks.max(1) as f64;
    assert!(
        per_block(&guided) <= per_block(&random) * 1.05,
        "cache-guided object writes should not cost more per block: \
         {:.1} vs {:.1} µs",
        per_block(&guided),
        per_block(&random)
    );
}
