//! Sharded write-allocation smoke gate: the sharded CP pipeline must
//! beat the sequential reference planner, and must agree with it.
//!
//! Two arms run the same overwrite+CP workload:
//!
//! * **baseline** — the `wafl-oracle` crate's `OracleAggregate`, the
//!   frozen transcription of the retired legacy (`write_shards: 0`)
//!   pipeline (per-block binds, frees, and costing). Pinned explicitly
//!   by planner name, not by a config value that could silently resolve
//!   to the candidate;
//! * **candidate** — `write_shards: 4`, the lease-based sharded planner
//!   with partitioned bitmap applies.
//!
//! Each arm reports which planner it ran; the gate refuses to measure a
//! planner against itself (a baseline/candidate mix-up fails loudly
//! instead of producing a vacuous 1.0x "speedup" and zero "diffs").
//!
//! The gate (`scripts/ci.sh --par-smoke`) fails unless:
//!
//! 1. candidate *CP-pipeline* throughput ≥ 1.3x baseline (per-round
//!    minima across `TRIALS` interleaved trials, damping scheduler
//!    noise — see `fold_min`). The timed region is the `run_cp` calls —
//!    write allocation, bind, delayed frees, and costing, i.e. exactly
//!    the pipeline this gate covers; the client ingest loop that queues
//!    the overwrites is equivalent in both arms and would only dilute
//!    the comparison with its noise. The sharded pipeline's structural
//!    wins (seq-merged lease plans, run-based costing, word-masked batch
//!    frees) must hold even on a single-core host where thread fan-out
//!    adds nothing;
//! 2. zero parity diffs: identical aggregate free space, per-volume free
//!    space, and logical→virtual mappings after the full workload.
//!
//! End-to-end throughput (client ingest + CP) is printed alongside for
//! context but is not gated.
//!
//! Usage: `cargo run --release -p wafl-harness --example par_smoke`.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_oracle::{OracleAggregate, OracleRaidGroupSpec, OracleVolSpec};
use wafl_types::{VolumeId, BITS_PER_BITMAP_BLOCK};

const ROUNDS: u64 = 10;
const OPS: u64 = 8192;
const TRIALS: u32 = 5;
const LOGICAL: u64 = 200_000;
const MIN_SPEEDUP: f64 = 1.3;
const SHARDS: usize = 4;

const BASELINE_PLANNER: &str = "wafl-oracle/sequential";

fn candidate_planner() -> String {
    format!("wafl-fs/sharded({SHARDS})")
}

fn build(shards: usize) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig {
            write_shards: shards,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 64 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                aa_cache: true,
                aa_blocks: None,
            },
            LOGICAL,
        )],
        1,
    )
    .expect("aggregate");
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8192).expect("fill");
    agg
}

fn build_oracle() -> OracleAggregate {
    let mut orc = OracleAggregate::new(
        &[OracleRaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 64 * 4096,
        }],
        &[(
            OracleVolSpec {
                size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                aa_blocks: None,
            },
            LOGICAL,
        )],
    )
    .expect("oracle aggregate");
    // Same prefill as `aging::fill_volume(.., 8192)`.
    let mut l = 0u64;
    while l < LOGICAL {
        let end = (l + 8192).min(LOGICAL);
        for b in l..end {
            orc.client_overwrite(VolumeId(0), b).expect("fill");
        }
        orc.run_cp().expect("fill cp");
        l = end;
    }
    orc
}

/// Everything the two planners must agree on after the workload.
#[derive(PartialEq, Debug)]
struct Digest {
    agg_free: u64,
    vol_free: u64,
    /// logical → vvbn for every logical block (placement-independent).
    vvbn_map: Vec<Option<u64>>,
}

/// One timed run of either arm: planner name, per-round CP-pipeline wall
/// seconds, end-to-end wall seconds, and the end-state digest (identical
/// op sequence per call — same seed).
struct ArmResult {
    planner: String,
    cp_secs: Vec<f64>,
    total_secs: f64,
    digest: Digest,
}

fn run_candidate() -> ArmResult {
    let mut agg = build(SHARDS);
    let mut rng = StdRng::seed_from_u64(13);
    let start = Instant::now();
    let mut cp_secs = Vec::with_capacity(ROUNDS as usize);
    for _ in 0..ROUNDS {
        for _ in 0..OPS {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..LOGICAL))
                .expect("overwrite");
        }
        let cp = Instant::now();
        agg.run_cp().expect("cp");
        cp_secs.push(cp.elapsed().as_secs_f64());
    }
    let total_secs = start.elapsed().as_secs_f64();
    let vol = &agg.volumes()[0];
    ArmResult {
        planner: candidate_planner(),
        cp_secs,
        total_secs,
        digest: Digest {
            agg_free: agg.bitmap().free_blocks(),
            vol_free: vol.free_blocks(),
            vvbn_map: (0..LOGICAL)
                .map(|l| vol.lookup_logical(l).map(|v| v.get()))
                .collect(),
        },
    }
}

fn run_baseline() -> ArmResult {
    let mut orc = build_oracle();
    let mut rng = StdRng::seed_from_u64(13);
    let start = Instant::now();
    let mut cp_secs = Vec::with_capacity(ROUNDS as usize);
    for _ in 0..ROUNDS {
        for _ in 0..OPS {
            orc.client_overwrite(VolumeId(0), rng.random_range(0..LOGICAL))
                .expect("overwrite");
        }
        let cp = Instant::now();
        orc.run_cp().expect("cp");
        cp_secs.push(cp.elapsed().as_secs_f64());
    }
    let total_secs = start.elapsed().as_secs_f64();
    let vol = &orc.volumes()[0];
    ArmResult {
        planner: BASELINE_PLANNER.to_string(),
        cp_secs,
        total_secs,
        digest: Digest {
            agg_free: orc.bitmap().free_blocks(),
            vol_free: vol.free_blocks(),
            vvbn_map: (0..LOGICAL)
                .map(|l| vol.lookup_logical(l).map(|v| v.get()))
                .collect(),
        },
    }
}

/// Fold a trial's per-round times into the running per-round minima.
/// Round `r`'s workload is identical across trials (same seed), so the
/// elementwise minimum is a composite best run: each round at the least
/// interference any trial saw — a far tighter noise-floor estimate on a
/// shared host than best-of-trials on whole-run sums, while preserving
/// the workload's round-to-round shape (the mapped set, and with it the
/// delayed-free volume, grows every round).
fn fold_min(acc: &mut Vec<f64>, trial: &[f64]) {
    if acc.is_empty() {
        acc.extend_from_slice(trial);
    } else {
        for (a, &t) in acc.iter_mut().zip(trial) {
            *a = a.min(t);
        }
    }
}

fn main() {
    let mut baseline_rounds: Vec<f64> = Vec::new();
    let mut candidate_rounds: Vec<f64> = Vec::new();
    let mut best_baseline_e2e = f64::INFINITY;
    let mut best_candidate_e2e = f64::INFINITY;
    let mut parity: Option<(Digest, Digest)> = None;
    for trial in 0..TRIALS {
        let baseline = run_baseline();
        let candidate = run_candidate();
        if trial == 0 {
            eprintln!(
                "baseline planner: {}; candidate planner: {}",
                baseline.planner, candidate.planner
            );
            if baseline.planner == candidate.planner {
                eprintln!(
                    "FAIL: baseline and candidate resolved to the same planner \
                     ({}) — the gate would be comparing a pipeline to itself",
                    baseline.planner
                );
                std::process::exit(1);
            }
        }
        fold_min(&mut baseline_rounds, &baseline.cp_secs);
        fold_min(&mut candidate_rounds, &candidate.cp_secs);
        best_baseline_e2e = best_baseline_e2e.min(baseline.total_secs);
        best_candidate_e2e = best_candidate_e2e.min(candidate.total_secs);
        eprintln!(
            "trial {trial}: CP pipeline baseline {:.0} ops/s, candidate {:.0} ops/s \
             (end-to-end {:.0} / {:.0})",
            (ROUNDS * OPS) as f64 / baseline.cp_secs.iter().sum::<f64>(),
            (ROUNDS * OPS) as f64 / candidate.cp_secs.iter().sum::<f64>(),
            (ROUNDS * OPS) as f64 / baseline.total_secs,
            (ROUNDS * OPS) as f64 / candidate.total_secs,
        );
        if parity.is_none() {
            parity = Some((baseline.digest, candidate.digest));
        }
    }
    let best_baseline: f64 = baseline_rounds.iter().sum();
    let best_candidate: f64 = candidate_rounds.iter().sum();
    let (d_baseline, d_candidate) = parity.expect("at least one trial");

    let mut diffs = 0u64;
    if d_baseline.agg_free != d_candidate.agg_free {
        eprintln!(
            "PARITY DIFF: aggregate free {} (baseline) vs {} (candidate)",
            d_baseline.agg_free, d_candidate.agg_free
        );
        diffs += 1;
    }
    if d_baseline.vol_free != d_candidate.vol_free {
        eprintln!(
            "PARITY DIFF: volume free {} (baseline) vs {} (candidate)",
            d_baseline.vol_free, d_candidate.vol_free
        );
        diffs += 1;
    }
    let map_diffs = d_baseline
        .vvbn_map
        .iter()
        .zip(&d_candidate.vvbn_map)
        .filter(|(a, b)| a != b)
        .count() as u64;
    if map_diffs > 0 {
        eprintln!("PARITY DIFF: {map_diffs} logical→virtual mappings diverge");
        diffs += map_diffs;
    }

    let speedup = best_baseline / best_candidate;
    println!(
        "par_smoke: CP pipeline {} {:.0} ops/s vs {BASELINE_PLANNER} {:.0} ops/s \
         ({speedup:.2}x, gate >= {MIN_SPEEDUP}x); end-to-end candidate {:.0} \
         vs baseline {:.0} ops/s ({:.2}x); parity diffs {diffs}",
        candidate_planner(),
        (ROUNDS * OPS) as f64 / best_candidate,
        (ROUNDS * OPS) as f64 / best_baseline,
        (ROUNDS * OPS) as f64 / best_candidate_e2e,
        (ROUNDS * OPS) as f64 / best_baseline_e2e,
        best_baseline_e2e / best_candidate_e2e,
    );
    if diffs > 0 {
        eprintln!("FAIL: candidate planner diverged from the wafl-oracle baseline");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: candidate/baseline speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        std::process::exit(1);
    }
}
