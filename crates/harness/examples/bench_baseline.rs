//! Records the free-count-summary performance baseline: whole-bitmap
//! score rebuild (summary versus the retained popcount walk) at 1 Mi
//! blocks, summary-accelerated range counts, the CP overwrite workload,
//! and the sharded-pipeline shard sweep — written as
//! `BENCH_bitmap.json`, `BENCH_cp.json`, `BENCH_alloc.json`,
//! `BENCH_parallel.json`, and `BENCH_obs.json` for the repo record (see
//! `docs/perf.md`). `BENCH_obs.json` also records the flight recorder's
//! tracing-on versus tracing-off throughput (the overhead target is
//! < 2 %) and the traced run's per-CP time series.
//!
//! Usage: `cargo run --release -p wafl-harness --example bench_baseline
//!         [--out-dir <dir>]` (default: current directory). Run via
//! `scripts/bench_baseline.sh` so the JSONs land at the repo root.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use wafl_bitmap::{scan, Bitmap};
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_oracle::{OracleAggregate, OracleRaidGroupSpec, OracleVolSpec};
use wafl_types::{Vbn, VolumeId, BITS_PER_BITMAP_BLOCK};

/// 1 Mi blocks = 32 bitmap pages = a 4 GiB space at 4 KiB blocks.
const SPACE: u64 = 32 * BITS_PER_BITMAP_BLOCK;
const FILL: f64 = 0.55;
const AA_BLOCKS: u64 = BITS_PER_BITMAP_BLOCK;

fn aged(space: u64, fill: f64, seed: u64) -> Bitmap {
    let mut b = Bitmap::new(space);
    let mut rng = StdRng::seed_from_u64(seed);
    let target = (space as f64 * fill) as u64;
    let mut allocated = 0;
    while allocated < target {
        if b.allocate(Vbn(rng.random_range(0..space))).is_ok() {
            allocated += 1;
        }
    }
    b
}

/// Mean nanoseconds per call over `iters` timed iterations (plus a short
/// untimed warm-up).
fn time_ns<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters.div_ceil(10).min(50) {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

#[derive(Serialize)]
struct BitmapBaseline {
    space_blocks: u64,
    fill_fraction: f64,
    aa_blocks: u64,
    /// Pre-summary implementation: raw popcount walk over every word.
    rebuild_popcount_ns: f64,
    /// Whole-page counts answered from the per-page summary.
    rebuild_page_summary_ns: f64,
    /// Per-AA counters (volume bitmaps): a counter copy.
    rebuild_aa_summary_ns: f64,
    speedup_page_summary: f64,
    speedup_aa_summary: f64,
    /// 16-page range count, popcount versus summary.
    range_count_16_pages_popcount_ns: f64,
    range_count_16_pages_summary_ns: f64,
    /// `first_free_from` when only the last page has a free bit.
    first_free_last_page_ns: f64,
}

fn bitmap_baseline() -> BitmapBaseline {
    let plain = aged(SPACE, FILL, 42);
    let mut with_aa = aged(SPACE, FILL, 42);
    with_aa.enable_aa_summary(AA_BLOCKS).unwrap();

    let rebuild_popcount_ns = time_ns(2_000, || scan::scores_popcount(&plain, AA_BLOCKS));
    let rebuild_page_summary_ns = time_ns(200_000, || scan::scores_seq(&plain, AA_BLOCKS));
    let rebuild_aa_summary_ns = time_ns(200_000, || scan::scores_seq(&with_aa, AA_BLOCKS));

    let start = Vbn(3 * BITS_PER_BITMAP_BLOCK + 1000);
    let len = 16 * BITS_PER_BITMAP_BLOCK;
    let range_count_16_pages_popcount_ns =
        time_ns(10_000, || plain.free_count_range_popcount(start, len));
    let range_count_16_pages_summary_ns = time_ns(200_000, || plain.free_count_range(start, len));

    let mut nearly_full = Bitmap::new(SPACE);
    for v in 0..SPACE - 1 {
        nearly_full.allocate(Vbn(v)).unwrap();
    }
    let first_free_last_page_ns = time_ns(200_000, || nearly_full.first_free_from(Vbn(0)));

    BitmapBaseline {
        space_blocks: SPACE,
        fill_fraction: FILL,
        aa_blocks: AA_BLOCKS,
        rebuild_popcount_ns,
        rebuild_page_summary_ns,
        rebuild_aa_summary_ns,
        speedup_page_summary: rebuild_popcount_ns / rebuild_page_summary_ns,
        speedup_aa_summary: rebuild_popcount_ns / rebuild_aa_summary_ns,
        range_count_16_pages_popcount_ns,
        range_count_16_pages_summary_ns,
        first_free_last_page_ns,
    }
}

#[derive(Serialize)]
struct AllocSeries {
    ops_per_second: f64,
    /// Candidate blocks the allocator examined across the whole series.
    blocks_examined: u64,
    cursor_hits: u64,
    cursor_misses: u64,
    /// Fraction of volume drains that resumed from the per-AA cursor.
    cursor_hit_rate: f64,
}

#[derive(Serialize)]
struct AllocBaseline {
    /// Aligned run length for the bulk-vs-per-bit mutator comparison.
    run_len: u64,
    /// One allocate_run + free_run cycle of `run_len` blocks (summary
    /// enabled), mean ns.
    bulk_cycle_ns: f64,
    /// The same cycle spelled as `run_len` allocate() + free() calls.
    per_bit_cycle_ns: f64,
    /// per_bit_cycle_ns / bulk_cycle_ns — the acceptance gate is >= 5x.
    bulk_speedup: f64,
    /// The CP overwrite workload, cache-guided vs sweep, with the
    /// allocator counters that explain the difference.
    cache_on: AllocSeries,
    cache_off: AllocSeries,
}

/// Pulls `"name":<integer>` out of the registry's snapshot JSON. The
/// serde_json shim only serializes, so this is a plain string scan over
/// the compact `{"counters":{"a":1,...}}` layout the registry emits.
fn counter_of(snapshot: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let Some(at) = snapshot.find(&key) else {
        return 0;
    };
    snapshot[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

fn alloc_series(cp: &CpSeries, snapshot: &str) -> AllocSeries {
    let hits = counter_of(snapshot, "allocator.cursor_hits");
    let misses = counter_of(snapshot, "allocator.cursor_misses");
    AllocSeries {
        ops_per_second: cp.ops_per_second,
        blocks_examined: counter_of(snapshot, "allocator.blocks_examined"),
        cursor_hits: hits,
        cursor_misses: misses,
        cursor_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

/// Bulk mutators versus the per-bit loop on a 64-block aligned run of a
/// summary-enabled bitmap. Each sample is a full allocate+free cycle so
/// the bitmap returns to its starting state between iterations.
fn alloc_run_bench() -> (f64, f64, u64) {
    const RUN: u64 = 64;
    let mut bulk = Bitmap::new(4 * BITS_PER_BITMAP_BLOCK);
    bulk.enable_aa_summary(AA_BLOCKS).unwrap();
    let start = Vbn(BITS_PER_BITMAP_BLOCK + 512); // word- and AA-interior aligned
    let bulk_cycle_ns = time_ns(400_000, || {
        bulk.allocate_run(start, RUN).unwrap();
        bulk.free_run(start, RUN).unwrap();
    });
    let mut per_bit = Bitmap::new(4 * BITS_PER_BITMAP_BLOCK);
    per_bit.enable_aa_summary(AA_BLOCKS).unwrap();
    let per_bit_cycle_ns = time_ns(40_000, || {
        for v in start.get()..start.get() + RUN {
            per_bit.allocate(Vbn(v)).unwrap();
        }
        for v in start.get()..start.get() + RUN {
            per_bit.free(Vbn(v)).unwrap();
        }
    });
    (bulk_cycle_ns, per_bit_cycle_ns, RUN)
}

#[derive(Serialize)]
struct CpSeries {
    rounds: u64,
    ops_per_round: u64,
    ops_per_second: f64,
    mean_round_ms: f64,
    mean_cp_flush_ms: f64,
}

#[derive(Serialize)]
struct CpBaseline {
    caches_on: CpSeries,
    caches_off: CpSeries,
}

/// The `cp_engine` bench workload (random overwrites + CP flush),
/// re-measured here so CP latency is part of the recorded baseline.
/// Also returns the aggregate's observability snapshot so the allocator
/// pipeline's counters land in the baseline record (`BENCH_obs.json`).
/// `shards` selects the CP pipeline fan-out: 1 = single-threaded, >1 =
/// fanned out (the retired `shards == 0` legacy pipeline lives in
/// `wafl-oracle`; see [`oracle_series`]). `trace_events > 0` switches on
/// the flight recorder with that ring capacity; the third return is then
/// the traced run's per-CP series JSON.
fn cp_series(
    caches: bool,
    shards: usize,
    trace_events: usize,
) -> (CpSeries, String, Option<String>) {
    const ROUNDS: u64 = 24;
    const OPS: u64 = 8192;
    let mut agg = Aggregate::new(
        AggregateConfig {
            raid_aware_cache: caches,
            write_shards: shards,
            trace_events,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 64 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                aa_cache: caches,
                aa_blocks: None,
            },
            200_000,
        )],
        1,
    )
    .unwrap();
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8192).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let round = |agg: &mut Aggregate, rng: &mut StdRng| {
        for _ in 0..OPS {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..200_000))
                .unwrap();
        }
        let cp = Instant::now();
        agg.run_cp().unwrap();
        cp.elapsed()
    };
    // Warm up (primes caches and the delayed-free log).
    for _ in 0..4 {
        round(&mut agg, &mut rng);
    }
    let start = Instant::now();
    let mut cp_total = 0.0f64;
    for _ in 0..ROUNDS {
        cp_total += round(&mut agg, &mut rng).as_secs_f64();
    }
    let total = start.elapsed().as_secs_f64();
    let series = CpSeries {
        rounds: ROUNDS,
        ops_per_round: OPS,
        ops_per_second: (ROUNDS * OPS) as f64 / total,
        mean_round_ms: total * 1e3 / ROUNDS as f64,
        mean_cp_flush_ms: cp_total * 1e3 / ROUNDS as f64,
    };
    let per_cp = agg.cp_series().map(|s| s.to_json());
    (series, agg.obs().snapshot_json(), per_cp)
}

/// The flight recorder's cost on the sharded CP workload: the same
/// caches-on 4-shard series with tracing off and on, best-of-5 trials
/// per arm with the arms interleaved (off, on, off, on, ...) so
/// host-frequency drift hits both equally — run-to-run variance on a
/// loaded host easily exceeds the effect being measured, which is one
/// relaxed `fetch_add` plus an uncontended slot write per event.
#[derive(Serialize)]
struct TraceOverhead {
    trace_capacity: usize,
    trials_per_arm: u32,
    ops_per_second_off: f64,
    ops_per_second_on: f64,
    /// `1 - on/off`; the acceptance target is < 0.02.
    overhead_fraction: f64,
}

/// One shard-count sample of the CP workload.
#[derive(Serialize)]
struct ParallelSeries {
    /// Which planner produced this sample — pins the baseline to the
    /// `wafl-oracle` crate by name, so a config mix-up can't silently
    /// measure the candidate against itself.
    planner: String,
    write_shards: usize,
    ops_per_second: f64,
    mean_round_ms: f64,
    mean_cp_flush_ms: f64,
}

/// The `cp_series(true, ..)` workload replayed on the `wafl-oracle`
/// sequential planner — the frozen transcription of the retired
/// `write_shards: 0` pipeline, which is the baseline arm of
/// `BENCH_parallel.json`.
fn oracle_series() -> ParallelSeries {
    const ROUNDS: u64 = 24;
    const OPS: u64 = 8192;
    const LOGICAL: u64 = 200_000;
    let mut orc = OracleAggregate::new(
        &[OracleRaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 64 * 4096,
        }],
        &[(
            OracleVolSpec {
                size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                aa_blocks: None,
            },
            LOGICAL,
        )],
    )
    .unwrap();
    // Same prefill as `aging::fill_volume(.., 8192)`.
    let mut l = 0u64;
    while l < LOGICAL {
        let end = (l + 8192).min(LOGICAL);
        for b in l..end {
            orc.client_overwrite(VolumeId(0), b).unwrap();
        }
        orc.run_cp().unwrap();
        l = end;
    }
    let mut rng = StdRng::seed_from_u64(2);
    let round = |orc: &mut OracleAggregate, rng: &mut StdRng| {
        for _ in 0..OPS {
            orc.client_overwrite(VolumeId(0), rng.random_range(0..LOGICAL))
                .unwrap();
        }
        let cp = Instant::now();
        orc.run_cp().unwrap();
        cp.elapsed()
    };
    for _ in 0..4 {
        round(&mut orc, &mut rng);
    }
    let start = Instant::now();
    let mut cp_total = 0.0f64;
    for _ in 0..ROUNDS {
        cp_total += round(&mut orc, &mut rng).as_secs_f64();
    }
    let total = start.elapsed().as_secs_f64();
    ParallelSeries {
        planner: "wafl-oracle/sequential".into(),
        write_shards: 0,
        ops_per_second: (ROUNDS * OPS) as f64 / total,
        mean_round_ms: total * 1e3 / ROUNDS as f64,
        mean_cp_flush_ms: cp_total * 1e3 / ROUNDS as f64,
    }
}

/// The sharded-pipeline record (`BENCH_parallel.json`): the caches-on CP
/// workload across shard counts, against both the sequential reference
/// planner (`wafl-oracle`) and the committed pre-sharding baseline.
#[derive(Serialize)]
struct ParallelBaseline {
    /// `std::thread::available_parallelism()` of the measuring host —
    /// the shard-count speedups only separate when this exceeds the
    /// shard counts (see the multi-core caveat in `docs/perf.md`).
    host_parallelism: usize,
    /// The committed pre-sharding caches-on baseline (`BENCH_cp.json` as
    /// recorded by the cache-guided allocation PR).
    reference_ops_per_second: f64,
    /// The retired sequential pipeline, replayed from its `wafl-oracle`
    /// transcription on this host now.
    baseline: ParallelSeries,
    /// The sharded pipeline at increasing shard counts.
    series: Vec<ParallelSeries>,
    /// 4-shard ops/s over the committed reference — the acceptance gate
    /// is >= 2.0.
    speedup_4_shards_vs_reference: f64,
    /// 4-shard ops/s over the live wafl-oracle baseline run.
    speedup_4_shards_vs_baseline: f64,
}

/// Caches-on CP-round throughput of the wafl-oracle baseline and the
/// sharded pipeline at 1/2/4/8 shards.
fn parallel_baseline(reference_ops_per_second: f64) -> ParallelBaseline {
    let sample = |shards: usize| {
        let (s, _, _) = cp_series(true, shards, 0);
        ParallelSeries {
            planner: format!("wafl-fs/sharded({shards})"),
            write_shards: shards,
            ops_per_second: s.ops_per_second,
            mean_round_ms: s.mean_round_ms,
            mean_cp_flush_ms: s.mean_cp_flush_ms,
        }
    };
    let baseline = oracle_series();
    let series: Vec<ParallelSeries> = [1, 2, 4, 8].into_iter().map(sample).collect();
    assert!(
        series.iter().all(|s| s.planner != baseline.planner),
        "baseline and candidate resolved to the same planner"
    );
    let at4 = series
        .iter()
        .find(|s| s.write_shards == 4)
        .map(|s| s.ops_per_second)
        .unwrap_or(0.0);
    ParallelBaseline {
        host_parallelism: wafl_fs::default_write_shards(),
        reference_ops_per_second,
        speedup_4_shards_vs_reference: at4 / reference_ops_per_second,
        speedup_4_shards_vs_baseline: at4 / baseline.ops_per_second,
        baseline,
        series,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| ".".into());

    eprintln!("measuring bitmap score-rebuild baseline ({SPACE} blocks)...");
    let bitmap = bitmap_baseline();
    eprintln!(
        "  rebuild: popcount {:.0} ns, page summary {:.0} ns ({:.0}x), \
         per-AA summary {:.0} ns ({:.0}x)",
        bitmap.rebuild_popcount_ns,
        bitmap.rebuild_page_summary_ns,
        bitmap.speedup_page_summary,
        bitmap.rebuild_aa_summary_ns,
        bitmap.speedup_aa_summary,
    );

    eprintln!("measuring bulk-vs-per-bit run mutators...");
    let (bulk_cycle_ns, per_bit_cycle_ns, run_len) = alloc_run_bench();
    eprintln!(
        "  {run_len}-block cycle: bulk {bulk_cycle_ns:.0} ns, per-bit \
         {per_bit_cycle_ns:.0} ns ({:.1}x)",
        per_bit_cycle_ns / bulk_cycle_ns
    );

    eprintln!("measuring CP overwrite workload...");
    let (caches_on, obs_snapshot, _) = cp_series(true, 1, 0);
    let (caches_off, obs_snapshot_off, _) = cp_series(false, 1, 0);
    let alloc = AllocBaseline {
        run_len,
        bulk_cycle_ns,
        per_bit_cycle_ns,
        bulk_speedup: per_bit_cycle_ns / bulk_cycle_ns,
        cache_on: alloc_series(&caches_on, &obs_snapshot),
        cache_off: alloc_series(&caches_off, &obs_snapshot_off),
    };
    let cp = CpBaseline {
        caches_on,
        caches_off,
    };
    eprintln!(
        "  caches on: {:.0} ops/s, mean CP flush {:.2} ms",
        cp.caches_on.ops_per_second, cp.caches_on.mean_cp_flush_ms
    );
    eprintln!(
        "  caches off: {:.0} ops/s; cursor hit rate (on) {:.2}",
        cp.caches_off.ops_per_second, alloc.cache_on.cursor_hit_rate
    );

    eprintln!("measuring sharded CP pipeline (wafl-oracle baseline + shards = 1/2/4/8)...");
    // The committed pre-sharding caches-on baseline (BENCH_cp.json).
    let parallel = parallel_baseline(1_839_272.0);
    eprintln!(
        "  {} {:.0} ops/s; 4 shards {:.0} ops/s \
         ({:.2}x vs reference, {:.2}x vs baseline; host parallelism {})",
        parallel.baseline.planner,
        parallel.baseline.ops_per_second,
        parallel
            .series
            .iter()
            .find(|s| s.write_shards == 4)
            .map(|s| s.ops_per_second)
            .unwrap_or(0.0),
        parallel.speedup_4_shards_vs_reference,
        parallel.speedup_4_shards_vs_baseline,
        parallel.host_parallelism,
    );

    eprintln!("measuring flight-recorder overhead (4 shards, tracing off/on, best of 5)...");
    const TRACE_CAPACITY: usize = 65_536;
    const TRIALS: u32 = 5;
    let mut off_best = 0.0f64;
    let mut on_best = 0.0f64;
    let mut per_cp = None;
    for _ in 0..TRIALS {
        off_best = off_best.max(cp_series(true, 4, 0).0.ops_per_second);
        let (s, _, p) = cp_series(true, 4, TRACE_CAPACITY);
        if s.ops_per_second > on_best {
            on_best = s.ops_per_second;
            per_cp = p;
        }
    }
    let trace = TraceOverhead {
        trace_capacity: TRACE_CAPACITY,
        trials_per_arm: TRIALS,
        ops_per_second_off: off_best,
        ops_per_second_on: on_best,
        overhead_fraction: 1.0 - on_best / off_best,
    };
    eprintln!(
        "  tracing off {:.0} ops/s, on {:.0} ops/s ({:+.2}% overhead)",
        trace.ops_per_second_off,
        trace.ops_per_second_on,
        trace.overhead_fraction * 100.0,
    );
    // Hand-assembled wrapper: the serde shim would re-escape the
    // registry snapshot and the per-CP series, which are already JSON.
    let obs_record = format!(
        "{{\n\"trace\": {},\n\"per_cp_series\": {},\n\"registry\": {}\n}}\n",
        serde_json::to_string_pretty(&trace).expect("serialize"),
        per_cp.expect("the traced arm samples the per-CP series"),
        obs_snapshot,
    );

    for (name, json) in [
        ("BENCH_bitmap.json", serde_json::to_string_pretty(&bitmap)),
        ("BENCH_cp.json", serde_json::to_string_pretty(&cp)),
        ("BENCH_alloc.json", serde_json::to_string_pretty(&alloc)),
        (
            "BENCH_parallel.json",
            serde_json::to_string_pretty(&parallel),
        ),
        // Flight-recorder overhead + the traced run's per-CP series +
        // the caches-on run's registry snapshot (already JSON).
        ("BENCH_obs.json", Ok(obs_record)),
    ] {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, json.expect("serialize")).expect("write baseline json");
        println!("wrote {path}");
    }
}
