//! Regenerates Figure 10 (§4.4): first-CP time after boot with and
//! without TopAA metafiles, against volume size (A) and count (B).
//!
//! Usage: `cargo run --release -p wafl-harness --bin fig10_topaa_mount
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::fig10::run(scale).expect("fig10 failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
