//! Regenerates Figure 9 (§4.3): HDD-sized vs zone-sized AZCS-aligned AAs
//! on drive-managed SMR under sequential writes.
//!
//! Usage: `cargo run --release -p wafl-harness --bin fig9_smr_aa_sizing
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::fig9::run(scale).expect("fig9 failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
