//! Regenerates Figure 7 (§4.2): per-disk blocks/s and per-group tetris
//! rates across differently aged RAID groups under an OLTP workload.
//!
//! Usage: `cargo run --release -p wafl-harness --bin fig7_imbalanced_aging
//!         [--scale small|paper] [--json out.json] [--backoff]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let backoff = std::env::args().any(|a| a == "--backoff");
    let result =
        wafl_harness::experiments::fig7::run_with_backoff(scale, backoff).expect("fig7 failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
