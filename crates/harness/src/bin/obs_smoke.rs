//! Observability smoke gate: runs a small cache-guided aggregate through
//! client traffic, CPs, a crash/remount cycle, and an iron audit, then
//! asserts the metrics registry actually saw the allocator pipeline.
//!
//! Invariants checked (the CI `--obs-smoke` contract):
//!
//! - the snapshot covers allocator, HBPS, CP (model and `cp.wall.*`
//!   measured), per-shard lease (`allocator.shard.{i}.*`), and mount
//!   metric families;
//! - the headline counters are nonzero after real work, including the
//!   sharded pipeline's lease traffic;
//! - every cache-guided pick's score error stays within one HBPS bin
//!   width of the true best AA (the paper's 3.125 % bound, §2.3).
//!
//! Usage: `cargo run --release -p wafl-harness --bin obs_smoke`.
//! Prints the JSON snapshot on success; panics (nonzero exit) on any
//! violated invariant.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_fs::{iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, BITS_PER_BITMAP_BLOCK};

fn smoke_aggregate() -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            raid_aware_cache: true,
            // Explicit: the host may detect one core, and the per-shard
            // metric family only registers when write_shards > 1.
            write_shards: 4,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 4 * BITS_PER_BITMAP_BLOCK,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        1,
    )
    .expect("smoke aggregate")
}

fn main() {
    let mut agg = smoke_aggregate();
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8_192).expect("fill");

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..6 {
        for _ in 0..2_000 {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..60_000))
                .expect("overwrite");
        }
        agg.run_cp().expect("cp");
    }

    // Crash and remount from a saved TopAA image so the mount metrics
    // fire, then audit so the iron metrics fire.
    let image = mount::save_topaa(&agg);
    mount::crash(&mut agg);
    mount::mount_auto(&mut agg, &image);
    let audit = iron::check(&agg).expect("audit");
    assert!(
        audit.is_clean(),
        "smoke aggregate must audit clean: {audit:?}"
    );

    let obs = agg.obs();
    let snapshot = obs.snapshot_json();

    // Family coverage: one representative key per subsystem.
    for key in [
        "allocator.aas_claimed",
        "allocator.blocks_examined",
        "allocator.pick_score_error_bin_widths",
        "hbps.bin_moves",
        "heap.rebalances",
        "cp.completed",
        "cp.phase.client_ops_us",
        "cp.phase.media_us",
        "cp.wall.total_us",
        "cp.wall.plan_physical_us",
        "cp.wall.rebalance_us",
        "allocator.shard.0.leases",
        "allocator.shard.0.steals",
        "allocator.shard.3.leases",
        "mount.topaa_seed_hits",
        "iron.audits_run",
        "allocator.cursor_hits",
        "allocator.cursor_misses",
        "vol=0.space.free_fraction",
    ] {
        assert!(
            snapshot.contains(&format!("\"{key}\"")),
            "snapshot missing metric {key}"
        );
    }

    // Headline counters must be nonzero after real traffic.
    let nonzero = |name: &str| {
        let v = obs.counter_value(name).unwrap_or(0);
        assert!(v > 0, "counter {name} expected nonzero, got {v}");
        v
    };
    nonzero("cp.completed");
    nonzero("allocator.aas_claimed");
    nonzero("allocator.blocks_examined");
    nonzero("mount.topaa_seed_hits");
    nonzero("iron.audits_run");
    // Every volume's first drain of an AA is a cursor miss, so traffic
    // guarantees this one; hits depend on drain interleaving and are
    // covered by the allocator unit tests instead.
    nonzero("allocator.cursor_misses");
    // The sharded pipeline leased ranges to its workers; which shard got
    // them is scheduling-dependent, so gate on the total.
    let leases: u64 = (0..4)
        .map(|i| {
            obs.counter_value(&format!("allocator.shard.{i}.leases"))
                .unwrap_or(0)
        })
        .sum();
    assert!(leases > 0, "sharded CPs must record lease traffic");
    // Wall-clock phase histograms accrue on every CP.
    let wall = obs
        .histogram_handle("cp.wall.total_us")
        .expect("wall histogram registered");
    assert!(
        wall.count() > 0 && wall.sum() > 0.0,
        "cp.wall.total_us empty"
    );

    // The paper's bound: a cache-guided pick is at most one bin width
    // below the true best score. The histogram stores err / bin_width,
    // so its max must not exceed 1.0.
    let err = obs
        .histogram_handle("allocator.pick_score_error_bin_widths")
        .expect("pick-error histogram registered");
    assert!(
        err.max() <= 1.0 + 1e-9,
        "chosen-AA score error exceeded one bin width: {}",
        err.max()
    );

    println!("{snapshot}");
    eprintln!("obs smoke passed: all invariant metrics present and in bounds.");
}
