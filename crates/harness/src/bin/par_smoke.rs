//! Sharded write-allocation smoke gate: the sharded CP pipeline must
//! beat the legacy single-threaded pipeline, and must agree with it.
//!
//! Two arms run the same overwrite+CP workload:
//!
//! * **legacy** — `write_shards: 0`, the pre-sharding pipeline (per-block
//!   binds and frees), kept as the parity oracle;
//! * **sharded** — `write_shards: 4`, the lease-based sharded planner
//!   with partitioned bitmap applies.
//!
//! The gate (`scripts/ci.sh --par-smoke`) fails unless:
//!
//! 1. sharded *CP-pipeline* throughput ≥ 1.3x legacy (per-round minima
//!    across `TRIALS` interleaved trials, damping scheduler noise — see
//!    `fold_min`). The timed region is
//!    the `run_cp` calls — write allocation, bind, delayed frees, and
//!    costing, i.e. exactly the pipeline this gate covers; the client
//!    ingest loop that queues the overwrites is byte-identical code in
//!    both arms and would only dilute the comparison with its noise. The
//!    sharded pipeline's structural wins (seq-merged lease plans, run-
//!    based costing, word-masked batch frees) must hold even on a
//!    single-core host where thread fan-out adds nothing;
//! 2. zero parity diffs: identical aggregate free space, per-volume free
//!    space, and logical→virtual mappings after the full workload.
//!
//! End-to-end throughput (client ingest + CP) is printed alongside for
//! context but is not gated.
//!
//! Usage: `cargo run --release -p wafl-harness --bin par_smoke`.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, BITS_PER_BITMAP_BLOCK};

const ROUNDS: u64 = 10;
const OPS: u64 = 8192;
const TRIALS: u32 = 5;
const LOGICAL: u64 = 200_000;
const MIN_SPEEDUP: f64 = 1.3;
const SHARDS: usize = 4;

fn build(shards: usize) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig {
            write_shards: shards,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 64 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                aa_cache: true,
                aa_blocks: None,
            },
            LOGICAL,
        )],
        1,
    )
    .expect("aggregate");
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8192).expect("fill");
    agg
}

/// Everything the two pipelines must agree on after the workload.
#[derive(PartialEq, Debug)]
struct Digest {
    agg_free: u64,
    vol_free: u64,
    /// logical → vvbn for every logical block (placement-independent).
    vvbn_map: Vec<Option<u64>>,
}

fn digest(agg: &Aggregate) -> Digest {
    let vol = &agg.volumes()[0];
    Digest {
        agg_free: agg.bitmap().free_blocks(),
        vol_free: vol.free_blocks(),
        vvbn_map: (0..LOGICAL)
            .map(|l| vol.lookup_logical(l).map(|v| v.get()))
            .collect(),
    }
}

/// One timed run: per-round CP-pipeline wall seconds, end-to-end wall
/// seconds, and the end-state digest (identical op sequence per call —
/// same seed).
fn run_arm(shards: usize) -> (Vec<f64>, f64, Digest) {
    let mut agg = build(shards);
    let mut rng = StdRng::seed_from_u64(13);
    let start = Instant::now();
    let mut cp_secs = Vec::with_capacity(ROUNDS as usize);
    for _ in 0..ROUNDS {
        for _ in 0..OPS {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..LOGICAL))
                .expect("overwrite");
        }
        let cp = Instant::now();
        agg.run_cp().expect("cp");
        cp_secs.push(cp.elapsed().as_secs_f64());
    }
    let total_secs = start.elapsed().as_secs_f64();
    (cp_secs, total_secs, digest(&agg))
}

/// Fold a trial's per-round times into the running per-round minima.
/// Round `r`'s workload is identical across trials (same seed), so the
/// elementwise minimum is a composite best run: each round at the least
/// interference any trial saw — a far tighter noise-floor estimate on a
/// shared host than best-of-trials on whole-run sums, while preserving
/// the workload's round-to-round shape (the mapped set, and with it the
/// delayed-free volume, grows every round).
fn fold_min(acc: &mut Vec<f64>, trial: &[f64]) {
    if acc.is_empty() {
        acc.extend_from_slice(trial);
    } else {
        for (a, &t) in acc.iter_mut().zip(trial) {
            *a = a.min(t);
        }
    }
}

fn main() {
    let mut legacy_rounds: Vec<f64> = Vec::new();
    let mut sharded_rounds: Vec<f64> = Vec::new();
    let mut best_legacy_e2e = f64::INFINITY;
    let mut best_sharded_e2e = f64::INFINITY;
    let mut parity: Option<(Digest, Digest)> = None;
    for trial in 0..TRIALS {
        let (cp_legacy, e2e_legacy, d_legacy) = run_arm(0);
        let (cp_sharded, e2e_sharded, d_sharded) = run_arm(SHARDS);
        fold_min(&mut legacy_rounds, &cp_legacy);
        fold_min(&mut sharded_rounds, &cp_sharded);
        best_legacy_e2e = best_legacy_e2e.min(e2e_legacy);
        best_sharded_e2e = best_sharded_e2e.min(e2e_sharded);
        eprintln!(
            "trial {trial}: CP pipeline legacy {:.0} ops/s, sharded {:.0} ops/s \
             (end-to-end {:.0} / {:.0})",
            (ROUNDS * OPS) as f64 / cp_legacy.iter().sum::<f64>(),
            (ROUNDS * OPS) as f64 / cp_sharded.iter().sum::<f64>(),
            (ROUNDS * OPS) as f64 / e2e_legacy,
            (ROUNDS * OPS) as f64 / e2e_sharded,
        );
        if parity.is_none() {
            parity = Some((d_legacy, d_sharded));
        }
    }
    let best_legacy: f64 = legacy_rounds.iter().sum();
    let best_sharded: f64 = sharded_rounds.iter().sum();
    let (d_legacy, d_sharded) = parity.expect("at least one trial");

    let mut diffs = 0u64;
    if d_legacy.agg_free != d_sharded.agg_free {
        eprintln!(
            "PARITY DIFF: aggregate free {} (legacy) vs {} (sharded)",
            d_legacy.agg_free, d_sharded.agg_free
        );
        diffs += 1;
    }
    if d_legacy.vol_free != d_sharded.vol_free {
        eprintln!(
            "PARITY DIFF: volume free {} (legacy) vs {} (sharded)",
            d_legacy.vol_free, d_sharded.vol_free
        );
        diffs += 1;
    }
    let map_diffs = d_legacy
        .vvbn_map
        .iter()
        .zip(&d_sharded.vvbn_map)
        .filter(|(a, b)| a != b)
        .count() as u64;
    if map_diffs > 0 {
        eprintln!("PARITY DIFF: {map_diffs} logical→virtual mappings diverge");
        diffs += map_diffs;
    }

    let speedup = best_legacy / best_sharded;
    println!(
        "par_smoke: CP pipeline sharded {:.0} ops/s vs legacy {:.0} ops/s \
         ({speedup:.2}x, gate >= {MIN_SPEEDUP}x); end-to-end sharded {:.0} \
         vs legacy {:.0} ops/s ({:.2}x); parity diffs {diffs}",
        (ROUNDS * OPS) as f64 / best_sharded,
        (ROUNDS * OPS) as f64 / best_legacy,
        (ROUNDS * OPS) as f64 / best_sharded_e2e,
        (ROUNDS * OPS) as f64 / best_legacy_e2e,
        best_legacy_e2e / best_sharded_e2e,
    );
    if diffs > 0 {
        eprintln!("FAIL: sharded pipeline diverged from the legacy oracle");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: sharded/legacy speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        std::process::exit(1);
    }
}
