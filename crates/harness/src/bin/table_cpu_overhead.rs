//! Regenerates the §4.1.2 in-text table: per-operation CPU overhead with
//! and without the FlexVol (HBPS) AA cache, and the AA-cache maintenance
//! CPU share.
//!
//! Usage: `cargo run --release -p wafl-harness --bin table_cpu_overhead
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::table_cpu::run(scale).expect("table_cpu failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
