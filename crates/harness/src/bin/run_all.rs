//! Runs every experiment in sequence and prints the full EXPERIMENTS
//! report (the generator behind EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p wafl-harness --bin run_all
//!         [--scale small|paper]`

use wafl_harness::experiments::{
    ext_reclamation, fig10, fig6, fig7, fig8, fig9, recovery, table_cpu,
};

fn main() {
    let (scale, _) = wafl_harness::cli_scale();
    eprintln!("running Figure 6 (AA caches)...");
    let f6 = fig6::run(scale).expect("fig6");
    eprintln!("running Figure 7 (imbalanced aging)...");
    let f7 = fig7::run(scale).expect("fig7");
    eprintln!("running Figure 8 (SSD AA sizing)...");
    let f8 = fig8::run(scale).expect("fig8");
    eprintln!("running Figure 9 (SMR AA sizing)...");
    let f9 = fig9::run(scale).expect("fig9");
    eprintln!("running Figure 10 (TopAA mount)...");
    let f10 = fig10::run(scale).expect("fig10");
    eprintln!("running extension experiments (reclamation)...");
    let ext = ext_reclamation::run_experiment(scale).expect("ext_reclamation");
    eprintln!("running recovery (degraded mount + torture)...");
    let rec = recovery::run(scale).expect("recovery");
    let tc = table_cpu::from_fig6(&f6);
    println!("# Reproduction report ({:?} scale)\n", scale);
    println!("{}\n", f6.to_markdown());
    println!("{}\n", tc.to_markdown());
    println!("{}\n", f7.to_markdown());
    println!("{}\n", f8.to_markdown());
    println!("{}\n", f9.to_markdown());
    println!("{}\n", f10.to_markdown());
    println!("{}\n", ext.to_markdown());
    println!("{}\n", rec.to_markdown());
}
