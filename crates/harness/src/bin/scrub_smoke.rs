//! Online-scrub smoke gate: runs a small cache-guided aggregate through
//! client traffic with the CP-budgeted scrubber enabled, lands two
//! in-memory counter scribbles mid-run, and asserts the full
//! detect → quarantine → repair → release → Healthy cycle completes.
//!
//! Invariants checked (the CI scrub-smoke contract):
//!
//! - both injected faults are detected within one full scrub cycle;
//! - detection quarantines at least one AA and degrades health;
//! - repairs land, quarantines release, and hysteresis returns the
//!   aggregate to Healthy with zero summary divergences;
//! - the health/scrub gauge families are exported with settled values.
//!
//! Usage: `cargo run --release -p wafl-harness --bin scrub_smoke`.
//! (Release matters: a debug build's bitmap summary assertion fires on
//! the first non-empty CP after a scribble, before the scrubber can
//! repair it — exactly the window this gate exists to exercise.)
//! Prints the JSON snapshot on success; panics (nonzero exit) on any
//! violated invariant.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_faults::{FaultPlan, FaultSession, RuntimeScribbleFault, RuntimeTarget};
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, HealthState, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, BITS_PER_BITMAP_BLOCK};

fn smoke_aggregate() -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            raid_aware_cache: true,
            scrub_pages_per_cp: 8,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 4 * BITS_PER_BITMAP_BLOCK,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        1,
    )
    .expect("smoke aggregate")
}

fn main() {
    let mut agg = smoke_aggregate();
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8_192).expect("fill");
    assert_eq!(agg.health(), HealthState::Healthy);

    // Two mid-run scribbles: one aggregate bitmap-page counter, one
    // volume bitmap-page counter. Both are pure in-memory corruption —
    // the raw bits stay true, so popcount repair must fully recover.
    let at_cp = agg.cp_count() + 1;
    let plan = FaultPlan {
        runtime_scribbles: vec![
            RuntimeScribbleFault {
                target: RuntimeTarget::AggSummaryPage { page: 1 },
                at_cp,
                value_seed: 0xDEAD_BEEF_0001,
            },
            RuntimeScribbleFault {
                target: RuntimeTarget::VolSummaryPage { vol: 0, page: 2 },
                at_cp: at_cp + 1,
                value_seed: 0xDEAD_BEEF_0002,
            },
        ],
        ..FaultPlan::none()
    };
    let mut session = FaultSession::new(&plan);

    // 14 verification units at 8/CP: a full scrub cycle is 2 CPs, so
    // both faults must be detected within 4 traffic CPs of landing.
    let mut rng = StdRng::seed_from_u64(7);
    let mut saw_quarantine = false;
    let mut saw_degraded = false;
    for _ in 0..8 {
        for _ in 0..2_000 {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..60_000))
                .expect("overwrite");
        }
        agg.run_cp_with_session(None, Some(&mut session))
            .expect("cp");
        let status = agg.scrub_status();
        saw_quarantine |= status.quarantined_aas > 0;
        saw_degraded |= matches!(status.health, HealthState::Degraded(_));
    }

    let obs = agg.obs();
    let detected = obs.counter_value("scrub.faults_detected").unwrap_or(0);
    assert!(
        detected >= 2,
        "expected both scribbles detected, saw {detected}"
    );
    assert!(saw_quarantine, "detection never quarantined an AA");
    assert!(saw_degraded, "health never left Healthy under faults");

    // Drain with empty CPs until repairs land and hysteresis closes.
    let mut drained = 0;
    while agg.health() != HealthState::Healthy {
        assert!(drained < 20, "health wedged: {:?}", agg.scrub_status());
        agg.run_cp_with_session(None, Some(&mut session))
            .expect("drain cp");
        drained += 1;
    }

    let status = agg.scrub_status();
    assert_eq!(
        status.quarantined_aas, 0,
        "release left quarantine: {status:?}"
    );
    assert_eq!(status.pending_repairs, 0, "tickets left over: {status:?}");
    assert_eq!(
        agg.bitmap().summary_divergences(),
        0,
        "aggregate summaries still diverge after repair"
    );
    for vol in agg.volumes() {
        assert_eq!(
            vol.bitmap().summary_divergences(),
            0,
            "volume summaries still diverge after repair"
        );
    }

    let obs = agg.obs();
    let repaired = obs.counter_value("scrub.repairs_succeeded").unwrap_or(0);
    assert!(repaired >= 2, "expected both repairs, saw {repaired}");

    // Gauge families must be exported with settled values.
    assert_eq!(obs.gauge_value("health.state"), Some(0.0));
    assert_eq!(obs.gauge_value("health.quarantined_aas"), Some(0.0));
    assert_eq!(obs.gauge_value("health.pending_repairs"), Some(0.0));
    let free = obs.gauge_value("space.free_fraction").unwrap_or(-1.0);
    assert!((0.0..=1.0).contains(&free), "free fraction gauge: {free}");
    assert!(
        obs.gauge_value("group.0.free_fraction").is_some(),
        "per-group free-fraction gauge missing"
    );
    assert!(
        obs.gauge_value("group.0.active_aa_score").is_some(),
        "per-group active-AA score gauge missing"
    );

    println!("{}", obs.snapshot_json());
    eprintln!(
        "scrub smoke passed: {detected} faults detected, {repaired} repaired, \
         healthy after {drained} drain CPs."
    );
}
