//! Regenerates Figure 8 (§4.3): HDD-sized vs erase-block-multiple AAs on
//! an aged all-SSD system, including the write-amplification comparison.
//!
//! Usage: `cargo run --release -p wafl-harness --bin fig8_ssd_aa_sizing
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::fig8::run(scale).expect("fig8 failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
