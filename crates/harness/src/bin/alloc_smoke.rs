//! Allocation-throughput smoke gate: the cache-guided hot path must not
//! be slower than the cache-less sweep.
//!
//! The paper's thesis is that cached AA scores make free-block search
//! cheap; a regression that drags per-pick scans or per-bit bookkeeping
//! back onto the hot path shows up here as cache_on/cache_off < 1.0 and
//! fails CI (`scripts/ci.sh --alloc-smoke`).
//!
//! Each arm runs the same overwrite+CP workload as `bench_baseline`'s CP
//! series, shortened; both arms are measured `TRIALS` times interleaved
//! and the best (minimum) wall time per arm is kept, damping scheduler
//! noise on shared runners.
//!
//! Usage: `cargo run --release -p wafl-harness --bin alloc_smoke`.
//! Exits nonzero if cache-guided throughput falls below 1.0x the sweep.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, BITS_PER_BITMAP_BLOCK};

const ROUNDS: u64 = 10;
const OPS: u64 = 8192;
const TRIALS: u32 = 3;
const LOGICAL: u64 = 200_000;

/// Best-of-`TRIALS` wall time for the overwrite+CP workload, seconds.
fn best_time(caches: bool) -> f64 {
    let mut best = f64::INFINITY;
    for trial in 0..TRIALS {
        let mut agg = Aggregate::new(
            AggregateConfig {
                raid_aware_cache: caches,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 64 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 16 * BITS_PER_BITMAP_BLOCK,
                    aa_cache: caches,
                    aa_blocks: None,
                },
                LOGICAL,
            )],
            1,
        )
        .expect("smoke aggregate");
        wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8192).expect("fill");
        let mut rng = StdRng::seed_from_u64(2 + trial as u64);
        let mut round = || {
            for _ in 0..OPS {
                agg.client_overwrite(VolumeId(0), rng.random_range(0..LOGICAL))
                    .expect("overwrite");
            }
            agg.run_cp().expect("cp");
        };
        // Warm up (primes caches and the page cache), then time.
        for _ in 0..2 {
            round();
        }
        let start = Instant::now();
        for _ in 0..ROUNDS {
            round();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Interleaving at the trial level would share thermal state more
    // evenly, but best-of-N already discards the slow outliers.
    let on = best_time(true);
    let off = best_time(false);
    let ratio = off / on; // >1.0 means cache-guided is faster
    let ops = (ROUNDS * OPS) as f64;
    eprintln!(
        "alloc smoke: cache-guided {:.0} ops/s, sweep {:.0} ops/s, ratio {ratio:.3}",
        ops / on,
        ops / off
    );
    if ratio < 1.0 {
        eprintln!(
            "FAIL: cache-guided throughput is below 1.0x the sweep \
             (the cache pipeline costs more than it saves)"
        );
        std::process::exit(1);
    }
    eprintln!("alloc smoke passed: cache-guided allocation beats the sweep.");
}
