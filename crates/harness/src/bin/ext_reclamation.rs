//! Extension experiments: delayed-free batching (the §3.3.2 second HBPS
//! use case) and snapshot-deletion free-space nonuniformity (§4.1.1).
//!
//! Usage: `cargo run --release -p wafl-harness --bin ext_reclamation
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::ext_reclamation::run_experiment(scale)
        .expect("ext_reclamation failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
