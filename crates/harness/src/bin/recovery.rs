//! Degraded-mount cost ladder and seeded torture-recovery summary.
//!
//! Usage: `cargo run --release -p wafl-harness --bin recovery
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::recovery::run(scale).expect("recovery failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
