//! Regenerates Figure 6 (§4.1): latency vs throughput with the AA caches
//! enabled per space, plus the in-text pick-quality and WA numbers.
//!
//! Usage: `cargo run --release -p wafl-harness --bin fig6_aa_cache
//!         [--scale small|paper] [--json out.json]`

fn main() {
    let (scale, json) = wafl_harness::cli_scale();
    let result = wafl_harness::experiments::fig6::run(scale).expect("fig6 failed");
    println!("{}", result.to_markdown());
    wafl_harness::maybe_write_json(&json, &result);
}
