//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4) against the simulated WAFL stack.
//!
//! Each experiment lives in [`experiments`] as a pure function from a
//! [`Scale`] to a serializable result, with a markdown renderer; thin
//! binaries (`fig6_aa_cache`, `fig7_imbalanced_aging`, `fig8_ssd_aa_sizing`,
//! `fig9_smr_aa_sizing`, `fig10_topaa_mount`, `table_cpu_overhead`,
//! `run_all`) print the same rows/series the paper reports.
//!
//! Latency-versus-throughput curves come from [`latency`]: a measurement
//! window on the aged file system yields per-op CPU and media costs, and a
//! closed-loop queueing model sweeps offered load over them — reproducing
//! the hockey-stick shape of Figures 6, 8 and 9 (DESIGN.md §4 documents
//! this substitution for the paper's Fibre Channel clients).

#![warn(missing_docs)]

pub mod experiments;
pub mod latency;
pub mod report;

/// Experiment scale: `Small` finishes in seconds (tests/CI); `Paper` uses
/// larger spaces and op counts for the recorded EXPERIMENTS.md numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs for tests.
    Small,
    /// The scale used to generate EXPERIMENTS.md.
    Paper,
}

impl Scale {
    /// Parse from a CLI argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Multiply a base count by the scale factor.
    pub fn ops(self, small: u64, paper: u64) -> u64 {
        match self {
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// Parse `--scale <small|paper>` and `--json <path>` from `std::env::args`,
/// defaulting to `Paper` (binaries are for the record; tests call the
/// experiment functions with `Scale::Small` directly).
pub fn cli_scale() -> (Scale, Option<String>) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Paper;
    let mut json = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = Scale::parse(&args[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown scale '{}', using paper", args[i + 1]);
                    Scale::Paper
                });
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    (scale, json)
}

/// Write a result as pretty JSON if a path was given.
pub fn maybe_write_json<T: serde::Serialize>(path: &Option<String>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s) {
                    eprintln!("failed to write {path}: {e}");
                }
            }
            Err(e) => eprintln!("failed to serialize result: {e}"),
        }
    }
}
