//! Table and series rendering shared by the experiment binaries.

use crate::latency::LoadPoint;
use std::fmt::Write as _;

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Render one latency-vs-throughput series (per-client units, matching the
/// paper's figures).
pub fn curve_rows(label: &str, points: &[LoadPoint], clients: f64) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                label.to_string(),
                format!("{:.0}", p.offered_ops_s / clients),
                format!("{:.0}", p.achieved_ops_s / clients),
                format!("{:.3}", p.latency_ms),
            ]
        })
        .collect()
}

/// Render an observability snapshot (the JSON from
/// `wafl_obs::Registry::snapshot_json`) as a fenced markdown block, for
/// embedding in experiment reports.
pub fn metrics_block(snapshot_json: &str) -> String {
    format!("### Metrics\n\n```json\n{snapshot_json}\n```\n")
}

/// Render a flight-recorder per-CP time series (the CSV from
/// `wafl_obs::trace::PerCpSeries::to_csv`) as a fenced markdown block,
/// for embedding in experiment reports next to [`metrics_block`].
pub fn per_cp_series_block(series_csv: &str) -> String {
    format!(
        "### Per-CP series\n\n```csv\n{}\n```\n",
        series_csv.trim_end()
    )
}

/// Format a ratio as a signed percentage, e.g. `+24.0 %`.
pub fn pct(x: f64) -> String {
    format!("{:+.1} %", x * 100.0)
}

/// Format a fraction as a percentage, e.g. `61.2 %`.
pub fn frac(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn formats() {
        assert_eq!(pct(0.24), "+24.0 %");
        assert_eq!(pct(-0.186), "-18.6 %");
        assert_eq!(frac(0.615), "61.5 %");
    }

    #[test]
    fn fenced_blocks() {
        let m = metrics_block("{\"counters\": {}}");
        assert!(m.starts_with("### Metrics\n\n```json\n"));
        let s = per_cp_series_block("cp,cp.wall.total_us\n0,12.5\n");
        assert!(s.starts_with("### Per-CP series\n\n```csv\ncp,"));
        assert!(s.ends_with("0,12.5\n```\n"));
    }

    #[test]
    fn curve_rows_per_client() {
        let pts = [LoadPoint {
            offered_ops_s: 24_000.0,
            achieved_ops_s: 20_000.0,
            latency_ms: 1.5,
        }];
        let rows = curve_rows("x", &pts, 2.0);
        assert_eq!(rows[0], vec!["x", "12000", "10000", "1.500"]);
    }
}
