//! The §4.1.2 in-text measurements: per-operation CPU overhead with and
//! without the FlexVol (HBPS) AA cache, and the CPU share of AA-cache
//! maintenance.
//!
//! Paper: 309 µs/op without the FlexVol cache vs 293 µs/op with it
//! (−5.7 %), and "only about 0.002 % of the total CPU cycles was spent
//! maintaining each of the RAID-aware and RAID-agnostic AA caches".

use crate::experiments::fig6::{self, Fig6Result};
use crate::report::{markdown_table, pct};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_types::WaflResult;

/// The CPU-overhead table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableCpuResult {
    /// µs of WAFL code path per op with both caches.
    pub us_per_op_with_cache: f64,
    /// µs per op with the FlexVol cache disabled (aggregate cache still
    /// on — the §4.1.2 comparison).
    pub us_per_op_without_vol_cache: f64,
    /// Relative CPU reduction from the FlexVol cache.
    pub cpu_reduction: f64,
    /// Fraction of CPU spent on AA-cache maintenance.
    pub cache_cpu_fraction: f64,
    /// Metafile pages dirtied per op, with cache.
    pub pages_per_op_with: f64,
    /// Metafile pages dirtied per op, without.
    pub pages_per_op_without: f64,
}

/// Derive the table from a Figure 6 run (same experiment, different
/// report).
pub fn from_fig6(r: &Fig6Result) -> TableCpuResult {
    let both = &r.arms[0];
    let agg_only = &r.arms[2];
    TableCpuResult {
        us_per_op_with_cache: both.us_per_op,
        us_per_op_without_vol_cache: agg_only.us_per_op,
        cpu_reduction: 1.0 - both.us_per_op / agg_only.us_per_op,
        cache_cpu_fraction: both.cache_cpu_fraction,
        pages_per_op_with: 0.0,
        pages_per_op_without: 0.0,
    }
}

/// Run the experiment (a Figure 6 run reported as the CPU table).
pub fn run(scale: Scale) -> WaflResult<TableCpuResult> {
    Ok(from_fig6(&fig6::run(scale)?))
}

impl TableCpuResult {
    /// Render the table against the paper's numbers.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## §4.1.2 — per-op CPU overhead\n\n");
        out += &markdown_table(
            &["metric", "measured", "paper"],
            &[
                vec![
                    "µs/op, FlexVol cache on".into(),
                    format!("{:.0}", self.us_per_op_with_cache),
                    "293 µs".into(),
                ],
                vec![
                    "µs/op, FlexVol cache off".into(),
                    format!("{:.0}", self.us_per_op_without_vol_cache),
                    "309 µs".into(),
                ],
                vec![
                    "CPU reduction".into(),
                    pct(self.cpu_reduction),
                    "5.7 %".into(),
                ],
                vec![
                    "AA-cache maintenance CPU".into(),
                    format!("{:.4} %", self.cache_cpu_fraction * 100.0),
                    "~0.002 %".into(),
                ],
            ],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_table_shape_holds() {
        let r = run(Scale::Small).unwrap();
        // The FlexVol cache reduces per-op CPU (fewer metafile pages).
        assert!(
            r.cpu_reduction > 0.0,
            "with {} vs without {}",
            r.us_per_op_with_cache,
            r.us_per_op_without_vol_cache
        );
        // Base per-op cost lands in the paper's few-hundred-µs regime.
        assert!(
            (150.0..600.0).contains(&r.us_per_op_with_cache),
            "us/op {}",
            r.us_per_op_with_cache
        );
        // Maintenance cost is a rounding error.
        assert!(r.cache_cpu_fraction < 0.01);
        assert!(r.to_markdown().contains("293"));
    }
}
