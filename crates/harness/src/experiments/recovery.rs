//! Degraded-mount cost and torture-recovery summary (the §3.4 damage
//! story made measurable).
//!
//! Two parts:
//!
//! 1. **Mount-cost ladder** — the same aged aggregate mounted fast
//!    (intact TopAA), degraded (one group's TopAA block scribbled), and
//!    cold (no image). Degraded must land strictly between the other
//!    two: that is the whole point of per-structure fallback.
//! 2. **Torture summary** — [`wafl_workloads::torture::torture_round`]
//!    over a seed range, counting crash sites, degradations, and repair
//!    outcomes. Every round must end audited-clean.

use crate::report::{markdown_table, metrics_block, per_cp_series_block};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_faults::{FaultPlan, PageSel, StructureId};
use wafl_fs::{aging, iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, WaflResult};
use wafl_workloads::torture::torture_round;
use wafl_workloads::OltpMix;

/// One rung of the mount-cost ladder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MountCost {
    /// Mount flavor ("fast", "degraded", "cold").
    pub path: String,
    /// Metafile blocks (TopAA blocks + scanned bitmap pages) read.
    pub blocks_read: u64,
    /// Modelled time until the first CP can start, µs.
    pub first_cp_ready_us: f64,
    /// Structures that fell back to a cold scan.
    pub degraded_structures: usize,
}

/// Full recovery-experiment result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryResult {
    /// Fast / degraded / cold mount costs on the same aged aggregate.
    pub ladder: Vec<MountCost>,
    /// Torture rounds executed.
    pub rounds: u64,
    /// Rounds whose CP was cut by a crash site.
    pub rounds_crashed: u64,
    /// Rounds where at least one structure degraded at remount.
    pub rounds_degraded: u64,
    /// Rounds that needed `iron::repair` to come back clean.
    pub rounds_repaired: u64,
    /// Transient read failures absorbed by retries across all rounds.
    pub transient_retries: u64,
    /// Observability snapshot of the torture aggregate after the last
    /// round (`wafl_obs::Registry::snapshot_json`).
    pub metrics_json: String,
    /// Per-CP time series of the torture aggregate
    /// (`wafl_obs::trace::PerCpSeries::to_csv`).
    pub series_csv: String,
}

fn aged(groups: usize, vols: usize, scale: Scale) -> WaflResult<Aggregate> {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: scale.ops(16 * 4096, 64 * 4096),
        profile: MediaProfile::hdd(),
    };
    let mut cfg = AggregateConfig::single_group(spec.clone());
    for _ in 1..groups {
        cfg.raid_groups.push(spec.clone());
    }
    // Flight recorder on: the torture aggregate's per-CP series rides
    // along in the report next to the metrics snapshot.
    cfg.trace_events = 4096;
    let written = scale.ops(4096, 16384);
    let vol_cfgs: Vec<(FlexVolConfig, u64)> = (0..vols)
        .map(|_| {
            (
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                written * 4,
            )
        })
        .collect();
    let mut agg = Aggregate::new(cfg, &vol_cfgs, 3)?;
    for v in 0..vols {
        aging::fill_volume(&mut agg, VolumeId(v as u32), written as usize)?;
        aging::random_overwrite_churn(
            &mut agg,
            VolumeId(v as u32),
            scale.ops(5_000, 40_000),
            written as usize,
            v as u64,
        )?;
    }
    Ok(agg)
}

/// Run the recovery experiment.
pub fn run(scale: Scale) -> WaflResult<RecoveryResult> {
    // Part 1: the mount-cost ladder.
    let mut agg = aged(2, 2, scale)?;
    let image = mount::save_topaa(&agg);

    mount::crash(&mut agg);
    let fast = mount::mount_auto(&mut agg, &image);

    mount::crash(&mut agg);
    let mut damaged = image.clone();
    let plan = FaultPlan::scribble(StructureId::Group(0), PageSel::First, 1);
    mount::apply_scribbles(&mut damaged, &plan);
    let degraded = mount::mount_auto(&mut agg, &damaged);

    mount::crash(&mut agg);
    let cold = mount::mount_cold(&mut agg)?;

    let rung = |path: &str, s: &mount::MountStats| MountCost {
        path: path.to_string(),
        blocks_read: s.metafile_blocks_read,
        first_cp_ready_us: s.first_cp_ready_us,
        degraded_structures: s.degraded.len(),
    };
    let ladder = vec![
        rung("fast", &fast),
        rung("degraded", &degraded),
        rung("cold", &cold),
    ];

    // Part 2: torture rounds on a fresh aggregate, one OLTP stream.
    let mut agg = aged(2, 2, scale)?;
    let mut workload = OltpMix::new(
        (0..2)
            .map(|v| (VolumeId(v), scale.ops(4096, 16384)))
            .collect(),
        0.2,
        11,
    );
    let rounds = scale.ops(20, 100);
    let ops_per_round = scale.ops(400, 2_000);
    let mut result = RecoveryResult {
        ladder,
        rounds,
        rounds_crashed: 0,
        rounds_degraded: 0,
        rounds_repaired: 0,
        transient_retries: 0,
        metrics_json: String::new(),
        series_csv: String::new(),
    };
    for seed in 0..rounds {
        let round = torture_round(&mut agg, &mut workload, ops_per_round, seed)?;
        result.rounds_crashed += round.crashed.is_some() as u64;
        result.rounds_degraded += (round.degraded_structures > 0) as u64;
        result.rounds_repaired += (!round.clean_on_arrival) as u64;
        result.transient_retries += round.transient_retries;
        let audit = iron::check(&agg)?;
        if !audit.is_clean() {
            return Err(wafl_types::WaflError::CorruptMetafile {
                reason: format!("torture round {seed} left a dirty aggregate: {audit:?}"),
            });
        }
    }
    result.metrics_json = agg.obs().snapshot_json();
    result.series_csv = agg
        .cp_series()
        .map(|s| s.to_csv())
        .expect("aged() aggregates run with the flight recorder on");
    Ok(result)
}

impl RecoveryResult {
    /// Render both parts as markdown.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .ladder
            .iter()
            .map(|r| {
                vec![
                    r.path.clone(),
                    r.blocks_read.to_string(),
                    format!("{:.0}", r.first_cp_ready_us),
                    r.degraded_structures.to_string(),
                ]
            })
            .collect();
        format!(
            "## Recovery — degraded-mount cost and torture summary\n\n{}\n\
             Torture: {} rounds, {} crashed, {} degraded, {} repaired, \
             {} transient retries absorbed; all rounds audited clean.\n\n{}\n{}",
            markdown_table(
                &["mount path", "blocks read", "first-CP µs", "degraded"],
                &rows
            ),
            self.rounds,
            self.rounds_crashed,
            self.rounds_degraded,
            self.rounds_repaired,
            self.transient_retries,
            metrics_block(&self.metrics_json),
            per_cp_series_block(&self.series_csv),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_shapes_hold() {
        let r = run(Scale::Small).unwrap();
        let (fast, degraded, cold) = (&r.ladder[0], &r.ladder[1], &r.ladder[2]);
        assert_eq!(fast.degraded_structures, 0);
        assert_eq!(degraded.degraded_structures, 1);
        assert!(
            fast.blocks_read < degraded.blocks_read && degraded.blocks_read < cold.blocks_read,
            "ladder out of order: {:?}",
            r.ladder
        );
        assert!(fast.first_cp_ready_us < degraded.first_cp_ready_us);
        assert!(degraded.first_cp_ready_us < cold.first_cp_ready_us);
        assert_eq!(r.rounds, 20);
        assert!(r.rounds_crashed > 0, "random plans should crash some CPs");
        assert!(r.to_markdown().contains("audited clean"));
        // The torture aggregate's metrics ride along in the report.
        assert!(r.metrics_json.contains("mount.topaa_seed_hits"));
        assert!(r.metrics_json.contains("iron.audits_run"));
        assert!(r.to_markdown().contains("### Metrics"));
        // ... and so does the flight recorder's per-CP series.
        assert!(r.series_csv.starts_with("cp,"));
        assert!(r.series_csv.lines().count() > 1, "series must have rows");
        assert!(r.to_markdown().contains("### Per-CP series"));
    }
}
