//! One module per table/figure of the paper's §4 evaluation.
//!
//! Every experiment is `run(scale) -> Result` (serializable, renderable as
//! markdown) so tests can assert the paper's *shape* claims at
//! `Scale::Small` and the binaries can record `Scale::Paper` numbers.

pub mod ext_reclamation;
pub mod fig10;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod recovery;
pub mod table_cpu;

use crate::latency::WindowCost;
use wafl_fs::{Aggregate, CpStats};
use wafl_types::WaflResult;
use wafl_workloads::Workload;

/// Run a measurement window and convert the accumulated costs into the
/// queueing model's inputs. `read_parallelism` is the number of devices
/// concurrently serving random reads.
pub(crate) fn measure_window(
    agg: &mut Aggregate,
    workload: &mut dyn Workload,
    ops: u64,
    ops_per_cp: usize,
    read_parallelism: f64,
) -> WaflResult<(WindowCost, CpStats)> {
    let stats = wafl_workloads::run(agg, workload, ops, ops_per_cp)?;
    let cost = WindowCost {
        ops,
        cpu_us: stats.cp.cpu_us,
        media_us: stats.cp.media_us,
        read_us: stats.read_us,
        read_parallelism,
    };
    Ok((cost, stats.cp))
}

/// Offered-load sweep (total ops/s) reaching past `cap` so curves show
/// their saturation knee.
pub(crate) fn load_sweep(cap: f64, points: usize) -> Vec<f64> {
    (1..=points)
        .map(|i| cap * 1.3 * i as f64 / points as f64)
        .collect()
}
