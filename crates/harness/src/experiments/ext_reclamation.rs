//! Extension experiments beyond the paper's figures:
//!
//! 1. **Delayed-free batching** (§3.3.2's second HBPS use case): frees
//!    applied immediately versus logged and processed fullest-page-first,
//!    measured as metafile pages dirtied per free.
//! 2. **Snapshot-deletion nonuniformity** (§4.1.1's "freeing of blocks
//!    due to other internal activity ... further adds to this
//!    nonuniformity"): chosen-AA quality before and after a bulk
//!    snapshot deletion.

use crate::report::{frac, markdown_table};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, WaflResult};
use wafl_workloads::{run, RandomOverwrite};

/// Results of the reclamation extension experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExtReclamationResult {
    /// Metafile pages dirtied per free, immediate mode.
    pub pages_per_free_immediate: f64,
    /// Metafile pages dirtied per free, batched mode.
    pub pages_per_free_batched: f64,
    /// Chosen physical AA free fraction just before the snapshot delete.
    pub pick_free_before_delete: f64,
    /// Chosen physical AA free fraction just after.
    pub pick_free_after_delete: f64,
    /// Aggregate free fraction after the delete (for reference).
    pub aggregate_free_after: f64,
}

fn agg(batched: bool, scale: Scale) -> WaflResult<Aggregate> {
    Aggregate::new(
        AggregateConfig {
            batched_frees: batched,
            free_pages_per_cp: 2,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: scale.ops(16 * 4096, 64 * 4096),
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: scale.ops(8, 32) * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            scale.ops(60_000, 250_000),
        )],
        44,
    )
}

/// Run both extension measurements.
pub fn run_experiment(scale: Scale) -> WaflResult<ExtReclamationResult> {
    // --- 1. delayed-free batching -----------------------------------
    let ops = scale.ops(40_000, 160_000);
    let mut pages_per_free = [0.0f64; 2];
    for (i, batched) in [(0usize, false), (1usize, true)] {
        let mut a = agg(batched, scale)?;
        let working = a.volumes()[0].logical_blocks();
        aging::fill_volume(&mut a, VolumeId(0), 4096)?;
        a.bitmapless_dirty_reset();
        let mut w = RandomOverwrite::new(VolumeId(0), working, 45);
        let stats = run(&mut a, &mut w, ops, 1024)?;
        // Drain any remaining log so both modes apply every free.
        while a.free_log().pending() > 0 {
            a.run_cp()?;
        }
        pages_per_free[i] = stats.cp.metafile_pages as f64 / ops as f64;
    }

    // --- 2. snapshot-deletion nonuniformity --------------------------
    let mut a = agg(false, scale)?;
    let working = a.volumes()[0].logical_blocks();
    aging::fill_volume(&mut a, VolumeId(0), 4096)?;
    let snap = a.snapshot_create(VolumeId(0))?;
    aging::random_overwrite_churn(&mut a, VolumeId(0), working / 2, 4096, 46)?;
    // Measurement window before the delete.
    let mut w = RandomOverwrite::new(VolumeId(0), working, 47);
    let before = run(&mut a, &mut w, ops / 4, 2048)?;
    a.snapshot_delete(VolumeId(0), snap)?;
    a.run_cp()?;
    let after = run(&mut a, &mut w, ops / 4, 2048)?;
    Ok(ExtReclamationResult {
        pages_per_free_immediate: pages_per_free[0],
        pages_per_free_batched: pages_per_free[1],
        pick_free_before_delete: before.cp.agg_pick_free_mean(),
        pick_free_after_delete: after.cp.agg_pick_free_mean(),
        aggregate_free_after: a.free_fraction(),
    })
}

impl ExtReclamationResult {
    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## Extensions — reclamation machinery\n\n");
        out += &markdown_table(
            &["metric", "measured"],
            &[
                vec![
                    "metafile pages/op, immediate frees".into(),
                    format!("{:.4}", self.pages_per_free_immediate),
                ],
                vec![
                    "metafile pages/op, batched (HBPS-ranked) frees".into(),
                    format!("{:.4}", self.pages_per_free_batched),
                ],
                vec![
                    "picked AA free before snapshot delete".into(),
                    frac(self.pick_free_before_delete),
                ],
                vec![
                    "picked AA free after snapshot delete".into(),
                    frac(self.pick_free_after_delete),
                ],
                vec![
                    "aggregate free after delete".into(),
                    frac(self.aggregate_free_after),
                ],
            ],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_shapes_hold() {
        let r = run_experiment(Scale::Small).unwrap();
        // Batched frees touch fewer metafile pages per op.
        assert!(
            r.pages_per_free_batched < r.pages_per_free_immediate,
            "batched {} vs immediate {}",
            r.pages_per_free_batched,
            r.pages_per_free_immediate
        );
        // The snapshot-deletion burst improves pick quality (§4.1.1's
        // nonuniformity) — or at minimum does not hurt it.
        assert!(
            r.pick_free_after_delete >= r.pick_free_before_delete,
            "before {} after {}",
            r.pick_free_before_delete,
            r.pick_free_after_delete
        );
        assert!(r.to_markdown().contains("snapshot delete"));
    }
}
