//! Figure 10 (§4.4): time for the first CP after boot, with and without
//! TopAA metafiles.
//!
//! (A) sweeps FlexVol size at a fixed volume count; (B) sweeps volume
//! count at a fixed size. With TopAA, the mount path reads a fixed number
//! of metafile blocks (1 per RAID-aware cache + 2 per volume cache), so
//! first-CP time is flat; without it, every bitmap page is walked, so the
//! time grows linearly with capacity.

use crate::report::markdown_table;
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::WaflResult;

/// One sweep point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MountPoint {
    /// Volumes in the aggregate.
    pub volumes: u64,
    /// Size of each volume, blocks.
    pub volume_blocks: u64,
    /// First-CP readiness time with TopAA, µs.
    pub with_topaa_us: f64,
    /// Metafile blocks read with TopAA.
    pub with_topaa_blocks: u64,
    /// First-CP readiness time via the full bitmap walk, µs.
    pub without_topaa_us: f64,
    /// Metafile blocks read without TopAA.
    pub without_topaa_blocks: u64,
}

/// Full Figure 10 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig10Result {
    /// (A): volume-size sweep at fixed count.
    pub size_sweep: Vec<MountPoint>,
    /// (B): volume-count sweep at fixed size.
    pub count_sweep: Vec<MountPoint>,
}

fn measure(volumes: u64, volume_blocks: u64, device_blocks: u64) -> WaflResult<MountPoint> {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks,
        profile: MediaProfile::hdd(),
    };
    let vols: Vec<(FlexVolConfig, u64)> = (0..volumes)
        .map(|_| {
            (
                FlexVolConfig {
                    size_blocks: volume_blocks,
                    aa_cache: true,
                    aa_blocks: None,
                },
                // Logical size is irrelevant to mount cost; keep it tiny.
                1024,
            )
        })
        .collect();
    let mut agg = Aggregate::new(AggregateConfig::single_group(spec), &vols, 1)?;
    let image = mount::save_topaa(&agg);
    mount::crash(&mut agg);
    let fast = mount::mount_with_topaa(&mut agg, &image)?;
    mount::crash(&mut agg);
    let cold = mount::mount_cold(&mut agg)?;
    Ok(MountPoint {
        volumes,
        volume_blocks,
        with_topaa_us: fast.first_cp_ready_us,
        with_topaa_blocks: fast.metafile_blocks_read,
        without_topaa_us: cold.first_cp_ready_us,
        without_topaa_blocks: cold.metafile_blocks_read,
    })
}

/// Run the Figure 10 experiment.
pub fn run(scale: Scale) -> WaflResult<Fig10Result> {
    // Aggregate fixed (the paper's 10 TB, scaled down); the sweeps move
    // the volume dimension.
    let device_blocks = scale.ops(64 * 4096, 256 * 4096);
    let vol_unit = scale.ops(16 * 32768, 64 * 32768); // the "100 GB" unit
    let fixed_count = scale.ops(10, 50);
    let mut size_sweep = Vec::new();
    for mult in [1u64, 2, 4, 8, 16] {
        size_sweep.push(measure(fixed_count, vol_unit * mult, device_blocks)?);
    }
    let mut count_sweep = Vec::new();
    for count in [5u64, 10, 20, 40, 80] {
        count_sweep.push(measure(count, vol_unit, device_blocks)?);
    }
    Ok(Fig10Result {
        size_sweep,
        count_sweep,
    })
}

impl Fig10Result {
    /// Render both panels, times normalized to each panel's smallest
    /// TopAA measurement (the paper plots normalized time).
    pub fn to_markdown(&self) -> String {
        let render = |title: &str, pts: &[MountPoint], x: fn(&MountPoint) -> String| {
            let base = pts
                .first()
                .map(|p| p.with_topaa_us)
                .unwrap_or(1.0)
                .max(1e-9);
            let rows: Vec<Vec<String>> = pts
                .iter()
                .map(|p| {
                    vec![
                        x(p),
                        format!("{:.2}", p.with_topaa_us / base),
                        p.with_topaa_blocks.to_string(),
                        format!("{:.2}", p.without_topaa_us / base),
                        p.without_topaa_blocks.to_string(),
                    ]
                })
                .collect();
            format!(
                "### {title}\n\n{}",
                markdown_table(
                    &[
                        "x",
                        "TopAA time (norm)",
                        "TopAA blocks",
                        "walk time (norm)",
                        "walk blocks"
                    ],
                    &rows,
                )
            )
        };
        let mut out = String::from("## Figure 10 — first CP after boot\n\n");
        out += &render("(A) volume-size sweep", &self.size_sweep, |p| {
            format!("{} blk/vol", p.volume_blocks)
        });
        out += "\n";
        out += &render("(B) volume-count sweep", &self.count_sweep, |p| {
            format!("{} volumes", p.volumes)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shapes_hold() {
        let r = run(Scale::Small).unwrap();

        // (A) TopAA time flat in volume size; walk time grows linearly.
        let first = &r.size_sweep[0];
        let last = r.size_sweep.last().unwrap();
        assert_eq!(first.with_topaa_blocks, last.with_topaa_blocks);
        assert!((first.with_topaa_us - last.with_topaa_us).abs() < 1e-6);
        let size_ratio = last.volume_blocks as f64 / first.volume_blocks as f64;
        let time_ratio = last.without_topaa_us / first.without_topaa_us;
        assert!(
            time_ratio > size_ratio * 0.5,
            "walk time should scale with size: x{time_ratio:.1} for x{size_ratio:.0}"
        );
        // Walk is much slower than TopAA at the largest point.
        assert!(last.without_topaa_us > 10.0 * last.with_topaa_us);

        // (B) TopAA blocks grow as 2 per volume + 1 for the group; walk
        // grows with total volume pages.
        let f = &r.count_sweep[0];
        let l = r.count_sweep.last().unwrap();
        assert_eq!(f.with_topaa_blocks, 1 + 2 * f.volumes);
        assert_eq!(l.with_topaa_blocks, 1 + 2 * l.volumes);
        let count_ratio = l.volumes as f64 / f.volumes as f64;
        let walk_ratio = l.without_topaa_us / f.without_topaa_us;
        assert!(walk_ratio > count_ratio * 0.4);
        // TopAA cost per volume is 2 blocks; the walk's is pages-per-vol.
        assert!(l.without_topaa_us > 5.0 * l.with_topaa_us);
        assert!(r.to_markdown().contains("(B) volume-count sweep"));
    }
}
