//! Figure 9 (§4.3): AA sizing on drive-managed SMR drives with AZCS
//! checksums.
//!
//! Sequential writes to an *unaged* file system. The historical HDD AA
//! sizing is not aligned to AZCS regions (4096 stripes % 63 ≠ 0), so every
//! AA drain ends mid-region and must update that region's checksum block
//! with a separate, backward (behind the zone's write pointer) write — a
//! drive intervention. The media-aware sizing is larger than the shingle
//! zone and AZCS-aligned, so checksum blocks stream in-line. Paper: ~7 %
//! higher drive throughput, ~11 % lower latency.

use crate::experiments::{load_sweep, measure_window};
use crate::latency::{compare_peak, latency_curve, LoadPoint, PeakComparison, WindowCost};
use crate::report::{curve_rows, markdown_table, pct};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{AaSizingPolicy, ChecksumStyle, VolumeId, WaflResult};
use wafl_workloads::SequentialWrite;

/// One AA-sizing arm on SMR.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Arm {
    /// Configuration name.
    pub name: String,
    /// AA height in stripes actually used.
    pub stripes_per_aa: u64,
    /// Whether the AA is AZCS-region aligned.
    pub azcs_aligned: bool,
    /// Latency-vs-throughput series.
    pub curve: Vec<LoadPoint>,
    /// Measured window cost.
    pub cost: WindowCost,
    /// SMR drive interventions during the window.
    pub interventions: u64,
    /// Drive write throughput, blocks/s of media time.
    pub drive_blocks_per_s: f64,
}

/// Full Figure 9 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig9Result {
    /// HDD-sized (misaligned) arm.
    pub small: Arm,
    /// Zone-sized, AZCS-aligned arm.
    pub aligned: Arm,
    /// Peak comparison, aligned over small.
    pub effect: PeakComparison,
    /// Cores in the modelled server (paper: 12).
    pub cores: f64,
    /// Simulated clients.
    pub clients: f64,
}

fn run_arm(scale: Scale, name: &str, policy: AaSizingPolicy) -> WaflResult<Arm> {
    let zone_blocks = 4096u64;
    let device_blocks = scale.ops(zone_blocks * 16, zone_blocks * 64);
    let ops_per_cp = scale.ops(2048, 8192) as usize;
    let profile = MediaProfile {
        zone_blocks,
        ..MediaProfile::smr()
    };
    let spec = RaidGroupSpec {
        data_devices: 3,
        parity_devices: 1,
        device_blocks,
        profile,
    };
    let agg_blocks = spec.data_blocks();
    let cfg = AggregateConfig {
        aa_policy_override: Some(policy),
        checksum: ChecksumStyle::Azcs,
        ..AggregateConfig::single_group(spec)
    };
    // Unaged: fresh file system, sequential writes.
    let working_set = (agg_blocks as f64 * 0.7) as u64;
    let mut agg = Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: agg_blocks.div_ceil(32768) * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            working_set,
        )],
        7,
    )?;
    let stripes_per_aa = agg.groups()[0].stripes_per_aa;
    let mut w = SequentialWrite::new(VolumeId(0), working_set);
    let ops = working_set; // one sequential pass
    let (cost, _cp) = measure_window(&mut agg, &mut w, ops, ops_per_cp, 3.0)?;
    let interventions = agg.groups()[0].smr_interventions();
    Ok(Arm {
        name: name.into(),
        stripes_per_aa,
        azcs_aligned: policy.azcs_aligned(),
        curve: Vec::new(),
        cost,
        interventions,
        drive_blocks_per_s: if cost.media_us > 0.0 {
            ops as f64 / (cost.media_us / 1e6)
        } else {
            0.0
        },
    })
}

/// Run the Figure 9 experiment.
pub fn run(scale: Scale) -> WaflResult<Fig9Result> {
    let cores = 12.0;
    let clients = 3.0;
    let zone_blocks = 4096u64;
    // Historical sizing: smaller than a shingle zone and NOT a multiple of
    // 63 data blocks, so AA boundaries fall mid-AZCS-region.
    let mut small = run_arm(
        scale,
        "HDD-sized AA (misaligned)",
        AaSizingPolicy::Stripes { stripes: 1024 },
    )?;
    // Media-aware sizing: several zones, AZCS-aligned (Figure 4 (C)).
    let mut aligned = run_arm(
        scale,
        "Zone-sized AA (AZCS-aligned)",
        AaSizingPolicy::DeviceUnitsAzcsAligned {
            unit_blocks: zone_blocks,
            units: 2,
        },
    )?;
    let cap = small
        .cost
        .capacity_ops_s(cores)
        .max(aligned.cost.capacity_ops_s(cores));
    let loads = load_sweep(cap, 12);
    small.curve = latency_curve(&small.cost, cores, &loads);
    aligned.curve = latency_curve(&aligned.cost, cores, &loads);
    let effect = compare_peak(&aligned.cost, &small.cost, cores);
    Ok(Fig9Result {
        small,
        aligned,
        effect,
        cores,
        clients,
    })
}

impl Fig9Result {
    /// Render the figure's series and summary.
    pub fn to_markdown(&self) -> String {
        let mut rows = Vec::new();
        rows.extend(curve_rows(
            &self.small.name,
            &self.small.curve,
            self.clients,
        ));
        rows.extend(curve_rows(
            &self.aligned.name,
            &self.aligned.curve,
            self.clients,
        ));
        let mut out = String::from("## Figure 9 — AA sizing on SMR with AZCS\n\n");
        out += &markdown_table(
            &[
                "configuration",
                "offered ops/s/client",
                "achieved ops/s/client",
                "latency ms",
            ],
            &rows,
        );
        out += "\n";
        out += &markdown_table(
            &["metric", "measured", "paper"],
            &[
                vec![
                    "drive throughput gain".into(),
                    pct(self.effect.throughput_gain),
                    "+7 %".into(),
                ],
                vec![
                    "latency reduction".into(),
                    pct(self.effect.latency_reduction),
                    "11 %".into(),
                ],
                vec![
                    "interventions (misaligned)".into(),
                    self.small.interventions.to_string(),
                    "random checksum-block writes".into(),
                ],
                vec![
                    "interventions (aligned)".into(),
                    self.aligned.interventions.to_string(),
                    "~0".into(),
                ],
            ],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shapes_hold() {
        let r = run(Scale::Small).unwrap();
        assert!(!r.small.azcs_aligned);
        assert!(r.aligned.azcs_aligned);
        assert_eq!(r.aligned.stripes_per_aa % 63, 0);
        // Misaligned AAs trigger far more drive interventions. (The
        // aligned arm keeps a small residue: AA columns are AZCS-aligned
        // but zone boundaries still fall mid-AA occasionally — the §3.2.3
        // "reduce the frequency of drive intervention", not eliminate.)
        assert!(
            r.small.interventions > 3 * (r.aligned.interventions + 1),
            "interventions small {} vs aligned {}",
            r.small.interventions,
            r.aligned.interventions
        );
        // The aligned configuration wins on throughput and latency.
        assert!(r.effect.throughput_gain > 0.0, "{:?}", r.effect);
        assert!(r.effect.latency_reduction > 0.0);
        assert!(r.aligned.drive_blocks_per_s > r.small.drive_blocks_per_s);
        assert!(r.to_markdown().contains("Figure 9"));
    }
}
