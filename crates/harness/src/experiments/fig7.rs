//! Figure 7 (§4.2): disk usage across differently aged RAID groups under
//! an OLTP workload.
//!
//! Four all-HDD RAID groups; RG0 and RG1 aged to a random 50 % occupancy,
//! RG2 and RG3 fresh. The paper's two claims:
//! 1. blocks are evenly distributed across disks with the same
//!    fragmentation level;
//! 2. more blocks go to the newer, emptier groups — while the aged groups
//!    see a marginally *higher* tetris rate (their tetrises carry fewer
//!    blocks each).

use crate::experiments::measure_window;
use crate::report::markdown_table;
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, WaflResult};
use wafl_workloads::OltpMix;

/// Per-RAID-group series of Figure 7.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RgUsage {
    /// Group index.
    pub rg: usize,
    /// Whether the group was aged before measurement.
    pub aged: bool,
    /// Blocks written per second to each disk of the group.
    pub disk_blocks_per_s: Vec<f64>,
    /// Tetrises written per second to the group.
    pub tetrises_per_s: f64,
    /// Blocks per tetris (lower on fragmented groups).
    pub blocks_per_tetris: f64,
}

/// Full Figure 7 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Result {
    /// One entry per RAID group.
    pub groups: Vec<RgUsage>,
    /// Client load the rates are normalized to, ops/s (paper: 68 k).
    pub load_ops_s: f64,
    /// Operations measured.
    pub ops: u64,
}

/// Run the Figure 7 experiment. `backoff` enables the §3.3.1 fragmented-
/// group back-off threshold (the DESIGN.md ablation); the paper's run
/// keeps writing to all groups, i.e. `backoff = false`.
pub fn run_with_backoff(scale: Scale, backoff: bool) -> WaflResult<Fig7Result> {
    let device_blocks = scale.ops(16 * 4096, 64 * 4096);
    let ops = scale.ops(60_000, 400_000);
    let ops_per_cp = scale.ops(2048, 8192) as usize;
    let spec = |_| RaidGroupSpec {
        data_devices: 3,
        parity_devices: 1,
        device_blocks,
        profile: MediaProfile::hdd(),
    };
    let cfg = AggregateConfig {
        raid_groups: (0..4).map(spec).collect(),
        rg_backoff_threshold: if backoff { 0.10 } else { 0.0 },
        ..AggregateConfig::single_group(spec(0))
    };
    let agg_blocks = cfg.total_data_blocks();
    let working_set = agg_blocks / 8; // live data fits easily
    let mut agg = Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: agg_blocks.div_ceil(32768) * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            working_set,
        )],
        5,
    )?;
    // Age RG0 and RG1 to 50 % random occupancy (paper's setup).
    aging::seed_rg_random_occupancy(&mut agg, 0, 0.5, 101)?;
    aging::seed_rg_random_occupancy(&mut agg, 1, 0.5, 102)?;
    // Prime the volume's working set so the OLTP updates are overwrites.
    aging::fill_volume(&mut agg, VolumeId(0), ops_per_cp)?;
    agg.reset_media_stats();

    // The paper's OLTP benchmark: predominantly random reads and updates.
    let mut w = OltpMix::new(vec![(VolumeId(0), working_set)], 0.5, 31);
    let (_cost, cp) = measure_window(&mut agg, &mut w, ops, ops_per_cp, 12.0)?;

    // Normalize to the paper's 68 k ops/s cumulative client load.
    let load_ops_s = 68_000.0;
    let window_s = ops as f64 / load_ops_s;
    let groups = cp
        .per_rg
        .iter()
        .enumerate()
        .map(|(i, rg)| RgUsage {
            rg: i,
            aged: i < 2,
            disk_blocks_per_s: rg
                .per_device_blocks
                .iter()
                .map(|&b| b as f64 / window_s)
                .collect(),
            tetrises_per_s: rg.tetrises as f64 / window_s,
            blocks_per_tetris: if rg.tetrises == 0 {
                0.0
            } else {
                rg.blocks as f64 / rg.tetrises as f64
            },
        })
        .collect();
    Ok(Fig7Result {
        groups,
        load_ops_s,
        ops,
    })
}

/// Run with the paper's configuration (no back-off).
pub fn run(scale: Scale) -> WaflResult<Fig7Result> {
    run_with_backoff(scale, false)
}

impl Fig7Result {
    /// Render the per-disk and per-group series.
    pub fn to_markdown(&self) -> String {
        let mut rows = Vec::new();
        for g in &self.groups {
            for (d, &b) in g.disk_blocks_per_s.iter().enumerate() {
                rows.push(vec![
                    format!("RG{}", g.rg),
                    if g.aged { "aged 50 %" } else { "fresh" }.to_string(),
                    format!("disk {d}"),
                    format!("{b:.0}"),
                ]);
            }
        }
        let mut out =
            String::from("## Figure 7 — disk usage across differently aged RAID groups\n\n");
        out += &markdown_table(&["RAID group", "aging", "disk", "blocks/s"], &rows);
        out += "\n";
        let rg_rows: Vec<Vec<String>> = self
            .groups
            .iter()
            .map(|g| {
                vec![
                    format!("RG{}", g.rg),
                    if g.aged { "aged 50 %" } else { "fresh" }.to_string(),
                    format!("{:.1}", g.tetrises_per_s),
                    format!("{:.1}", g.blocks_per_tetris),
                ]
            })
            .collect();
        out += &markdown_table(
            &["RAID group", "aging", "tetrises/s", "blocks/tetris"],
            &rg_rows,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_hold() {
        let r = run(Scale::Small).unwrap();
        assert_eq!(r.groups.len(), 4);
        let blocks = |g: &RgUsage| g.disk_blocks_per_s.iter().sum::<f64>();

        // 1. Evenness within a fragmentation level: disks of one group
        //    within 25 % of each other.
        for g in &r.groups {
            let max = g.disk_blocks_per_s.iter().copied().fold(0.0, f64::max);
            let min = g
                .disk_blocks_per_s
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            assert!(
                min > 0.75 * max,
                "RG{} disks uneven: {:?}",
                g.rg,
                g.disk_blocks_per_s
            );
        }
        // 2. Fresh groups absorb more blocks than aged ones.
        let aged = blocks(&r.groups[0]) + blocks(&r.groups[1]);
        let fresh = blocks(&r.groups[2]) + blocks(&r.groups[3]);
        assert!(
            fresh > 1.2 * aged,
            "fresh {fresh:.0} vs aged {aged:.0} blocks/s"
        );
        // 3. Aged tetrises carry fewer blocks each.
        let bpt_aged = (r.groups[0].blocks_per_tetris + r.groups[1].blocks_per_tetris) / 2.0;
        let bpt_fresh = (r.groups[2].blocks_per_tetris + r.groups[3].blocks_per_tetris) / 2.0;
        assert!(
            bpt_fresh > bpt_aged,
            "blocks/tetris fresh {bpt_fresh:.1} vs aged {bpt_aged:.1}"
        );
        let md = r.to_markdown();
        assert!(md.contains("RG3"));
    }

    #[test]
    fn backoff_ablation_shifts_more_load_to_fresh_groups() {
        let no_backoff = run_with_backoff(Scale::Small, false).unwrap();
        let with_backoff = run_with_backoff(Scale::Small, true).unwrap();
        let aged_share = |r: &Fig7Result| {
            let blocks = |g: &RgUsage| g.disk_blocks_per_s.iter().sum::<f64>();
            let aged = blocks(&r.groups[0]) + blocks(&r.groups[1]);
            let total: f64 = r.groups.iter().map(blocks).sum();
            aged / total
        };
        assert!(aged_share(&with_backoff) <= aged_share(&no_backoff) + 0.02);
    }
}
