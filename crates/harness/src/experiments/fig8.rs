//! Figure 8 (§4.3): AA sizing on SSDs — HDD-sized AAs versus AAs sized to
//! a multiple of the erase block.
//!
//! The paper ages an all-SSD system to 85 % fullness with 4 KiB random
//! reads and writes, then compares a small AA (the historical HDD sizing,
//! smaller than an erase block — Figure 4 (A)) against a large AA spanning
//! several erase blocks (Figure 4 (B)). Claims: ~26 % higher peak
//! throughput, ~21 % lower latency, and write amplification roughly
//! halved.

use crate::experiments::{load_sweep, measure_window};
use crate::latency::{compare_peak, latency_curve, LoadPoint, PeakComparison, WindowCost};
use crate::report::{curve_rows, markdown_table, pct};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{AaSizingPolicy, VolumeId, WaflResult};
use wafl_workloads::OltpMix;

/// One AA-sizing arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Arm {
    /// Configuration name.
    pub name: String,
    /// AA height in stripes actually used.
    pub stripes_per_aa: u64,
    /// Latency-vs-throughput series.
    pub curve: Vec<LoadPoint>,
    /// Measured window cost.
    pub cost: WindowCost,
    /// SSD write amplification over the measurement window.
    pub write_amplification: f64,
}

/// Full Figure 8 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Small-AA arm (HDD sizing).
    pub small: Arm,
    /// Large-AA arm (erase-block multiple).
    pub large: Arm,
    /// Peak comparison, large over small.
    pub effect: PeakComparison,
    /// Cores in the modelled server (paper: 16).
    pub cores: f64,
    /// Simulated clients.
    pub clients: f64,
}

fn run_arm(scale: Scale, name: &str, policy: AaSizingPolicy) -> WaflResult<Arm> {
    let erase_block = 512u64;
    let device_blocks = scale.ops(erase_block * 80, erase_block * 400);
    let ops_per_cp = scale.ops(2048, 8192) as usize;
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks,
        profile: MediaProfile::ssd(),
    };
    let agg_blocks = spec.data_blocks();
    let cfg = AggregateConfig {
        aa_policy_override: Some(policy),
        ..AggregateConfig::single_group(spec)
    };
    // Aged to 85 % fullness (paper's setup).
    let working_set = (agg_blocks as f64 * 0.85) as u64;
    let mut agg = Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: agg_blocks.div_ceil(32768) * 32768 * 2,
                aa_cache: true,
                aa_blocks: None,
            },
            working_set,
        )],
        3,
    )?;
    let stripes_per_aa = agg.groups()[0].stripes_per_aa;
    aging::fill_volume(&mut agg, VolumeId(0), ops_per_cp)?;
    aging::random_overwrite_churn(&mut agg, VolumeId(0), working_set * 3 / 2, ops_per_cp, 19)?;
    agg.reset_media_stats();
    agg.reset_cache_stats();

    // 4 KiB random reads and writes.
    let mut w = OltpMix::new(vec![(VolumeId(0), working_set)], 0.5, 29);
    let ops = scale.ops(80_000, 600_000);
    let (cost, _cp) = measure_window(&mut agg, &mut w, ops, ops_per_cp, 4.0)?;
    Ok(Arm {
        name: name.into(),
        stripes_per_aa,
        curve: Vec::new(),
        cost,
        write_amplification: agg.mean_write_amplification(),
    })
}

/// Run the Figure 8 experiment.
pub fn run(scale: Scale) -> WaflResult<Fig8Result> {
    let cores = 16.0;
    let clients = 4.0;
    let erase_block = 512u64;
    // Historical sizing: smaller than one erase block (Figure 4 (A)).
    let mut small = run_arm(
        scale,
        "HDD-sized AA (sub-erase-block)",
        AaSizingPolicy::Stripes {
            stripes: erase_block / 2,
        },
    )?;
    // Media-aware sizing: several erase blocks (Figure 4 (B)).
    let mut large = run_arm(
        scale,
        "Large AA (4x erase block)",
        AaSizingPolicy::DeviceUnits {
            unit_blocks: erase_block,
            units: 4,
        },
    )?;
    let cap = small
        .cost
        .capacity_ops_s(cores)
        .max(large.cost.capacity_ops_s(cores));
    let loads = load_sweep(cap, 12);
    small.curve = latency_curve(&small.cost, cores, &loads);
    large.curve = latency_curve(&large.cost, cores, &loads);
    let effect = compare_peak(&large.cost, &small.cost, cores);
    Ok(Fig8Result {
        small,
        large,
        effect,
        cores,
        clients,
    })
}

impl Fig8Result {
    /// Render the figure's series and summary.
    pub fn to_markdown(&self) -> String {
        let mut rows = Vec::new();
        rows.extend(curve_rows(
            &self.small.name,
            &self.small.curve,
            self.clients,
        ));
        rows.extend(curve_rows(
            &self.large.name,
            &self.large.curve,
            self.clients,
        ));
        let mut out = String::from("## Figure 8 — AA sizing on SSD\n\n");
        out += &markdown_table(
            &[
                "configuration",
                "offered ops/s/client",
                "achieved ops/s/client",
                "latency ms",
            ],
            &rows,
        );
        out += "\n";
        out += &markdown_table(
            &["metric", "measured", "paper"],
            &[
                vec![
                    "throughput gain (large vs small AA)".into(),
                    pct(self.effect.throughput_gain),
                    "+26 %".into(),
                ],
                vec![
                    "latency reduction".into(),
                    pct(self.effect.latency_reduction),
                    "21 %".into(),
                ],
                vec![
                    "WA small AA".into(),
                    format!("{:.2}", self.small.write_amplification),
                    "~2x the large-AA value".into(),
                ],
                vec![
                    "WA large AA".into(),
                    format!("{:.2}", self.large.write_amplification),
                    "half the small-AA value".into(),
                ],
            ],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shapes_hold() {
        let r = run(Scale::Small).unwrap();
        // Large AAs are erase-block multiples; small ones are not.
        assert_eq!(r.large.stripes_per_aa % 512, 0);
        assert!(r.small.stripes_per_aa < 512);
        // Write amplification drops with erase-block-aware sizing.
        assert!(
            r.large.write_amplification < r.small.write_amplification,
            "WA large {} vs small {}",
            r.large.write_amplification,
            r.small.write_amplification
        );
        // And the performance effect follows.
        assert!(r.effect.throughput_gain > 0.0, "{:?}", r.effect);
        assert!(r.effect.latency_reduction > 0.0);
        assert!(r.to_markdown().contains("Figure 8"));
    }
}
