//! Figure 6 (§4.1): latency versus achieved throughput with the AA caches
//! enabled for both VBN spaces, for the FlexVol only, for the aggregate
//! only, and for neither.
//!
//! Setup mirrors the paper: an all-SSD aggregate filled to 55 % and
//! thoroughly fragmented by random overwrites; the measured workload is
//! random overwrites of configured LUNs; free-space defragmentation is
//! disabled (this simulator has none running by default).
//!
//! Shape claims reproduced:
//! * the both-caches curve sits below/right of the others;
//! * chosen physical AAs are emptier than random picks (61 % vs 46 % in
//!   the paper, on a 45 %-free aggregate);
//! * chosen virtual AAs are emptier than random picks (78 % vs 61 %);
//! * SSD write amplification drops with the caches (1.77 → 1.46).

use crate::experiments::{load_sweep, measure_window};
use crate::latency::{compare_peak, latency_curve, LoadPoint, PeakComparison, WindowCost};
use crate::report::{curve_rows, frac, markdown_table, pct};
use crate::Scale;
use serde::{Deserialize, Serialize};
use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, WaflResult};
use wafl_workloads::RandomOverwrite;

/// The experiment's four configurations.
pub const ARMS: [&str; 4] = [
    "both AA caches",
    "FlexVol AA cache",
    "Aggregate AA cache",
    "no AA caches",
];

/// Measured results of one arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Arm {
    /// Configuration name.
    pub name: String,
    /// Latency-vs-throughput series.
    pub curve: Vec<LoadPoint>,
    /// Measured window costs (feeds the curve).
    pub cost: WindowCost,
    /// Mean free fraction of physical AAs picked during measurement.
    pub agg_pick_free: f64,
    /// Mean free fraction of virtual AAs picked during measurement.
    pub vol_pick_free: f64,
    /// SSD write amplification over the measurement window.
    pub write_amplification: f64,
    /// WAFL code-path cost per op, µs (§4.1.2).
    pub us_per_op: f64,
    /// Fraction of CPU spent maintaining AA caches (§4.1.2's ~0.002 %).
    pub cache_cpu_fraction: f64,
}

/// Full Figure 6 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One entry per configuration, in [`ARMS`] order.
    pub arms: Vec<Arm>,
    /// Both-caches vs FlexVol-only (isolates the RAID-aware cache, §4.1.1).
    pub raid_aware_effect: PeakComparison,
    /// Both-caches vs Aggregate-only (isolates the HBPS cache, §4.1.2).
    pub raid_agnostic_effect: PeakComparison,
    /// Aggregate free fraction after aging (paper: 45 %).
    pub aggregate_free: f64,
    /// Simulated server cores (paper: 20).
    pub cores: f64,
    /// Number of simulated clients.
    pub clients: f64,
}

struct Setup {
    device_blocks: u64,
    erase_block: u64,
    vol_aa_blocks: u64,
    fill: f64,
    churn_mult: f64,
    measure_mult: f64,
    ops_per_cp: usize,
}

fn setup(scale: Scale) -> Setup {
    match scale {
        // Scaled so each RAID group still has dozens of AAs (the paper has
        // hundreds of thousands): smaller erase blocks shrink the SSD AA.
        Scale::Small => Setup {
            device_blocks: 128 * 240, // 30,720 blocks/device, 60 AAs
            erase_block: 128,
            vol_aa_blocks: 2048,
            fill: 0.55,
            churn_mult: 2.5,
            measure_mult: 0.8,
            ops_per_cp: 2048,
        },
        Scale::Paper => Setup {
            device_blocks: 512 * 800, // 409,600 blocks/device, 200 AAs
            erase_block: 512,
            vol_aa_blocks: 8192,
            fill: 0.55,
            churn_mult: 3.0,
            measure_mult: 1.0,
            ops_per_cp: 8192,
        },
    }
}

fn build(s: &Setup, raid_cache: bool, vol_cache: bool, seed: u64) -> WaflResult<Aggregate> {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: s.device_blocks,
        profile: MediaProfile {
            erase_block_blocks: s.erase_block,
            ..MediaProfile::ssd()
        },
    };
    let agg_blocks = spec.data_blocks();
    let cfg = AggregateConfig {
        raid_aware_cache: raid_cache,
        ..AggregateConfig::single_group(spec)
    };
    let working_set = (agg_blocks as f64 * s.fill) as u64;
    // Thin-provisioned: virtual space ~2.2x the live data, so the volume
    // runs at ~45 % occupancy like the paper's FlexVols.
    let vol_blocks =
        ((working_set as f64 * 2.2) as u64).div_ceil(s.vol_aa_blocks) * s.vol_aa_blocks;
    Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: vol_blocks,
                aa_cache: vol_cache,
                aa_blocks: Some(s.vol_aa_blocks),
            },
            working_set,
        )],
        seed,
    )
}

fn run_arm(scale: Scale, raid_cache: bool, vol_cache: bool) -> WaflResult<(Arm, f64)> {
    let s = setup(scale);
    let mut agg = build(&s, raid_cache, vol_cache, 11)?;
    let working_set = agg.volumes()[0].logical_blocks();
    // Age: fill to target, then fragment with random overwrites.
    aging::fill_volume(&mut agg, VolumeId(0), s.ops_per_cp)?;
    aging::random_overwrite_churn(
        &mut agg,
        VolumeId(0),
        (working_set as f64 * s.churn_mult) as u64,
        s.ops_per_cp,
        17,
    )?;
    agg.reset_media_stats();
    agg.reset_cache_stats();
    let aggregate_free = agg.free_fraction();

    // Measurement window: the paper's 8 KiB random overwrites.
    let mut w = RandomOverwrite::new(VolumeId(0), working_set, 23);
    let ops = (working_set as f64 * s.measure_mult) as u64;
    let (cost, cp) = measure_window(&mut agg, &mut w, ops, s.ops_per_cp, 4.0)?;
    let wa = agg.mean_write_amplification();
    let arm = Arm {
        name: String::new(),
        curve: Vec::new(),
        cost,
        agg_pick_free: cp.agg_pick_free_mean(),
        vol_pick_free: cp.vol_pick_free_mean(),
        write_amplification: wa,
        us_per_op: cost.cpu_us / cost.ops.max(1) as f64,
        cache_cpu_fraction: if cost.cpu_us > 0.0 {
            cp.cache_maintenance_us / cost.cpu_us
        } else {
            0.0
        },
    };
    Ok((arm, aggregate_free))
}

/// Run the Figure 6 experiment. The four arms are independent
/// simulations and run in parallel (rayon).
pub fn run(scale: Scale) -> WaflResult<Fig6Result> {
    let cores = 20.0;
    let clients = 4.0;
    let configs = [(true, true), (false, true), (true, false), (false, false)];
    use rayon::prelude::*;
    let results: Vec<WaflResult<(Arm, f64)>> = configs
        .par_iter()
        .enumerate()
        .map(|(i, &(rc, vc))| {
            let (mut arm, free) = run_arm(scale, rc, vc)?;
            arm.name = ARMS[i].to_string();
            Ok((arm, free))
        })
        .collect();
    let mut arms = Vec::new();
    let mut aggregate_free = 0.0;
    for r in results {
        let (arm, free) = r?;
        arms.push(arm);
        aggregate_free = free;
    }
    // Shared load sweep sized to the best configuration's capacity.
    let cap = arms
        .iter()
        .map(|a| a.cost.capacity_ops_s(cores))
        .fold(0.0, f64::max);
    let loads = load_sweep(cap, 12);
    for arm in &mut arms {
        arm.curve = latency_curve(&arm.cost, cores, &loads);
    }
    let raid_aware_effect = compare_peak(&arms[0].cost, &arms[1].cost, cores);
    let raid_agnostic_effect = compare_peak(&arms[0].cost, &arms[2].cost, cores);
    Ok(Fig6Result {
        arms,
        raid_aware_effect,
        raid_agnostic_effect,
        aggregate_free,
        cores,
        clients,
    })
}

impl Fig6Result {
    /// Render the figure's series and the §4.1 summary numbers.
    pub fn to_markdown(&self) -> String {
        let mut rows = Vec::new();
        for arm in &self.arms {
            rows.extend(curve_rows(&arm.name, &arm.curve, self.clients));
        }
        let mut out = String::from("## Figure 6 — AA cache latency vs throughput\n\n");
        out += &markdown_table(
            &[
                "configuration",
                "offered ops/s/client",
                "achieved ops/s/client",
                "latency ms",
            ],
            &rows,
        );
        out += "\n### Summary (paper's in-text claims)\n\n";
        let summary = vec![
            vec![
                "aggregate free after aging".into(),
                frac(self.aggregate_free),
                "45 %".into(),
            ],
            vec![
                "picked physical AA free (cache on)".into(),
                frac(self.arms[0].agg_pick_free),
                "61 %".into(),
            ],
            vec![
                "picked physical AA free (random)".into(),
                frac(self.arms[1].agg_pick_free),
                "46 %".into(),
            ],
            vec![
                "picked virtual AA free (cache on)".into(),
                frac(self.arms[0].vol_pick_free),
                "78 %".into(),
            ],
            vec![
                "picked virtual AA free (random)".into(),
                frac(self.arms[2].vol_pick_free),
                "61 %".into(),
            ],
            vec![
                "RAID-aware cache throughput gain".into(),
                pct(self.raid_aware_effect.throughput_gain),
                "+24 %".into(),
            ],
            vec![
                "RAID-aware cache latency reduction".into(),
                pct(self.raid_aware_effect.latency_reduction),
                "18 %".into(),
            ],
            vec![
                "HBPS cache throughput gain".into(),
                pct(self.raid_agnostic_effect.throughput_gain),
                "+8.0 %".into(),
            ],
            vec![
                "HBPS cache latency reduction".into(),
                pct(self.raid_agnostic_effect.latency_reduction),
                "8.6 %".into(),
            ],
            vec![
                "AA-cache maintenance CPU".into(),
                format!("{:.4} %", self.arms[0].cache_cpu_fraction * 100.0),
                "~0.002 %".into(),
            ],
            vec![
                "write amplification (both caches)".into(),
                format!("{:.2}", self.arms[0].write_amplification),
                "1.46".into(),
            ],
            vec![
                "write amplification (no agg cache)".into(),
                format!("{:.2}", self.arms[1].write_amplification),
                "1.77".into(),
            ],
        ];
        out += &markdown_table(&["metric", "measured", "paper"], &summary);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes_hold() {
        let r = run(Scale::Small).unwrap();
        let [both, vol_only, agg_only, none] = [&r.arms[0], &r.arms[1], &r.arms[2], &r.arms[3]];

        // Cache-guided physical picks are emptier than random picks.
        assert!(
            both.agg_pick_free > vol_only.agg_pick_free + 0.05,
            "agg picks: cache {} vs random {}",
            both.agg_pick_free,
            vol_only.agg_pick_free
        );
        // Cache-guided virtual picks are emptier than random picks.
        assert!(
            both.vol_pick_free > agg_only.vol_pick_free + 0.05,
            "vol picks: cache {} vs random {}",
            both.vol_pick_free,
            agg_only.vol_pick_free
        );
        // Both-caches beats every other arm on capacity.
        let cap = |a: &Arm| a.cost.capacity_ops_s(r.cores);
        assert!(cap(both) > cap(vol_only));
        assert!(cap(both) > cap(none));
        // The RAID-aware cache effect is positive.
        assert!(r.raid_aware_effect.throughput_gain > 0.0);
        assert!(r.raid_aware_effect.latency_reduction > 0.0);
        // WA with the aggregate cache is no worse than without.
        assert!(both.write_amplification <= vol_only.write_amplification + 0.02);
        // Cache maintenance CPU is negligible (paper: ~0.002 %).
        assert!(both.cache_cpu_fraction < 0.01);
        // Markdown renders every arm.
        let md = r.to_markdown();
        for name in ARMS {
            assert!(md.contains(name));
        }
    }
}
