//! Closed-loop latency-versus-throughput modelling.
//!
//! The paper's Figures 6, 8 and 9 plot client latency against achieved
//! per-client throughput at increasing offered load on real hardware. We
//! reproduce the curve shape with a two-station queueing model:
//!
//! * a **CPU station** with `cores` parallel servers — per-op demand is
//!   the measured WAFL code-path cost (§4.1.2's µs/op);
//! * a **media station** whose per-op demand is the measured CP media
//!   time (devices within a CP already run in parallel, so the CP elapsed
//!   time *is* the station demand) plus read service spread across
//!   devices.
//!
//! At offered load λ the bottleneck utilisation is ρ = λ·max(demands);
//! response time follows the M/M/1-style `s / (1 − ρ)` blow-up, and
//! achieved throughput saturates at the bottleneck capacity. Absolute
//! values depend on the simulator's cost constants; the comparisons the
//! paper makes (which configuration's curve sits lower/righter, and by
//! roughly what factor) depend only on the measured per-op demands.

use serde::{Deserialize, Serialize};

/// Measured resource demands of a workload window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowCost {
    /// Client operations in the window.
    pub ops: u64,
    /// Total modelled CPU time, µs.
    pub cpu_us: f64,
    /// Total CP media time (already device-parallel within a CP), µs.
    pub media_us: f64,
    /// Total read media time, µs (spread across `read_parallelism`).
    pub read_us: f64,
    /// Effective number of devices serving random reads concurrently.
    pub read_parallelism: f64,
}

impl WindowCost {
    /// Per-op CPU demand across `cores`, µs.
    pub fn cpu_demand_us(&self, cores: f64) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.cpu_us / self.ops as f64 / cores.max(1.0)
    }

    /// Per-op media demand, µs.
    pub fn media_demand_us(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        (self.media_us + self.read_us / self.read_parallelism.max(1.0)) / self.ops as f64
    }

    /// Per-op service time actually experienced (sum of stations), µs.
    pub fn service_us(&self, cores: f64) -> f64 {
        self.cpu_demand_us(cores) + self.media_demand_us()
    }

    /// Bottleneck demand: the station limiting throughput, µs/op.
    pub fn bottleneck_us(&self, cores: f64) -> f64 {
        self.cpu_demand_us(cores).max(self.media_demand_us())
    }

    /// Saturation throughput in ops/s.
    pub fn capacity_ops_s(&self, cores: f64) -> f64 {
        let b = self.bottleneck_us(cores);
        if b <= 0.0 {
            0.0
        } else {
            1e6 / b
        }
    }
}

/// One point of a latency-versus-throughput curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load, ops/s (per client × clients).
    pub offered_ops_s: f64,
    /// Achieved throughput, ops/s.
    pub achieved_ops_s: f64,
    /// Mean latency, ms.
    pub latency_ms: f64,
}

/// Sweep offered loads over a measured window. `loads` are total offered
/// ops/s; clamp utilisation below 1 so the closed-loop saturation shows
/// as flat throughput with climbing latency (the paper's hockey stick).
pub fn latency_curve(cost: &WindowCost, cores: f64, loads: &[f64]) -> Vec<LoadPoint> {
    let s = cost.service_us(cores);
    let b = cost.bottleneck_us(cores);
    let cap = cost.capacity_ops_s(cores);
    loads
        .iter()
        .map(|&offered| {
            let achieved = offered.min(cap * 0.995);
            let rho = (achieved * b / 1e6).min(0.995);
            let latency_us = s / (1.0 - rho);
            LoadPoint {
                offered_ops_s: offered,
                achieved_ops_s: achieved,
                latency_ms: latency_us / 1e3,
            }
        })
        .collect()
}

/// Peak-load comparison of two configurations (the paper's "X % better
/// throughput with Y % lower latency under peak load" summaries).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeakComparison {
    /// Throughput gain of `better` over `baseline` at saturation
    /// (e.g. 0.24 = 24 % higher).
    pub throughput_gain: f64,
    /// Latency reduction of `better` vs `baseline` at the baseline's peak
    /// achieved throughput (e.g. 0.18 = 18 % lower).
    pub latency_reduction: f64,
}

/// Compare two measured windows at peak load.
pub fn compare_peak(better: &WindowCost, baseline: &WindowCost, cores: f64) -> PeakComparison {
    let cap_better = better.capacity_ops_s(cores);
    let cap_base = baseline.capacity_ops_s(cores);
    // Latency of each system when both run at 80 % of the *baseline's*
    // capacity — high load, but short of the saturation knee, where the
    // closed-loop model's latency is hypersensitive to capacity gaps.
    // (The paper reads latencies off measured curves at peak; its FC
    // testbed saturates far more gently than an M/M/1 knee.)
    let load = cap_base * 0.8;
    let lat = |c: &WindowCost| {
        let rho = (load * c.bottleneck_us(cores) / 1e6).min(0.995);
        c.service_us(cores) / (1.0 - rho)
    };
    PeakComparison {
        throughput_gain: cap_better / cap_base - 1.0,
        latency_reduction: 1.0 - lat(better) / lat(baseline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(cpu: f64, media: f64) -> WindowCost {
        WindowCost {
            ops: 1000,
            cpu_us: cpu * 1000.0,
            media_us: media * 1000.0,
            read_us: 0.0,
            read_parallelism: 1.0,
        }
    }

    #[test]
    fn demands_divide_by_ops_and_cores() {
        let c = cost(300.0, 50.0);
        assert!((c.cpu_demand_us(20.0) - 15.0).abs() < 1e-9);
        assert!((c.media_demand_us() - 50.0).abs() < 1e-9);
        assert!((c.bottleneck_us(20.0) - 50.0).abs() < 1e-9);
        assert!((c.capacity_ops_s(20.0) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn curve_is_a_hockey_stick() {
        let c = cost(300.0, 50.0);
        let loads: Vec<f64> = (1..=30).map(|i| i as f64 * 1000.0).collect();
        let pts = latency_curve(&c, 20.0, &loads);
        // Monotone non-decreasing latency; achieved saturates.
        for w in pts.windows(2) {
            assert!(w[1].latency_ms >= w[0].latency_ms - 1e-12);
            assert!(w[1].achieved_ops_s >= w[0].achieved_ops_s - 1e-12);
        }
        let last = pts.last().unwrap();
        assert!(last.achieved_ops_s < 20_000.0);
        assert!(last.latency_ms > 10.0 * pts[0].latency_ms);
    }

    #[test]
    fn peak_comparison_orders_configs() {
        let fast = cost(300.0, 40.0);
        let slow = cost(300.0, 50.0);
        let cmp = compare_peak(&fast, &slow, 20.0);
        assert!((cmp.throughput_gain - 0.25).abs() < 0.01, "{cmp:?}");
        assert!(cmp.latency_reduction > 0.0);
        // Self-comparison is a wash.
        let same = compare_peak(&slow, &slow, 20.0);
        assert!(same.throughput_gain.abs() < 1e-9);
        assert!(same.latency_reduction.abs() < 1e-9);
    }

    #[test]
    fn reads_spread_across_devices() {
        let mut c = cost(10.0, 10.0);
        c.read_us = 20_000.0; // 20 µs/op of read service
        c.read_parallelism = 20.0;
        assert!((c.media_demand_us() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_safe() {
        let c = WindowCost::default();
        assert_eq!(c.service_us(20.0), 0.0);
        assert_eq!(c.capacity_ops_s(20.0), 0.0);
        assert!(latency_curve(&c, 20.0, &[1000.0])[0].latency_ms.abs() < 1e-9);
    }
}
