//! Consistency-point engine throughput: how many client overwrites per
//! second the simulated WAFL stack flushes, with caches on and off. The
//! paper's motivating number is 256 k free blocks found per second for a
//! 1 GiB/s overwrite load (§2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::VolumeId;

fn build(caches: bool) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig {
            raid_aware_cache: caches,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 64 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 16 * 32_768,
                aa_cache: caches,
                aa_blocks: None,
            },
            200_000,
        )],
        1,
    )
    .unwrap();
    // Prime the working set.
    wafl_fs::aging::fill_volume(&mut agg, VolumeId(0), 8192).unwrap();
    agg
}

fn cp_overwrite_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cp/random_overwrite_flush");
    const OPS: u64 = 8192;
    g.throughput(Throughput::Elements(OPS));
    for (label, caches) in [("caches_on", true), ("caches_off", false)] {
        let mut agg = build(caches);
        let mut rng = StdRng::seed_from_u64(2);
        g.bench_function(label, |b| {
            b.iter(|| {
                for _ in 0..OPS {
                    agg.client_overwrite(VolumeId(0), rng.random_range(0..200_000))
                        .unwrap();
                }
                agg.run_cp().unwrap()
            })
        });
    }
    g.finish();
}

fn cp_sequential_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("cp/sequential_fill");
    const OPS: u64 = 8192;
    g.throughput(Throughput::Elements(OPS));
    let mut agg = build(true);
    let mut next = 0u64;
    g.bench_function("caches_on", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                agg.client_overwrite(VolumeId(0), next % 200_000).unwrap();
                next += 1;
            }
            agg.run_cp().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, cp_overwrite_throughput, cp_sequential_fill);
criterion_main!(benches);
