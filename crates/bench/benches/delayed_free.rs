//! Delayed-free processing benchmarks (§3.3.2's second HBPS use case):
//! logging cost, and the page-batched application path versus immediate
//! per-free bitmap updates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_fs::delayed_free::DelayedFreeLog;
use wafl_types::Vbn;

const SPACE: u64 = 256 * 32_768;

fn scattered_frees(n: usize, seed: u64) -> Vec<Vbn> {
    let mut rng = StdRng::seed_from_u64(seed);
    rand::seq::index::sample(&mut rng, SPACE as usize, n)
        .into_iter()
        .map(|i| Vbn(i as u64))
        .collect()
}

fn log_free_cost(c: &mut Criterion) {
    let frees = scattered_frees(100_000, 1);
    let mut g = c.benchmark_group("delayed_free/log");
    g.throughput(Throughput::Elements(frees.len() as u64));
    g.bench_function("log_100k_frees", |b| {
        b.iter_batched(
            DelayedFreeLog::new,
            |mut log| {
                for &v in &frees {
                    log.log_free(v).unwrap();
                }
                log
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn process_vs_immediate(c: &mut Criterion) {
    let frees = scattered_frees(50_000, 2);
    let mut g = c.benchmark_group("delayed_free/apply_50k");
    g.throughput(Throughput::Elements(frees.len() as u64));
    g.bench_function("batched_by_page", |b| {
        b.iter_batched(
            || {
                let mut bitmap = wafl_bitmap::Bitmap::new(SPACE);
                let mut log = DelayedFreeLog::new();
                for &v in &frees {
                    bitmap.allocate(v).unwrap();
                    log.log_free(v).unwrap();
                }
                (bitmap, log)
            },
            |(mut bitmap, mut log)| {
                log.force_drain(&mut bitmap, |_, _| Ok(())).unwrap();
                bitmap
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("immediate", |b| {
        b.iter_batched(
            || {
                let mut bitmap = wafl_bitmap::Bitmap::new(SPACE);
                for &v in &frees {
                    bitmap.allocate(v).unwrap();
                }
                bitmap
            },
            |mut bitmap| {
                for &v in &frees {
                    bitmap.free(v).unwrap();
                }
                bitmap
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, log_free_cost, process_vs_immediate);
criterion_main!(benches);
