//! TopAA metafile benchmarks (§3.4): serializing the 512 best AAs at CP
//! time and seeding a working cache from the block at mount time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wafl_bench::random_scores;
use wafl_core::{topaa, RaidAwareCache};

const N: u32 = 1_000_000;
const MAX: u32 = 16_384;

fn serialize(c: &mut Criterion) {
    let scores = random_scores(N, MAX, 11);
    let cache = RaidAwareCache::new_full(
        scores.into_iter().map(|(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap();
    c.bench_function("topaa/serialize_512_of_1M", |b| {
        b.iter(|| black_box(topaa::serialize_raid_aware(&cache)))
    });
}

fn deserialize_and_seed(c: &mut Criterion) {
    let scores = random_scores(N, MAX, 12);
    let cache = RaidAwareCache::new_full(
        scores.into_iter().map(|(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap();
    let block = topaa::serialize_raid_aware(&cache);
    c.bench_function("topaa/deserialize_block", |b| {
        b.iter(|| topaa::deserialize_raid_aware(black_box(&block)).unwrap())
    });
    let entries = topaa::deserialize_raid_aware(&block).unwrap();
    c.bench_function("topaa/seed_cache_from_512", |b| {
        b.iter(|| RaidAwareCache::seeded(vec![MAX; N as usize], black_box(&entries)).unwrap())
    });
}

fn background_absorb(c: &mut Criterion) {
    // Completing the seeded heap with the authoritative 1M-score walk.
    let scores = random_scores(N, MAX, 13);
    let cache = RaidAwareCache::new_full(
        scores.iter().map(|&(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap();
    let block = topaa::serialize_raid_aware(&cache);
    let entries = topaa::deserialize_raid_aware(&block).unwrap();
    c.bench_function("topaa/absorb_rebuild_1M", |b| {
        b.iter(|| {
            let mut seeded = RaidAwareCache::seeded(vec![MAX; N as usize], &entries).unwrap();
            seeded.absorb_rebuild(&scores).unwrap();
            black_box(seeded.is_complete())
        })
    });
}

criterion_group!(benches, serialize, deserialize_and_seed, background_absorb);
criterion_main!(benches);
