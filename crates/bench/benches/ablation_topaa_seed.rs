//! Ablation: TopAA seed size (DESIGN.md §7).
//!
//! The paper stores the 512 best AAs per RAID-aware cache — "enough to
//! seed the max-heap ... for dozens of seconds" (§3.4). This bench sweeps
//! the seed size: smaller seeds mount marginally faster but exhaust
//! sooner; the mount-side costs are what we can measure directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wafl_bench::random_scores;
use wafl_core::RaidAwareCache;

const N: u32 = 1_000_000;
const MAX: u32 = 16_384;

fn seed_size_sweep(c: &mut Criterion) {
    let scores = random_scores(N, MAX, 31);
    let cache = RaidAwareCache::new_full(
        scores.iter().map(|&(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation/topaa_seed_size");
    for k in [64usize, 128, 256, 512] {
        let entries = cache.top_k(k);
        g.bench_with_input(BenchmarkId::new("seed_cache", k), &k, |b, _| {
            b.iter(|| RaidAwareCache::seeded(vec![MAX; N as usize], &entries).unwrap())
        });
        // How many CP-sized drains the seed sustains before running dry:
        // drain-all-then-count, measured as time per full exhaustion.
        g.bench_with_input(BenchmarkId::new("exhaust_seed", k), &k, |b, _| {
            b.iter(|| {
                let mut seeded = RaidAwareCache::seeded(vec![MAX; N as usize], &entries).unwrap();
                let mut drains = 0u32;
                while seeded.take_best().is_some() {
                    drains += 1;
                }
                drains
            })
        });
    }
    g.finish();
}

criterion_group!(benches, seed_size_sweep);
criterion_main!(benches);
