//! Ablation: HBPS bin width (DESIGN.md §7).
//!
//! The paper fixes 32 bins of 1 Ki over the 32 Ki score space, giving a
//! 3.125 % best-score error. Fewer bins mean cheaper boundary rotation on
//! list moves but worse pick quality; more bins the reverse. This bench
//! measures the update-cost side; the error margin is `width / max` by
//! construction (`HbpsConfig::error_margin`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wafl_bench::random_scores;
use wafl_core::{Hbps, HbpsConfig};
use wafl_types::AaScore;

fn bin_sweep(c: &mut Criterion) {
    let scores = random_scores(500_000, 32_768, 21);
    let mut g = c.benchmark_group("ablation/hbps_bins");
    for bins in [8usize, 16, 32, 64, 128] {
        let cfg = HbpsConfig {
            max_score: 32_768,
            bins,
            list_capacity: 1000,
        };
        let mut hbps = Hbps::build(cfg, scores.iter().copied()).unwrap();
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::new("score_change", bins), &bins, |b, _| {
            b.iter(|| {
                let (aa, old) = scores[i % scores.len()];
                i += 1;
                let new = AaScore((old.get() + 9_000) % 32_769);
                hbps.on_score_change(aa, old, new).unwrap();
                hbps.on_score_change(aa, new, old).unwrap();
            })
        });
    }
    g.finish();
}

fn list_capacity_sweep(c: &mut Criterion) {
    // Smaller lists drain faster and trigger more replenish scans; this
    // measures the take/replenish cycle at different capacities.
    let scores = random_scores(200_000, 32_768, 22);
    let mut g = c.benchmark_group("ablation/hbps_list_capacity");
    for cap in [100usize, 500, 1000] {
        let cfg = HbpsConfig {
            max_score: 32_768,
            bins: 32,
            list_capacity: cap,
        };
        let mut hbps = Hbps::build(cfg, scores.iter().copied()).unwrap();
        g.bench_with_input(BenchmarkId::new("take_cycle", cap), &cap, |b, _| {
            b.iter(|| {
                if hbps.take_best().is_none() {
                    hbps.replenish(scores.iter().copied()).unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bin_sweep, list_capacity_sweep);
criterion_main!(benches);
