//! RAID-aware max-heap micro-benchmarks (§3.3.1): the cache tracking a
//! million AAs (the paper's 16 TiB-device example) must support per-CP
//! batched rebalancing and O(1) best-AA queries.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use wafl_bench::random_scores;
use wafl_core::{RaidAwareCache, ScoreDeltaBatch};
use wafl_types::AaId;

const N: u32 = 1_000_000;
const MAX: u32 = 16_384;

fn build_cache() -> RaidAwareCache {
    let scores = random_scores(N, MAX, 7);
    RaidAwareCache::new_full(
        scores.into_iter().map(|(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap()
}

fn build_1m(c: &mut Criterion) {
    let scores = random_scores(N, MAX, 7);
    c.bench_function("heap/build_1M_aas", |b| {
        b.iter(|| {
            RaidAwareCache::new_full(
                scores.iter().map(|&(_, s)| s).collect(),
                vec![MAX; N as usize],
            )
            .unwrap()
        })
    });
}

fn best_query(c: &mut Criterion) {
    let cache = build_cache();
    c.bench_function("heap/best_peek", |b| b.iter(|| black_box(cache.best())));
}

fn cp_batch(c: &mut Criterion) {
    // A CP touches a few hundred AAs: the per-CP rebalance cost.
    let mut cache = build_cache();
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("heap/apply_batch_256_aas", |b| {
        b.iter(|| {
            let mut batch = ScoreDeltaBatch::new();
            for _ in 0..256 {
                let aa = AaId(rng.random_range(0..N));
                if rng.random_bool(0.5) {
                    batch.record_freed(aa, rng.random_range(1..100));
                } else {
                    batch.record_allocated(aa, rng.random_range(1..100));
                }
            }
            cache.apply_batch(&mut batch);
        })
    });
}

fn top_k_512(c: &mut Criterion) {
    // The TopAA persistence query, run once per CP (§3.4).
    let cache = build_cache();
    c.bench_function("heap/top_k_512_of_1M", |b| {
        b.iter(|| black_box(cache.top_k(512)))
    });
}

fn take_and_reinsert(c: &mut Criterion) {
    let mut cache = build_cache();
    c.bench_function("heap/take_best_reinsert", |b| {
        b.iter(|| {
            let (aa, score) = cache.take_best().unwrap();
            cache.insert(aa, score).unwrap();
        })
    });
}

criterion_group!(
    benches,
    build_1m,
    best_query,
    cp_batch,
    top_k_512,
    take_and_reinsert
);
criterion_main!(benches);
