//! HBPS micro-benchmarks (§3.3.2): the paper's claim is that maintaining
//! the two-page structure costs ~0.002 % of CPU under heavy load — its
//! per-operation costs must be tens of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wafl_bench::random_scores;
use wafl_core::{Hbps, HbpsConfig};
use wafl_types::AaScore;

fn build_1m(c: &mut Criterion) {
    let scores = random_scores(1_000_000, 32_768, 1);
    c.bench_function("hbps/build_1M_aas", |b| {
        b.iter(|| Hbps::build(HbpsConfig::default(), scores.iter().copied()).unwrap())
    });
}

fn score_change(c: &mut Criterion) {
    let scores = random_scores(1_000_000, 32_768, 2);
    let mut hbps = Hbps::build(HbpsConfig::default(), scores.iter().copied()).unwrap();
    let mut i = 0usize;
    c.bench_function("hbps/on_score_change_1M_tracked", |b| {
        b.iter(|| {
            // Move an AA to a different bin and back — two updates, state
            // restored, costs symmetric.
            let (aa, old) = scores[i % scores.len()];
            i += 1;
            let new = AaScore((old.get() + 5_000) % 32_769);
            hbps.on_score_change(aa, old, new).unwrap();
            hbps.on_score_change(aa, new, old).unwrap();
        })
    });
}

fn take_and_retrack(c: &mut Criterion) {
    c.bench_function("hbps/take_best_then_retrack", |b| {
        let scores = random_scores(100_000, 32_768, 3);
        let mut hbps = Hbps::build(HbpsConfig::default(), scores.iter().copied()).unwrap();
        b.iter(|| {
            if let Some((aa, bound)) = hbps.take_best() {
                // Simulate the CP-boundary re-entry of the drained AA.
                hbps.on_score_change(aa, bound, AaScore(0)).unwrap();
                hbps.on_score_change(aa, AaScore(0), bound).unwrap();
            } else {
                hbps.replenish(scores.iter().copied()).unwrap();
            }
        })
    });
}

fn serde_pages(c: &mut Criterion) {
    let scores = random_scores(1_000_000, 32_768, 4);
    let hbps = Hbps::build(HbpsConfig::default(), scores.iter().copied()).unwrap();
    c.bench_function("hbps/to_pages", |b| b.iter(|| black_box(hbps.to_pages())));
    let (p1, p2) = hbps.to_pages();
    c.bench_function("hbps/from_pages", |b| {
        b.iter(|| Hbps::from_pages(black_box(&p1), black_box(&p2)).unwrap())
    });
}

fn peek_vs_full_scan(c: &mut Criterion) {
    // The point of the structure: O(1) best-AA lookup vs re-deriving the
    // best from a million scores.
    let scores = random_scores(1_000_000, 32_768, 5);
    let hbps = Hbps::build(HbpsConfig::default(), scores.iter().copied()).unwrap();
    c.bench_function("hbps/peek_best", |b| b.iter(|| black_box(hbps.peek_best())));
    c.bench_function("hbps/naive_max_of_1M_scores", |b| {
        b.iter(|| {
            black_box(
                scores
                    .iter()
                    .max_by_key(|&&(aa, s)| (s, std::cmp::Reverse(aa)))
                    .copied(),
            )
        })
    });
}

criterion_group!(
    benches,
    build_1m,
    score_change,
    take_and_retrack,
    serde_pages,
    peek_vs_full_scan
);
criterion_main!(benches);
