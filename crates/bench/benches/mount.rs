//! Wall-clock analogue of Figure 10: time to make AA caches operational
//! after a crash, seeding from TopAA metafiles versus walking every
//! bitmap page. (The harness's `fig10_topaa_mount` reports the *modelled*
//! metafile I/O; this bench measures our implementation's actual CPU.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wafl_fs::{mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::VolumeId;

fn build_aged(vols: usize) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 64 * 4096,
            profile: MediaProfile::hdd(),
        }),
        &vec![
            (
                FlexVolConfig {
                    size_blocks: 8 * 32_768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                50_000,
            );
            vols
        ],
        1,
    )
    .unwrap();
    for v in 0..vols {
        wafl_fs::aging::fill_volume(&mut agg, VolumeId(v as u32), 8192).unwrap();
    }
    agg
}

fn mount_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("mount/10_volumes");
    let agg = build_aged(10);
    let image = mount::save_topaa(&agg);
    drop(agg);
    g.bench_function("with_topaa", |b| {
        b.iter_batched(
            || {
                let mut a = build_aged(10);
                mount::crash(&mut a);
                a
            },
            |mut a| mount::mount_with_topaa(&mut a, &image).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("cold_walk", |b| {
        b.iter_batched(
            || {
                let mut a = build_aged(10);
                mount::crash(&mut a);
                a
            },
            |mut a| mount::mount_cold(&mut a).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn save_topaa(c: &mut Criterion) {
    let agg = build_aged(10);
    c.bench_function("mount/save_topaa_image", |b| {
        b.iter(|| mount::save_topaa(&agg))
    });
}

criterion_group!(benches, mount_paths, save_topaa);
criterion_main!(benches);
