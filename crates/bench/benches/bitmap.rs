//! Bitmap-metafile benchmarks: score computation ("consulting bitmap
//! metafiles", §3.3) and the full cache-rebuild walk the TopAA metafile
//! exists to avoid (§3.4), sequential versus rayon-parallel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wafl_bench::aged_bitmap;
use wafl_bitmap::scan;
use wafl_types::Vbn;

fn page_score(c: &mut Criterion) {
    let bitmap = aged_bitmap(64 * 32_768, 0.55, 1);
    c.bench_function("bitmap/aa_score_one_page", |b| {
        b.iter(|| black_box(bitmap.free_count_range(Vbn(7 * 32_768), 32_768)))
    });
}

fn first_free(c: &mut Criterion) {
    let bitmap = aged_bitmap(64 * 32_768, 0.95, 2);
    c.bench_function("bitmap/first_free_95pct_full", |b| {
        b.iter(|| black_box(bitmap.first_free_from(Vbn(0))))
    });
}

fn full_walk(c: &mut Criterion) {
    // The mount-time rebuild walk over a 16 GiB (4 Mi-block) space.
    // `popcount` is the pre-summary implementation (raw word walk);
    // `sequential`/`parallel` answer from the free-count summary, and
    // `summary_per_aa` adds the per-AA counters volumes enable, turning
    // the whole rebuild into a counter copy.
    let space = 128 * 32_768u64;
    let bitmap = aged_bitmap(space, 0.55, 3);
    let mut with_aa = aged_bitmap(space, 0.55, 3);
    with_aa.enable_aa_summary(32_768).unwrap();
    let mut g = c.benchmark_group("bitmap/rebuild_walk");
    g.throughput(Throughput::Bytes(space / 8));
    g.bench_function("popcount", |b| {
        b.iter(|| black_box(scan::scores_popcount(&bitmap, 32_768)))
    });
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(scan::scores_seq(&bitmap, 32_768)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(scan::scores_par(&bitmap, 32_768)))
    });
    g.bench_function("summary_per_aa", |b| {
        b.iter(|| black_box(scan::scores_seq(&with_aa, 32_768)))
    });
    g.finish();
}

fn range_count(c: &mut Criterion) {
    // A 16-page range count: summary-accelerated (two partial-edge
    // popcounts plus 15 counter reads) versus the raw popcount walk.
    let bitmap = aged_bitmap(64 * 32_768, 0.55, 6);
    let start = Vbn(3 * 32_768 + 1000);
    let len = 16 * 32_768u64;
    let mut g = c.benchmark_group("bitmap/range_count_16_pages");
    g.throughput(Throughput::Bytes(len / 8));
    g.bench_function("popcount", |b| {
        b.iter(|| black_box(bitmap.free_count_range_popcount(start, len)))
    });
    g.bench_function("summary", |b| {
        b.iter(|| black_box(bitmap.free_count_range(start, len)))
    });
    g.finish();
}

fn first_free_worst_case(c: &mut Criterion) {
    // Every page but the last is full: the skip-scan reads 63 counters
    // and walks one page where the pre-summary code walked all 64.
    let space = 64 * 32_768u64;
    let mut bitmap = wafl_bitmap::Bitmap::new(space);
    for v in 0..space - 1 {
        bitmap.allocate(Vbn(v)).unwrap();
    }
    c.bench_function("bitmap/first_free_last_page", |b| {
        b.iter(|| black_box(bitmap.first_free_from(Vbn(0))))
    });
}

fn allocate_free_cycle(c: &mut Criterion) {
    let mut bitmap = aged_bitmap(64 * 32_768, 0.5, 4);
    let probe = bitmap.first_free_from(Vbn(0)).unwrap();
    c.bench_function("bitmap/allocate_free_cycle", |b| {
        b.iter(|| {
            bitmap.allocate(probe).unwrap();
            bitmap.free(probe).unwrap();
        })
    });
}

fn fragmentation_scan(c: &mut Criterion) {
    let bitmap = aged_bitmap(16 * 32_768, 0.55, 5);
    c.bench_function("bitmap/fragmentation_one_aa", |b| {
        b.iter(|| black_box(scan::fragmentation_in_range(&bitmap, Vbn(0), 32_768)))
    });
}

criterion_group!(
    benches,
    page_score,
    first_free,
    full_walk,
    range_count,
    first_free_worst_case,
    allocate_free_cycle,
    fragmentation_scan
);
criterion_main!(benches);
