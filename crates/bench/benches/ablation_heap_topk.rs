//! Ablation: full-heap versus top-K tracking for the RAID-aware cache
//! (DESIGN.md §7).
//!
//! §3.3.1 argues that storing *all* AAs in the max-heap "justifies the
//! memory" because selection quality in the physical space has a large
//! performance impact. The alternative — tracking only the K best, like
//! the RAID-agnostic design — is cheaper per CP but goes stale as frees
//! land in untracked AAs. This bench quantifies the per-CP cost side at
//! 1 M AAs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_bench::random_scores;
use wafl_core::{RaidAwareCache, ScoreDeltaBatch};
use wafl_types::AaId;

const N: u32 = 1_000_000;
const MAX: u32 = 16_384;

fn batch_cost(c: &mut Criterion) {
    let scores = random_scores(N, MAX, 41);
    let mut g = c.benchmark_group("ablation/heap_vs_topk_batch");
    // Full heap.
    {
        let mut full = RaidAwareCache::new_full(
            scores.iter().map(|&(_, s)| s).collect(),
            vec![MAX; N as usize],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        g.bench_function("full_1M", |b| {
            b.iter(|| {
                let mut batch = ScoreDeltaBatch::new();
                for _ in 0..256 {
                    batch.record_freed(AaId(rng.random_range(0..N)), 10);
                }
                full.apply_batch(&mut batch);
            })
        });
    }
    // Top-K truncated heaps (built via the TopAA seeding path, which is
    // exactly a top-K cache).
    for k in [512usize, 8192, 65_536] {
        let full = RaidAwareCache::new_full(
            scores.iter().map(|&(_, s)| s).collect(),
            vec![MAX; N as usize],
        )
        .unwrap();
        let top = full.top_k(k);
        let mut truncated = RaidAwareCache::seeded(vec![MAX; N as usize], &top).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        g.bench_with_input(BenchmarkId::new("topk", k), &k, |b, _| {
            b.iter(|| {
                let mut batch = ScoreDeltaBatch::new();
                for _ in 0..256 {
                    // Deltas for untracked AAs update scores but skip the
                    // heap — the cheapness (and staleness) of top-K.
                    batch.record_freed(AaId(rng.random_range(0..N)), 10);
                }
                truncated.apply_batch(&mut batch);
            })
        });
    }
    g.finish();
}

fn memory_report(c: &mut Criterion) {
    // Not a timing bench — emit the memory comparison once so the bench
    // log records the §3.3.1 tradeoff alongside the timings.
    let scores = random_scores(N, MAX, 42);
    let full = RaidAwareCache::new_full(
        scores.iter().map(|&(_, s)| s).collect(),
        vec![MAX; N as usize],
    )
    .unwrap();
    let top = full.top_k(512);
    let truncated = RaidAwareCache::seeded(vec![MAX; N as usize], &top).unwrap();
    eprintln!(
        "heap memory: full(1M AAs) = {} KiB, top-512 = {} KiB (scores/max kept for both)",
        full.memory_bytes() / 1024,
        truncated.memory_bytes() / 1024
    );
    c.bench_function("ablation/heap_memory_noop", |b| b.iter(|| full.len()));
}

criterion_group!(benches, batch_cost, memory_report);
criterion_main!(benches);
