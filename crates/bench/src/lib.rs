//! Criterion benchmarks for the WAFL free-block-search reproduction.
//!
//! Micro-benches cover the paper's data structures at production scale
//! (millions of AAs): the HBPS (§3.3.2), the RAID-aware max-heap
//! (§3.3.1), bitmap scans, TopAA serialization (§3.4), the consistency-
//! point engine, and the two mount paths (a wall-clock analogue of
//! Figure 10). Ablation benches measure the design choices DESIGN.md §7
//! calls out: HBPS bin width, TopAA seed size, and full-heap versus
//! top-K tracking.
//!
//! Shared helpers for building aged inputs live here.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_bitmap::Bitmap;
use wafl_types::{AaId, AaScore, Vbn};

/// A bitmap with `fill` of its blocks randomly allocated.
pub fn aged_bitmap(space: u64, fill: f64, seed: u64) -> Bitmap {
    let mut b = Bitmap::new(space);
    let mut rng = StdRng::seed_from_u64(seed);
    let target = (space as f64 * fill) as u64;
    let mut done = 0;
    while done < target {
        if b.allocate(Vbn(rng.random_range(0..space))).is_ok() {
            done += 1;
        }
    }
    b
}

/// `n` AA scores drawn uniformly from `0..=max` (a fragmented-system
/// score distribution).
pub fn random_scores(n: u32, max: u32, seed: u64) -> Vec<(AaId, AaScore)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (AaId(i), AaScore(rng.random_range(0..=max))))
        .collect()
}
