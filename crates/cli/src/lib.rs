//! `wafl-sim` — command-line driver for the WAFL free-block-search
//! simulator.
//!
//! Subcommands:
//!
//! * `simulate` — build an aggregate, age it, run a workload, and print
//!   the §4-style measurements (pick quality, write amplification,
//!   metafile pages per op, full-stripe fraction, per-op CPU). With
//!   `--trace FILE` the measured window is journaled by the flight
//!   recorder and exported as Chrome trace-event JSON plus a per-CP
//!   time-series table.
//! * `trace-report` — re-read an exported trace file, validate it, and
//!   print per-phase latency quantiles, shard utilization, steal rate,
//!   and the quarantine/health timeline.
//! * `mount-bench` — the Figure 10 comparison for one configuration.
//! * `help` — usage.
//!
//! Argument parsing is hand-rolled (no CLI dependency); every option has
//! a default so `wafl-sim simulate` alone produces something meaningful.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use wafl_fs::{aging, iron, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_obs::trace::{chrome_trace_json, parse_chrome_trace, validate_chrome_trace, ParsedEvent};
use wafl_obs::Registry;
use wafl_types::{MediaType, VolumeId, WaflError, WaflResult};
use wafl_workloads::{FileChurn, OltpMix, RandomOverwrite, SequentialWrite, Workload};

/// Parsed options for the `simulate` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateOpts {
    /// Media family for every device.
    pub media: MediaType,
    /// Data devices in the RAID group.
    pub devices: u32,
    /// Parity devices.
    pub parity: u32,
    /// Blocks per device.
    pub device_blocks: u64,
    /// Fill fraction before measurement.
    pub fill: f64,
    /// Churn multiple of the working set applied before measurement.
    pub churn: f64,
    /// Workload kind: `overwrite`, `oltp`, `sequential`, `churn`.
    pub workload: String,
    /// Measured operations.
    pub ops: u64,
    /// Operations per consistency point.
    pub ops_per_cp: usize,
    /// Disable the RAID-aware (aggregate) AA cache.
    pub no_agg_cache: bool,
    /// Disable the FlexVol (HBPS) AA cache.
    pub no_vol_cache: bool,
    /// Route frees through the delayed-free log.
    pub batched_frees: bool,
    /// Forward frees to SSD FTLs as TRIMs.
    pub trim: bool,
    /// Run the Iron consistency check after the workload.
    pub check: bool,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Online-scrub budget: verification units per CP (0 disables).
    pub scrub: u64,
    /// CP write-pipeline shards. `None` keeps the detected default
    /// (the host's available parallelism); `Some(n)` overrides it.
    pub write_shards: Option<usize>,
    /// Write a Chrome trace-event journal of the measured window to this
    /// path (plus `<path>.series.json` / `<path>.series.csv` for the
    /// per-CP time series). Tracing stays off when absent.
    pub trace: Option<String>,
    /// Flight-recorder ring capacity in events (only meaningful with
    /// `--trace`).
    pub trace_capacity: usize,
}

impl Default for SimulateOpts {
    fn default() -> SimulateOpts {
        SimulateOpts {
            media: MediaType::Ssd,
            devices: 4,
            parity: 1,
            device_blocks: 512 * 120,
            fill: 0.55,
            churn: 1.5,
            workload: "overwrite".into(),
            ops: 50_000,
            ops_per_cp: 2048,
            no_agg_cache: false,
            no_vol_cache: false,
            batched_frees: false,
            trim: false,
            check: false,
            json: false,
            scrub: 0,
            write_shards: None,
            trace: None,
            trace_capacity: 65_536,
        }
    }
}

/// Parsed options for `mount-bench`.
#[derive(Clone, Debug, PartialEq)]
pub struct MountBenchOpts {
    /// Number of FlexVols.
    pub vols: u64,
    /// Virtual blocks per volume.
    pub vol_blocks: u64,
    /// Blocks per device of the (HDD) RAID group.
    pub device_blocks: u64,
    /// CP write-pipeline shards (`None` = detected default).
    pub write_shards: Option<usize>,
}

impl Default for MountBenchOpts {
    fn default() -> MountBenchOpts {
        MountBenchOpts {
            vols: 10,
            vol_blocks: 8 * 32768,
            device_blocks: 64 * 4096,
            write_shards: None,
        }
    }
}

/// Parsed options for `trace-report`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReportOpts {
    /// Path of the exported Chrome trace file to analyse.
    pub path: String,
    /// Fail unless the file carries exactly this many shard tracks.
    pub expect_shards: Option<usize>,
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `simulate` with options.
    Simulate(SimulateOpts),
    /// `trace-report` with options.
    TraceReport(TraceReportOpts),
    /// `mount-bench` with options.
    MountBench(MountBenchOpts),
    /// `help` (or parse failure, with the message to show).
    Help(Option<String>),
}

fn parse_kv(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument '{a}'"));
        };
        // Flags without values.
        match key {
            "no-agg-cache" | "no-vol-cache" | "batched-frees" | "trim" | "check" | "json" => {
                map.insert(key.to_string(), "true".into());
                i += 1;
            }
            _ => {
                let Some(v) = args.get(i + 1) else {
                    return Err(format!("--{key} needs a value"));
                };
                map.insert(key.to_string(), v.clone());
                i += 2;
            }
        }
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

/// Parse a full command line (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Command {
    let Some((cmd, rest)) = args.split_first() else {
        return Command::Help(None);
    };
    let parse_result = (|| -> Result<Command, String> {
        match cmd.as_str() {
            "simulate" => {
                let kv = parse_kv(rest)?;
                let mut o = SimulateOpts::default();
                o.media = match kv.get("media").map(String::as_str) {
                    None | Some("ssd") => MediaType::Ssd,
                    Some("hdd") => MediaType::Hdd,
                    Some("smr") => MediaType::Smr,
                    Some("object") => MediaType::ObjectStore,
                    Some(other) => return Err(format!("unknown media '{other}'")),
                };
                o.devices = get(&kv, "devices", o.devices)?;
                o.parity = get(&kv, "parity", o.parity)?;
                o.device_blocks = get(&kv, "device-blocks", o.device_blocks)?;
                o.fill = get(&kv, "fill", o.fill)?;
                o.churn = get(&kv, "churn", o.churn)?;
                o.workload = get(&kv, "workload", o.workload.clone())?;
                o.ops = get(&kv, "ops", o.ops)?;
                o.ops_per_cp = get(&kv, "ops-per-cp", o.ops_per_cp)?;
                o.no_agg_cache = kv.contains_key("no-agg-cache");
                o.no_vol_cache = kv.contains_key("no-vol-cache");
                o.batched_frees = kv.contains_key("batched-frees");
                o.trim = kv.contains_key("trim");
                o.check = kv.contains_key("check");
                o.json = kv.contains_key("json");
                o.scrub = get(&kv, "scrub", o.scrub)?;
                if let Some(v) = kv.get("write-shards") {
                    o.write_shards = Some(
                        v.parse()
                            .map_err(|_| format!("--write-shards: cannot parse '{v}'"))?,
                    );
                }
                o.trace = kv.get("trace").cloned();
                o.trace_capacity = get(&kv, "trace-capacity", o.trace_capacity)?;
                if o.trace_capacity == 0 {
                    return Err("--trace-capacity must be >= 1".to_string());
                }
                if !["overwrite", "oltp", "sequential", "churn"].contains(&o.workload.as_str()) {
                    return Err(format!("unknown workload '{}'", o.workload));
                }
                Ok(Command::Simulate(o))
            }
            "trace-report" => {
                let Some((path, flags)) = rest.split_first() else {
                    return Err("trace-report needs a trace file path".to_string());
                };
                if path.starts_with("--") {
                    return Err("trace-report needs the trace file path first".to_string());
                }
                let kv = parse_kv(flags)?;
                let mut o = TraceReportOpts {
                    path: path.clone(),
                    expect_shards: None,
                };
                if let Some(v) = kv.get("expect-shards") {
                    o.expect_shards = Some(
                        v.parse()
                            .map_err(|_| format!("--expect-shards: cannot parse '{v}'"))?,
                    );
                }
                Ok(Command::TraceReport(o))
            }
            "mount-bench" => {
                let kv = parse_kv(rest)?;
                let mut o = MountBenchOpts::default();
                o.vols = get(&kv, "vols", o.vols)?;
                o.vol_blocks = get(&kv, "vol-blocks", o.vol_blocks)?;
                o.device_blocks = get(&kv, "device-blocks", o.device_blocks)?;
                if let Some(v) = kv.get("write-shards") {
                    o.write_shards = Some(
                        v.parse()
                            .map_err(|_| format!("--write-shards: cannot parse '{v}'"))?,
                    );
                }
                Ok(Command::MountBench(o))
            }
            "help" | "--help" | "-h" => Ok(Command::Help(None)),
            other => Err(format!("unknown command '{other}'")),
        }
    })();
    match parse_result {
        Ok(c) => c,
        Err(msg) => Command::Help(Some(msg)),
    }
}

/// Usage text.
pub const USAGE: &str = "\
wafl-sim — WAFL free-block-search simulator

USAGE:
  wafl-sim simulate [--media ssd|hdd|smr|object] [--devices N] [--parity N]
                    [--device-blocks N] [--fill F] [--churn F]
                    [--workload overwrite|oltp|sequential|churn]
                    [--ops N] [--ops-per-cp N]
                    [--no-agg-cache] [--no-vol-cache]
                    [--batched-frees] [--trim] [--check] [--json]
                    [--scrub UNITS_PER_CP] [--write-shards N]
                    [--trace FILE] [--trace-capacity EVENTS]
  wafl-sim trace-report FILE [--expect-shards N]
  wafl-sim mount-bench [--vols N] [--vol-blocks N] [--device-blocks N]
                       [--write-shards N]
  wafl-sim help

--write-shards overrides the CP write pipeline's detected default
(the host's available parallelism); N must be >= 1.

--trace journals the measured window in the flight recorder and writes
Chrome trace-event JSON (chrome://tracing / Perfetto) to FILE, plus the
per-CP time series to FILE.series.json and FILE.series.csv. The ring
holds --trace-capacity events (default 65536); overflow drops events
and counts them in trace.dropped_events. trace-report re-reads an
exported FILE, validates it (balanced spans, CP-ordered tracks), and
prints per-phase p50/p99, shard utilization, steal rate, and the
quarantine timeline.
";

/// Results of a `simulate` run (also the JSON shape).
#[derive(Debug, serde::Serialize)]
pub struct SimulateReport {
    /// Operations measured.
    pub ops: u64,
    /// Consistency points run.
    pub cps: u64,
    /// Mean free fraction of picked physical AAs.
    pub agg_pick_free: f64,
    /// Mean free fraction of picked virtual AAs.
    pub vol_pick_free: f64,
    /// Aggregate free fraction at measurement time.
    pub aggregate_free: f64,
    /// Full-stripe fraction of the measured window.
    pub full_stripe_fraction: f64,
    /// Bitmap-metafile pages dirtied per op.
    pub metafile_pages_per_op: f64,
    /// Modelled WAFL CPU per op, µs.
    pub cpu_us_per_op: f64,
    /// Mean SSD write amplification (1.0 for non-SSD).
    pub write_amplification: f64,
    /// SMR drive interventions (0 for non-SMR).
    pub smr_interventions: u64,
    /// Iron findings, when `--check` was given.
    pub iron: Option<wafl_fs::iron::IronReport>,
    /// Runtime health and scrub metrics, when `--check` was given.
    pub health: Option<HealthReport>,
    /// Measured wall-clock phase ratios versus the simulated cost
    /// model's, when `--check` was given (absent if the window measured
    /// no CPs).
    pub wall_overlay: Option<wafl_fs::WallClockOverlay>,
    /// Median measured CP wall time (µs) from the `cp.wall.total_us`
    /// histogram, when `--check` was given.
    pub wall_p50_us: Option<f64>,
    /// 99th-percentile measured CP wall time (µs), when `--check`.
    pub wall_p99_us: Option<f64>,
    /// Flight-recorder artifacts written, when `--trace` was given.
    pub trace: Option<TraceArtifacts>,
}

/// Files written by `simulate --trace`, plus journal accounting.
#[derive(Debug, serde::Serialize)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON path.
    pub path: String,
    /// Per-CP time-series JSON path.
    pub series_json: String,
    /// Per-CP time-series CSV path.
    pub series_csv: String,
    /// Events captured in the journal.
    pub events: usize,
    /// Events dropped by ring overflow.
    pub dropped: u64,
    /// Shard tracks in the export (the configured `write_shards`).
    pub shard_tracks: usize,
}

/// Aggregate health summary printed by `--check`: the scrubber's state
/// machine plus the metric families the observability layer exports.
#[derive(Debug, serde::Serialize)]
pub struct HealthReport {
    /// Health state: `healthy`, `degraded(n)`, or `read-only`.
    pub state: String,
    /// AAs the allocator is currently avoiding.
    pub quarantined_aas: u64,
    /// Cache structures under structure quarantine.
    pub quarantined_structures: u64,
    /// Repair tickets awaiting processing.
    pub pending_repairs: usize,
    /// Scrub verification units read since mount.
    pub scrub_pages_scanned: u64,
    /// Faults the scrubber has detected.
    pub scrub_faults_detected: u64,
    /// Repairs completed and verified clean.
    pub scrub_repairs_succeeded: u64,
    /// Aggregate free fraction gauge.
    pub free_fraction: f64,
    /// Delayed-free log backlog, blocks.
    pub delayed_free_backlog: f64,
    /// Per-volume metrics, keyed by the registry's `vol=<id>.<name>`
    /// labels (updated at CP boundaries).
    pub volumes: std::collections::BTreeMap<String, f64>,
}

fn health_report(agg: &Aggregate) -> HealthReport {
    let status = agg.scrub_status();
    let reg = agg.obs();
    let mut volumes = std::collections::BTreeMap::new();
    for vol in agg.volumes() {
        let gauge = wafl_fs::obs::FsObs::vol_metric_name(vol.id, "space.free_fraction");
        if let Some(v) = reg.gauge_value(&gauge) {
            volumes.insert(gauge, v);
        }
        for counter in ["allocator.cursor_hits", "allocator.cursor_misses"] {
            let name = wafl_fs::obs::FsObs::vol_metric_name(vol.id, counter);
            if let Some(v) = reg.counter_value(&name) {
                volumes.insert(name, v as f64);
            }
        }
    }
    HealthReport {
        state: status.health.to_string(),
        quarantined_aas: status.quarantined_aas,
        quarantined_structures: status.quarantined_structures,
        pending_repairs: status.pending_repairs,
        scrub_pages_scanned: reg.counter_value("scrub.pages_scanned").unwrap_or(0),
        scrub_faults_detected: reg.counter_value("scrub.faults_detected").unwrap_or(0),
        scrub_repairs_succeeded: reg.counter_value("scrub.repairs_succeeded").unwrap_or(0),
        free_fraction: reg.gauge_value("space.free_fraction").unwrap_or(0.0),
        delayed_free_backlog: reg
            .gauge_value("delayed_free.backlog_blocks")
            .unwrap_or(0.0),
        volumes,
    }
}

/// Run the `simulate` subcommand.
pub fn run_simulate(o: &SimulateOpts) -> WaflResult<SimulateReport> {
    let profile = match o.media {
        MediaType::Hdd => MediaProfile::hdd(),
        MediaType::Ssd => MediaProfile::ssd(),
        MediaType::Smr => MediaProfile {
            zone_blocks: 4096,
            ..MediaProfile::smr()
        },
        MediaType::ObjectStore => MediaProfile::object_store(),
    };
    let (devices, parity) = if o.media == MediaType::ObjectStore {
        (1, 0) // native redundancy
    } else {
        (o.devices, o.parity)
    };
    let spec = RaidGroupSpec {
        data_devices: devices,
        parity_devices: parity,
        device_blocks: o.device_blocks,
        profile,
    };
    let agg_blocks = spec.data_blocks();
    let mut cfg = AggregateConfig {
        raid_aware_cache: !o.no_agg_cache,
        batched_frees: o.batched_frees,
        trim_on_free: o.trim,
        scrub_pages_per_cp: o.scrub,
        ..AggregateConfig::single_group(spec)
    };
    if let Some(shards) = o.write_shards {
        cfg.write_shards = shards;
    }
    if o.trace.is_some() {
        cfg.trace_events = o.trace_capacity;
    }
    let working = ((agg_blocks as f64 * o.fill) as u64).max(1024);
    let vol_blocks = (working * 2).div_ceil(32768) * 32768;
    let mut agg = Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: vol_blocks,
                aa_cache: !o.no_vol_cache,
                aa_blocks: None,
            },
            working,
        )],
        2026,
    )?;
    aging::fill_volume(&mut agg, VolumeId(0), o.ops_per_cp)?;
    if o.churn > 0.0 {
        aging::random_overwrite_churn(
            &mut agg,
            VolumeId(0),
            (working as f64 * o.churn) as u64,
            o.ops_per_cp,
            7,
        )?;
    }
    agg.reset_media_stats();
    agg.reset_cache_stats();

    let mut workload: Box<dyn Workload> = match o.workload.as_str() {
        "overwrite" => Box::new(RandomOverwrite::new(VolumeId(0), working, 11)),
        "oltp" => Box::new(OltpMix::new(vec![(VolumeId(0), working)], 0.5, 11)),
        "sequential" => Box::new(SequentialWrite::new(VolumeId(0), working)),
        "churn" => Box::new(FileChurn::new(
            VolumeId(0),
            64,
            (working / 64).max(4),
            ((working / 64) as usize / 2).max(2),
            11,
        )),
        _ => unreachable!("validated in parse"),
    };
    let stats = wafl_workloads::run(&mut agg, workload.as_mut(), o.ops, o.ops_per_cp)?;
    let iron_report = if o.check {
        Some(iron::check(&agg)?)
    } else {
        None
    };
    let health = o.check.then(|| health_report(&agg));
    let wall_overlay = if o.check {
        wafl_fs::WallClockOverlay::from_window(&stats.cp, stats.cps, &agg.config().cpu)
    } else {
        None
    };
    let (wall_p50_us, wall_p99_us) = if o.check {
        let wall = agg
            .obs()
            .histogram_handle("cp.wall.total_us")
            .expect("FsObs pre-registers the CP wall histogram");
        (Some(wall.quantile(0.50)), Some(wall.quantile(0.99)))
    } else {
        (None, None)
    };
    let trace = match &o.trace {
        Some(path) => Some(write_trace_artifacts(&agg, path)?),
        None => None,
    };
    Ok(SimulateReport {
        ops: o.ops,
        cps: stats.cps,
        agg_pick_free: stats.cp.agg_pick_free_mean(),
        vol_pick_free: stats.cp.vol_pick_free_mean(),
        aggregate_free: agg.free_fraction(),
        full_stripe_fraction: stats.cp.full_stripe_fraction(),
        metafile_pages_per_op: stats.cp.metafile_pages as f64 / o.ops.max(1) as f64,
        cpu_us_per_op: stats.cp.cpu_us / o.ops.max(1) as f64,
        write_amplification: agg.mean_write_amplification(),
        smr_interventions: agg.groups().iter().map(|g| g.smr_interventions()).sum(),
        iron: iron_report,
        health,
        wall_overlay,
        wall_p50_us,
        wall_p99_us,
        trace,
    })
}

fn write_file(path: &str, contents: &str) -> WaflResult<()> {
    std::fs::write(path, contents).map_err(|e| WaflError::TransientIo {
        reason: format!("write {path}: {e}"),
    })
}

/// Export the aggregate's trace journal: Chrome trace JSON to `path`,
/// the per-CP series next to it.
fn write_trace_artifacts(agg: &Aggregate, path: &str) -> WaflResult<TraceArtifacts> {
    let tracer = agg
        .tracer()
        .expect("simulate enables tracing before the run when --trace is given");
    let events = tracer.events();
    let shard_tracks = agg.config().write_shards;
    write_file(path, &chrome_trace_json(&events, shard_tracks))?;
    let series = agg
        .cp_series()
        .expect("the per-CP series is enabled together with the tracer");
    let series_json = format!("{path}.series.json");
    let series_csv = format!("{path}.series.csv");
    write_file(&series_json, &series.to_json())?;
    write_file(&series_csv, &series.to_csv())?;
    Ok(TraceArtifacts {
        path: path.to_string(),
        series_json,
        series_csv,
        events: events.len(),
        dropped: tracer.dropped(),
        shard_tracks,
    })
}

impl SimulateReport {
    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        let _ = writeln!(s, "ops measured           {:>12}", self.ops);
        let _ = writeln!(s, "consistency points     {:>12}", self.cps);
        let _ = writeln!(
            s,
            "aggregate free         {:>11.1}%",
            self.aggregate_free * 100.0
        );
        let _ = writeln!(
            s,
            "picked physical AA free{:>11.1}%",
            self.agg_pick_free * 100.0
        );
        let _ = writeln!(
            s,
            "picked virtual AA free {:>11.1}%",
            self.vol_pick_free * 100.0
        );
        let _ = writeln!(
            s,
            "full-stripe writes     {:>11.1}%",
            self.full_stripe_fraction * 100.0
        );
        let _ = writeln!(
            s,
            "metafile pages / op    {:>12.4}",
            self.metafile_pages_per_op
        );
        let _ = writeln!(s, "WAFL CPU / op          {:>10.1}µs", self.cpu_us_per_op);
        let _ = writeln!(
            s,
            "write amplification    {:>12.2}",
            self.write_amplification
        );
        let _ = writeln!(s, "SMR interventions      {:>12}", self.smr_interventions);
        if let Some(iron) = &self.iron {
            let _ = writeln!(
                s,
                "iron check             {:>12}",
                if iron.is_clean() { "clean" } else { "FINDINGS" }
            );
        }
        if let Some(h) = &self.health {
            let _ = writeln!(s, "health                 {:>12}", h.state);
            let _ = writeln!(s, "quarantined AAs        {:>12}", h.quarantined_aas);
            let _ = writeln!(s, "pending repairs        {:>12}", h.pending_repairs);
            let _ = writeln!(s, "scrub units scanned    {:>12}", h.scrub_pages_scanned);
            let _ = writeln!(s, "scrub faults detected  {:>12}", h.scrub_faults_detected);
            let _ = writeln!(
                s,
                "scrub repairs ok       {:>12}",
                h.scrub_repairs_succeeded
            );
            let _ = writeln!(
                s,
                "delayed-free backlog   {:>12}",
                h.delayed_free_backlog as u64
            );
        }
        if let (Some(p50), Some(p99)) = (self.wall_p50_us, self.wall_p99_us) {
            let _ = writeln!(s, "CP wall p50            {:>10.1}µs", p50);
            let _ = writeln!(s, "CP wall p99            {:>10.1}µs", p99);
        }
        if let Some(t) = &self.trace {
            let _ = writeln!(s, "trace events           {:>12}", t.events);
            let _ = writeln!(s, "trace dropped          {:>12}", t.dropped);
            let _ = writeln!(s, "trace written          {}", t.path);
            let _ = writeln!(s, "series written         {}", t.series_json);
        }
        if let Some(w) = &self.wall_overlay {
            let _ = writeln!(s, "wall µs / CP           {:>12.1}", w.wall_us_per_cp);
            let _ = writeln!(s, "model µs / CP          {:>12.1}", w.model_us_per_cp);
            let _ = writeln!(s, "wall / model ratio     {:>12.3}", w.total_ratio);
            let _ = writeln!(
                s,
                "max phase drift        {:>11.1}%",
                w.max_abs_drift * 100.0
            );
            for p in &w.phases {
                // Zero-model phases (`costing`; empty-CP windows) have no
                // meaningful quotient — print the absolute-µs drift.
                let ratio = match p.ratio {
                    Some(r) => format!("ratio {r:>8.3}"),
                    None => format!("drift {:>+7.1}µs", p.drift_us),
                };
                let _ = writeln!(
                    s,
                    "  {:<20} wall {:>5.1}%  model {:>5.1}%  drift {:>+5.1}%  {ratio}",
                    p.phase,
                    p.wall_fraction * 100.0,
                    p.model_fraction * 100.0,
                    p.drift * 100.0
                );
            }
        }
        s
    }
}

/// Half-decade µs bucket ladder for `trace-report` latency quantiles.
const REPORT_US_BOUNDS: &[f64] = &[
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
];

/// Latency quantiles for one span name in a trace file.
#[derive(Debug, serde::Serialize)]
pub struct PhaseQuantiles {
    /// Span name, e.g. `cp.bind` or `shard.drain`.
    pub phase: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Median wall duration, µs (bucket-interpolated).
    pub p50_us: f64,
    /// 99th-percentile wall duration, µs.
    pub p99_us: f64,
}

/// One shard track's drain activity over the whole trace.
#[derive(Debug, serde::Serialize)]
pub struct ShardUtilization {
    /// Shard index (track `tid - 1`).
    pub shard: usize,
    /// Total `shard.drain` wall time, µs.
    pub busy_us: f64,
    /// Lease grants recorded on this track.
    pub leases: u64,
    /// Grants that were steals from a sibling's queue.
    pub steals: u64,
    /// `busy_us` over the engine track's total `cp` span time.
    pub utilization: f64,
}

/// Everything `trace-report` derives from an exported trace file.
#[derive(Debug, serde::Serialize)]
pub struct TraceReport {
    /// Events in the file (including metadata).
    pub events: usize,
    /// Matched begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Shard tracks named in the file.
    pub shard_tracks: usize,
    /// CPs covered (`max cp + 1`, 0 when the file has no CP-keyed events).
    pub cps: u64,
    /// Per-phase latency quantiles, sorted by name.
    pub phases: Vec<PhaseQuantiles>,
    /// Per-shard drain activity.
    pub shards: Vec<ShardUtilization>,
    /// Busiest shard's drain time over the mean (1.0 = perfectly even,
    /// 0.0 when no shard recorded work).
    pub imbalance: f64,
    /// Stolen leases over all leases (0.0 when no leases).
    pub steal_rate: f64,
    /// Quarantine / release / health-transition events, file order.
    pub timeline: Vec<String>,
}

/// Run the `trace-report` subcommand over an exported trace file.
pub fn run_trace_report(o: &TraceReportOpts) -> Result<TraceReport, String> {
    let text = std::fs::read_to_string(&o.path).map_err(|e| format!("read {}: {e}", o.path))?;
    let parsed = parse_chrome_trace(&text)?;
    let stats = validate_chrome_trace(&parsed, o.expect_shards)?;
    Ok(analyze_trace(&parsed, &stats))
}

fn analyze_trace(parsed: &[ParsedEvent], stats: &wafl_obs::trace::ChromeTraceStats) -> TraceReport {
    let (events, spans, instants, shard_tracks) = (
        stats.events,
        stats.spans,
        stats.instants,
        stats.shard_tracks,
    );
    // Per-phase latency histograms over the end events' wall_us arg
    // (span ends carry the unclipped duration).
    let reg = Registry::new();
    let mut phases: BTreeMap<String, wafl_obs::Histogram> = BTreeMap::new();
    let mut shard_busy: BTreeMap<usize, f64> = BTreeMap::new();
    let mut shard_leases: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    let mut engine_cp_us = 0.0;
    let mut timeline = Vec::new();
    for ev in parsed {
        match ev.ph.as_str() {
            "E" => {
                let wall = ev
                    .args
                    .get("wall_us")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                phases
                    .entry(ev.name.clone())
                    .or_insert_with(|| reg.histogram(&ev.name, REPORT_US_BOUNDS))
                    .observe(wall);
                if ev.name == "shard.drain" && ev.tid >= 1 {
                    *shard_busy.entry(ev.tid as usize - 1).or_default() += wall;
                } else if ev.name == "cp" && ev.tid == 0 {
                    engine_cp_us += wall;
                }
            }
            "i" => match ev.name.as_str() {
                "alloc.lease" if ev.tid >= 1 => {
                    let entry = shard_leases.entry(ev.tid as usize - 1).or_default();
                    entry.0 += 1;
                    if ev.args.get("stolen").and_then(|v| v.as_f64()) == Some(1.0) {
                        entry.1 += 1;
                    }
                }
                "scrub.quarantine" | "scrub.release" => {
                    let units = ev.args.get("units").and_then(|v| v.as_f64()).unwrap_or(0.0);
                    timeline.push(format!(
                        "cp {:>5}  ts {:>12.0}µs  {:<16} units={units}",
                        ev.cp.unwrap_or(0),
                        ev.ts,
                        ev.name
                    ));
                }
                "health.state" => {
                    let get = |k| ev.args.get(k).and_then(|v| v.as_f64()).unwrap_or(-1.0);
                    timeline.push(format!(
                        "cp {:>5}  ts {:>12.0}µs  {:<16} {} -> {}",
                        ev.cp.unwrap_or(0),
                        ev.ts,
                        ev.name,
                        get("from"),
                        get("to")
                    ));
                }
                _ => {}
            },
            _ => {}
        }
    }
    let phases: Vec<PhaseQuantiles> = phases
        .into_iter()
        .map(|(phase, h)| PhaseQuantiles {
            phase,
            count: h.count(),
            p50_us: h.quantile(0.50),
            p99_us: h.quantile(0.99),
        })
        .collect();
    let shards: Vec<ShardUtilization> = (0..shard_tracks)
        .map(|i| {
            let busy_us = shard_busy.get(&i).copied().unwrap_or(0.0);
            let (leases, steals) = shard_leases.get(&i).copied().unwrap_or((0, 0));
            ShardUtilization {
                shard: i,
                busy_us,
                leases,
                steals,
                utilization: if engine_cp_us > 0.0 {
                    busy_us / engine_cp_us
                } else {
                    0.0
                },
            }
        })
        .collect();
    let mean_busy = if shards.is_empty() {
        0.0
    } else {
        shards.iter().map(|s| s.busy_us).sum::<f64>() / shards.len() as f64
    };
    let max_busy = shards.iter().map(|s| s.busy_us).fold(0.0, f64::max);
    let (total_leases, total_steals) = shards
        .iter()
        .fold((0u64, 0u64), |(l, s), sh| (l + sh.leases, s + sh.steals));
    TraceReport {
        events,
        spans,
        instants,
        shard_tracks,
        cps: parsed
            .iter()
            .filter_map(|e| e.cp)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0),
        phases,
        shards,
        imbalance: if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            0.0
        },
        steal_rate: if total_leases > 0 {
            total_steals as f64 / total_leases as f64
        } else {
            0.0
        },
        timeline,
    }
}

impl TraceReport {
    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        let _ = writeln!(
            s,
            "events {}  spans {}  instants {}  shard tracks {}  CPs {}",
            self.events, self.spans, self.instants, self.shard_tracks, self.cps
        );
        let _ = writeln!(s, "\nphase latencies (wall µs)");
        let _ = writeln!(
            s,
            "  {:<20} {:>8} {:>12} {:>12}",
            "phase", "count", "p50", "p99"
        );
        for p in &self.phases {
            let _ = writeln!(
                s,
                "  {:<20} {:>8} {:>12.1} {:>12.1}",
                p.phase, p.count, p.p50_us, p.p99_us
            );
        }
        if !self.shards.is_empty() {
            let _ = writeln!(
                s,
                "\nshard utilization (steal rate {:.1}%)",
                self.steal_rate * 100.0
            );
            let _ = writeln!(
                s,
                "  {:<8} {:>12} {:>8} {:>8} {:>12}",
                "shard", "busy µs", "leases", "steals", "utilization"
            );
            for sh in &self.shards {
                let _ = writeln!(
                    s,
                    "  {:<8} {:>12.1} {:>8} {:>8} {:>11.1}%",
                    sh.shard,
                    sh.busy_us,
                    sh.leases,
                    sh.steals,
                    sh.utilization * 100.0
                );
            }
            let _ = writeln!(s, "  imbalance (max/mean busy) {:>6.2}", self.imbalance);
        }
        if !self.timeline.is_empty() {
            let _ = writeln!(s, "\nquarantine / health timeline");
            for line in &self.timeline {
                let _ = writeln!(s, "  {line}");
            }
        }
        s
    }
}

/// Run the `mount-bench` subcommand; returns (with-TopAA, cold) stats.
pub fn run_mount_bench(o: &MountBenchOpts) -> WaflResult<(mount::MountStats, mount::MountStats)> {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: o.device_blocks,
        profile: MediaProfile::hdd(),
    };
    let vols: Vec<(FlexVolConfig, u64)> = (0..o.vols)
        .map(|_| {
            (
                FlexVolConfig {
                    size_blocks: o.vol_blocks,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1024,
            )
        })
        .collect();
    let mut cfg = AggregateConfig::single_group(spec);
    if let Some(shards) = o.write_shards {
        cfg.write_shards = shards;
    }
    let mut agg = Aggregate::new(cfg, &vols, 1)?;
    let image = mount::save_topaa(&agg);
    mount::crash(&mut agg);
    let fast = mount::mount_with_topaa(&mut agg, &image)?;
    mount::crash(&mut agg);
    let cold = mount::mount_cold(&mut agg)?;
    Ok((fast, cold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_defaults() {
        let Command::Simulate(o) = parse(&args("simulate")) else {
            panic!("expected simulate");
        };
        assert_eq!(o, SimulateOpts::default());
    }

    #[test]
    fn parse_full_simulate() {
        let Command::Simulate(o) = parse(&args(
            "simulate --media hdd --devices 6 --parity 2 --device-blocks 8192 \
             --fill 0.8 --churn 0 --workload oltp --ops 1000 --ops-per-cp 128 \
             --no-vol-cache --batched-frees --check --json --scrub 4 \
             --write-shards 3",
        )) else {
            panic!("expected simulate");
        };
        assert_eq!(o.scrub, 4);
        assert_eq!(o.write_shards, Some(3));
        assert_eq!(o.media, MediaType::Hdd);
        assert_eq!(o.devices, 6);
        assert_eq!(o.parity, 2);
        assert_eq!(o.device_blocks, 8192);
        assert_eq!(o.fill, 0.8);
        assert_eq!(o.workload, "oltp");
        assert!(o.no_vol_cache && !o.no_agg_cache);
        assert!(o.batched_frees && o.check && o.json && !o.trim);
    }

    #[test]
    fn parse_errors_become_help() {
        assert!(matches!(
            parse(&args("simulate --media floppy")),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&args("simulate --ops nope")),
            Command::Help(Some(_))
        ));
        assert!(matches!(parse(&args("frobnicate")), Command::Help(Some(_))));
        assert!(matches!(
            parse(&args("simulate --ops")),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&args("simulate --write-shards many")),
            Command::Help(Some(_))
        ));
        assert!(matches!(parse(&[]), Command::Help(None)));
        assert!(matches!(parse(&args("help")), Command::Help(None)));
    }

    #[test]
    fn simulate_runs_small() {
        let o = SimulateOpts {
            device_blocks: 512 * 40,
            ops: 5_000,
            churn: 0.5,
            check: true,
            scrub: 2,
            ..SimulateOpts::default()
        };
        let r = run_simulate(&o).unwrap();
        assert_eq!(r.ops, 5_000);
        assert!(r.cps > 0);
        assert!(r.write_amplification >= 1.0);
        assert!(r.iron.as_ref().unwrap().is_clean());
        let health = r.health.as_ref().unwrap();
        assert_eq!(health.state, "healthy");
        assert_eq!(health.quarantined_aas, 0);
        assert!(health.scrub_pages_scanned > 0, "scrub budget ran");
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(
            json.contains("\"vol=0.space.free_fraction\""),
            "--check JSON must carry per-volume vol=<id> labels: {json}"
        );
        assert!(json.contains("\"vol=0.allocator.cursor_misses\""));
        let overlay = r
            .wall_overlay
            .as_ref()
            .expect("--check builds the wall overlay");
        assert!(overlay.wall_us_per_cp > 0.0);
        assert!(overlay.model_us_per_cp > 0.0);
        assert_eq!(overlay.phases.len(), 5);
        let text = r.to_text();
        assert!(text.contains("write amplification"));
        assert!(text.contains("clean"));
        assert!(text.contains("health"));
        assert!(text.contains("wall / model ratio"));
    }

    #[test]
    fn write_shards_override_applies_and_zero_is_rejected() {
        let o = SimulateOpts {
            device_blocks: 512 * 40,
            ops: 2_000,
            churn: 0.0,
            write_shards: Some(2),
            ..SimulateOpts::default()
        };
        let r = run_simulate(&o).unwrap();
        assert_eq!(r.ops, 2_000);
        // The retired legacy pipeline's shard count must not build.
        let bad = SimulateOpts {
            write_shards: Some(0),
            ..o
        };
        assert!(run_simulate(&bad).is_err());
    }

    #[test]
    fn simulate_runs_each_workload_and_media() {
        for (media, workload) in [
            ("hdd", "oltp"),
            ("smr", "sequential"),
            ("object", "overwrite"),
            ("ssd", "churn"),
        ] {
            let Command::Simulate(o) = parse(&args(&format!(
                "simulate --media {media} --workload {workload} --ops 2000 \
                 --device-blocks 16384 --churn 0.2"
            ))) else {
                panic!("parse failed for {media}");
            };
            let r = run_simulate(&o).unwrap_or_else(|e| panic!("{media}/{workload} failed: {e}"));
            assert_eq!(r.ops, 2000);
        }
    }

    #[test]
    fn parse_trace_flags_and_trace_report() {
        let Command::Simulate(o) =
            parse(&args("simulate --trace /tmp/t.json --trace-capacity 1024"))
        else {
            panic!("expected simulate");
        };
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(o.trace_capacity, 1024);
        let Command::TraceReport(r) = parse(&args("trace-report /tmp/t.json --expect-shards 4"))
        else {
            panic!("expected trace-report");
        };
        assert_eq!(r.path, "/tmp/t.json");
        assert_eq!(r.expect_shards, Some(4));
        assert!(matches!(
            parse(&args("trace-report")),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&args("trace-report --expect-shards 4")),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&args("simulate --trace-capacity 0")),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn simulate_trace_exports_and_reports() {
        let dir = std::env::temp_dir().join("wafl_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json").to_str().unwrap().to_string();
        let o = SimulateOpts {
            device_blocks: 512 * 40,
            ops: 5_000,
            churn: 0.2,
            check: true,
            write_shards: Some(4),
            trace: Some(path.clone()),
            ..SimulateOpts::default()
        };
        let r = run_simulate(&o).unwrap();
        let t = r.trace.as_ref().expect("--trace records artifacts");
        assert!(t.events > 0);
        assert_eq!(t.dropped, 0, "default ring holds a small run");
        assert_eq!(t.shard_tracks, 4);
        assert!(r.wall_p50_us.unwrap() > 0.0);
        assert!(r.wall_p99_us.unwrap() >= r.wall_p50_us.unwrap());
        let text = r.to_text();
        assert!(text.contains("CP wall p50"));
        assert!(text.contains("trace written"));

        let report = run_trace_report(&TraceReportOpts {
            path: path.clone(),
            expect_shards: Some(4),
        })
        .expect("exported trace validates");
        assert_eq!(report.shard_tracks, 4);
        assert!(report.cps > 0, "aging and measured CPs are journaled");
        assert!(report
            .phases
            .iter()
            .any(|p| p.phase == "cp.bind" && p.count > 0 && p.p99_us >= p.p50_us));
        assert!(report.phases.iter().any(|p| p.phase == "shard.drain"));
        assert_eq!(report.shards.len(), 4);
        assert!(
            report.shards.iter().map(|s| s.leases).sum::<u64>() > 0,
            "lease instants are attributed to shard tracks"
        );
        let rendered = report.to_text();
        assert!(rendered.contains("phase latencies"));
        assert!(rendered.contains("shard utilization"));
        // Wrong track-count expectations fail loudly.
        assert!(run_trace_report(&TraceReportOpts {
            path: path.clone(),
            expect_shards: Some(3),
        })
        .is_err());
        // The series artifacts parse as JSON / start with the CSV header.
        let sj = std::fs::read_to_string(&t.series_json).unwrap();
        assert!(wafl_obs::trace::json::parse(&sj).is_ok());
        assert!(std::fs::read_to_string(&t.series_csv)
            .unwrap()
            .starts_with("cp,"));
    }

    #[test]
    fn mount_bench_runs() {
        let (fast, cold) = run_mount_bench(&MountBenchOpts {
            vols: 3,
            vol_blocks: 2 * 32768,
            device_blocks: 8 * 4096,
            write_shards: None,
        })
        .unwrap();
        assert_eq!(fast.metafile_blocks_read, 1 + 3 * 2);
        assert!(cold.metafile_blocks_read > fast.metafile_blocks_read);
    }
}
