//! `wafl-sim` binary entry point.

use wafl_cli::{parse, run_mount_bench, run_simulate, run_trace_report, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Command::Help(None) => print!("{USAGE}"),
        Command::Help(Some(err)) => {
            eprintln!("error: {err}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
        Command::Simulate(opts) => match run_simulate(&opts) {
            Ok(report) => {
                if opts.json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&report).expect("report serializes")
                    );
                } else {
                    print!("{}", report.to_text());
                }
                if let Some(iron) = &report.iron {
                    if !iron.is_clean() {
                        eprintln!("iron findings: {iron:?}");
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("simulate failed: {e}");
                std::process::exit(1);
            }
        },
        Command::TraceReport(opts) => match run_trace_report(&opts) {
            Ok(report) => print!("{}", report.to_text()),
            Err(e) => {
                eprintln!("trace-report failed: {e}");
                std::process::exit(1);
            }
        },
        Command::MountBench(opts) => match run_mount_bench(&opts) {
            Ok((fast, cold)) => {
                println!(
                    "TopAA mount : {:>6} metafile blocks, {:>10.0} µs modelled",
                    fast.metafile_blocks_read, fast.first_cp_ready_us
                );
                println!(
                    "cold walk   : {:>6} metafile blocks, {:>10.0} µs modelled",
                    cold.metafile_blocks_read, cold.first_cp_ready_us
                );
                println!(
                    "speedup     : {:>6.1}x",
                    cold.first_cp_ready_us / fast.first_cp_ready_us.max(1e-9)
                );
            }
            Err(e) => {
                eprintln!("mount-bench failed: {e}");
                std::process::exit(1);
            }
        },
    }
}
