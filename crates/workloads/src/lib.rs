//! Workload generators for the paper's experiments.
//!
//! Each generator is a deterministic, seeded stream of client operations:
//!
//! * [`RandomOverwrite`] — 8 KiB-style random overwrites of configured
//!   LUNs, the §4.1 fragmentation/measurement workload ("random
//!   overwrites create worst-case fragmentation in a COW file system").
//! * [`OltpMix`] — the §4.2 internal OLTP benchmark model: predominantly
//!   random point reads and updates ("query and update operations typical
//!   to a database").
//! * [`SequentialWrite`] — streaming writes, the §4.3 SMR workload.
//! * [`FileChurn`] — file create/delete cycles, the other §2.2
//!   fragmentation source.
//!
//! [`run`] drives any generator against an [`Aggregate`], flushing a CP
//! every `ops_per_cp` operations and accumulating the costs the harness
//! turns into latency/throughput curves. [`torture`] drives a generator
//! into a seeded crash/corruption/remount round instead.

#![warn(missing_docs)]

pub mod torture;

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use wafl_fs::{Aggregate, CpStats};
use wafl_types::{VolumeId, WaflResult};

/// One client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Overwrite (or first write of) a logical block.
    Write {
        /// Target volume.
        vol: VolumeId,
        /// Logical block within the volume.
        logical: u64,
    },
    /// Point read of a logical block.
    Read {
        /// Target volume.
        vol: VolumeId,
        /// Logical block within the volume.
        logical: u64,
    },
    /// Delete (unmap) a logical block.
    Delete {
        /// Target volume.
        vol: VolumeId,
        /// Logical block within the volume.
        logical: u64,
    },
}

/// A deterministic operation stream.
pub trait Workload {
    /// Produce the next operation.
    fn next_op(&mut self) -> Op;
}

/// Uniform random overwrites across one volume's working set (§4.1).
pub struct RandomOverwrite {
    vol: VolumeId,
    working_set: u64,
    rng: StdRng,
}

impl RandomOverwrite {
    /// Overwrites of blocks `0..working_set` in `vol`.
    pub fn new(vol: VolumeId, working_set: u64, seed: u64) -> RandomOverwrite {
        assert!(working_set > 0, "empty working set");
        RandomOverwrite {
            vol,
            working_set,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for RandomOverwrite {
    fn next_op(&mut self) -> Op {
        Op::Write {
            vol: self.vol,
            logical: self.rng.random_range(0..self.working_set),
        }
    }
}

/// OLTP-style mix: random point reads and updates over a working set,
/// optionally spread across several volumes (§4.2).
pub struct OltpMix {
    vols: Vec<(VolumeId, u64)>,
    read_fraction: f64,
    rng: StdRng,
}

impl OltpMix {
    /// `vols` pairs each volume with its working-set size;
    /// `read_fraction` of operations are reads (the paper's workload is
    /// "predominantly random read and write").
    pub fn new(vols: Vec<(VolumeId, u64)>, read_fraction: f64, seed: u64) -> OltpMix {
        assert!(!vols.is_empty() && vols.iter().all(|&(_, w)| w > 0));
        assert!((0.0..=1.0).contains(&read_fraction));
        OltpMix {
            vols,
            read_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for OltpMix {
    fn next_op(&mut self) -> Op {
        let (vol, ws) = self.vols[self.rng.random_range(0..self.vols.len())];
        let logical = self.rng.random_range(0..ws);
        if self.rng.random_bool(self.read_fraction) {
            Op::Read { vol, logical }
        } else {
            Op::Write { vol, logical }
        }
    }
}

/// Hot/cold skewed overwrites: `hot_fraction` of operations hit the
/// `hot_set` fraction of the working set (e.g. 90 % of writes to 10 % of
/// blocks — the enterprise-LUN skew Flash Pool exploits, §2.1).
pub struct HotCold {
    vol: VolumeId,
    working_set: u64,
    hot_blocks: u64,
    hot_fraction: f64,
    rng: StdRng,
}

impl HotCold {
    /// Skewed overwrites over `working_set` blocks of `vol`: the first
    /// `hot_set` fraction of the space receives `hot_fraction` of ops.
    pub fn new(
        vol: VolumeId,
        working_set: u64,
        hot_set: f64,
        hot_fraction: f64,
        seed: u64,
    ) -> HotCold {
        assert!(working_set > 0);
        assert!((0.0..=1.0).contains(&hot_set) && (0.0..=1.0).contains(&hot_fraction));
        let hot_blocks = ((working_set as f64 * hot_set) as u64).clamp(1, working_set);
        HotCold {
            vol,
            working_set,
            hot_blocks,
            hot_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for HotCold {
    fn next_op(&mut self) -> Op {
        let logical = if self.rng.random_bool(self.hot_fraction) {
            self.rng.random_range(0..self.hot_blocks)
        } else {
            self.rng.random_range(0..self.working_set)
        };
        Op::Write {
            vol: self.vol,
            logical,
        }
    }
}

/// Streaming sequential writes, wrapping at the working set (§4.3's SMR
/// experiment issues "sequential writes to an unaged file system").
pub struct SequentialWrite {
    vol: VolumeId,
    working_set: u64,
    cursor: u64,
}

impl SequentialWrite {
    /// Sequential writes over blocks `0..working_set` of `vol`.
    pub fn new(vol: VolumeId, working_set: u64) -> SequentialWrite {
        assert!(working_set > 0);
        SequentialWrite {
            vol,
            working_set,
            cursor: 0,
        }
    }
}

impl Workload for SequentialWrite {
    fn next_op(&mut self) -> Op {
        let op = Op::Write {
            vol: self.vol,
            logical: self.cursor,
        };
        self.cursor = (self.cursor + 1) % self.working_set;
        op
    }
}

/// File create/delete churn: "files" are fixed-length runs of logical
/// blocks; each cycle writes a whole file, and once the volume carries
/// `max_live_files`, deletes a random older file first (§2.2: "the
/// creation and deletion of files can eventually result in similar
/// fragmentation").
pub struct FileChurn {
    vol: VolumeId,
    file_blocks: u64,
    slots: u64,
    live: Vec<u64>,
    max_live: usize,
    rng: StdRng,
    /// Remaining (slot, offset) writes of the file under construction.
    in_flight: Vec<Op>,
}

impl FileChurn {
    /// Churn over a volume with room for `slots` files of `file_blocks`
    /// each, keeping at most `max_live` files alive.
    pub fn new(
        vol: VolumeId,
        file_blocks: u64,
        slots: u64,
        max_live: usize,
        seed: u64,
    ) -> FileChurn {
        assert!(file_blocks > 0 && slots > 0 && max_live > 0);
        assert!((max_live as u64) < slots, "need free slots to rotate into");
        FileChurn {
            vol,
            file_blocks,
            slots,
            live: Vec::new(),
            max_live,
            rng: StdRng::seed_from_u64(seed),
            in_flight: Vec::new(),
        }
    }
}

impl Workload for FileChurn {
    fn next_op(&mut self) -> Op {
        if let Some(op) = self.in_flight.pop() {
            return op;
        }
        // Start a new cycle: delete if at capacity, then create. The
        // in-flight queue pops LIFO, so push the creation writes first and
        // the deletions last — deletes must reach the file system before
        // the new file's writes in case the slot is reused.
        let slot = {
            let s = loop {
                let s = self.rng.random_range(0..self.slots);
                if !self.live.contains(&s) {
                    break s;
                }
            };
            self.live.push(s);
            s
        };
        for off in (0..self.file_blocks).rev() {
            self.in_flight.push(Op::Write {
                vol: self.vol,
                logical: slot * self.file_blocks + off,
            });
        }
        if self.live.len() > self.max_live {
            let victim_idx = loop {
                let i = self.rng.random_range(0..self.live.len());
                if self.live[i] != slot {
                    break i;
                }
            };
            let victim = self.live.swap_remove(victim_idx);
            for off in (0..self.file_blocks).rev() {
                self.in_flight.push(Op::Delete {
                    vol: self.vol,
                    logical: victim * self.file_blocks + off,
                });
            }
        }
        self.in_flight.pop().expect("file has blocks")
    }
}

/// Accumulated results of a workload run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Write operations issued.
    pub writes: u64,
    /// Read operations issued.
    pub reads: u64,
    /// Delete operations issued.
    pub deletes: u64,
    /// Total media read time, µs.
    pub read_us: f64,
    /// Accumulated CP statistics.
    pub cp: CpStats,
    /// Number of CPs run.
    pub cps: u64,
}

/// Drive `ops` operations from `workload` against `agg`, flushing a CP
/// every `ops_per_cp` *write/delete* operations and once at the end.
pub fn run(
    agg: &mut Aggregate,
    workload: &mut dyn Workload,
    ops: u64,
    ops_per_cp: usize,
) -> WaflResult<RunStats> {
    let mut stats = RunStats::default();
    let mut since_cp = 0usize;
    for _ in 0..ops {
        match workload.next_op() {
            Op::Write { vol, logical } => {
                agg.client_overwrite(vol, logical)?;
                stats.writes += 1;
                since_cp += 1;
            }
            Op::Read { vol, logical } => {
                stats.read_us += agg.client_read(vol, logical)?;
                stats.reads += 1;
            }
            Op::Delete { vol, logical } => {
                agg.client_delete(vol, logical)?;
                stats.deletes += 1;
                since_cp += 1;
            }
        }
        if since_cp >= ops_per_cp {
            stats.cp.accumulate(&agg.run_cp()?);
            stats.cps += 1;
            since_cp = 0;
        }
    }
    if since_cp > 0 {
        stats.cp.accumulate(&agg.run_cp()?);
        stats.cps += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_fs::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;

    fn agg() -> Aggregate {
        Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            1,
        )
        .unwrap()
    }

    #[test]
    fn random_overwrite_is_deterministic() {
        let mut a = RandomOverwrite::new(VolumeId(0), 1000, 7);
        let mut b = RandomOverwrite::new(VolumeId(0), 1000, 7);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = RandomOverwrite::new(VolumeId(0), 1000, 8);
        let same = (0..100).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn oltp_mix_respects_read_fraction() {
        let mut w = OltpMix::new(vec![(VolumeId(0), 1000)], 0.7, 3);
        let reads = (0..10_000)
            .filter(|_| matches!(w.next_op(), Op::Read { .. }))
            .count();
        assert!((6500..7500).contains(&reads), "reads {reads}");
    }

    #[test]
    fn hot_cold_skews_toward_the_hot_set() {
        let mut w = HotCold::new(VolumeId(0), 10_000, 0.1, 0.9, 5);
        let mut hot_hits = 0;
        for _ in 0..10_000 {
            if let Op::Write { logical, .. } = w.next_op() {
                if logical < 1000 {
                    hot_hits += 1;
                }
            }
        }
        // 90 % targeted + ~10 % of the uniform remainder also lands hot.
        assert!((8800..9400).contains(&hot_hits), "hot hits {hot_hits}");
    }

    #[test]
    fn sequential_write_wraps() {
        let mut w = SequentialWrite::new(VolumeId(0), 3);
        let ls: Vec<u64> = (0..7)
            .map(|_| match w.next_op() {
                Op::Write { logical, .. } => logical,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ls, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn file_churn_creates_then_rotates() {
        let mut w = FileChurn::new(VolumeId(0), 4, 10, 2, 5);
        let mut live: std::collections::HashSet<u64> = Default::default();
        let mut writes = 0;
        let mut deletes = 0;
        for _ in 0..200 {
            match w.next_op() {
                Op::Write { logical, .. } => {
                    live.insert(logical);
                    writes += 1;
                }
                Op::Delete { logical, .. } => {
                    assert!(live.remove(&logical), "deleted a never-written block");
                    deletes += 1;
                }
                Op::Read { .. } => unreachable!(),
            }
        }
        assert!(writes > deletes);
        assert!(deletes > 0);
        // Live blocks bounded by max_live files (+ one under construction).
        assert!(live.len() as u64 <= 3 * 4);
    }

    #[test]
    fn run_drives_cps_and_accounts_ops() {
        let mut a = agg();
        let mut w = OltpMix::new(vec![(VolumeId(0), 50_000)], 0.5, 9);
        let stats = run(&mut a, &mut w, 20_000, 2048).unwrap();
        assert_eq!(stats.writes + stats.reads, 20_000);
        assert!(stats.cps >= (stats.writes / 2048).max(1));
        // Repeated overwrites of a block coalesce within a CP (§2.1), so
        // the flushed block count is at most the issued write count.
        assert!(stats.cp.blocks_written <= stats.writes);
        assert!(stats.cp.blocks_written > stats.writes * 9 / 10);
        assert!(stats.cp.cpu_us > 0.0);
    }

    #[test]
    fn churn_through_fs_conserves_space() {
        let mut a = agg();
        let mut w = FileChurn::new(VolumeId(0), 64, 100, 50, 11);
        run(&mut a, &mut w, 30_000, 4096).unwrap();
        // Free space must equal total minus live mappings.
        let vol = &a.volumes()[0];
        let mapped = (0..vol.logical_blocks())
            .filter(|&l| vol.lookup_logical(l).is_some())
            .count() as u64;
        assert_eq!(a.bitmap().free_blocks(), a.bitmap().space_len() - mapped);
        assert_eq!(vol.free_blocks(), vol.size_blocks() - mapped);
    }
}
