//! Reusable crash/corruption torture rounds.
//!
//! One round is the recovery loop `docs/recovery.md` describes: drive
//! client traffic from a [`Workload`](crate::Workload), tear the CP at
//! the plan's crash site, damage the persisted TopAA image, remount in
//! degraded mode, and audit (repairing if the audit is dirty). The plan
//! comes from [`FaultPlan::random`], so a round is reproducible from its
//! seed and the aggregate's shape alone.
//!
//! The harness uses this to summarize recovery behavior over many seeds;
//! `crates/fs/tests/crash_consistency.rs` carries the assertion-heavy
//! twin of this loop.

use crate::{Op, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wafl_faults::{CrashSite, FaultPlan, FaultSession, PlanShape};
use wafl_fs::{iron, mount, Aggregate, CpOutcome, HealthState};
use wafl_types::{RetryPolicy, WaflResult};

/// What one torture round did and how recovery went.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TortureRound {
    /// The seed the round's fault plan was generated from.
    pub seed: u64,
    /// Where the CP was cut short, if the plan scheduled a crash.
    pub crashed: Option<String>,
    /// Structures the remount degraded to a cold bitmap scan.
    pub degraded_structures: usize,
    /// Transient read failures absorbed by retries during the remount.
    pub transient_retries: u64,
    /// True when the post-remount audit found nothing to fix.
    pub clean_on_arrival: bool,
    /// Repairs `iron::repair` performed (zero when clean on arrival).
    pub repairs: u64,
}

/// Run one seeded torture round against `agg`.
///
/// Returns an error only when the machinery itself fails (e.g. space
/// exhaustion during traffic); fault recovery outcomes — degradations,
/// repairs — are data in the returned [`TortureRound`]. After a round
/// the aggregate is remounted, audited clean or repaired, and ready for
/// more traffic.
pub fn torture_round(
    agg: &mut Aggregate,
    workload: &mut dyn Workload,
    ops: u64,
    seed: u64,
) -> WaflResult<TortureRound> {
    let shape = PlanShape {
        groups: agg.groups().len(),
        volumes: agg.volumes().len(),
        max_progress: ops.max(1),
    };
    let plan = FaultPlan::random(seed, shape);

    for _ in 0..ops {
        match workload.next_op() {
            Op::Write { vol, logical } => agg.client_overwrite(vol, logical)?,
            Op::Read { vol, logical } => {
                let _ = agg.client_read(vol, logical); // unmapped reads are fine
            }
            Op::Delete { vol, logical } => {
                let _ = agg.client_delete(vol, logical);
            }
        }
    }

    // The persisted image a crash leaves behind is the previous CP's;
    // only a CP that reaches its TopAA-persist step refreshes it.
    let mut image = mount::save_topaa(agg);
    let crashed = match agg.run_cp_with_faults(plan.crash)? {
        CpOutcome::Completed(_) => {
            image = mount::save_topaa(agg);
            None
        }
        CpOutcome::Crashed(site) => {
            if site == CrashSite::AfterTopAaPersist {
                image = mount::save_topaa(agg);
            }
            Some(format!("{site:?}"))
        }
    };

    mount::crash(agg);
    mount::apply_scribbles(&mut image, &plan);
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(agg, &image, &mut session, RetryPolicy::default());

    let report = iron::check(agg)?;
    let clean_on_arrival = report.is_clean();
    let repairs = if clean_on_arrival {
        0
    } else {
        iron::repair(agg)?.repairs
    };

    Ok(TortureRound {
        seed,
        crashed,
        degraded_structures: stats.degraded.len(),
        transient_retries: stats.transient_retries,
        clean_on_arrival,
        repairs,
    })
}

/// What one seeded *runtime* scrub torture round observed.
///
/// Unlike [`TortureRound`], which tears down and remounts, this round
/// keeps the aggregate online while in-memory corruption lands mid-run
/// and the CP-budgeted scrubber detects, quarantines, and repairs it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScrubTortureRound {
    /// The seed the round's runtime fault plan was generated from.
    pub seed: u64,
    /// Runtime scribbles the plan scheduled.
    pub scribbles_scheduled: u64,
    /// Faults the scrubber detected during the round.
    pub faults_detected: u64,
    /// Repairs that completed and re-verified clean.
    pub repairs_succeeded: u64,
    /// AAs whose popcount free count *dropped* across a CP while they
    /// were continuously quarantined — i.e. allocations the avoidance
    /// logic should have made impossible. Must be zero.
    pub quarantine_violations: u64,
    /// Where a CP was torn mid-round, if the plan scheduled a crash.
    pub crashed: Option<String>,
    /// Structures the post-crash remount degraded (0 when no crash).
    pub remount_degraded: usize,
    /// Health state after the drain phase, as displayed.
    pub final_health: String,
}

/// Popcount-ground-truth free counts of every currently quarantined AA,
/// keyed so physical (group) and virtual (volume) AAs cannot collide.
/// Popcounts are immune to the very counter scribbles the round injects.
fn quarantined_free_counts(agg: &Aggregate) -> BTreeMap<(bool, usize, u32), u64> {
    let mut map = BTreeMap::new();
    for (gi, g) in agg.groups().iter().enumerate() {
        for aa in g.quarantined_aas() {
            let free: u64 = g
                .topology()
                .aa_vbn_ranges(aa)
                .into_iter()
                .map(|(start, len)| agg.bitmap().free_count_range_popcount(start, len) as u64)
                .sum();
            map.insert((false, gi, aa.get()), free);
        }
    }
    for (vi, v) in agg.volumes().iter().enumerate() {
        for aa in v.quarantined_aas() {
            let free: u64 = v
                .topology()
                .aa_vbn_ranges(aa)
                .into_iter()
                .map(|(start, len)| v.bitmap().free_count_range_popcount(start, len) as u64)
                .sum();
            map.insert((true, vi, aa.get()), free);
        }
    }
    map
}

/// Run one seeded runtime-scrub torture round against `agg`.
///
/// Generates a [`FaultPlan::random_runtime`] schedule, drives `cps`
/// consistency points of `ops_per_cp` client operations each with the
/// fault session attached (so scribbles land at their scheduled CPs and
/// scrub reads can fail), then drains with empty CPs until the health
/// machine settles. If the plan tears a CP, the aggregate is remounted
/// with [`mount::mount_auto`] from the last persisted TopAA image and
/// the round continues — crash-mid-repair must recover too.
///
/// Free-count deltas of continuously quarantined AAs are audited after
/// every CP; any decrease is reported as a `quarantine_violation`.
///
/// Debug-build note: summary-counter scribbles trip the bitmap's debug
/// `verify_summary` assertion when a *non-empty* CP flushes before the
/// repair lands, so callers driving `ops_per_cp > 0` should run in
/// release mode (`scripts/ci.sh --scrub-torture` does).
pub fn scrub_torture_round(
    agg: &mut Aggregate,
    workload: &mut dyn Workload,
    cps: u64,
    ops_per_cp: u64,
    seed: u64,
) -> WaflResult<ScrubTortureRound> {
    let shape = PlanShape {
        groups: agg.groups().len(),
        volumes: agg.volumes().len(),
        max_progress: ops_per_cp.max(1),
    };
    let plan = FaultPlan::random_runtime(seed, shape, cps);
    let mut session = FaultSession::new(&plan);
    let crash_at = plan.crash.map(|_| cps / 2);

    let detected_base = agg
        .obs()
        .counter_value("scrub.faults_detected")
        .unwrap_or(0);
    let repaired_base = agg
        .obs()
        .counter_value("scrub.repairs_succeeded")
        .unwrap_or(0);

    let mut image = mount::save_topaa(agg);
    let mut crashed = None;
    let mut remount_degraded = 0usize;
    let mut quarantine_violations = 0u64;
    let mut watched = quarantined_free_counts(agg);

    let mut check_violations =
        |agg: &Aggregate, watched: &mut BTreeMap<(bool, usize, u32), u64>| {
            let now = quarantined_free_counts(agg);
            for (key, free_now) in &now {
                if let Some(free_before) = watched.get(key) {
                    if free_now < free_before {
                        quarantine_violations += 1;
                    }
                }
            }
            *watched = now;
        };

    for cp in 0..cps {
        for _ in 0..ops_per_cp {
            match workload.next_op() {
                Op::Write { vol, logical } => agg.client_overwrite(vol, logical)?,
                Op::Read { vol, logical } => {
                    let _ = agg.client_read(vol, logical);
                }
                Op::Delete { vol, logical } => {
                    let _ = agg.client_delete(vol, logical);
                }
            }
        }
        let crash = if Some(cp) == crash_at {
            plan.crash
        } else {
            None
        };
        match agg.run_cp_with_session(crash, Some(&mut session))? {
            CpOutcome::Completed(_) => {
                check_violations(agg, &mut watched);
                image = mount::save_topaa(agg);
            }
            CpOutcome::Crashed(site) => {
                if site == CrashSite::AfterTopAaPersist {
                    image = mount::save_topaa(agg);
                }
                crashed = Some(format!("{site:?}"));
                mount::crash(agg);
                let stats = mount::mount_auto(agg, &image);
                remount_degraded = stats.degraded.len();
                // The crash dropped all volatile state, quarantines
                // included; restart the watch from the remounted truth.
                watched = quarantined_free_counts(agg);
            }
        }
    }

    // Drain: empty CPs (debug-safe) until pending repairs finish and the
    // hysteresis window closes, bounded so a wedged state still returns.
    let mut drain = 0u64;
    while agg.health() != HealthState::Healthy && drain < cps + 64 {
        match agg.run_cp_with_session(None, Some(&mut session))? {
            CpOutcome::Completed(_) | CpOutcome::Crashed(_) => {}
        }
        check_violations(agg, &mut watched);
        drain += 1;
    }

    let obs = agg.obs();
    Ok(ScrubTortureRound {
        seed,
        scribbles_scheduled: plan.runtime_scribbles.len() as u64,
        faults_detected: obs
            .counter_value("scrub.faults_detected")
            .unwrap_or(0)
            .saturating_sub(detected_base),
        repairs_succeeded: obs
            .counter_value("scrub.repairs_succeeded")
            .unwrap_or(0)
            .saturating_sub(repaired_base),
        quarantine_violations,
        crashed,
        remount_degraded,
        final_health: agg.health().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomOverwrite;
    use wafl_fs::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_types::VolumeId;

    // `ops_per_cp = 0` keeps every CP empty, which sidesteps the
    // debug-build summary assertion while scribbles are still latent;
    // the release-mode torture suite drives real traffic.
    #[test]
    fn scrub_round_with_empty_cps_settles_healthy() {
        let mut agg = Aggregate::new(
            AggregateConfig {
                scrub_pages_per_cp: 8,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: wafl_media::MediaProfile::ssd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1024,
            )],
            7,
        )
        .unwrap();
        let mut w = RandomOverwrite::new(VolumeId(0), 1024, 3);
        for seed in 0..8u64 {
            let round = scrub_torture_round(&mut agg, &mut w, 12, 0, seed).unwrap();
            assert_eq!(round.quarantine_violations, 0, "seed {seed}");
            assert_eq!(round.final_health, "healthy", "seed {seed}: {round:?}");
            assert!(round.scribbles_scheduled >= 1, "seed {seed}");
        }
    }
}
