//! Reusable crash/corruption torture rounds.
//!
//! One round is the recovery loop `docs/recovery.md` describes: drive
//! client traffic from a [`Workload`](crate::Workload), tear the CP at
//! the plan's crash site, damage the persisted TopAA image, remount in
//! degraded mode, and audit (repairing if the audit is dirty). The plan
//! comes from [`FaultPlan::random`], so a round is reproducible from its
//! seed and the aggregate's shape alone.
//!
//! The harness uses this to summarize recovery behavior over many seeds;
//! `crates/fs/tests/crash_consistency.rs` carries the assertion-heavy
//! twin of this loop.

use crate::{Op, Workload};
use serde::{Deserialize, Serialize};
use wafl_faults::{CrashSite, FaultPlan, FaultSession, PlanShape};
use wafl_fs::{iron, mount, Aggregate, CpOutcome};
use wafl_types::{RetryPolicy, WaflResult};

/// What one torture round did and how recovery went.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TortureRound {
    /// The seed the round's fault plan was generated from.
    pub seed: u64,
    /// Where the CP was cut short, if the plan scheduled a crash.
    pub crashed: Option<String>,
    /// Structures the remount degraded to a cold bitmap scan.
    pub degraded_structures: usize,
    /// Transient read failures absorbed by retries during the remount.
    pub transient_retries: u64,
    /// True when the post-remount audit found nothing to fix.
    pub clean_on_arrival: bool,
    /// Repairs `iron::repair` performed (zero when clean on arrival).
    pub repairs: u64,
}

/// Run one seeded torture round against `agg`.
///
/// Returns an error only when the machinery itself fails (e.g. space
/// exhaustion during traffic); fault recovery outcomes — degradations,
/// repairs — are data in the returned [`TortureRound`]. After a round
/// the aggregate is remounted, audited clean or repaired, and ready for
/// more traffic.
pub fn torture_round(
    agg: &mut Aggregate,
    workload: &mut dyn Workload,
    ops: u64,
    seed: u64,
) -> WaflResult<TortureRound> {
    let shape = PlanShape {
        groups: agg.groups().len(),
        volumes: agg.volumes().len(),
        max_progress: ops.max(1),
    };
    let plan = FaultPlan::random(seed, shape);

    for _ in 0..ops {
        match workload.next_op() {
            Op::Write { vol, logical } => agg.client_overwrite(vol, logical)?,
            Op::Read { vol, logical } => {
                let _ = agg.client_read(vol, logical); // unmapped reads are fine
            }
            Op::Delete { vol, logical } => {
                let _ = agg.client_delete(vol, logical);
            }
        }
    }

    // The persisted image a crash leaves behind is the previous CP's;
    // only a CP that reaches its TopAA-persist step refreshes it.
    let mut image = mount::save_topaa(agg);
    let crashed = match agg.run_cp_with_faults(plan.crash)? {
        CpOutcome::Completed(_) => {
            image = mount::save_topaa(agg);
            None
        }
        CpOutcome::Crashed(site) => {
            if site == CrashSite::AfterTopAaPersist {
                image = mount::save_topaa(agg);
            }
            Some(format!("{site:?}"))
        }
    };

    mount::crash(agg);
    mount::apply_scribbles(&mut image, &plan);
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(agg, &image, &mut session, RetryPolicy::default());

    let report = iron::check(agg)?;
    let clean_on_arrival = report.is_clean();
    let repairs = if clean_on_arrival {
        0
    } else {
        iron::repair(agg)?.repairs
    };

    Ok(TortureRound {
        seed,
        crashed,
        degraded_structures: stats.degraded.len(),
        transient_retries: stats.transient_retries,
        clean_on_arrival,
        repairs,
    })
}
