//! Property-based tests for sizing policies and score arithmetic.

use proptest::prelude::*;
use wafl_types::{AaScore, AaSizingPolicy, ChecksumStyle, MediaType, ScoreDelta, AZCS_DATA_BLOCKS};

proptest! {
    #[test]
    fn device_unit_policies_cover_their_units(
        unit in 1u64..100_000,
        units in 1u64..16,
    ) {
        let p = AaSizingPolicy::DeviceUnits { unit_blocks: unit, units };
        let stripes = p.stripes_per_aa().unwrap();
        prop_assert!(stripes >= unit * units);
        prop_assert_eq!(stripes % unit, 0, "whole number of device units");
    }

    #[test]
    fn azcs_aligned_policies_are_region_multiples(
        unit in 1u64..100_000,
        units in 1u64..16,
    ) {
        let p = AaSizingPolicy::DeviceUnitsAzcsAligned { unit_blocks: unit, units };
        let stripes = p.stripes_per_aa().unwrap();
        prop_assert_eq!(stripes % AZCS_DATA_BLOCKS, 0);
        prop_assert!(stripes >= unit * units, "alignment only rounds up");
        prop_assert!(stripes < unit * units + AZCS_DATA_BLOCKS);
        prop_assert!(p.azcs_aligned());
    }

    #[test]
    fn media_defaults_respect_their_device_units(
        unit in 1u64..50_000,
    ) {
        for media in [MediaType::Ssd, MediaType::Smr] {
            for cs in [ChecksumStyle::Sector520, ChecksumStyle::Azcs] {
                let p = AaSizingPolicy::for_media(media, cs, unit);
                let stripes = p.stripes_per_aa().unwrap();
                prop_assert!(
                    stripes >= 2 * unit,
                    "{media:?}/{cs:?}: AA must span multiple device units \
                     (Fig 4 (B)): {stripes} vs unit {unit}"
                );
            }
        }
    }

    #[test]
    fn score_apply_is_clamped_and_monotone(
        score in 0u32..100_000,
        max in 1u32..100_000,
        delta in -200_000i64..200_000,
    ) {
        let s = AaScore(score.min(max));
        let out = s.apply(ScoreDelta(delta), max);
        prop_assert!(out.get() <= max);
        if delta >= 0 {
            prop_assert!(out >= s);
        } else {
            prop_assert!(out <= s);
        }
        // Exact when in range.
        let exact = s.get() as i64 + delta;
        if (0..=max as i64).contains(&exact) {
            prop_assert_eq!(out.get() as i64, exact);
        }
    }

    #[test]
    fn merged_deltas_equal_sequential_application(
        score in 0u32..10_000,
        a in -5_000i64..5_000,
        b in -5_000i64..5_000,
    ) {
        // Merging is exact when no clamp engages mid-way; verify against
        // the definition on the unclamped path.
        let max = u32::MAX;
        let s = AaScore(score);
        let merged = s.apply(ScoreDelta(a).merge(ScoreDelta(b)), max);
        let mid = s.apply(ScoreDelta(a), max);
        if s.get() as i64 + a >= 0 {
            let sequential = mid.apply(ScoreDelta(b), max);
            prop_assert_eq!(merged, sequential);
        }
    }
}
