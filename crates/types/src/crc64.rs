//! CRC-64 used to seal persisted metafile pages.
//!
//! The paper's TopAA block is headerless — 512 raw (AA, score) pairs —
//! which makes corruption *detectable only by luck* (the deserializer's
//! sort/sentinel checks). This reproduction reserves the trailing 8 bytes
//! of each persisted 4 KiB page for the CRC-64/XZ of the preceding bytes
//! so that damage is detected deterministically and the mount path can
//! degrade that one structure instead of trusting garbage. See
//! `docs/recovery.md` for the format deviation write-up.

/// Reflected CRC-64/XZ generator polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// 256-entry lookup table, built at compile time.
const TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `data` (init and xorout all-ones, reflected).
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &byte in data {
        let idx = ((crc ^ byte as u64) & 0xFF) as usize;
        crc = TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

/// Append the CRC of `page[..len-8]` into the trailing 8 bytes of `page`
/// (little-endian).
pub fn seal_page(page: &mut [u8]) {
    let split = page.len() - crate::TOPAA_CRC_BYTES;
    let crc = crc64(&page[..split]);
    page[split..].copy_from_slice(&crc.to_le_bytes());
}

/// Check a page sealed by [`seal_page`]. Returns `true` when the stored
/// CRC matches the payload.
pub fn verify_page(page: &[u8]) -> bool {
    let split = page.len() - crate::TOPAA_CRC_BYTES;
    let stored = u64::from_le_bytes(page[split..].try_into().expect("8-byte CRC tail"));
    crc64(&page[..split]) == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn seal_then_verify_round_trips() {
        let mut page = vec![0u8; crate::BLOCK_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i * 7) as u8;
        }
        seal_page(&mut page);
        assert!(verify_page(&page));
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let mut page = vec![0xABu8; 512];
        seal_page(&mut page);
        for i in 0..page.len() {
            let mut damaged = page.clone();
            damaged[i] ^= 0x01;
            assert!(!verify_page(&damaged), "flip at byte {i} undetected");
        }
    }
}
