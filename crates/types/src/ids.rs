//! Strongly-typed identifiers for the block-number spaces.
//!
//! WAFL juggles several integer spaces at once — physical VBNs, virtual
//! VBNs, per-device block numbers, stripe indices, AA indices — and mixing
//! them up is the classic off-by-a-space bug. Each space gets a newtype.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw inner value.
            #[inline]
            pub const fn get(self) -> $inner {
                self.0
            }

            /// Convert to `usize` for indexing (panics only if the value
            /// exceeds the platform pointer width, which cannot happen for
            /// the simulated capacities used here).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// A *volume block number*: the index of a 4 KiB block within one
    /// block-number space. Physical VBNs index the aggregate; virtual VBNs
    /// index a FlexVol. The two spaces never mix — APIs that need both take
    /// both explicitly.
    Vbn, u64
);

id_newtype!(
    /// A *device block number*: the index of a block within one storage
    /// device of a RAID group.
    Dbn, u64
);

id_newtype!(
    /// Index of a data or parity device within a RAID group.
    DeviceId, u32
);

id_newtype!(
    /// Index of an allocation area within its block-number space.
    AaId, u32
);

id_newtype!(
    /// Index of a RAID group within an aggregate.
    RaidGroupId, u32
);

id_newtype!(
    /// Index of a stripe within a RAID group (one block per device at the
    /// same DBN).
    StripeId, u64
);

id_newtype!(
    /// Index of a tetris (64 consecutive stripes) within a RAID group.
    TetrisId, u64
);

id_newtype!(
    /// Identifier of a FlexVol volume within an aggregate.
    VolumeId, u32
);

impl Vbn {
    /// The VBN immediately after `self`.
    #[inline]
    pub const fn next(self) -> Vbn {
        Vbn(self.0 + 1)
    }

    /// Offset of this VBN within its containing allocation area of
    /// `aa_blocks` blocks.
    #[inline]
    pub const fn offset_in_aa(self, aa_blocks: u64) -> u64 {
        self.0 % aa_blocks
    }

    /// The allocation area containing this VBN when AAs are `aa_blocks`
    /// consecutive blocks (the RAID-agnostic topology).
    #[inline]
    pub const fn aa(self, aa_blocks: u64) -> AaId {
        AaId((self.0 / aa_blocks) as u32)
    }
}

impl AaId {
    /// First VBN of this AA under the consecutive-VBN (RAID-agnostic)
    /// topology.
    #[inline]
    pub const fn first_vbn(self, aa_blocks: u64) -> Vbn {
        Vbn(self.0 as u64 * aa_blocks)
    }
}

impl StripeId {
    /// The tetris containing this stripe.
    #[inline]
    pub const fn tetris(self) -> TetrisId {
        TetrisId(self.0 / crate::consts::TETRIS_STRIPES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{RAID_AGNOSTIC_AA_BLOCKS, TETRIS_STRIPES};

    #[test]
    fn vbn_to_aa_round_trip() {
        let aa = AaId(7);
        let first = aa.first_vbn(RAID_AGNOSTIC_AA_BLOCKS);
        assert_eq!(first.aa(RAID_AGNOSTIC_AA_BLOCKS), aa);
        assert_eq!(first.offset_in_aa(RAID_AGNOSTIC_AA_BLOCKS), 0);
        let last = Vbn(first.0 + RAID_AGNOSTIC_AA_BLOCKS - 1);
        assert_eq!(last.aa(RAID_AGNOSTIC_AA_BLOCKS), aa);
        assert_eq!(
            last.offset_in_aa(RAID_AGNOSTIC_AA_BLOCKS),
            RAID_AGNOSTIC_AA_BLOCKS - 1
        );
        assert_eq!(last.next().aa(RAID_AGNOSTIC_AA_BLOCKS), AaId(8));
    }

    #[test]
    fn stripe_to_tetris() {
        assert_eq!(StripeId(0).tetris(), TetrisId(0));
        assert_eq!(StripeId(TETRIS_STRIPES - 1).tetris(), TetrisId(0));
        assert_eq!(StripeId(TETRIS_STRIPES).tetris(), TetrisId(1));
        assert_eq!(StripeId(10 * TETRIS_STRIPES + 3).tetris(), TetrisId(10));
    }

    #[test]
    fn display_includes_space_name() {
        assert_eq!(Vbn(42).to_string(), "Vbn(42)");
        assert_eq!(AaId(3).to_string(), "AaId(3)");
    }

    #[test]
    fn ordering_follows_inner() {
        assert!(Vbn(1) < Vbn(2));
        assert!(AaId(0) < AaId(1));
    }
}
