//! Allocation-area scores and batched score deltas.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The score of an allocation area: the number of free blocks it contains
/// (§3.3: "the free space of an AA is quantified by its AA score").
///
/// Scores only ever change at consistency-point boundaries, where the frees
/// (increments) and allocations (decrements) accumulated during the CP are
/// applied as one batch.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AaScore(pub u32);

impl AaScore {
    /// A completely full AA (worst score).
    pub const FULL: AaScore = AaScore(0);

    /// Raw free-block count.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Apply a signed delta, saturating at zero and clamping to `max` (the
    /// AA's block count). Saturation rather than panic: a damaged TopAA
    /// metafile may seed stale scores, and the background rebuild corrects
    /// them — transiently inconsistent deltas must not crash the allocator.
    #[inline]
    pub fn apply(self, delta: ScoreDelta, max: u32) -> AaScore {
        let v = (self.0 as i64 + delta.0).clamp(0, max as i64);
        AaScore(v as u32)
    }

    /// Fraction of the AA that is free, given its total block count.
    #[inline]
    pub fn free_fraction(self, aa_blocks: u32) -> f64 {
        if aa_blocks == 0 {
            0.0
        } else {
            self.0 as f64 / aa_blocks as f64
        }
    }
}

impl fmt::Display for AaScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A signed, batched change to an AA score. Positive for frees, negative
/// for allocations. Accumulated during a CP, applied at its boundary.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ScoreDelta(pub i64);

impl ScoreDelta {
    /// Record `n` blocks freed in the AA.
    #[inline]
    pub fn freed(n: u32) -> ScoreDelta {
        ScoreDelta(n as i64)
    }

    /// Record `n` blocks allocated from the AA.
    #[inline]
    pub fn allocated(n: u32) -> ScoreDelta {
        ScoreDelta(-(n as i64))
    }

    /// Merge another delta into this one (both happened within the same CP).
    #[inline]
    pub fn merge(self, other: ScoreDelta) -> ScoreDelta {
        ScoreDelta(self.0 + other.0)
    }

    /// True if applying this delta would leave any score unchanged.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::AddAssign for ScoreDelta {
    #[inline]
    fn add_assign(&mut self, rhs: ScoreDelta) {
        self.0 += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_clamps_to_range() {
        let max = 100;
        assert_eq!(AaScore(50).apply(ScoreDelta::freed(10), max), AaScore(60));
        assert_eq!(
            AaScore(50).apply(ScoreDelta::allocated(10), max),
            AaScore(40)
        );
        // Saturate at 0 and at max rather than wrap.
        assert_eq!(AaScore(5).apply(ScoreDelta::allocated(10), max), AaScore(0));
        assert_eq!(AaScore(95).apply(ScoreDelta::freed(10), max), AaScore(100));
    }

    #[test]
    fn merge_sums_frees_and_allocations() {
        let d = ScoreDelta::freed(7).merge(ScoreDelta::allocated(3));
        assert_eq!(d, ScoreDelta(4));
        assert!(!d.is_zero());
        assert!(ScoreDelta::freed(3)
            .merge(ScoreDelta::allocated(3))
            .is_zero());
    }

    #[test]
    fn free_fraction() {
        assert_eq!(AaScore(32).free_fraction(64), 0.5);
        assert_eq!(AaScore(0).free_fraction(0), 0.0);
    }
}
