//! Media types and allocation-area sizing policies (paper §3.2).

use crate::consts::{
    AZCS_DATA_BLOCKS, AZCS_REGION_BLOCKS, DEFAULT_STRIPES_PER_AA, RAID_AGNOSTIC_AA_BLOCKS,
};
use serde::{Deserialize, Serialize};

/// The kind of storage backing a VBN range. Determines both the cost model
/// (`wafl-media`) and the AA sizing policy (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaType {
    /// Conventional (non-shingled) hard drive.
    Hdd,
    /// Solid-state drive with a flash translation layer.
    Ssd,
    /// Drive-managed shingled magnetic recording drive.
    Smr,
    /// Object store with native redundancy (no RAID layer).
    ObjectStore,
}

impl MediaType {
    /// Whether this media is arranged into RAID groups by ONTAP. Object
    /// stores provide native redundancy, so they take the RAID-agnostic
    /// path (§3.1).
    #[inline]
    pub fn uses_raid(self) -> bool {
        !matches!(self, MediaType::ObjectStore)
    }
}

/// How per-block checksums are stored (§3.2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChecksumStyle {
    /// 520-byte sectors: the 64-byte identifier rides in the sector slack;
    /// no separate checksum blocks exist.
    Sector520,
    /// Advanced zone checksums: every 64th block stores the identifiers of
    /// the preceding 63 data blocks.
    Azcs,
}

impl ChecksumStyle {
    /// Fraction of raw blocks usable for data (AZCS spends 1 in 64 on
    /// checksums).
    #[inline]
    pub fn data_fraction(self) -> f64 {
        match self {
            ChecksumStyle::Sector520 => 1.0,
            ChecksumStyle::Azcs => (AZCS_REGION_BLOCKS - 1) as f64 / AZCS_REGION_BLOCKS as f64,
        }
    }
}

/// Policy producing the allocation-area size for a VBN range (§3.2).
///
/// Construct with [`AaSizingPolicy::for_media`] for the paper's defaults,
/// or build a custom variant for ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AaSizingPolicy {
    /// RAID-aware, height in stripes. Default 4 Ki stripes for HDD
    /// (§3.2.1). The AA then spans `stripes * data_devices` blocks.
    Stripes {
        /// Consecutive stripes per AA.
        stripes: u64,
    },
    /// RAID-aware, height chosen so each device's column of the AA covers
    /// a whole number of erase blocks / shingle zones of `unit_blocks`
    /// blocks each (§3.2.2–3.2.3). `units` is how many such device-level
    /// units each AA column spans (paper: "several erase blocks").
    DeviceUnits {
        /// Blocks per device-level unit (erase block or shingle zone).
        unit_blocks: u64,
        /// Units per AA column on each device.
        units: u64,
    },
    /// Like [`AaSizingPolicy::DeviceUnits`], additionally rounded up to a
    /// multiple of the AZCS region size so checksum regions never straddle
    /// an AA boundary (§3.2.4, Figure 4 (C)).
    DeviceUnitsAzcsAligned {
        /// Blocks per device-level unit (shingle zone).
        unit_blocks: u64,
        /// Units per AA column on each device.
        units: u64,
    },
    /// RAID-agnostic: consecutive VBNs, default 32 Ki (§3.2.1). Used for
    /// FlexVol virtual VBNs and natively redundant storage.
    ConsecutiveVbns {
        /// Blocks per AA.
        blocks: u64,
    },
}

impl AaSizingPolicy {
    /// The paper's default policy for a media type in a RAID group.
    /// `device_unit_blocks` is the erase-block (SSD) or shingle-zone (SMR)
    /// size in blocks and is ignored for HDD.
    pub fn for_media(
        media: MediaType,
        checksum: ChecksumStyle,
        device_unit_blocks: u64,
    ) -> AaSizingPolicy {
        match media {
            MediaType::Hdd => AaSizingPolicy::Stripes {
                stripes: DEFAULT_STRIPES_PER_AA,
            },
            // "several erase blocks" (§3.2.2) — Figure 4 (B) shows an AA
            // larger than 2 erase blocks; we use 4 units as the default.
            MediaType::Ssd => AaSizingPolicy::DeviceUnits {
                unit_blocks: device_unit_blocks,
                units: 4,
            },
            MediaType::Smr => match checksum {
                ChecksumStyle::Azcs => AaSizingPolicy::DeviceUnitsAzcsAligned {
                    unit_blocks: device_unit_blocks,
                    units: 4,
                },
                ChecksumStyle::Sector520 => AaSizingPolicy::DeviceUnits {
                    unit_blocks: device_unit_blocks,
                    units: 4,
                },
            },
            MediaType::ObjectStore => AaSizingPolicy::ConsecutiveVbns {
                blocks: RAID_AGNOSTIC_AA_BLOCKS,
            },
        }
    }

    /// The default RAID-agnostic policy (FlexVol virtual VBNs).
    pub fn raid_agnostic() -> AaSizingPolicy {
        AaSizingPolicy::ConsecutiveVbns {
            blocks: RAID_AGNOSTIC_AA_BLOCKS,
        }
    }

    /// Height of the AA in stripes for a RAID-aware policy, `None` for
    /// RAID-agnostic policies.
    pub fn stripes_per_aa(self) -> Option<u64> {
        match self {
            AaSizingPolicy::Stripes { stripes } => Some(stripes),
            AaSizingPolicy::DeviceUnits { unit_blocks, units } => {
                Some((unit_blocks * units).max(1))
            }
            AaSizingPolicy::DeviceUnitsAzcsAligned { unit_blocks, units } => {
                // Round the per-device column up to a whole number of AZCS
                // regions so a checksum region never crosses the boundary.
                // AA sizes are counted in *data* blocks (PVBNs); a region
                // holds 63 data blocks (the 64th holds checksums), so the
                // data-space alignment quantum is 63.
                let raw = (unit_blocks * units).max(1);
                Some(raw.div_ceil(AZCS_DATA_BLOCKS) * AZCS_DATA_BLOCKS)
            }
            AaSizingPolicy::ConsecutiveVbns { .. } => None,
        }
    }

    /// Blocks per AA for a RAID-agnostic policy, `None` for RAID-aware.
    pub fn blocks_per_aa(self) -> Option<u64> {
        match self {
            AaSizingPolicy::ConsecutiveVbns { blocks } => Some(blocks),
            _ => None,
        }
    }

    /// True when the per-device AA column is aligned to AZCS regions —
    /// i.e. its length in data blocks is a whole number of 63-data-block
    /// regions, so every checksum block is written in-line at the end of
    /// its region's sequential drain.
    pub fn azcs_aligned(self) -> bool {
        match self {
            AaSizingPolicy::DeviceUnitsAzcsAligned { .. } => true,
            AaSizingPolicy::Stripes { stripes } => stripes % AZCS_DATA_BLOCKS == 0,
            AaSizingPolicy::DeviceUnits { unit_blocks, units } => {
                (unit_blocks * units) % AZCS_DATA_BLOCKS == 0
            }
            AaSizingPolicy::ConsecutiveVbns { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_default_is_4k_stripes() {
        let p = AaSizingPolicy::for_media(MediaType::Hdd, ChecksumStyle::Sector520, 0);
        assert_eq!(p.stripes_per_aa(), Some(4096));
        assert_eq!(p.blocks_per_aa(), None);
    }

    #[test]
    fn ssd_default_spans_several_erase_blocks() {
        // 2 MiB erase block = 512 blocks of 4 KiB.
        let p = AaSizingPolicy::for_media(MediaType::Ssd, ChecksumStyle::Sector520, 512);
        let stripes = p.stripes_per_aa().unwrap();
        assert!(
            stripes >= 2 * 512,
            "AA must exceed 2 erase blocks per Fig 4 (B)"
        );
        assert_eq!(
            stripes % 512,
            0,
            "AA column is a whole number of erase blocks"
        );
    }

    #[test]
    fn smr_azcs_policy_is_region_aligned() {
        // A shingle-zone size deliberately coprime with 63.
        let p = AaSizingPolicy::for_media(MediaType::Smr, ChecksumStyle::Azcs, 4097);
        let stripes = p.stripes_per_aa().unwrap();
        assert_eq!(stripes % AZCS_DATA_BLOCKS, 0);
        assert!(stripes >= 4 * 4097, "still larger than the shingle units");
        assert!(p.azcs_aligned());
        // The historical HDD default (4096 stripes) is NOT region-aligned:
        // 4096 % 63 != 0 — the Fig 9 penalty case.
        assert!(!AaSizingPolicy::Stripes { stripes: 4096 }.azcs_aligned());
    }

    #[test]
    fn object_store_is_raid_agnostic() {
        let p = AaSizingPolicy::for_media(MediaType::ObjectStore, ChecksumStyle::Sector520, 0);
        assert_eq!(p.blocks_per_aa(), Some(RAID_AGNOSTIC_AA_BLOCKS));
        assert!(!MediaType::ObjectStore.uses_raid());
    }

    #[test]
    fn azcs_data_fraction() {
        assert_eq!(ChecksumStyle::Sector520.data_fraction(), 1.0);
        assert!((ChecksumStyle::Azcs.data_fraction() - 63.0 / 64.0).abs() < 1e-12);
    }
}
