//! Error type shared across the workspace.

use crate::ids::{AaId, Vbn};
use std::fmt;

/// Errors surfaced by the free-space subsystem and its substrates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaflError {
    /// A VBN outside the configured block-number space was used.
    VbnOutOfRange {
        /// The offending VBN.
        vbn: Vbn,
        /// Number of VBNs in the space.
        space_len: u64,
    },
    /// An AA index outside the configured space was used.
    AaOutOfRange {
        /// The offending AA.
        aa: AaId,
        /// Number of AAs in the space.
        aa_count: u32,
    },
    /// Allocation of an already-allocated block, or free of an already-free
    /// block — a file-system consistency violation.
    BitmapStateMismatch {
        /// The VBN whose bitmap bit disagreed with the operation.
        vbn: Vbn,
        /// What the caller expected the bit to be.
        expected_free: bool,
    },
    /// No free blocks remain in the requested space.
    SpaceExhausted,
    /// A persisted structure (e.g. a TopAA metafile block) failed
    /// validation while being loaded.
    CorruptMetafile {
        /// Human-readable reason.
        reason: String,
    },
    /// An I/O operation failed in a way that may succeed if retried
    /// (flaky path, transient media error). Callers decide the retry
    /// budget via `RetryPolicy`; see [`WaflError::is_transient`].
    TransientIo {
        /// Human-readable description of what failed.
        reason: String,
    },
    /// A configuration was internally inconsistent (e.g. zero devices in a
    /// RAID group).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The aggregate's health state machine has escalated to read-only:
    /// repeated unrepairable metadata faults make further writes unsafe.
    /// Reads and consistency points (which drive scrub repairs) continue.
    ReadOnly {
        /// Human-readable reason (which structure forced the escalation).
        reason: String,
    },
}

impl fmt::Display for WaflError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaflError::VbnOutOfRange { vbn, space_len } => {
                write!(f, "{vbn} out of range (space holds {space_len} blocks)")
            }
            WaflError::AaOutOfRange { aa, aa_count } => {
                write!(f, "{aa} out of range (space holds {aa_count} AAs)")
            }
            WaflError::BitmapStateMismatch { vbn, expected_free } => write!(
                f,
                "bitmap mismatch at {vbn}: expected {}",
                if *expected_free { "free" } else { "allocated" }
            ),
            WaflError::SpaceExhausted => write!(f, "no free blocks remain"),
            WaflError::CorruptMetafile { reason } => {
                write!(f, "corrupt metafile: {reason}")
            }
            WaflError::TransientIo { reason } => {
                write!(f, "transient I/O error: {reason}")
            }
            WaflError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            WaflError::ReadOnly { reason } => {
                write!(f, "aggregate is read-only: {reason}")
            }
        }
    }
}

impl WaflError {
    /// True for failures worth retrying; everything else is a hard error
    /// (consistency violation, corruption, bad configuration).
    pub fn is_transient(&self) -> bool {
        matches!(self, WaflError::TransientIo { .. })
    }
}

impl std::error::Error for WaflError {}

/// Convenience alias used across the workspace.
pub type WaflResult<T> = Result<T, WaflError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WaflError::VbnOutOfRange {
            vbn: Vbn(100),
            space_len: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("50"));

        let e = WaflError::BitmapStateMismatch {
            vbn: Vbn(1),
            expected_free: true,
        };
        assert!(e.to_string().contains("free"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WaflError>();
    }

    #[test]
    fn only_transient_io_is_transient() {
        assert!(WaflError::TransientIo {
            reason: "flaky read".into()
        }
        .is_transient());
        for e in [
            WaflError::SpaceExhausted,
            WaflError::CorruptMetafile {
                reason: "bad crc".into(),
            },
            WaflError::InvalidConfig { reason: "x".into() },
            WaflError::VbnOutOfRange {
                vbn: Vbn(9),
                space_len: 1,
            },
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }
}
