//! Core identifiers, constants, and configuration types shared by every
//! crate in the WAFL free-block-search reproduction.
//!
//! The paper ("Efficient Search for Free Blocks in the WAFL File System",
//! ICPP 2018) describes block-number-space algorithms; this crate pins down
//! the vocabulary those algorithms are written in:
//!
//! * [`Vbn`] — a *volume block number*, the index of a 4 KiB block within
//!   some block-number space (an aggregate's physical space or a FlexVol's
//!   virtual space).
//! * [`AaId`] — the index of an *allocation area* within its space.
//! * Constants such as [`BLOCK_SIZE`] and [`BITS_PER_BITMAP_BLOCK`] that
//!   the paper's sizing arguments depend on (a 4 KiB bitmap-metafile block
//!   holds 32 Ki bits, hence the 32 Ki-VBN RAID-agnostic AA).
//!
//! Everything here is `Copy`, cheap, and deliberately free of behaviour —
//! the behaviour lives in `wafl-bitmap`, `wafl-raid`, `wafl-core`, and
//! `wafl-fs`.

#![warn(missing_docs)]

mod config;
mod consts;
pub mod crc64;
mod error;
mod ids;
mod retry;
mod score;

pub use config::{AaSizingPolicy, ChecksumStyle, MediaType};
pub use consts::*;
pub use error::{WaflError, WaflResult};
pub use ids::{AaId, Dbn, DeviceId, RaidGroupId, StripeId, TetrisId, Vbn, VolumeId};
pub use retry::RetryPolicy;
pub use score::{AaScore, ScoreDelta};
