//! Constants fixed by the paper's description of WAFL.

/// Size of a WAFL block in bytes. WAFL addresses all storage in 4 KiB units
/// (paper §2: "WAFL addresses its storage in 4KiB blocks").
pub const BLOCK_SIZE: usize = 4096;

/// Number of bits in one 4 KiB bitmap-metafile block: `4096 * 8 = 32 Ki`.
/// The paper (§3.2.1) sizes RAID-agnostic AAs to exactly this many VBNs so
/// that allocating an entire AA dirties a single metafile block.
pub const BITS_PER_BITMAP_BLOCK: u64 = (BLOCK_SIZE as u64) * 8;

/// Default RAID-aware allocation-area height in stripes (§3.2.1:
/// "an AA size of 4k stripes works well for HDDs arranged in a RAID group").
pub const DEFAULT_STRIPES_PER_AA: u64 = 4096;

/// Size of a RAID-agnostic allocation area in VBNs (§3.2.1: "32k consecutive
/// VBNs ... matches the alignment of bitmap metafiles").
pub const RAID_AGNOSTIC_AA_BLOCKS: u64 = BITS_PER_BITMAP_BLOCK;

/// Number of consecutive stripes in a *tetris*, the unit of write I/O sent
/// from WAFL to a RAID group (§4.2: "a tetris ... is composed of 64
/// consecutive stripes").
pub const TETRIS_STRIPES: u64 = 64;

/// Blocks per AZCS checksum region: 63 data blocks followed by 1 checksum
/// block that stores their 64-byte identifiers (§3.2.4).
pub const AZCS_REGION_BLOCKS: u64 = 64;

/// Data blocks per AZCS region (the 64th block holds the checksums).
pub const AZCS_DATA_BLOCKS: u64 = AZCS_REGION_BLOCKS - 1;

/// Number of score bins in the histogram page of the histogram-based
/// partial sort (HBPS). The RAID-agnostic score space is `0..=32 Ki` and
/// each bin covers a 1 Ki range (§3.3.2), giving 32 bins.
pub const HBPS_BINS: usize = 32;

/// Width of one HBPS score bin (§3.3.2: "the AA score space is divided into
/// bins covering score ranges of 1K").
pub const HBPS_BIN_WIDTH: u32 = 1024;

/// Capacity of the HBPS list page (§3.3.2: "this second page stores 1,000
/// AAs that fall into the top score ranges").
pub const HBPS_LIST_CAPACITY: usize = 1000;

/// Number of (AA, score) entries persisted per RAID-aware AA cache in the
/// TopAA metafile. The paper (§3.4) fills the whole 4 KiB block with "the
/// 512 best AAs and their scores"; this reproduction reserves the trailing
/// [`TOPAA_CRC_BYTES`] of the block for a CRC64 so damaged blocks are
/// *detected* rather than trusted (the paper's recovery story — "WAFL Iron
/// is used to recompute and recover them" — presupposes detection, which a
/// headerless block cannot provide). `511 * 8 B + 8 B = 4 KiB`. The
/// deviation is documented in `docs/recovery.md`.
pub const TOPAA_RAID_AWARE_ENTRIES: usize = 511;

/// Bytes reserved at the tail of each persisted TopAA block / HBPS page
/// for a CRC64 of the preceding bytes.
pub const TOPAA_CRC_BYTES: usize = 8;

/// The maximum achievable score of a RAID-agnostic AA — an entirely free AA
/// (§3.3.2: "a best score is 32K").
pub const RAID_AGNOSTIC_MAX_SCORE: u32 = RAID_AGNOSTIC_AA_BLOCKS as u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_block_holds_32ki_bits() {
        assert_eq!(BITS_PER_BITMAP_BLOCK, 32 * 1024);
    }

    #[test]
    fn raid_agnostic_aa_matches_one_bitmap_block() {
        // The whole point of the 32 Ki sizing: one AA <-> one metafile block.
        assert_eq!(RAID_AGNOSTIC_AA_BLOCKS, BITS_PER_BITMAP_BLOCK);
    }

    #[test]
    fn hbps_bins_cover_exact_score_space() {
        // 32 bins of width 1 Ki cover scores 1..=32 Ki; score 0 folds into
        // the last bin by convention.
        assert_eq!(HBPS_BINS as u32 * HBPS_BIN_WIDTH, RAID_AGNOSTIC_MAX_SCORE);
    }

    #[test]
    fn topaa_entries_fill_one_block() {
        // 511 entries x (u32 aa, u32 score) plus the trailing CRC64 fill
        // exactly one 4 KiB metafile block.
        assert_eq!(TOPAA_RAID_AWARE_ENTRIES * 8 + TOPAA_CRC_BYTES, BLOCK_SIZE);
    }

    #[test]
    fn azcs_region_split() {
        assert_eq!(AZCS_DATA_BLOCKS + 1, AZCS_REGION_BLOCKS);
    }
}
