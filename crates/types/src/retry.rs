//! Bounded retry of transient I/O failures.

use crate::WaflResult;

/// How many times a transient failure is retried before being treated as
/// persistent. A policy is a budget, not a loop: callers run
/// [`RetryPolicy::run`] around each faulty operation and surface the
/// consumed retry count (e.g. in `MountStats::transient_retries`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (so an operation runs at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // Transient faults in the injector clear within a few attempts;
        // real storage stacks likewise bound inline retries low and punt
        // to recovery beyond that.
        RetryPolicy { max_retries: 3 }
    }
}

impl RetryPolicy {
    /// Never retry.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0 }
    }

    /// Run `attempt` until it succeeds, fails hard, or the retry budget
    /// is exhausted. Returns the final result plus the number of retries
    /// consumed (0 when the first attempt settled it).
    pub fn run<T>(&self, mut attempt: impl FnMut() -> WaflResult<T>) -> (WaflResult<T>, u32) {
        let mut retries = 0u32;
        loop {
            match attempt() {
                Err(e) if e.is_transient() && retries < self.max_retries => {
                    retries += 1;
                }
                settled => return (settled, retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaflError;

    fn flaky(fail_first: u32) -> impl FnMut() -> WaflResult<u32> {
        let mut calls = 0u32;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(WaflError::TransientIo {
                    reason: format!("attempt {calls}"),
                })
            } else {
                Ok(calls)
            }
        }
    }

    #[test]
    fn succeeds_within_budget() {
        let policy = RetryPolicy { max_retries: 3 };
        let (result, retries) = policy.run(flaky(2));
        assert_eq!(result, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn first_try_uses_no_retries() {
        let (result, retries) = RetryPolicy::default().run(flaky(0));
        assert_eq!(result, Ok(1));
        assert_eq!(retries, 0);
    }

    #[test]
    fn budget_exhaustion_returns_the_transient_error() {
        let policy = RetryPolicy { max_retries: 2 };
        let (result, retries) = policy.run(flaky(10));
        assert!(matches!(result, Err(WaflError::TransientIo { .. })));
        assert_eq!(retries, 2);
    }

    #[test]
    fn hard_errors_are_never_retried() {
        let policy = RetryPolicy { max_retries: 5 };
        let mut calls = 0;
        let (result, retries) = policy.run(|| {
            calls += 1;
            Err::<(), _>(WaflError::SpaceExhausted)
        });
        assert_eq!(result, Err(WaflError::SpaceExhausted));
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }
}
