//! Bounded retry of transient I/O failures.

use crate::WaflResult;

/// How many times a transient failure is retried before being treated as
/// persistent. A policy is a budget, not a loop: callers run
/// [`RetryPolicy::run`] around each faulty operation and surface the
/// consumed retry count (e.g. in `MountStats::transient_retries`).
///
/// Beyond the inline budget, deferred consumers (the runtime scrubber's
/// repair scheduler) space repeated attempts with capped exponential
/// backoff measured in consistency-point counts: attempt `n` waits
/// `min(backoff_base_cps << n, backoff_cap_cps)` CPs before retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (so an operation runs at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
    /// Delay before the first deferred retry, in CP counts.
    pub backoff_base_cps: u64,
    /// Ceiling on the exponential deferred-retry delay, in CP counts.
    pub backoff_cap_cps: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // Transient faults in the injector clear within a few attempts;
        // real storage stacks likewise bound inline retries low and punt
        // to recovery beyond that.
        RetryPolicy {
            max_retries: 3,
            backoff_base_cps: 1,
            backoff_cap_cps: 32,
        }
    }
}

impl RetryPolicy {
    /// Never retry; deferred attempts reschedule one CP out.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base_cps: 1,
            backoff_cap_cps: 1,
        }
    }

    /// An inline-retry-only policy (the historical constructor shape).
    pub fn with_max_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// CPs to wait before deferred attempt number `attempt` (0-based):
    /// capped exponential, never below one CP.
    pub fn backoff_cps(&self, attempt: u32) -> u64 {
        let base = self.backoff_base_cps.max(1);
        let cap = self.backoff_cap_cps.max(base);
        base.saturating_mul(1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX))
            .min(cap)
    }

    /// Run `attempt` until it succeeds, fails hard, or the retry budget
    /// is exhausted. Returns the final result plus the number of retries
    /// consumed (0 when the first attempt settled it).
    pub fn run<T>(&self, mut attempt: impl FnMut() -> WaflResult<T>) -> (WaflResult<T>, u32) {
        let mut retries = 0u32;
        loop {
            match attempt() {
                Err(e) if e.is_transient() && retries < self.max_retries => {
                    retries += 1;
                }
                settled => return (settled, retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaflError;

    fn flaky(fail_first: u32) -> impl FnMut() -> WaflResult<u32> {
        let mut calls = 0u32;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(WaflError::TransientIo {
                    reason: format!("attempt {calls}"),
                })
            } else {
                Ok(calls)
            }
        }
    }

    #[test]
    fn succeeds_within_budget() {
        let policy = RetryPolicy::with_max_retries(3);
        let (result, retries) = policy.run(flaky(2));
        assert_eq!(result, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn first_try_uses_no_retries() {
        let (result, retries) = RetryPolicy::default().run(flaky(0));
        assert_eq!(result, Ok(1));
        assert_eq!(retries, 0);
    }

    #[test]
    fn budget_exhaustion_returns_the_transient_error() {
        let policy = RetryPolicy::with_max_retries(2);
        let (result, retries) = policy.run(flaky(10));
        assert!(matches!(result, Err(WaflError::TransientIo { .. })));
        assert_eq!(retries, 2);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base_cps: 2,
            backoff_cap_cps: 16,
        };
        assert_eq!(policy.backoff_cps(0), 2);
        assert_eq!(policy.backoff_cps(1), 4);
        assert_eq!(policy.backoff_cps(2), 8);
        assert_eq!(policy.backoff_cps(3), 16);
        assert_eq!(policy.backoff_cps(10), 16);
        assert_eq!(policy.backoff_cps(200), 16, "huge attempts must not wrap");
        // A degenerate zero-base policy still waits at least one CP.
        let zero = RetryPolicy {
            max_retries: 0,
            backoff_base_cps: 0,
            backoff_cap_cps: 0,
        };
        assert_eq!(zero.backoff_cps(0), 1);
    }

    #[test]
    fn hard_errors_are_never_retried() {
        let policy = RetryPolicy::with_max_retries(5);
        let mut calls = 0;
        let (result, retries) = policy.run(|| {
            calls += 1;
            Err::<(), _>(WaflError::SpaceExhausted)
        });
        assert_eq!(result, Err(WaflError::SpaceExhausted));
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }
}
