//! A single 4 KiB bitmap-metafile block.

use wafl_types::BITS_PER_BITMAP_BLOCK;

/// Number of 64-bit words in one page: `32 Ki bits / 64 = 512`.
pub(crate) const WORDS_PER_PAGE: usize = (BITS_PER_BITMAP_BLOCK / 64) as usize;

/// One 4 KiB block of a bitmap metafile: 32 Ki bits, bit `i` tracking the
/// state of the page's `i`-th VBN (`1` = allocated, `0` = free).
///
/// All hot operations (popcount, first-free search, run iteration) work on
/// whole `u64` words so they compile to `popcnt`/`tzcnt` on x86-64.
#[derive(Clone)]
pub struct BitmapPage {
    words: Box<[u64; WORDS_PER_PAGE]>,
}

impl Default for BitmapPage {
    fn default() -> Self {
        Self::new_free()
    }
}

impl BitmapPage {
    /// A page with every block free.
    pub fn new_free() -> BitmapPage {
        BitmapPage {
            words: Box::new([0u64; WORDS_PER_PAGE]),
        }
    }

    /// A page with every block allocated.
    pub fn new_full() -> BitmapPage {
        BitmapPage {
            words: Box::new([u64::MAX; WORDS_PER_PAGE]),
        }
    }

    /// Number of bits in a page.
    #[inline]
    pub const fn bits() -> u64 {
        BITS_PER_BITMAP_BLOCK
    }

    /// Whether bit `i` is free. `i < 32 Ki`.
    #[inline]
    pub fn is_free(&self, i: u64) -> bool {
        debug_assert!(i < Self::bits());
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) == 0
    }

    /// Mark bit `i` allocated. Returns `false` if it already was.
    #[inline]
    pub fn set_allocated(&mut self, i: u64) -> bool {
        debug_assert!(i < Self::bits());
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let was_free = *w & mask == 0;
        *w |= mask;
        was_free
    }

    /// Mark bit `i` free. Returns `false` if it already was.
    #[inline]
    pub fn set_free(&mut self, i: u64) -> bool {
        debug_assert!(i < Self::bits());
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let was_allocated = *w & mask != 0;
        *w &= !mask;
        was_allocated
    }

    /// Number of free bits in the whole page.
    #[inline]
    pub fn free_count(&self) -> u32 {
        let allocated: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        BITS_PER_BITMAP_BLOCK as u32 - allocated
    }

    /// Number of free bits in `start..end` (bit indices within the page).
    pub fn free_count_range(&self, start: u64, end: u64) -> u32 {
        debug_assert!(start <= end && end <= Self::bits());
        if start == end {
            return 0;
        }
        let (first_word, last_word) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let mut allocated = 0u32;
        for (wi, &w) in self.words[first_word..=last_word].iter().enumerate() {
            let wi = wi + first_word;
            let mut mask = u64::MAX;
            if wi == first_word {
                mask &= u64::MAX << (start % 64);
            }
            if wi == last_word {
                let top = end - (last_word as u64) * 64; // 1..=64 bits kept
                if top < 64 {
                    mask &= (1u64 << top) - 1;
                }
            }
            allocated += (w & mask).count_ones();
        }
        (end - start) as u32 - allocated
    }

    /// First free bit at or after `from`, or `None`.
    pub fn first_free_from(&self, from: u64) -> Option<u64> {
        if from >= Self::bits() {
            return None;
        }
        let mut wi = (from / 64) as usize;
        // Mask off bits below `from` in the first word.
        let mut w = !self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if w != 0 {
                return Some(wi as u64 * 64 + w.trailing_zeros() as u64);
            }
            wi += 1;
            if wi == WORDS_PER_PAGE {
                return None;
            }
            w = !self.words[wi];
        }
    }

    /// Visit the word indices and masks covering bits `start..end`:
    /// `f(word_index, mask)` once per touched word. The mask selects only
    /// in-range bits, so edge words are handled without branching at the
    /// call sites.
    #[inline]
    fn for_range_words(start: u64, end: u64, mut f: impl FnMut(usize, u64)) {
        debug_assert!(start < end && end <= Self::bits());
        let (first_word, last_word) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        for wi in first_word..=last_word {
            let mut mask = u64::MAX;
            if wi == first_word {
                mask &= u64::MAX << (start % 64);
            }
            if wi == last_word {
                let top = end - (last_word as u64) * 64; // 1..=64 bits kept
                if top < 64 {
                    mask &= (1u64 << top) - 1;
                }
            }
            f(wi, mask);
        }
    }

    /// First *allocated* bit in `start..end`, or `None` if the whole range
    /// is free. One popcount-free word test per touched word.
    pub fn first_allocated_in(&self, start: u64, end: u64) -> Option<u64> {
        debug_assert!(start <= end && end <= Self::bits());
        if start == end {
            return None;
        }
        let mut found = None;
        Self::for_range_words(start, end, |wi, mask| {
            if found.is_none() {
                let hit = self.words[wi] & mask;
                if hit != 0 {
                    found = Some(wi as u64 * 64 + hit.trailing_zeros() as u64);
                }
            }
        });
        found
    }

    /// First *free* bit in `start..end`, or `None` if the whole range is
    /// allocated.
    pub fn first_free_in(&self, start: u64, end: u64) -> Option<u64> {
        debug_assert!(start <= end && end <= Self::bits());
        if start == end {
            return None;
        }
        let mut found = None;
        Self::for_range_words(start, end, |wi, mask| {
            if found.is_none() {
                let hit = !self.words[wi] & mask;
                if hit != 0 {
                    found = Some(wi as u64 * 64 + hit.trailing_zeros() as u64);
                }
            }
        });
        found
    }

    /// Set every bit in `start..end` allocated with whole-word stores.
    /// The caller must have verified the range is free (see
    /// [`BitmapPage::first_allocated_in`]); this does not re-check.
    pub fn set_range_allocated(&mut self, start: u64, end: u64) {
        if start == end {
            return;
        }
        let words = &mut self.words;
        Self::for_range_words(start, end, |wi, mask| {
            words[wi] |= mask;
        });
    }

    /// Clear every bit in `start..end` with whole-word stores. The caller
    /// must have verified the range is allocated.
    pub fn set_range_free(&mut self, start: u64, end: u64) {
        if start == end {
            return;
        }
        let words = &mut self.words;
        Self::for_range_words(start, end, |wi, mask| {
            words[wi] &= !mask;
        });
    }

    /// Clear every bit of `mask` in word `wi`. The caller must have
    /// verified those bits are all set (see
    /// [`BitmapPage::first_allocated_in`]); this does not re-check.
    #[inline]
    pub fn clear_word_bits(&mut self, wi: usize, mask: u64) {
        self.words[wi] &= !mask;
    }

    /// Iterate maximal runs of consecutive free bits as `(start, len)`
    /// pairs, in ascending order.
    pub fn free_runs(&self) -> FreeRuns<'_> {
        FreeRuns { page: self, pos: 0 }
    }

    /// Length of the longest run of consecutive free bits.
    pub fn longest_free_run(&self) -> u64 {
        self.free_runs().map(|(_, len)| len).max().unwrap_or(0)
    }

    /// Raw words, for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words[..]
    }
}

/// Iterator over maximal free runs of a page. See [`BitmapPage::free_runs`].
pub struct FreeRuns<'a> {
    page: &'a BitmapPage,
    pos: u64,
}

impl Iterator for FreeRuns<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let start = self.page.first_free_from(self.pos)?;
        // Scan forward for the end of the run, word-at-a-time.
        let mut end = start;
        while end < BitmapPage::bits() && self.page.is_free(end) {
            // Fast-path whole free words.
            if end % 64 == 0 {
                let wi = (end / 64) as usize;
                if wi < WORDS_PER_PAGE && self.page.words[wi] == 0 {
                    end += 64;
                    continue;
                }
            }
            end += 1;
        }
        self.pos = end + 1;
        Some((start, end - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_all_free() {
        let p = BitmapPage::new_free();
        assert_eq!(p.free_count(), 32768);
        assert!(p.is_free(0));
        assert!(p.is_free(32767));
        assert_eq!(p.first_free_from(0), Some(0));
        assert_eq!(p.longest_free_run(), 32768);
    }

    #[test]
    fn full_page_has_nothing() {
        let p = BitmapPage::new_full();
        assert_eq!(p.free_count(), 0);
        assert_eq!(p.first_free_from(0), None);
        assert_eq!(p.free_runs().count(), 0);
    }

    #[test]
    fn set_and_clear_report_prior_state() {
        let mut p = BitmapPage::new_free();
        assert!(p.set_allocated(100));
        assert!(!p.set_allocated(100), "double allocation detected");
        assert!(!p.is_free(100));
        assert!(p.set_free(100));
        assert!(!p.set_free(100), "double free detected");
        assert!(p.is_free(100));
    }

    #[test]
    fn free_count_range_handles_word_boundaries() {
        let mut p = BitmapPage::new_free();
        for i in [0, 63, 64, 65, 127, 128, 200] {
            p.set_allocated(i);
        }
        assert_eq!(p.free_count_range(0, 64), 62); // lost bits 0, 63
        assert_eq!(p.free_count_range(64, 128), 61); // lost 64, 65, 127
        assert_eq!(p.free_count_range(63, 66), 0); // 63,64,65 all allocated
        assert_eq!(p.free_count_range(0, 32768), 32768 - 7);
        assert_eq!(p.free_count_range(5, 5), 0);
        assert_eq!(p.free_count_range(32704, 32768), 64);
    }

    #[test]
    fn first_free_skips_allocated_prefix() {
        let mut p = BitmapPage::new_free();
        for i in 0..130 {
            p.set_allocated(i);
        }
        assert_eq!(p.first_free_from(0), Some(130));
        assert_eq!(p.first_free_from(130), Some(130));
        assert_eq!(p.first_free_from(131), Some(131));
    }

    #[test]
    fn first_free_from_past_end_is_none() {
        let p = BitmapPage::new_free();
        assert_eq!(p.first_free_from(32768), None);
        assert_eq!(p.first_free_from(32767), Some(32767));
    }

    #[test]
    fn free_runs_partition_free_space() {
        let mut p = BitmapPage::new_free();
        // Allocate 1000..2000 and 5000..5001.
        for i in 1000..2000 {
            p.set_allocated(i);
        }
        p.set_allocated(5000);
        let runs: Vec<_> = p.free_runs().collect();
        assert_eq!(runs, vec![(0, 1000), (2000, 3000), (5001, 32768 - 5001)]);
        let total: u64 = runs.iter().map(|&(_, l)| l).sum();
        assert_eq!(total as u32, p.free_count());
        assert_eq!(p.longest_free_run(), 32768 - 5001);
    }

    #[test]
    fn free_runs_single_trailing_bit() {
        let mut p = BitmapPage::new_full();
        p.set_free(32767);
        assert_eq!(p.free_runs().collect::<Vec<_>>(), vec![(32767, 1)]);
    }

    #[test]
    fn range_probes_find_first_mismatched_bit() {
        let mut p = BitmapPage::new_free();
        p.set_allocated(130);
        assert_eq!(p.first_allocated_in(0, 32768), Some(130));
        assert_eq!(p.first_allocated_in(0, 130), None);
        assert_eq!(p.first_allocated_in(130, 131), Some(130));
        assert_eq!(p.first_allocated_in(131, 32768), None);
        assert_eq!(p.first_allocated_in(5, 5), None);
        assert_eq!(p.first_free_in(130, 131), None);
        assert_eq!(p.first_free_in(129, 132), Some(129));
    }

    #[test]
    fn range_setters_match_per_bit_loop() {
        // Runs chosen to cross word boundaries and end mid-word.
        for (start, end) in [(0u64, 64u64), (3, 200), (60, 68), (64, 128), (100, 101)] {
            let mut bulk = BitmapPage::new_free();
            let mut per_bit = BitmapPage::new_free();
            bulk.set_range_allocated(start, end);
            for i in start..end {
                per_bit.set_allocated(i);
            }
            assert_eq!(bulk.words(), per_bit.words(), "alloc {start}..{end}");
            bulk.set_range_free(start, end);
            for i in start..end {
                per_bit.set_free(i);
            }
            assert_eq!(bulk.words(), per_bit.words(), "free {start}..{end}");
            assert_eq!(bulk.free_count(), 32768);
        }
    }
}
