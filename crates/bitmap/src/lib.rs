//! Bitmap metafiles (the WAFL *activemap*).
//!
//! WAFL stores free-space information in flat internal files indexed by
//! VBN; the *i*-th bit tracks the state of the *i*-th block (paper §2.5).
//! This crate reproduces that structure:
//!
//! * [`BitmapPage`] — one 4 KiB metafile block holding 32 Ki bits.
//! * [`Bitmap`] — a whole activemap: allocate/free with consistency checks,
//!   free-count queries over arbitrary VBN ranges, free-run iteration, and
//!   **dirty-page accounting**. Dirty pages are the currency of §2.5: every
//!   metafile block touched during a consistency point is a block that must
//!   be read, updated, and written back, so the experiments count them.
//!   A two-level **free-count summary** (a `u16` per page plus optional
//!   per-AA counters) is maintained incrementally by every mutation, so
//!   range free-counts, AA scores, and first-free skip-scans no longer
//!   popcount raw bits on hot paths; debug builds verify the counters
//!   against popcount ground truth on every mutation and every CP.
//! * [`scan`] — whole-bitmap scans used to (re)build AA caches (§3.4's
//!   "background work can rebuild the entire cache"): summary-driven when
//!   counters exist, rayon-parallel popcount otherwise.
//!
//! A bit value of `1` means **allocated**; `0` means free. A fresh bitmap
//! is entirely free.

#![warn(missing_docs)]

mod bitmap;
mod page;
pub mod scan;

pub use bitmap::{Bitmap, DirtyStats};
pub use page::BitmapPage;
