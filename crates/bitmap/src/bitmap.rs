//! The whole activemap for one block-number space, with dirty-page
//! accounting.

use crate::page::{BitmapPage, WORDS_PER_PAGE};
use rayon::prelude::*;
use wafl_types::{Vbn, WaflError, WaflResult, BITS_PER_BITMAP_BLOCK};

/// Per-consistency-point accounting of bitmap-metafile I/O.
///
/// Paper §2.5: "assigning free VBNs colocated in the number space minimizes
/// the number of metafile blocks that need to be consulted and updated."
/// The experiments therefore measure how many distinct metafile blocks each
/// CP dirties; this struct is that counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirtyStats {
    /// Distinct metafile pages written since the last
    /// [`Bitmap::take_dirty_stats`] call.
    pub pages_dirtied: u64,
    /// Individual bit flips since the last take (allocations + frees).
    pub bits_flipped: u64,
}

/// Per-AA free-count summary: one counter per allocation area of a flat
/// (RAID-agnostic) AA tiling, maintained incrementally by every bit flip.
struct AaSummary {
    /// Blocks per AA of the tiling this summary indexes.
    aa_blocks: u64,
    /// Free blocks per AA, `space_len.div_ceil(aa_blocks)` entries.
    counts: Vec<u32>,
}

/// The activemap of one block-number space: one bit per VBN, grouped into
/// 4 KiB pages exactly as the on-disk metafile would be.
///
/// ```
/// use wafl_bitmap::Bitmap;
/// use wafl_types::Vbn;
///
/// let mut map = Bitmap::new(100_000);
/// map.allocate(Vbn(42)).unwrap();
/// assert!(!map.is_free(Vbn(42)).unwrap());
/// assert!(map.allocate(Vbn(42)).is_err()); // double allocation caught
///
/// // AA scores are range free-counts (§3.3), answered from the per-page
/// // summary counters where whole pages are covered.
/// assert_eq!(map.free_count_range(Vbn(0), 32_768), 32_767);
///
/// // Each CP's metafile I/O is the dirty-page count (§2.5).
/// assert_eq!(map.take_dirty_stats().pages_dirtied, 1);
/// ```
///
/// # Free-count summaries
///
/// The paper's premise is that "a linear walk of the bitmap metafiles" to
/// recompute AA scores is too expensive to do on demand (§3.4). The bitmap
/// therefore keeps a two-level summary, maintained incrementally by
/// [`Bitmap::allocate`]/[`Bitmap::free`]/[`Bitmap::extend`]:
///
/// * **per page** — a `u16` free-bit count per 4 KiB metafile page
///   (2 bytes per 32 Ki tracked blocks ≈ 0.006 % overhead). Range
///   queries answer fully-covered pages from the counter and popcount
///   only the partial edge pages; skip-scans jump over pages whose
///   counter is zero.
/// * **per AA** — an optional `u32` free count per allocation area of a
///   flat tiling ([`Bitmap::enable_aa_summary`]), making a whole-space
///   score rebuild a sequential copy instead of a popcount walk.
///
/// Debug builds verify every touched counter against the popcount ground
/// truth on each mutation, and the whole summary at every
/// [`Bitmap::take_dirty_stats`] (i.e. every consistency point).
///
/// Invariants enforced at runtime (not just in debug builds) because the
/// paper's system treats them as consistency checks:
/// * allocating an allocated block fails with
///   [`WaflError::BitmapStateMismatch`];
/// * freeing a free block fails likewise.
pub struct Bitmap {
    pages: Vec<BitmapPage>,
    /// One flag per page: dirtied since the last `take_dirty_stats`.
    dirty: Vec<bool>,
    stats: DirtyStats,
    space_len: u64,
    free_blocks: u64,
    /// Free bits per page (32 Ki max fits `u16`), kept exact by every
    /// mutation. Index parallel to `pages`.
    page_free: Vec<u16>,
    /// Optional per-AA counters for one configured flat tiling.
    aa_summary: Option<AaSummary>,
}

impl Bitmap {
    /// An all-free bitmap covering `space_len` VBNs. The final page is
    /// padded with *allocated* bits past `space_len` so range queries never
    /// see phantom free space.
    pub fn new(space_len: u64) -> Bitmap {
        let page_count = space_len.div_ceil(BITS_PER_BITMAP_BLOCK) as usize;
        let mut pages = vec![BitmapPage::new_free(); page_count];
        // Pad the tail of the last page.
        let tail_start = space_len % BITS_PER_BITMAP_BLOCK;
        if tail_start != 0 {
            let last = pages.last_mut().expect("space_len > 0 implies a page");
            for i in tail_start..BITS_PER_BITMAP_BLOCK {
                last.set_allocated(i);
            }
        }
        let page_free = (0..page_count as u64)
            .map(|p| BITS_PER_BITMAP_BLOCK.min(space_len - p * BITS_PER_BITMAP_BLOCK) as u16)
            .collect();
        Bitmap {
            dirty: vec![false; page_count],
            pages,
            stats: DirtyStats::default(),
            space_len,
            free_blocks: space_len,
            page_free,
            aa_summary: None,
        }
    }

    /// Enable the per-AA free-count summary for a flat tiling of
    /// `aa_blocks` consecutive VBNs per AA (the trailing AA may be
    /// short). From this point every allocate/free/extend keeps the
    /// counters exact, and [`Bitmap::aa_free_counts`] answers whole-space
    /// score rebuilds without touching a single bitmap word.
    ///
    /// Calling it again (same or different `aa_blocks`) rebuilds from the
    /// current bit state.
    pub fn enable_aa_summary(&mut self, aa_blocks: u64) -> WaflResult<()> {
        if aa_blocks == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "aa_blocks for the AA summary must be positive".into(),
            });
        }
        self.aa_summary = Some(AaSummary {
            aa_blocks,
            counts: self.compute_aa_counts(aa_blocks),
        });
        Ok(())
    }

    /// Per-AA free counts for a tiling of `aa_blocks`, if that summary is
    /// enabled and matches. Entry `i` is the free-block count of the AA
    /// covering `i*aa_blocks .. (i+1)*aa_blocks` — exactly the AA score
    /// of §3.3, served in O(1).
    pub fn aa_free_counts(&self, aa_blocks: u64) -> Option<&[u32]> {
        self.aa_summary
            .as_ref()
            .filter(|s| s.aa_blocks == aa_blocks)
            .map(|s| s.counts.as_slice())
    }

    /// The AA size of the enabled per-AA summary, if any.
    pub fn aa_summary_blocks(&self) -> Option<u64> {
        self.aa_summary.as_ref().map(|s| s.aa_blocks)
    }

    /// Free counts per AA recomputed from the page counters (partial edge
    /// pages popcounted). Used to (re)build the AA summary.
    fn compute_aa_counts(&self, aa_blocks: u64) -> Vec<u32> {
        let aa_count = self.space_len.div_ceil(aa_blocks);
        (0..aa_count)
            .map(|aa| self.free_count_range(Vbn(aa * aa_blocks), aa_blocks))
            .collect()
    }

    /// Number of VBNs in the space.
    #[inline]
    pub fn space_len(&self) -> u64 {
        self.space_len
    }

    /// Number of 4 KiB metafile pages backing the space.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total free blocks in the space — the top level of the free-count
    /// summary, maintained incrementally so this is O(1) on every call
    /// (it is hot in `free_fraction`, CP statistics, and harness
    /// reports). Debug builds re-prove it against the popcount total at
    /// every CP via [`Bitmap::verify_summary`].
    #[inline]
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Fraction of the space that is free.
    #[inline]
    pub fn free_fraction(&self) -> f64 {
        if self.space_len == 0 {
            0.0
        } else {
            self.free_blocks as f64 / self.space_len as f64
        }
    }

    #[inline]
    fn locate(&self, vbn: Vbn) -> WaflResult<(usize, u64)> {
        if vbn.get() >= self.space_len {
            return Err(WaflError::VbnOutOfRange {
                vbn,
                space_len: self.space_len,
            });
        }
        Ok((
            (vbn.get() / BITS_PER_BITMAP_BLOCK) as usize,
            vbn.get() % BITS_PER_BITMAP_BLOCK,
        ))
    }

    /// Whether `vbn` is free.
    pub fn is_free(&self, vbn: Vbn) -> WaflResult<bool> {
        let (p, i) = self.locate(vbn)?;
        Ok(self.pages[p].is_free(i))
    }

    #[inline]
    fn mark_dirty(&mut self, page: usize) {
        if !self.dirty[page] {
            self.dirty[page] = true;
            self.stats.pages_dirtied += 1;
        }
        self.stats.bits_flipped += 1;
    }

    /// Allocate `vbn`. Errors if out of range or already allocated.
    pub fn allocate(&mut self, vbn: Vbn) -> WaflResult<()> {
        let (p, i) = self.locate(vbn)?;
        if !self.pages[p].set_allocated(i) {
            return Err(WaflError::BitmapStateMismatch {
                vbn,
                expected_free: true,
            });
        }
        self.free_blocks -= 1;
        self.page_free[p] -= 1;
        if let Some(s) = self.aa_summary.as_mut() {
            s.counts[(vbn.get() / s.aa_blocks) as usize] -= 1;
        }
        self.mark_dirty(p);
        self.debug_check_counters(vbn, p);
        Ok(())
    }

    /// Free `vbn`. Errors if out of range or already free.
    pub fn free(&mut self, vbn: Vbn) -> WaflResult<()> {
        let (p, i) = self.locate(vbn)?;
        if !self.pages[p].set_free(i) {
            return Err(WaflError::BitmapStateMismatch {
                vbn,
                expected_free: false,
            });
        }
        self.free_blocks += 1;
        self.page_free[p] += 1;
        if let Some(s) = self.aa_summary.as_mut() {
            s.counts[(vbn.get() / s.aa_blocks) as usize] += 1;
        }
        self.mark_dirty(p);
        self.debug_check_counters(vbn, p);
        Ok(())
    }

    /// Allocate the run `start .. start+len` in bulk: whole-word bit
    /// stores, one summary-counter update per touched page and per touched
    /// AA, and one dirty mark per page — instead of the per-bit loop's
    /// per-block bookkeeping. `DirtyStats` accounting is identical to
    /// `len` calls of [`Bitmap::allocate`].
    ///
    /// Atomic: if any bit in the run is already allocated (or the run
    /// leaves the space), the error names the first offending VBN and the
    /// bitmap is left untouched.
    pub fn allocate_run(&mut self, start: Vbn, len: u64) -> WaflResult<()> {
        self.mutate_run(start, len, true)
    }

    /// Free the run `start .. start+len` in bulk. Counterpart of
    /// [`Bitmap::allocate_run`]; errors (without mutating) if any bit in
    /// the run is already free.
    pub fn free_run(&mut self, start: Vbn, len: u64) -> WaflResult<()> {
        self.mutate_run(start, len, false)
    }

    fn mutate_run(&mut self, start: Vbn, len: u64, alloc: bool) -> WaflResult<()> {
        if len == 0 {
            return Ok(());
        }
        let s = start.get();
        let end = s.saturating_add(len);
        if s >= self.space_len || end > self.space_len {
            // Same VBN the per-bit loop would have tripped on: the start
            // if it is already out of range, else the first VBN past the
            // space.
            let vbn = if s >= self.space_len {
                start
            } else {
                Vbn(self.space_len)
            };
            return Err(WaflError::VbnOutOfRange {
                vbn,
                space_len: self.space_len,
            });
        }
        // Pass 1: verify the whole run is in the expected state, so a
        // mismatch mid-run cannot leave a half-applied mutation.
        let mut pos = s;
        while pos < end {
            let p = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            let page_end = ((p as u64 + 1) * BITS_PER_BITMAP_BLOCK).min(end);
            let in_page_end = in_page + (page_end - pos);
            let bad = if alloc {
                self.pages[p].first_allocated_in(in_page, in_page_end)
            } else {
                self.pages[p].first_free_in(in_page, in_page_end)
            };
            if let Some(i) = bad {
                return Err(WaflError::BitmapStateMismatch {
                    vbn: Vbn(p as u64 * BITS_PER_BITMAP_BLOCK + i),
                    expected_free: alloc,
                });
            }
            pos = page_end;
        }
        // Pass 2: apply with word stores; each touched page costs one
        // counter update and one dirty mark.
        let mut pos = s;
        while pos < end {
            let p = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            let page_end = ((p as u64 + 1) * BITS_PER_BITMAP_BLOCK).min(end);
            let in_page_end = in_page + (page_end - pos);
            let touched = (page_end - pos) as u16;
            if alloc {
                self.pages[p].set_range_allocated(in_page, in_page_end);
                self.page_free[p] -= touched;
            } else {
                self.pages[p].set_range_free(in_page, in_page_end);
                self.page_free[p] += touched;
            }
            if !self.dirty[p] {
                self.dirty[p] = true;
                self.stats.pages_dirtied += 1;
            }
            pos = page_end;
        }
        self.stats.bits_flipped += len;
        if alloc {
            self.free_blocks -= len;
        } else {
            self.free_blocks += len;
        }
        if let Some(sm) = self.aa_summary.as_mut() {
            let first_aa = s / sm.aa_blocks;
            let last_aa = (end - 1) / sm.aa_blocks;
            for aa in first_aa..=last_aa {
                let aa_start = aa * sm.aa_blocks;
                let aa_end = aa_start + sm.aa_blocks;
                let overlap = (end.min(aa_end) - s.max(aa_start)) as u32;
                if alloc {
                    sm.counts[aa as usize] -= overlap;
                } else {
                    sm.counts[aa as usize] += overlap;
                }
            }
        }
        if cfg!(debug_assertions) {
            self.debug_check_counters(start, (s / BITS_PER_BITMAP_BLOCK) as usize);
            self.debug_check_counters(Vbn(end - 1), ((end - 1) / BITS_PER_BITMAP_BLOCK) as usize);
        }
        Ok(())
    }

    /// Visit the global word indices and bit masks covering a strictly
    /// ascending VBN list: `f(word_index, mask)` once per touched word,
    /// in ascending word order, with every listed bit of that word OR'd
    /// into one mask.
    fn for_sorted_word_groups(vbns: &[Vbn], mut f: impl FnMut(usize, u64)) {
        let mut open = usize::MAX;
        let mut mask = 0u64;
        for &v in vbns {
            let w = (v.get() / 64) as usize;
            if w != open {
                if open != usize::MAX {
                    f(open, mask);
                }
                open = w;
                mask = 0;
            }
            mask |= 1u64 << (v.get() % 64);
        }
        if open != usize::MAX {
            f(open, mask);
        }
    }

    /// Free a strictly ascending batch of individual VBNs with one masked
    /// word store per touched 64-bit word — the CP delayed-free fast
    /// path. Random overwrite traffic frees thousands of *isolated*
    /// blocks per CP; pushing each through [`Bitmap::free`] (or length-1
    /// runs through [`Bitmap::mutate_runs_partitioned`]'s segment
    /// machinery) pays per-call bookkeeping that dwarfs the single bit
    /// flip. Here neighbours sharing a word collapse into one mask check
    /// and one store, and every summary counter advances by a popcount
    /// per word instead of once per block.
    ///
    /// Requirements: `vbns` strictly ascending (duplicates are rejected —
    /// a duplicate is a double free). Atomicity matches [`Bitmap::free`]
    /// batch-wide: every bit is verified allocated before any bit
    /// changes, so an error leaves the bitmap untouched. `DirtyStats`
    /// accounting is identical to calling [`Bitmap::free`] once per VBN.
    pub fn free_sorted_blocks(&mut self, vbns: &[Vbn]) -> WaflResult<()> {
        if vbns.is_empty() {
            return Ok(());
        }
        let mut prev = None;
        for &v in vbns {
            if v.get() >= self.space_len {
                return Err(WaflError::VbnOutOfRange {
                    vbn: v,
                    space_len: self.space_len,
                });
            }
            if let Some(p) = prev {
                if v.get() <= p {
                    return Err(WaflError::InvalidConfig {
                        reason: format!(
                            "free_sorted_blocks: VBN {} out of order after {p}",
                            v.get()
                        ),
                    });
                }
            }
            prev = Some(v.get());
        }
        // Pass 1: verify every listed bit is allocated, so a double free
        // mid-batch cannot leave a half-applied mutation.
        let mut bad = None;
        Self::for_sorted_word_groups(vbns, |wg, mask| {
            if bad.is_none() {
                let free = !self.pages[wg / WORDS_PER_PAGE].words()[wg % WORDS_PER_PAGE] & mask;
                if free != 0 {
                    bad = Some(Vbn(wg as u64 * 64 + free.trailing_zeros() as u64));
                }
            }
        });
        if let Some(vbn) = bad {
            return Err(WaflError::BitmapStateMismatch {
                vbn,
                expected_free: false,
            });
        }
        // Pass 2: apply, one store and one set of counter bumps per word.
        let Bitmap {
            pages,
            dirty,
            stats,
            free_blocks,
            page_free,
            aa_summary,
            ..
        } = self;
        let mut freed = 0u64;
        Self::for_sorted_word_groups(vbns, |wg, mask| {
            let p = wg / WORDS_PER_PAGE;
            pages[p].clear_word_bits(wg % WORDS_PER_PAGE, mask);
            let n = mask.count_ones();
            page_free[p] += n as u16;
            if !dirty[p] {
                dirty[p] = true;
                stats.pages_dirtied += 1;
            }
            stats.bits_flipped += n as u64;
            freed += n as u64;
            if let Some(sm) = aa_summary.as_mut() {
                if sm.aa_blocks.is_multiple_of(64) {
                    // A word never straddles an AA boundary: one bump.
                    sm.counts[((wg as u64 * 64) / sm.aa_blocks) as usize] += n;
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let b = m.trailing_zeros() as u64;
                        sm.counts[((wg as u64 * 64 + b) / sm.aa_blocks) as usize] += 1;
                        m &= m - 1;
                    }
                }
            }
        });
        *free_blocks += freed;
        if cfg!(debug_assertions) {
            let first = vbns[0];
            let last = *vbns.last().expect("non-empty");
            self.debug_check_counters(first, (first.get() / BITS_PER_BITMAP_BLOCK) as usize);
            self.debug_check_counters(last, (last.get() / BITS_PER_BITMAP_BLOCK) as usize);
        }
        Ok(())
    }

    /// Iterate the maximal runs of consecutive free VBNs in
    /// `start .. start+len` as `(run_start, run_len)` pairs, ascending.
    /// Fully-allocated pages are skipped from their summary counter and
    /// free stretches advance word-at-a-time, so walking an AA costs
    /// O(words touched), not O(bits).
    pub fn free_runs_in_range(
        &self,
        start: Vbn,
        len: u64,
    ) -> impl Iterator<Item = (Vbn, u64)> + '_ {
        let end = start.get().saturating_add(len).min(self.space_len);
        FreeRunIter {
            bitmap: self,
            next: start.get(),
            end,
        }
    }

    /// Apply a whole batch of disjoint runs — all allocations or all
    /// frees — with the word stores fanned out over up to `workers`
    /// threads. This is the concurrent-apply primitive behind the sharded
    /// CP pipeline: shards produce runs over disjoint AAs, the runs are
    /// split at metafile-page boundaries here, and each worker owns a
    /// contiguous, non-overlapping range of pages (its words, its
    /// `page_free` counters, its dirty flags), so no two threads ever
    /// touch the same cache line of bitmap state. The scalar counters
    /// (`free_blocks`, `DirtyStats`, the per-AA summary) are merged
    /// serially after the join — they are O(runs), not O(blocks).
    ///
    /// Requirements: `runs` must be sorted by start VBN and pairwise
    /// disjoint (zero-length runs are allowed and skipped). Atomicity
    /// matches [`Bitmap::allocate_run`]: the whole batch is verified to
    /// be in the expected state before any bit changes, so an error
    /// leaves the bitmap untouched.
    ///
    /// With `workers <= 1` (or few touched pages) everything runs inline
    /// on the calling thread; the result is bit-for-bit identical to
    /// applying each run with [`Bitmap::allocate_run`]/[`Bitmap::free_run`]
    /// in order, at any worker count.
    pub fn mutate_runs_partitioned(
        &mut self,
        runs: &[(Vbn, u64)],
        alloc: bool,
        workers: usize,
    ) -> WaflResult<()> {
        // ---- validate shape + expected state (read-only) ---------------
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for (i, &(start, len)) in runs.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let s = start.get();
            let end = s.saturating_add(len);
            if i > 0 && s < prev_end {
                return Err(WaflError::InvalidConfig {
                    reason: format!(
                        "mutate_runs_partitioned: run {i} at {s} overlaps or \
                         precedes the previous run ending at {prev_end}"
                    ),
                });
            }
            if s >= self.space_len || end > self.space_len {
                let vbn = if s >= self.space_len {
                    start
                } else {
                    Vbn(self.space_len)
                };
                return Err(WaflError::VbnOutOfRange {
                    vbn,
                    space_len: self.space_len,
                });
            }
            prev_end = end;
            total += len;
        }
        if total == 0 {
            return Ok(());
        }
        // Per-page segments, in ascending page order (runs are sorted).
        // Each segment is one run's overlap with one metafile page.
        let mut segments: Vec<(usize, u64, u64)> = Vec::with_capacity(runs.len());
        for &(start, len) in runs {
            if len == 0 {
                continue;
            }
            let s = start.get();
            let end = s + len;
            let mut pos = s;
            while pos < end {
                let p = (pos / BITS_PER_BITMAP_BLOCK) as usize;
                let in_page = pos % BITS_PER_BITMAP_BLOCK;
                let page_end = ((p as u64 + 1) * BITS_PER_BITMAP_BLOCK).min(end);
                segments.push((p, in_page, in_page + (page_end - pos)));
                pos = page_end;
            }
        }
        // State check, so a mismatch mid-batch cannot half-apply it.
        for &(p, a, b) in &segments {
            let bad = if alloc {
                self.pages[p].first_allocated_in(a, b)
            } else {
                self.pages[p].first_free_in(a, b)
            };
            if let Some(i) = bad {
                return Err(WaflError::BitmapStateMismatch {
                    vbn: Vbn(p as u64 * BITS_PER_BITMAP_BLOCK + i),
                    expected_free: alloc,
                });
            }
        }

        // ---- partition pages across workers, apply ----------------------
        // Cut the segment list into `workers` spans balanced by segment
        // count, never splitting a page across two spans; then carve the
        // page/counter/dirty vectors into matching disjoint `&mut` slices.
        let workers = workers.clamp(1, segments.len().max(1));
        struct Shard<'a> {
            pages: &'a mut [BitmapPage],
            page_free: &'a mut [u16],
            dirty: &'a mut [bool],
            base_page: usize,
            segments: &'a [(usize, u64, u64)],
        }
        let mut shards: Vec<Shard<'_>> = Vec::with_capacity(workers);
        {
            let per_worker = segments.len().div_ceil(workers);
            let mut rest_pages = &mut self.pages[..];
            let mut rest_free = &mut self.page_free[..];
            let mut rest_dirty = &mut self.dirty[..];
            let mut consumed_pages = 0usize;
            let mut seg_rest = &segments[..];
            while !seg_rest.is_empty() {
                let mut cut = per_worker.min(seg_rest.len());
                // Keep all segments of one page in the same shard.
                while cut < seg_rest.len() && seg_rest[cut].0 == seg_rest[cut - 1].0 {
                    cut += 1;
                }
                let (mine, rest) = seg_rest.split_at(cut);
                seg_rest = rest;
                // Pages `..=last` (relative to what's left) go to this shard.
                let last_page = mine.last().expect("cut >= 1").0;
                let split = last_page + 1 - consumed_pages;
                let (p, rp) = rest_pages.split_at_mut(split);
                let (f, rf) = rest_free.split_at_mut(split);
                let (d, rd) = rest_dirty.split_at_mut(split);
                shards.push(Shard {
                    pages: p,
                    page_free: f,
                    dirty: d,
                    base_page: consumed_pages,
                    segments: mine,
                });
                rest_pages = rp;
                rest_free = rf;
                rest_dirty = rd;
                consumed_pages = last_page + 1;
            }
        }
        let newly_dirtied: Vec<u64> = shards
            .into_par_iter()
            .map(|shard| {
                let mut dirtied = 0u64;
                for &(page, a, b) in shard.segments {
                    let p = page - shard.base_page;
                    let touched = (b - a) as u16;
                    if alloc {
                        shard.pages[p].set_range_allocated(a, b);
                        shard.page_free[p] -= touched;
                    } else {
                        shard.pages[p].set_range_free(a, b);
                        shard.page_free[p] += touched;
                    }
                    if !shard.dirty[p] {
                        shard.dirty[p] = true;
                        dirtied += 1;
                    }
                }
                dirtied
            })
            .collect();

        // ---- serial merge of the shared counters ------------------------
        self.stats.pages_dirtied += newly_dirtied.iter().sum::<u64>();
        self.stats.bits_flipped += total;
        if alloc {
            self.free_blocks -= total;
        } else {
            self.free_blocks += total;
        }
        if let Some(sm) = self.aa_summary.as_mut() {
            for &(start, len) in runs {
                if len == 0 {
                    continue;
                }
                let s = start.get();
                let end = s + len;
                let first_aa = s / sm.aa_blocks;
                let last_aa = (end - 1) / sm.aa_blocks;
                for aa in first_aa..=last_aa {
                    let aa_start = aa * sm.aa_blocks;
                    let aa_end = aa_start + sm.aa_blocks;
                    let overlap = (end.min(aa_end) - s.max(aa_start)) as u32;
                    if alloc {
                        sm.counts[aa as usize] -= overlap;
                    } else {
                        sm.counts[aa as usize] += overlap;
                    }
                }
            }
        }
        if cfg!(debug_assertions) {
            for &(start, len) in runs.iter().filter(|&&(_, len)| len > 0) {
                let end = start.get() + len;
                self.debug_check_counters(start, (start.get() / BITS_PER_BITMAP_BLOCK) as usize);
                self.debug_check_counters(
                    Vbn(end - 1),
                    ((end - 1) / BITS_PER_BITMAP_BLOCK) as usize,
                );
            }
        }
        Ok(())
    }

    /// Debug-build parity check: the mutated page's (and AA's) summary
    /// counter must equal the popcount ground truth. Compiled out of
    /// release builds.
    #[inline]
    fn debug_check_counters(&self, vbn: Vbn, page: usize) {
        if cfg!(debug_assertions) {
            debug_assert_eq!(
                self.page_free[page] as u32,
                self.pages[page].free_count(),
                "page {page} summary counter diverged from popcount"
            );
            if let Some(s) = self.aa_summary.as_ref() {
                let aa = vbn.get() / s.aa_blocks;
                debug_assert_eq!(
                    s.counts[aa as usize],
                    self.free_count_range_popcount(Vbn(aa * s.aa_blocks), s.aa_blocks),
                    "AA {aa} summary counter diverged from popcount"
                );
            }
        }
    }

    /// Number of free blocks in `start .. start+len` (clamped to the
    /// space). This is how an AA score is computed from the metafile
    /// (§3.3: "computed by consulting bitmap metafiles") — but pages the
    /// range fully covers are answered from the per-page summary counter,
    /// so only the two partial edge pages ever cost a popcount.
    pub fn free_count_range(&self, start: Vbn, len: u64) -> u32 {
        let start = start.get().min(self.space_len);
        let end = start.saturating_add(len).min(self.space_len);
        if start >= end {
            return 0;
        }
        let mut total = 0u32;
        let mut pos = start;
        while pos < end {
            let page = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            let page_end = ((page as u64 + 1) * BITS_PER_BITMAP_BLOCK).min(end);
            if in_page == 0 && page_end - pos == BITS_PER_BITMAP_BLOCK {
                total += self.page_free[page] as u32;
            } else {
                let in_page_end = in_page + (page_end - pos);
                total += self.pages[page].free_count_range(in_page, in_page_end);
            }
            pos = page_end;
        }
        total
    }

    /// [`Bitmap::free_count_range`] computed by raw popcount only, never
    /// consulting the summary counters. This is the pre-summary
    /// implementation, kept as the ground truth the debug assertions,
    /// property tests, and `BENCH_bitmap` before/after benches compare
    /// against.
    pub fn free_count_range_popcount(&self, start: Vbn, len: u64) -> u32 {
        let start = start.get().min(self.space_len);
        let end = start.saturating_add(len).min(self.space_len);
        if start >= end {
            return 0;
        }
        let mut total = 0u32;
        let mut pos = start;
        while pos < end {
            let page = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            let page_end = ((page as u64 + 1) * BITS_PER_BITMAP_BLOCK).min(end);
            let in_page_end = in_page + (page_end - pos);
            total += self.pages[page].free_count_range(in_page, in_page_end);
            pos = page_end;
        }
        total
    }

    /// First free VBN at or after `from`, or `None`. Pages whose summary
    /// counter is zero are skipped without touching their words, so a
    /// nearly full bitmap costs one counter load per full page instead of
    /// a 4 KiB word walk.
    pub fn first_free_from(&self, from: Vbn) -> Option<Vbn> {
        if from.get() >= self.space_len {
            return None;
        }
        let mut page = (from.get() / BITS_PER_BITMAP_BLOCK) as usize;
        let mut in_page = from.get() % BITS_PER_BITMAP_BLOCK;
        while page < self.pages.len() {
            if self.page_free[page] == 0 {
                page += 1;
                in_page = 0;
                continue;
            }
            if let Some(i) = self.pages[page].first_free_from(in_page) {
                let vbn = page as u64 * BITS_PER_BITMAP_BLOCK + i;
                // Tail padding is allocated, so vbn < space_len always holds;
                // keep the check as a defensive invariant.
                return (vbn < self.space_len).then_some(Vbn(vbn));
            }
            page += 1;
            in_page = 0;
        }
        None
    }

    /// Free blocks in page `page`, from the summary counter — O(1).
    /// `None` if `page` is out of range.
    pub fn page_free_count(&self, page: usize) -> Option<u32> {
        self.page_free.get(page).map(|&c| c as u32)
    }

    /// All per-page free counts (one `u16` per 4 KiB metafile page).
    pub fn page_free_counts(&self) -> &[u16] {
        &self.page_free
    }

    /// Count summary counters (per-page, per-AA, plus the top-level
    /// free-block total) that disagree with the popcount ground truth.
    /// Zero on a healthy bitmap; nonzero only if memory damage (or a bug)
    /// corrupted the summary. Iron audits consume this and repair with
    /// [`Bitmap::rebuild_summary`].
    pub fn summary_divergences(&self) -> u64 {
        let mut bad = 0u64;
        let mut total = 0u64;
        for (p, page) in self.pages.iter().enumerate() {
            let truth = page.free_count();
            if self.page_free[p] as u32 != truth {
                bad += 1;
            }
            total += truth as u64;
        }
        if self.free_blocks != total {
            bad += 1;
        }
        if let Some(s) = self.aa_summary.as_ref() {
            for (aa, &count) in s.counts.iter().enumerate() {
                let start = Vbn(aa as u64 * s.aa_blocks);
                if count != self.free_count_range_popcount(start, s.aa_blocks) {
                    bad += 1;
                }
            }
        }
        bad
    }

    /// Fault-injection hook: overwrite one per-page summary counter
    /// without touching the raw bits — a memory scribble on derived
    /// state, so crash/corruption tests can exercise the Iron summary
    /// audit. No-op if `page` is out of range.
    pub fn scribble_page_counter(&mut self, page: usize, value: u16) {
        if let Some(c) = self.page_free.get_mut(page) {
            *c = value;
        }
    }

    /// Recompute the summary counters covering one metafile page from the
    /// raw bits: the page's free counter, the top-level free-block total,
    /// and any per-AA counters whose tiling intersects the page. This is
    /// the structure-scoped repair the runtime scrubber schedules — a
    /// single page's worth of popcounting instead of a whole-space
    /// [`Bitmap::rebuild_summary`]. Returns the number of counters that
    /// actually changed (0 when the summary was already exact, or `page`
    /// is out of range).
    pub fn rebuild_page_summary(&mut self, page: usize) -> u64 {
        let Some(pg) = self.pages.get(page) else {
            return 0;
        };
        let mut fixed = 0u64;
        let truth = pg.free_count() as u16;
        if self.page_free[page] != truth {
            self.page_free[page] = truth;
            fixed += 1;
        }
        let total: u64 = self.page_free.iter().map(|&c| c as u64).sum();
        if self.free_blocks != total {
            self.free_blocks = total;
            fixed += 1;
        }
        let page_start = page as u64 * BITS_PER_BITMAP_BLOCK;
        let page_end = (page_start + BITS_PER_BITMAP_BLOCK).min(self.space_len);
        if let Some(aa_blocks) = self.aa_summary_blocks() {
            let first_aa = (page_start / aa_blocks) as usize;
            let last_aa = (page_end.saturating_sub(1) / aa_blocks) as usize;
            for aa in first_aa..=last_aa {
                let truth = self.free_count_range_popcount(Vbn(aa as u64 * aa_blocks), aa_blocks);
                let s = self.aa_summary.as_mut().expect("aa summary present");
                if s.counts[aa] != truth {
                    s.counts[aa] = truth;
                    fixed += 1;
                }
            }
        }
        fixed
    }

    /// Recompute every summary counter from the raw bits — what WAFL Iron
    /// does for damaged derived state: recompute, don't fabricate.
    pub fn rebuild_summary(&mut self) {
        for (p, page) in self.pages.iter().enumerate() {
            self.page_free[p] = page.free_count() as u16;
        }
        self.free_blocks = self.page_free.iter().map(|&c| c as u64).sum();
        if let Some(aa_blocks) = self.aa_summary_blocks() {
            let counts = self.compute_aa_counts(aa_blocks);
            self.aa_summary = Some(AaSummary { aa_blocks, counts });
        }
    }

    /// Verify every summary counter (per-page, per-AA, and the top-level
    /// free-block total) against the popcount ground truth. Panics on the
    /// first divergence. Debug builds run this at every
    /// [`Bitmap::take_dirty_stats`] — i.e. every consistency point — so a
    /// crash/remount cycle can never carry a stale summary forward
    /// unnoticed; tests and Iron audits may call it directly.
    pub fn verify_summary(&self) {
        let mut total = 0u64;
        for (p, page) in self.pages.iter().enumerate() {
            let truth = page.free_count();
            assert_eq!(
                self.page_free[p] as u32, truth,
                "page {p} summary counter diverged from popcount"
            );
            total += truth as u64;
        }
        assert_eq!(
            self.free_blocks, total,
            "free_blocks counter diverged from popcount total"
        );
        if let Some(s) = self.aa_summary.as_ref() {
            assert_eq!(
                s.counts.len() as u64,
                self.space_len.div_ceil(s.aa_blocks),
                "AA summary length diverged from the tiling"
            );
            for (aa, &count) in s.counts.iter().enumerate() {
                let start = Vbn(aa as u64 * s.aa_blocks);
                assert_eq!(
                    count,
                    self.free_count_range_popcount(start, s.aa_blocks),
                    "AA {aa} summary counter diverged from popcount"
                );
            }
        }
    }

    /// Iterate free VBNs in `start .. start+len` in ascending order.
    pub fn iter_free_in_range(&self, start: Vbn, len: u64) -> impl Iterator<Item = Vbn> + '_ {
        let end = (start.get() + len).min(self.space_len);
        FreeIter {
            bitmap: self,
            next: start,
            end,
        }
    }

    /// Longest run of consecutive free VBNs in `start .. start+len`.
    /// Used by fragmentation diagnostics and the write-chain model.
    pub fn longest_free_run_in_range(&self, start: Vbn, len: u64) -> u64 {
        let end = (start.get() + len).min(self.space_len);
        let mut best = 0u64;
        let mut run = 0u64;
        let mut pos = start.get();
        while pos < end {
            // Word-grained fast path via first_free_from would complicate
            // this; ranges here are AA-sized (<= a few MiB of bits), fine.
            let page = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            if self.pages[page].is_free(in_page) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
            pos += 1;
        }
        best
    }

    /// Take and reset the dirty-page statistics. Called once per CP by the
    /// consistency-point engine; the returned counts model that CP's
    /// metafile-block I/O. Debug builds verify the whole free-count
    /// summary against popcount ground truth here, so every CP boundary
    /// re-proves the counters exact.
    pub fn take_dirty_stats(&mut self) -> DirtyStats {
        if cfg!(debug_assertions) {
            self.verify_summary();
        }
        let out = self.stats;
        self.stats = DirtyStats::default();
        self.dirty.iter_mut().for_each(|d| *d = false);
        out
    }

    /// Grow the space to `new_len` VBNs (aggregate growth: §3.1's "RAID
    /// group creation and growth"). The old tail page's padding becomes
    /// real free space; new pages arrive free with the new tail padded.
    /// Shrinking is not supported.
    pub fn extend(&mut self, new_len: u64) -> WaflResult<()> {
        if new_len < self.space_len {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "cannot shrink a bitmap from {} to {new_len}",
                    self.space_len
                ),
            });
        }
        if new_len == self.space_len {
            return Ok(());
        }
        // Unpad the old tail up to the page boundary (or new_len).
        let old_len = self.space_len;
        let old_tail = old_len % BITS_PER_BITMAP_BLOCK;
        if old_tail != 0 {
            let page = (old_len / BITS_PER_BITMAP_BLOCK) as usize;
            let unpad_end = (old_len - old_tail + BITS_PER_BITMAP_BLOCK).min(new_len);
            for v in old_len..unpad_end {
                let was = self.pages[page].set_free(v % BITS_PER_BITMAP_BLOCK);
                debug_assert!(was, "tail padding must have been allocated");
                self.free_blocks += 1;
                self.page_free[page] += 1;
            }
        }
        // Append whole pages.
        let new_pages = new_len.div_ceil(BITS_PER_BITMAP_BLOCK) as usize;
        while self.pages.len() < new_pages {
            self.pages.push(BitmapPage::new_free());
            self.dirty.push(false);
            let page_start = (self.pages.len() as u64 - 1) * BITS_PER_BITMAP_BLOCK;
            let free = BITS_PER_BITMAP_BLOCK.min(new_len - page_start);
            self.free_blocks += free;
            self.page_free.push(free as u16);
        }
        // Pad the new tail. The pushed counter above already excludes the
        // padding, and set_allocated on padding bits flips real bits only
        // for freshly pushed pages (whose counter accounts for them).
        let new_tail = new_len % BITS_PER_BITMAP_BLOCK;
        if new_tail != 0 {
            let last = self.pages.last_mut().expect("pages exist after extend");
            for i in new_tail..BITS_PER_BITMAP_BLOCK {
                last.set_allocated(i);
            }
        }
        self.space_len = new_len;
        // The AA tiling over the grown space has more (and re-shaped
        // trailing) AAs: rebuild its counters from the page summaries.
        // Growth is a RAID-group-addition-frequency event, not a hot path.
        if let Some(aa_blocks) = self.aa_summary_blocks() {
            let counts = self.compute_aa_counts(aa_blocks);
            self.aa_summary = Some(AaSummary { aa_blocks, counts });
        }
        if cfg!(debug_assertions) {
            self.verify_summary();
        }
        Ok(())
    }

    /// Read-only access to a page, for scans and serialization.
    /// `None` if `page` is out of range.
    pub fn page(&self, page: usize) -> Option<&BitmapPage> {
        self.pages.get(page)
    }
}

struct FreeIter<'a> {
    bitmap: &'a Bitmap,
    next: Vbn,
    end: u64,
}

impl Iterator for FreeIter<'_> {
    type Item = Vbn;

    fn next(&mut self) -> Option<Vbn> {
        let vbn = self.bitmap.first_free_from(self.next)?;
        if vbn.get() >= self.end {
            return None;
        }
        self.next = vbn.next();
        Some(vbn)
    }
}

struct FreeRunIter<'a> {
    bitmap: &'a Bitmap,
    next: u64,
    end: u64,
}

impl Iterator for FreeRunIter<'_> {
    type Item = (Vbn, u64);

    fn next(&mut self) -> Option<(Vbn, u64)> {
        if self.next >= self.end {
            return None;
        }
        let start = self.bitmap.first_free_from(Vbn(self.next))?;
        if start.get() >= self.end {
            return None;
        }
        // Extend the run page by page: a page whose remainder holds no
        // allocated bit is consumed whole, so long runs cost one probe
        // per 32 Ki bits rather than one per bit.
        let mut pos = start.get();
        while pos < self.end {
            let p = (pos / BITS_PER_BITMAP_BLOCK) as usize;
            let in_page = pos % BITS_PER_BITMAP_BLOCK;
            match self.bitmap.pages[p].first_allocated_in(in_page, BITS_PER_BITMAP_BLOCK) {
                Some(i) => {
                    pos = p as u64 * BITS_PER_BITMAP_BLOCK + i;
                    break;
                }
                None => pos = (p as u64 + 1) * BITS_PER_BITMAP_BLOCK,
            }
        }
        let run_end = pos.min(self.end);
        self.next = run_end + 1; // +1: the bit at run_end is allocated
        Some((start, run_end - start.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bitmap_is_all_free() {
        let b = Bitmap::new(100_000);
        assert_eq!(b.free_blocks(), 100_000);
        assert_eq!(b.space_len(), 100_000);
        assert_eq!(b.page_count(), 4); // ceil(100_000 / 32768)
        assert_eq!(b.free_fraction(), 1.0);
    }

    #[test]
    fn tail_padding_is_not_free_space() {
        // 40_000 VBNs: second page is mostly padding.
        let b = Bitmap::new(40_000);
        assert_eq!(b.free_count_range(Vbn(0), u64::MAX), 40_000);
        assert_eq!(b.first_free_from(Vbn(39_999)), Some(Vbn(39_999)));
        assert_eq!(b.free_count_range(Vbn(32_768), 32_768), 40_000 - 32_768);
    }

    #[test]
    fn allocate_free_round_trip() {
        let mut b = Bitmap::new(1000);
        b.allocate(Vbn(10)).unwrap();
        assert!(!b.is_free(Vbn(10)).unwrap());
        assert_eq!(b.free_blocks(), 999);
        b.free(Vbn(10)).unwrap();
        assert!(b.is_free(Vbn(10)).unwrap());
        assert_eq!(b.free_blocks(), 1000);
    }

    #[test]
    fn rebuild_page_summary_fixes_only_the_scribbled_page() {
        let mut b = Bitmap::new(3 * BITS_PER_BITMAP_BLOCK);
        b.enable_aa_summary(BITS_PER_BITMAP_BLOCK / 4).unwrap();
        for v in 0..100 {
            b.allocate(Vbn(v)).unwrap();
        }
        b.scribble_page_counter(1, 7);
        // The scribble hit page 1's counter only; the tracked total, AA
        // counters, and other pages are still exact, so the repair fixes
        // exactly one counter.
        assert_eq!(b.rebuild_page_summary(1), 1);
        b.verify_summary();
        // Repairing a clean page is a no-op, as is an out-of-range page.
        assert_eq!(b.rebuild_page_summary(0), 0);
        assert_eq!(b.rebuild_page_summary(999), 0);
    }

    #[test]
    fn run_mutators_match_per_bit_loop_and_are_atomic() {
        // Run crossing a page boundary on a summary-enabled bitmap.
        let mut bulk = Bitmap::new(3 * BITS_PER_BITMAP_BLOCK);
        bulk.enable_aa_summary(BITS_PER_BITMAP_BLOCK / 4).unwrap();
        let mut bit = Bitmap::new(3 * BITS_PER_BITMAP_BLOCK);
        bit.enable_aa_summary(BITS_PER_BITMAP_BLOCK / 4).unwrap();
        let (start, len) = (BITS_PER_BITMAP_BLOCK - 100, 300);
        bulk.allocate_run(Vbn(start), len).unwrap();
        for v in start..start + len {
            bit.allocate(Vbn(v)).unwrap();
        }
        assert_eq!(bulk.free_blocks(), bit.free_blocks());
        assert_eq!(
            bulk.aa_free_counts(BITS_PER_BITMAP_BLOCK / 4),
            bit.aa_free_counts(BITS_PER_BITMAP_BLOCK / 4)
        );
        assert_eq!(bulk.take_dirty_stats(), bit.take_dirty_stats());
        // Atomic: a mid-run conflict reports the first offending VBN and
        // leaves the bitmap untouched.
        let before = bulk.free_blocks();
        let err = bulk.allocate_run(Vbn(start - 10), 20).unwrap_err();
        assert!(matches!(
            err,
            WaflError::BitmapStateMismatch { vbn, expected_free: true } if vbn == Vbn(start)
        ));
        assert_eq!(bulk.free_blocks(), before);
        bulk.verify_summary();
        // Free the run back in bulk; out-of-range runs also fail cleanly.
        bulk.free_run(Vbn(start), len).unwrap();
        assert_eq!(bulk.free_blocks(), 3 * BITS_PER_BITMAP_BLOCK);
        bulk.verify_summary();
        assert!(matches!(
            bulk.allocate_run(Vbn(3 * BITS_PER_BITMAP_BLOCK - 1), 2),
            Err(WaflError::VbnOutOfRange { .. })
        ));
        assert!(bulk.allocate_run(Vbn(0), 0).is_ok());
    }

    #[test]
    fn free_sorted_blocks_matches_per_block_free() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        // An AA size that is not a multiple of 64 exercises the per-bit
        // summary fallback; a page-sized one exercises the per-word fast
        // path.
        for aa_blocks in [1000, BITS_PER_BITMAP_BLOCK] {
            let space = 3 * BITS_PER_BITMAP_BLOCK;
            let mut bulk = Bitmap::new(space);
            bulk.enable_aa_summary(aa_blocks).unwrap();
            let mut bit = Bitmap::new(space);
            bit.enable_aa_summary(aa_blocks).unwrap();
            // Allocate everything, then free a scattered sorted subset
            // (isolated bits, same-word neighbours, word and page
            // boundaries all show up at this density).
            for b in [&mut bulk, &mut bit] {
                b.mutate_runs_partitioned(&[(Vbn(0), space)], true, 1)
                    .unwrap();
            }
            let mut rng = StdRng::seed_from_u64(aa_blocks);
            let mut vbns: Vec<Vbn> = (0..space)
                .filter(|_| rng.random_bool(0.1))
                .map(Vbn)
                .collect();
            for &must in &[
                0,
                63,
                64,
                BITS_PER_BITMAP_BLOCK - 1,
                BITS_PER_BITMAP_BLOCK,
                space - 1,
            ] {
                if !vbns.contains(&Vbn(must)) {
                    vbns.push(Vbn(must));
                }
            }
            vbns.sort_unstable();
            bulk.free_sorted_blocks(&vbns).unwrap();
            for &v in &vbns {
                bit.free(v).unwrap();
            }
            assert_eq!(bulk.free_blocks(), bit.free_blocks());
            assert_eq!(
                bulk.aa_free_counts(aa_blocks),
                bit.aa_free_counts(aa_blocks)
            );
            for p in 0..bulk.page_count() {
                assert_eq!(bulk.pages[p].words(), bit.pages[p].words(), "page {p}");
            }
            assert_eq!(bulk.take_dirty_stats(), bit.take_dirty_stats());
            bulk.verify_summary();
        }
    }

    #[test]
    fn free_sorted_blocks_is_atomic_and_validates_input() {
        let mut b = Bitmap::new(2 * BITS_PER_BITMAP_BLOCK);
        b.enable_aa_summary(BITS_PER_BITMAP_BLOCK).unwrap();
        b.allocate_run(Vbn(100), 50).unwrap();
        let stats_before = b.stats;
        // VBN 200 is already free: the whole batch must bounce untouched,
        // naming the offending VBN.
        let err = b
            .free_sorted_blocks(&[Vbn(100), Vbn(101), Vbn(200)])
            .unwrap_err();
        assert!(matches!(
            err,
            WaflError::BitmapStateMismatch { vbn, expected_free: false } if vbn == Vbn(200)
        ));
        assert!(!b.is_free(Vbn(100)).unwrap());
        assert_eq!(b.free_blocks(), 2 * BITS_PER_BITMAP_BLOCK - 50);
        assert_eq!(b.stats, stats_before, "failed batch left no dirty marks");
        // Duplicates are double frees; unsorted input is rejected too.
        assert!(matches!(
            b.free_sorted_blocks(&[Vbn(100), Vbn(100)]),
            Err(WaflError::InvalidConfig { .. })
        ));
        assert!(matches!(
            b.free_sorted_blocks(&[Vbn(101), Vbn(100)]),
            Err(WaflError::InvalidConfig { .. })
        ));
        assert!(matches!(
            b.free_sorted_blocks(&[Vbn(2 * BITS_PER_BITMAP_BLOCK)]),
            Err(WaflError::VbnOutOfRange { .. })
        ));
        assert!(b.free_sorted_blocks(&[]).is_ok());
        b.verify_summary();
    }

    #[test]
    fn free_runs_in_range_yields_maximal_runs() {
        let mut b = Bitmap::new(2 * BITS_PER_BITMAP_BLOCK);
        // Carve the space into: [0,5) allocated, [5,100) free, [100,101)
        // allocated, then free across the page boundary until a late
        // allocated bit, then free tail.
        b.allocate_run(Vbn(0), 5).unwrap();
        b.allocate(Vbn(100)).unwrap();
        let late = BITS_PER_BITMAP_BLOCK + 50;
        b.allocate(Vbn(late)).unwrap();
        let runs: Vec<_> = b.free_runs_in_range(Vbn(0), u64::MAX).collect();
        assert_eq!(
            runs,
            vec![
                (Vbn(5), 95),
                (Vbn(101), late - 101),
                (Vbn(late + 1), 2 * BITS_PER_BITMAP_BLOCK - (late + 1)),
            ]
        );
        // Clamped range splits mid-run.
        let clamped: Vec<_> = b.free_runs_in_range(Vbn(50), 100).collect();
        assert_eq!(clamped, vec![(Vbn(50), 50), (Vbn(101), 49)]);
        // Fully allocated range yields nothing.
        assert_eq!(b.free_runs_in_range(Vbn(0), 5).count(), 0);
    }

    #[test]
    fn double_allocate_and_double_free_fail() {
        let mut b = Bitmap::new(1000);
        b.allocate(Vbn(5)).unwrap();
        assert!(matches!(
            b.allocate(Vbn(5)),
            Err(WaflError::BitmapStateMismatch { .. })
        ));
        b.free(Vbn(5)).unwrap();
        assert!(matches!(
            b.free(Vbn(5)),
            Err(WaflError::BitmapStateMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut b = Bitmap::new(1000);
        assert!(matches!(
            b.allocate(Vbn(1000)),
            Err(WaflError::VbnOutOfRange { .. })
        ));
        assert!(b.is_free(Vbn(1_000_000)).is_err());
    }

    #[test]
    fn free_count_range_spans_pages() {
        let mut b = Bitmap::new(3 * 32768);
        // Allocate a band straddling the page-0/page-1 boundary.
        for v in 32_700..32_900 {
            b.allocate(Vbn(v)).unwrap();
        }
        assert_eq!(b.free_count_range(Vbn(32_700), 200), 0);
        assert_eq!(b.free_count_range(Vbn(0), 3 * 32768), 3 * 32768 - 200);
        assert_eq!(b.free_count_range(Vbn(32_699), 202), 2);
    }

    #[test]
    fn first_free_crosses_page_boundary() {
        let mut b = Bitmap::new(2 * 32768);
        for v in 0..32768 {
            b.allocate(Vbn(v)).unwrap();
        }
        assert_eq!(b.first_free_from(Vbn(0)), Some(Vbn(32768)));
    }

    #[test]
    fn first_free_worst_case_lands_in_last_page() {
        // Worst case for the pre-summary word-walk: every page except
        // the last is completely allocated and the only free bit is the
        // final VBN. The skip-scan must answer from three counter reads
        // plus one page walk instead of scanning 2048 words.
        const PAGES: u64 = 4;
        let len = PAGES * BITS_PER_BITMAP_BLOCK;
        let mut b = Bitmap::new(len);
        for v in 0..len - 1 {
            b.allocate(Vbn(v)).unwrap();
        }
        for p in 0..PAGES as usize - 1 {
            assert_eq!(b.page_free_count(p), Some(0));
        }
        assert_eq!(b.page_free_count(PAGES as usize - 1), Some(1));
        assert_eq!(b.first_free_from(Vbn(0)), Some(Vbn(len - 1)));
        assert_eq!(b.first_free_from(Vbn(len - 1)), Some(Vbn(len - 1)));
        // Once that bit goes too, the scan exhausts via counters alone.
        b.allocate(Vbn(len - 1)).unwrap();
        assert_eq!(b.first_free_from(Vbn(0)), None);
        b.free(Vbn(17)).unwrap();
        assert_eq!(b.first_free_from(Vbn(0)), Some(Vbn(17)));
        assert_eq!(b.first_free_from(Vbn(18)), None);
    }

    #[test]
    fn iter_free_in_range_respects_bounds() {
        let mut b = Bitmap::new(100);
        for v in [3u64, 5, 7] {
            b.allocate(Vbn(v)).unwrap();
        }
        let free: Vec<u64> = b.iter_free_in_range(Vbn(2), 8).map(Vbn::get).collect();
        assert_eq!(free, vec![2, 4, 6, 8, 9]);
    }

    #[test]
    fn dirty_stats_count_distinct_pages_once() {
        let mut b = Bitmap::new(4 * 32768);
        // Two flips in page 0, one in page 2.
        b.allocate(Vbn(1)).unwrap();
        b.allocate(Vbn(2)).unwrap();
        b.allocate(Vbn(2 * 32768 + 5)).unwrap();
        let s = b.take_dirty_stats();
        assert_eq!(s.pages_dirtied, 2);
        assert_eq!(s.bits_flipped, 3);
        // Stats reset after take.
        let s2 = b.take_dirty_stats();
        assert_eq!(s2, DirtyStats::default());
        // A page dirtied again counts again in the next window.
        b.free(Vbn(1)).unwrap();
        assert_eq!(b.take_dirty_stats().pages_dirtied, 1);
    }

    #[test]
    fn colocated_allocations_dirty_fewer_pages() {
        // The core of paper §2.5, as a unit test: 1000 colocated
        // allocations touch 1 page; 1000 scattered ones touch many.
        let mut colocated = Bitmap::new(100 * 32768);
        for v in 0..1000u64 {
            colocated.allocate(Vbn(v)).unwrap();
        }
        let mut scattered = Bitmap::new(100 * 32768);
        for i in 0..1000u64 {
            scattered.allocate(Vbn(i * 3277)).unwrap(); // stride over pages
        }
        let c = colocated.take_dirty_stats();
        let s = scattered.take_dirty_stats();
        assert_eq!(c.pages_dirtied, 1);
        assert!(
            s.pages_dirtied > 90,
            "scattered dirtied {}",
            s.pages_dirtied
        );
    }

    #[test]
    fn longest_free_run() {
        let mut b = Bitmap::new(1000);
        for v in [100u64, 300, 301, 302] {
            b.allocate(Vbn(v)).unwrap();
        }
        assert_eq!(b.longest_free_run_in_range(Vbn(0), 1000), 1000 - 303);
        assert_eq!(b.longest_free_run_in_range(Vbn(0), 100), 100);
        assert_eq!(b.longest_free_run_in_range(Vbn(99), 4), 2); // 101,102
    }

    #[test]
    fn extend_grows_free_space_exactly() {
        // 40_000 -> 100_000: old tail padding becomes free, new pages
        // arrive free, the new tail is padded.
        let mut b = Bitmap::new(40_000);
        for v in 0..100 {
            b.allocate(Vbn(v)).unwrap();
        }
        b.extend(100_000).unwrap();
        assert_eq!(b.space_len(), 100_000);
        assert_eq!(b.free_blocks(), 100_000 - 100);
        assert_eq!(b.page_count(), 4);
        // The formerly padded region is usable.
        assert!(b.is_free(Vbn(40_000)).unwrap());
        b.allocate(Vbn(99_999)).unwrap();
        assert!(b.allocate(Vbn(100_000)).is_err());
        // Counting agrees with the incremental tracker.
        assert_eq!(b.free_count_range(Vbn(0), u64::MAX) as u64, b.free_blocks());
    }

    #[test]
    fn extend_is_idempotent_at_same_size_and_rejects_shrink() {
        let mut b = Bitmap::new(50_000);
        b.extend(50_000).unwrap();
        assert_eq!(b.free_blocks(), 50_000);
        assert!(b.extend(10_000).is_err());
    }

    #[test]
    fn extend_within_the_same_page() {
        let mut b = Bitmap::new(10_000);
        b.extend(20_000).unwrap();
        assert_eq!(b.page_count(), 1);
        assert_eq!(b.free_blocks(), 20_000);
        assert!(b.is_free(Vbn(15_000)).unwrap());
        assert!(b.is_free(Vbn(19_999)).unwrap());
        assert!(b.allocate(Vbn(20_000)).is_err());
    }

    #[test]
    fn zero_length_space() {
        let b = Bitmap::new(0);
        assert_eq!(b.free_blocks(), 0);
        assert_eq!(b.page_count(), 0);
        assert_eq!(b.first_free_from(Vbn(0)), None);
        assert_eq!(b.free_fraction(), 0.0);
    }
}
