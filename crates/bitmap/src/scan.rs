//! Whole-bitmap scans used to build and rebuild AA caches.
//!
//! Rebuilding an AA cache "requires a linear walk of the bitmap metafiles
//! in order to compute the scores of each AA" (§3.4). These walks are the
//! expensive path the TopAA metafile exists to avoid, so the harness both
//! uses them (for cold mounts and background rebuilds) and measures them.
//!
//! Scans are data-parallel over metafile pages via rayon: each AA's score
//! only depends on a contiguous bit range, so the page array partitions
//! cleanly.

use crate::bitmap::Bitmap;
use rayon::prelude::*;
use wafl_types::{AaId, AaScore};

/// Minimum AA count before [`scores_par`] actually fans out over rayon.
/// Below this the per-task dispatch overhead exceeds the range counts
/// themselves (each AA is a handful of summary-counter reads), so
/// [`scores_generic`] cuts over to the sequential walk and `scores_par`
/// degenerates to [`scores_seq`]. Output is identical either way.
pub const PAR_SCAN_MIN_AAS: u64 = 64;

/// The one score-computation body behind [`scores_seq`] and
/// [`scores_par`], so the fast paths can never diverge between them:
///
/// 1. a matching per-AA summary ([`Bitmap::aa_free_counts`]) turns the
///    whole rebuild into a sequential counter copy — O(1) per AA, no
///    bitmap words touched (parallelism would only add overhead, so the
///    `parallel` flag is ignored here);
/// 2. otherwise each AA is a [`Bitmap::free_count_range`], which answers
///    fully-covered pages from the per-page counters and popcounts only
///    the partial edges — fanned out over rayon when `parallel` is set
///    *and* there are at least [`PAR_SCAN_MIN_AAS`] AAs to amortise the
///    dispatch; smaller scans run sequentially regardless.
fn scores_generic(bitmap: &Bitmap, aa_blocks: u64, parallel: bool) -> Vec<(AaId, AaScore)> {
    assert!(aa_blocks > 0, "aa_blocks must be positive");
    if let Some(counts) = bitmap.aa_free_counts(aa_blocks) {
        return counts
            .iter()
            .enumerate()
            .map(|(aa, &c)| (AaId(aa as u32), AaScore(c)))
            .collect();
    }
    let aa_count = bitmap.space_len().div_ceil(aa_blocks);
    let score_one = |aa: u64| {
        let start = wafl_types::Vbn(aa * aa_blocks);
        let score = bitmap.free_count_range(start, aa_blocks);
        (AaId(aa as u32), AaScore(score))
    };
    if parallel && aa_count >= PAR_SCAN_MIN_AAS {
        (0..aa_count).into_par_iter().map(score_one).collect()
    } else {
        (0..aa_count).map(score_one).collect()
    }
}

/// Compute the score (free-block count) of every AA of `aa_blocks`
/// consecutive VBNs, in AA order. The trailing partial AA, if any, is
/// included; its score reflects only in-range blocks because the bitmap
/// pads its tail with allocated bits.
///
/// Always runs sequentially; see [`scores_par`] for the variant that may
/// fan out over rayon. Both answer from the free-count summary where one
/// is available (see [`scores_popcount`] for the raw-walk ground truth).
pub fn scores_seq(bitmap: &Bitmap, aa_blocks: u64) -> Vec<(AaId, AaScore)> {
    scores_generic(bitmap, aa_blocks, false)
}

/// Parallel version of [`scores_seq`], used by background rebuilds.
/// Identical output; both share [`scores_generic`], so the summary fast
/// path and the [`PAR_SCAN_MIN_AAS`] cutover (below which this runs
/// sequentially too) can never make the two disagree.
///
/// When it does fan out and `aa_blocks` is a multiple of the page size
/// (the RAID-agnostic default is exactly one page), each task reduces
/// whole pages and never shares a cache line with its neighbour.
pub fn scores_par(bitmap: &Bitmap, aa_blocks: u64) -> Vec<(AaId, AaScore)> {
    scores_generic(bitmap, aa_blocks, true)
}

/// Every AA's score by raw popcount walk — the pre-summary
/// implementation ("a linear walk of the bitmap metafiles", §3.4), never
/// consulting a counter. Property tests pin [`scores_par`] to this, and
/// the `BENCH_bitmap` baseline measures the summary's speedup against it.
pub fn scores_popcount(bitmap: &Bitmap, aa_blocks: u64) -> Vec<(AaId, AaScore)> {
    assert!(aa_blocks > 0, "aa_blocks must be positive");
    let aa_count = bitmap.space_len().div_ceil(aa_blocks);
    (0..aa_count)
        .map(|aa| {
            let start = wafl_types::Vbn(aa * aa_blocks);
            let score = bitmap.free_count_range_popcount(start, aa_blocks);
            (AaId(aa as u32), AaScore(score))
        })
        .collect()
}

/// Per-page free counts (one entry per 4 KiB metafile block), straight
/// from the per-page summary counters — no bitmap words are read. This is
/// the natural unit for RAID-agnostic AAs (1 AA = 1 page) and is also
/// used by the mount-time cost model: a full walk reads every page.
pub fn page_free_counts(bitmap: &Bitmap) -> Vec<u32> {
    bitmap
        .page_free_counts()
        .iter()
        .map(|&c| c as u32)
        .collect()
}

/// Number of metafile pages a full cache-rebuild walk must read.
pub fn walk_pages(bitmap: &Bitmap) -> u64 {
    bitmap.page_count() as u64
}

/// Fragmentation summary of a VBN range: (free blocks, free runs, longest
/// run). Used by the experiments to characterise aged file systems.
pub fn fragmentation_in_range(
    bitmap: &Bitmap,
    start: wafl_types::Vbn,
    len: u64,
) -> (u64, u64, u64) {
    let end = (start.get() + len).min(bitmap.space_len());
    let mut free = 0u64;
    let mut runs = 0u64;
    let mut longest = 0u64;
    let mut pos = start;
    while let Some(run_start) = bitmap.first_free_from(pos) {
        if run_start.get() >= end {
            break;
        }
        // Extend the run.
        let mut run_end = run_start.get();
        while run_end < end && bitmap.is_free(wafl_types::Vbn(run_end)).unwrap_or(false) {
            run_end += 1;
        }
        let run_len = run_end - run_start.get();
        free += run_len;
        runs += 1;
        longest = longest.max(run_len);
        pos = wafl_types::Vbn(run_end + 1);
        if pos.get() >= end {
            break;
        }
    }
    (free, runs, longest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use wafl_types::Vbn;

    fn aged_bitmap(space: u64, fill: f64, seed: u64) -> Bitmap {
        let mut b = Bitmap::new(space);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let target = (space as f64 * fill) as u64;
        let mut allocated = 0;
        while allocated < target {
            let v = Vbn(rng.random_range(0..space));
            if b.allocate(v).is_ok() {
                allocated += 1;
            }
        }
        b
    }

    #[test]
    fn seq_and_par_scores_agree() {
        let b = aged_bitmap(10 * 32768, 0.4, 42);
        let seq = scores_seq(&b, 32768);
        let par = scores_par(&b, 32768);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 10);
        let total: u64 = seq.iter().map(|&(_, s)| s.get() as u64).sum();
        assert_eq!(total, b.free_blocks());
    }

    #[test]
    fn scores_with_non_page_aa_size() {
        let b = aged_bitmap(100_000, 0.3, 7);
        let seq = scores_seq(&b, 12_345);
        let par = scores_par(&b, 12_345);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 100_000_usize.div_ceil(12_345));
        let total: u64 = seq.iter().map(|&(_, s)| s.get() as u64).sum();
        assert_eq!(total, b.free_blocks());
    }

    #[test]
    fn par_cutover_agrees_above_threshold() {
        let b = aged_bitmap(100_000, 0.3, 11);
        let aa_blocks = 1000;
        // 100 AAs >= PAR_SCAN_MIN_AAS, so scores_par takes the rayon path.
        assert!(100_000u64.div_ceil(aa_blocks) >= PAR_SCAN_MIN_AAS);
        assert_eq!(scores_par(&b, aa_blocks), scores_seq(&b, aa_blocks));
    }

    #[test]
    fn page_free_counts_match_range_queries() {
        let b = aged_bitmap(3 * 32768, 0.5, 3);
        let counts = page_free_counts(&b);
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, b.free_count_range(Vbn(i as u64 * 32768), 32768));
        }
    }

    #[test]
    fn fragmentation_summary() {
        let mut b = Bitmap::new(1000);
        for v in 0..1000 {
            b.allocate(Vbn(v)).unwrap();
        }
        for v in [10u64, 11, 12, 500, 900, 901] {
            b.free(Vbn(v)).unwrap();
        }
        let (free, runs, longest) = fragmentation_in_range(&b, Vbn(0), 1000);
        assert_eq!(free, 6);
        assert_eq!(runs, 3);
        assert_eq!(longest, 3);
    }

    #[test]
    fn fragmentation_of_empty_space_is_one_run() {
        let b = Bitmap::new(5000);
        let (free, runs, longest) = fragmentation_in_range(&b, Vbn(0), 5000);
        assert_eq!((free, runs, longest), (5000, 1, 5000));
    }
}
