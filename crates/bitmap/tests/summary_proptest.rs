//! Property tests for the two-level free-count summary.
//!
//! The summary (per-page `u16` counters plus optional per-AA counters) is
//! redundant state maintained incrementally by `allocate`/`free`/`extend`.
//! These tests drive a bitmap through arbitrary mutation sequences and
//! then re-derive every counter from the raw bits via the retained
//! popcount ground-truth paths (`free_count_range_popcount`,
//! `scan::scores_popcount`), proving the incremental maintenance never
//! drifts and that the summary fast paths are observationally identical
//! to the pre-summary implementation.

use proptest::prelude::*;
use wafl_bitmap::{scan, Bitmap};
use wafl_types::{Vbn, BITS_PER_BITMAP_BLOCK};

const SPACE: u64 = 100_000;
const MAX_EXTEND: u64 = 90_000;

/// Mutations to drive the bitmap with. VBNs may exceed the current space
/// (the op is then rejected by the bitmap and simply skipped), and
/// `Extend` grows by a delta so sequences stay monotonic.
#[derive(Clone, Debug)]
enum Op {
    Allocate(u64),
    Free(u64),
    Extend(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        10 => (0..SPACE + MAX_EXTEND).prop_map(Op::Allocate),
        10 => (0..SPACE + MAX_EXTEND).prop_map(Op::Free),
        1 => (1..MAX_EXTEND / 4).prop_map(Op::Extend),
    ]
}

/// Apply `ops`, ignoring rejected ones (double allocate, double free,
/// out-of-range). Returns the bitmap.
fn drive(aa_blocks: u64, ops: &[Op]) -> Bitmap {
    let mut bitmap = Bitmap::new(SPACE);
    bitmap.enable_aa_summary(aa_blocks).unwrap();
    let mut len = SPACE;
    for op in ops {
        match *op {
            Op::Allocate(v) => {
                let _ = bitmap.allocate(Vbn(v));
            }
            Op::Free(v) => {
                let _ = bitmap.free(Vbn(v));
            }
            Op::Extend(delta) => {
                len += delta;
                bitmap.extend(len).unwrap();
            }
        }
    }
    bitmap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counters_match_popcount_ground_truth(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        aa_blocks in 1u64..40_000,
    ) {
        let bitmap = drive(aa_blocks, &ops);

        // Per-page counters against a raw popcount of each page.
        let mut total = 0u64;
        for (p, &count) in bitmap.page_free_counts().iter().enumerate() {
            let truth = bitmap.free_count_range_popcount(
                Vbn(p as u64 * BITS_PER_BITMAP_BLOCK),
                BITS_PER_BITMAP_BLOCK,
            );
            prop_assert_eq!(count as u32, truth, "page {} counter drifted", p);
            total += truth as u64;
        }
        prop_assert_eq!(bitmap.free_blocks(), total);

        // Per-AA counters (they survive extend via rebuild).
        let counts = bitmap.aa_free_counts(aa_blocks).expect("summary enabled");
        prop_assert_eq!(
            counts.len() as u64,
            bitmap.space_len().div_ceil(aa_blocks)
        );
        for (aa, &count) in counts.iter().enumerate() {
            let truth =
                bitmap.free_count_range_popcount(Vbn(aa as u64 * aa_blocks), aa_blocks);
            prop_assert_eq!(count, truth, "AA {} counter drifted", aa);
        }

        // The panicking full check agrees.
        bitmap.verify_summary();
        prop_assert_eq!(bitmap.summary_divergences(), 0);
    }

    #[test]
    fn scores_unchanged_from_presummary_implementation(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        aa_blocks in 1u64..40_000,
        other_aa_blocks in 1u64..40_000,
    ) {
        let bitmap = drive(aa_blocks, &ops);
        let truth = scan::scores_popcount(&bitmap, aa_blocks);

        // Summary-enabled AA size: answered from the per-AA counters.
        prop_assert_eq!(&scan::scores_par(&bitmap, aa_blocks), &truth);
        prop_assert_eq!(&scan::scores_seq(&bitmap, aa_blocks), &truth);

        // Mismatched AA size: falls back to the per-page-accelerated
        // range counts, which must agree with the raw walk too.
        let other_truth = scan::scores_popcount(&bitmap, other_aa_blocks);
        prop_assert_eq!(&scan::scores_par(&bitmap, other_aa_blocks), &other_truth);
        prop_assert_eq!(&scan::scores_seq(&bitmap, other_aa_blocks), &other_truth);
    }
}
