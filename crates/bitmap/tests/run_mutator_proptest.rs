//! Property tests for the bulk run mutators.
//!
//! `allocate_run`/`free_run` exist purely as a faster spelling of the
//! per-bit `allocate`/`free` loop (whole-word bit stores, one summary
//! update per touched page/AA). These tests prove the two spellings are
//! observationally identical — bit state, per-page counters, per-AA
//! counters, top-level total, and `DirtyStats` accounting — on random
//! runs that cross word and page boundaries, and that a failed bulk call
//! mutates nothing. The per-bit reference loop comes from `wafl-oracle`
//! (`per_bit_allocate_run`/`per_bit_free_run`), keeping the definition
//! of "correct" outside the crate under test.

use proptest::prelude::*;
use wafl_bitmap::Bitmap;
use wafl_oracle::{per_bit_allocate_run, per_bit_free_run};
use wafl_types::{Vbn, BITS_PER_BITMAP_BLOCK};

const SPACE: u64 = 3 * BITS_PER_BITMAP_BLOCK + 777;

/// Assert every observable of `a` equals `b` (bits, counters, totals).
fn assert_equivalent(a: &Bitmap, b: &Bitmap, aa_blocks: u64) {
    assert_eq!(a.free_blocks(), b.free_blocks());
    assert_eq!(a.page_free_counts(), b.page_free_counts());
    assert_eq!(a.aa_free_counts(aa_blocks), b.aa_free_counts(aa_blocks));
    for p in 0..a.page_count() {
        assert_eq!(
            a.page(p).unwrap().words(),
            b.page(p).unwrap().words(),
            "page {p} raw bits diverged"
        );
    }
    a.verify_summary();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved bulk and per-bit mutations on two bitmaps stay
    /// bit-for-bit and counter-for-counter identical. Runs are drawn to
    /// cross word boundaries routinely and page boundaries often.
    #[test]
    fn run_mutators_match_per_bit_loop(
        runs in proptest::collection::vec(
            (0..SPACE, 1u64..2 * BITS_PER_BITMAP_BLOCK),
            1..40,
        ),
        aa_blocks in 1u64..40_000,
    ) {
        let mut bulk = Bitmap::new(SPACE);
        bulk.enable_aa_summary(aa_blocks).unwrap();
        let mut perbit = Bitmap::new(SPACE);
        perbit.enable_aa_summary(aa_blocks).unwrap();

        for (i, &(start, len)) in runs.iter().enumerate() {
            // Alternate allocate/free so both directions get coverage;
            // reject (and skip) runs whose state doesn't match, checking
            // both spellings agree on acceptance.
            let alloc = i % 2 == 0;
            let bulk_res = if alloc {
                bulk.allocate_run(Vbn(start), len)
            } else {
                bulk.free_run(Vbn(start), len)
            };
            let mut perbit_res = Ok(());
            if bulk_res.is_ok() {
                if alloc {
                    per_bit_allocate_run(&mut perbit, Vbn(start), len).unwrap();
                } else {
                    per_bit_free_run(&mut perbit, Vbn(start), len).unwrap();
                }
            } else {
                // The per-bit loop must also refuse somewhere in the run
                // (same precondition); probe without mutating.
                perbit_res = (start..start + len).try_for_each(|v| {
                    match perbit.is_free(Vbn(v)) {
                        Ok(free) if free == alloc => Ok(()),
                        _ => Err(()),
                    }
                });
                prop_assert!(perbit_res.is_err(), "bulk rejected a run per-bit accepts");
            }
            let _ = perbit_res;
            assert_equivalent(&bulk, &perbit, aa_blocks);
            // DirtyStats must agree after every step too: bulk counts one
            // dirtied page per touched page per window and one bit flip
            // per block, exactly like the loop.
            prop_assert_eq!(bulk.take_dirty_stats(), perbit.take_dirty_stats());
        }
    }

    /// A rejected bulk call (state conflict or out of range) leaves the
    /// bitmap untouched — counters, bits, and dirty stats.
    #[test]
    fn failed_run_mutation_is_a_no_op(
        occupied in 0..SPACE,
        start in 0..SPACE + 100,
        len in 1u64..BITS_PER_BITMAP_BLOCK,
    ) {
        let mut b = Bitmap::new(SPACE);
        b.enable_aa_summary(4096).unwrap();
        b.allocate(Vbn(occupied)).unwrap();
        let before_free = b.free_blocks();
        let before_pages = b.page_free_counts().to_vec();

        // Force a conflict: allocating across `occupied`, or any run that
        // leaves the space, must fail atomically.
        let conflict = start <= occupied && occupied < start.saturating_add(len);
        let out_of_range = start.saturating_add(len) > SPACE;
        let res = b.allocate_run(Vbn(start), len);
        if conflict || out_of_range {
            prop_assert!(res.is_err());
            prop_assert_eq!(b.free_blocks(), before_free);
            prop_assert_eq!(b.page_free_counts(), &before_pages[..]);
            b.verify_summary();
        } else {
            prop_assert!(res.is_ok());
            b.free_run(Vbn(start), len).unwrap();
            prop_assert_eq!(b.free_blocks(), before_free);
            b.verify_summary();
        }
    }
}
