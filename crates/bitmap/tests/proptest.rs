//! Property-based tests for the bitmap metafile against a shadow model.

use proptest::prelude::*;
use std::collections::HashSet;
use wafl_bitmap::{scan, Bitmap};
use wafl_types::Vbn;

/// Operations to drive the bitmap with.
#[derive(Clone, Debug)]
enum Op {
    Allocate(u64),
    Free(u64),
    CountRange(u64, u64),
    FirstFree(u64),
}

fn op_strategy(space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space).prop_map(Op::Allocate),
        (0..space).prop_map(Op::Free),
        (0..space, 0..space).prop_map(|(a, l)| Op::CountRange(a, l)),
        (0..space).prop_map(Op::FirstFree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_matches_hashset_shadow(
        ops in proptest::collection::vec(op_strategy(100_000), 1..400)
    ) {
        let space = 100_000u64;
        let mut bitmap = Bitmap::new(space);
        let mut shadow: HashSet<u64> = HashSet::new(); // allocated blocks
        for op in ops {
            match op {
                Op::Allocate(v) => {
                    let r = bitmap.allocate(Vbn(v));
                    prop_assert_eq!(r.is_ok(), shadow.insert(v));
                }
                Op::Free(v) => {
                    let r = bitmap.free(Vbn(v));
                    prop_assert_eq!(r.is_ok(), shadow.remove(&v));
                }
                Op::CountRange(start, len) => {
                    let expected = (start..(start + len).min(space))
                        .filter(|v| !shadow.contains(v))
                        .count() as u32;
                    prop_assert_eq!(bitmap.free_count_range(Vbn(start), len), expected);
                }
                Op::FirstFree(from) => {
                    let expected = (from..space).find(|v| !shadow.contains(v)).map(Vbn);
                    prop_assert_eq!(bitmap.first_free_from(Vbn(from)), expected);
                }
            }
            prop_assert_eq!(bitmap.free_blocks(), space - shadow.len() as u64);
        }
    }

    #[test]
    fn scores_partition_free_space(
        allocs in proptest::collection::hash_set(0u64..200_000, 0..2000),
        aa_blocks in 1u64..50_000,
    ) {
        let space = 200_000u64;
        let mut bitmap = Bitmap::new(space);
        for &v in &allocs {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        let seq = scan::scores_seq(&bitmap, aa_blocks);
        let par = scan::scores_par(&bitmap, aa_blocks);
        prop_assert_eq!(&seq, &par, "parallel scan must agree with sequential");
        let total: u64 = seq.iter().map(|&(_, s)| s.get() as u64).sum();
        prop_assert_eq!(total, bitmap.free_blocks());
        prop_assert_eq!(seq.len() as u64, space.div_ceil(aa_blocks));
        // Each AA's score is bounded by its size.
        for (i, &(_, s)) in seq.iter().enumerate() {
            let start = i as u64 * aa_blocks;
            let len = aa_blocks.min(space - start);
            prop_assert!(s.get() as u64 <= len);
        }
    }

    #[test]
    fn free_iteration_agrees_with_membership(
        allocs in proptest::collection::hash_set(0u64..40_000, 0..500),
        start in 0u64..40_000,
        len in 0u64..40_000,
    ) {
        let space = 40_000u64;
        let mut bitmap = Bitmap::new(space);
        for &v in &allocs {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        let got: Vec<u64> = bitmap
            .iter_free_in_range(Vbn(start), len)
            .map(Vbn::get)
            .collect();
        let expected: Vec<u64> = (start..(start + len).min(space))
            .filter(|v| !allocs.contains(v))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dirty_pages_bounded_by_flips_and_pages(
        allocs in proptest::collection::vec(0u64..300_000, 1..300),
    ) {
        let mut bitmap = Bitmap::new(300_000);
        let mut flips = 0u64;
        for &v in &allocs {
            if bitmap.allocate(Vbn(v)).is_ok() {
                flips += 1;
            }
        }
        let stats = bitmap.take_dirty_stats();
        prop_assert_eq!(stats.bits_flipped, flips);
        prop_assert!(stats.pages_dirtied <= flips);
        prop_assert!(stats.pages_dirtied <= bitmap.page_count() as u64);
        if flips > 0 {
            prop_assert!(stats.pages_dirtied >= 1);
        }
    }
}
