//! Property tests for the partitioned bulk mutator.
//!
//! `mutate_runs_partitioned` is the sharded CP pipeline's apply
//! primitive: sorted disjoint runs, carved into per-worker page spans and
//! stored concurrently. It exists purely as a faster spelling of a
//! sequential `allocate_run`/`free_run` loop over the same runs, so these
//! tests pin it to that loop — bit state, per-page counters, per-AA
//! counters, top-level total, and `DirtyStats` — across worker counts,
//! and prove malformed input (overlap, out-of-range, state conflicts)
//! rejects without mutating anything.

use proptest::prelude::*;
use wafl_bitmap::Bitmap;
use wafl_types::{Vbn, BITS_PER_BITMAP_BLOCK};

const SPACE: u64 = 5 * BITS_PER_BITMAP_BLOCK + 321;
const AA_BLOCKS: u64 = BITS_PER_BITMAP_BLOCK;

/// Turn arbitrary (start, len) pairs into the sorted, disjoint,
/// in-range run list the partitioned mutator requires, mirroring how the
/// CP engine builds one (sort, then drop whatever collides).
fn normalize(raw: &[(u64, u64)]) -> Vec<(Vbn, u64)> {
    let mut sorted: Vec<(u64, u64)> = raw
        .iter()
        .filter(|&&(s, l)| l > 0 && s + l <= SPACE)
        .copied()
        .collect();
    sorted.sort_unstable();
    let mut out: Vec<(Vbn, u64)> = Vec::new();
    let mut prev_end = 0u64;
    for (s, l) in sorted {
        if s >= prev_end {
            out.push((Vbn(s), l));
            prev_end = s + l;
        }
    }
    out
}

/// Assert every observable of `a` equals `b`.
fn assert_equivalent(a: &Bitmap, b: &Bitmap) {
    assert_eq!(a.free_blocks(), b.free_blocks());
    assert_eq!(a.page_free_counts(), b.page_free_counts());
    assert_eq!(a.aa_free_counts(AA_BLOCKS), b.aa_free_counts(AA_BLOCKS));
    for p in 0..a.page_count() {
        assert_eq!(
            a.page(p).unwrap().words(),
            b.page(p).unwrap().words(),
            "page {p} raw bits diverged"
        );
    }
    a.verify_summary();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Allocate-then-free cycles through the partitioned mutator match
    /// the sequential run-mutator loop at every worker count, including
    /// the degenerate 1-worker path.
    #[test]
    fn partitioned_matches_sequential_runs(
        raw in proptest::collection::vec(
            (0..SPACE, 1u64..3 * BITS_PER_BITMAP_BLOCK / 2),
            1..30,
        ),
        workers in 1usize..8,
    ) {
        let mut runs = normalize(&raw);
        if runs.is_empty() {
            runs.push((Vbn(0), 1)); // degenerate draw; keep the case alive
        }

        let mut part = Bitmap::new(SPACE);
        part.enable_aa_summary(AA_BLOCKS).unwrap();
        let mut seq = Bitmap::new(SPACE);
        seq.enable_aa_summary(AA_BLOCKS).unwrap();

        part.mutate_runs_partitioned(&runs, true, workers).unwrap();
        for &(s, l) in &runs {
            seq.allocate_run(s, l).unwrap();
        }
        assert_equivalent(&part, &seq);
        prop_assert_eq!(part.take_dirty_stats(), seq.take_dirty_stats());

        part.mutate_runs_partitioned(&runs, false, workers).unwrap();
        for &(s, l) in &runs {
            seq.free_run(s, l).unwrap();
        }
        assert_equivalent(&part, &seq);
        prop_assert_eq!(part.take_dirty_stats(), seq.take_dirty_stats());
        prop_assert_eq!(part.free_blocks(), SPACE);
    }

    /// A rejected partitioned apply — overlapping runs, a run leaving the
    /// space, or a state conflict anywhere in the batch — mutates
    /// nothing, even when the conflict sits in the last run.
    #[test]
    fn rejected_partitioned_apply_is_a_no_op(
        occupied in 0..SPACE,
        raw in proptest::collection::vec(
            (0..SPACE, 1u64..BITS_PER_BITMAP_BLOCK),
            1..12,
        ),
        workers in 1usize..8,
    ) {
        let mut runs = normalize(&raw);
        if runs.is_empty() {
            runs.push((Vbn(0), 1)); // degenerate draw; keep the case alive
        }
        let mut b = Bitmap::new(SPACE);
        b.enable_aa_summary(AA_BLOCKS).unwrap();
        b.allocate(Vbn(occupied)).unwrap();
        let before_free = b.free_blocks();
        let before_pages = b.page_free_counts().to_vec();

        let conflicts = runs
            .iter()
            .any(|&(s, l)| s.get() <= occupied && occupied < s.get() + l);
        let res = b.mutate_runs_partitioned(&runs, true, workers);
        if conflicts {
            prop_assert!(res.is_err(), "allocating over an allocated bit must fail");
            prop_assert_eq!(b.free_blocks(), before_free);
            prop_assert_eq!(b.page_free_counts(), &before_pages[..]);
            b.verify_summary();
        } else {
            prop_assert!(res.is_ok());
            b.mutate_runs_partitioned(&runs, false, workers).unwrap();
            prop_assert_eq!(b.free_blocks(), before_free);
            b.verify_summary();
        }
    }
}

/// Out-of-order and overlapping run lists are rejected up front (the
/// validation happens before any state check or store).
#[test]
fn malformed_run_lists_are_rejected() {
    let mut b = Bitmap::new(SPACE);
    b.enable_aa_summary(AA_BLOCKS).unwrap();
    // Overlap.
    assert!(b
        .mutate_runs_partitioned(&[(Vbn(0), 10), (Vbn(5), 10)], true, 4)
        .is_err());
    // Out of order (caught as overlap of the sorted precondition).
    assert!(b
        .mutate_runs_partitioned(&[(Vbn(100), 10), (Vbn(0), 10)], true, 4)
        .is_err());
    // Out of range.
    assert!(b
        .mutate_runs_partitioned(&[(Vbn(SPACE - 1), 10)], true, 4)
        .is_err());
    // Nothing mutated by any of the rejections.
    assert_eq!(b.free_blocks(), SPACE);
    b.verify_summary();
}
