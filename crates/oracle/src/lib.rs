//! The frozen sequential reference implementation of the CP write
//! pipeline — the planner that shipped before the sharded pipeline
//! became the only production path.
//!
//! Production `wafl-fs` used to keep this code alive behind
//! `write_shards == 0` branches in `cp.rs`; every parity suite compared
//! the sharded pipeline against that in-tree legacy mode. Retiring the
//! branches moved the legacy planner here, verbatim in behavior:
//! cache-guided AA selection from the max-heap / HBPS caches,
//! per-run virtual drains, per-block physical apply, per-block binding,
//! per-block delayed frees, and per-block media costing. The sharded
//! pipeline must leave an aggregate in the same observable state as
//! this oracle at every shard count (and bit-identical physical layout
//! at one shard) — `crates/fs/tests/oracle_parity.rs` and the in-crate
//! `sharded.rs` tests enforce exactly that.
//!
//! Deliberate scope cuts versus `wafl-fs` (none affect the parity
//! workloads, which run cache-guided on clean HDD aggregates):
//!
//! * cache-guided mode only — the random-AA baseline arms never ran
//!   through the legacy pipeline's parity suites;
//! * HDD media only, `Sector520` checksums, no TRIM;
//! * no snapshots, scrub, quarantine, fault injection, or batched
//!   frees — those subsystems sit outside the `shards == 0` branches
//!   this crate preserves;
//! * the sampled pick-quality audits are skipped: they only feed
//!   statistics and never influence allocator state.
//!
//! This crate is a dev-dependency only. Nothing in production depends
//! on it; it exists so the parity suites keep an independent,
//! change-resistant definition of "correct".

use std::collections::HashMap;
use wafl_bitmap::Bitmap;
use wafl_core::{AaTopology, RaidAgnosticCache, RaidAwareCache, ScoreDeltaBatch};
use wafl_media::{HddModel, MediaProfile};
use wafl_raid::{analyze_cp_write, RaidGeometry};
use wafl_types::{
    AaId, AaScore, AaSizingPolicy, ChecksumStyle, MediaType, RaidGroupId, Vbn, VolumeId, WaflError,
    WaflResult, DEFAULT_STRIPES_PER_AA, RAID_AGNOSTIC_AA_BLOCKS,
};

/// Sentinel for "no mapping" (mirrors `wafl-fs`'s volume sentinel).
const UNMAPPED: u64 = u64::MAX;

/// Owner sentinel: block free / untracked.
const OWNER_NONE: u64 = u64::MAX;

/// Pack a (volume, vvbn) owner reference — same packing as `wafl-fs`.
fn pack_owner(vol: VolumeId, vvbn: Vbn) -> u64 {
    ((vol.get() as u64) << 40) | vvbn.get()
}

/// One RAID group of identical HDDs.
#[derive(Clone, Copy, Debug)]
pub struct OracleRaidGroupSpec {
    /// Number of data devices.
    pub data_devices: u32,
    /// Number of parity devices.
    pub parity_devices: u32,
    /// Blocks per device (= stripes in the group).
    pub device_blocks: u64,
}

/// One volume: virtual space size plus an optional AA-size override.
/// The AA cache is always on — the oracle models the paper's design
/// arm, which is what every parity workload runs.
#[derive(Clone, Copy, Debug)]
pub struct OracleVolSpec {
    /// Virtual VBN space size in blocks.
    pub size_blocks: u64,
    /// Virtual AA size in blocks (`None` = the 32 Ki default).
    pub aa_blocks: Option<u64>,
}

/// Per-RAID-group results of one oracle CP. Field-for-field the shape
/// of `wafl_fs::RgCpStats`, so costing parity can compare every number.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OracleRgStats {
    /// Data blocks written to this group.
    pub blocks: u64,
    /// Tetrises (64-stripe RAID I/O units) issued.
    pub tetrises: u64,
    /// Full-stripe writes.
    pub full_stripes: u64,
    /// Partial-stripe writes.
    pub partial_stripes: u64,
    /// Blocks read for parity computation.
    pub parity_reads: u64,
    /// Parity blocks written.
    pub parity_writes: u64,
    /// Data blocks per data device.
    pub per_device_blocks: Vec<u64>,
    /// Write chains per data device.
    pub per_device_chains: Vec<u64>,
    /// Media time for this group (max across its devices), µs.
    pub media_us: f64,
}

/// Results of one oracle consistency point — the subset of
/// `wafl_fs::CpStats` the legacy pipeline computed from simulated state
/// (no wall clocks; the oracle is a specification, not a benchmark).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OracleCpStats {
    /// Client write operations flushed.
    pub ops: u64,
    /// Data blocks written.
    pub blocks_written: u64,
    /// Distinct bitmap-metafile pages dirtied (aggregate + volumes).
    pub metafile_pages: u64,
    /// Per-group breakdown.
    pub per_rg: Vec<OracleRgStats>,
    /// Media time of the CP: max across groups, µs.
    pub media_us: f64,
    /// Sum of device time across all groups, µs.
    pub media_us_total: f64,
    /// Modelled CPU time consumed by this CP, µs.
    pub cpu_us: f64,
    /// CPU time spent purely on AA-cache maintenance, µs.
    pub cache_maintenance_us: f64,
    /// Candidate block positions examined by the allocator.
    pub blocks_examined: u64,
    /// AAs picked for physical allocation.
    pub agg_picks: u64,
    /// AAs picked for virtual allocation.
    pub vol_picks: u64,
    /// Bitmap pages scanned by replenish walks during this CP.
    pub replenish_pages: u64,
    /// Volume drains resumed from a per-AA cursor.
    pub cursor_hits: u64,
    /// Volume drains that started from the AA's first VBN.
    pub cursor_misses: u64,
}

/// The CPU cost model constants, matching `wafl_fs::CpuModel::default()`.
const BASE_US_PER_OP: f64 = 200.0;
const US_PER_ALLOC_CANDIDATE: f64 = 35.0;
const US_PER_METAFILE_PAGE: f64 = 30.0;
const US_PER_BLOCK: f64 = 0.15;
const US_PER_CACHE_OP: f64 = 0.2;
const US_PER_SCAN_PAGE: f64 = 4.0;

/// A client write queued for the next CP.
#[derive(Clone, Copy, Debug)]
struct DirtyBlock {
    vol: VolumeId,
    logical: u64,
}

/// Allocation plan for one space (the oracle's `AllocOutcome`): VBNs in
/// assignment order plus the bookkeeping the CP engine needs.
#[derive(Debug, Default)]
struct Plan {
    vbns: Vec<Vbn>,
    picked: Vec<(AaId, AaScore)>,
    drained: Vec<AaId>,
    blocks_examined: u64,
    replenish_pages: u64,
    runs: Vec<(Vbn, u64)>,
    cursor_hits: u64,
    cursor_misses: u64,
}

/// Drain free VBNs of the ranges from `bitmap` (read-only) in write
/// order, up to `quota` total in `out`. Returns whether the ranges were
/// exhausted. Verbatim `wafl_fs::allocator::drain_ranges`.
fn drain_ranges(ranges: &[(Vbn, u64)], bitmap: &Bitmap, quota: usize, out: &mut Plan) -> bool {
    for &(start, len) in ranges {
        let mut last_taken: Option<u64> = None;
        for (run_start, run_len) in bitmap.free_runs_in_range(start, len) {
            let remaining = (quota - out.vbns.len()) as u64;
            if remaining == 0 {
                if let Some(last) = last_taken {
                    out.blocks_examined += last - start.get() + 1;
                }
                return false;
            }
            let take = run_len.min(remaining);
            out.vbns.extend((0..take).map(|i| Vbn(run_start.get() + i)));
            out.runs.push((run_start, take));
            last_taken = Some(run_start.get() + take - 1);
            if take < run_len {
                out.blocks_examined += run_start.get() + take - start.get();
                return false;
            }
        }
        out.blocks_examined += len;
    }
    true
}

/// Popcount an AA's free blocks directly from the raw bits.
fn popcount_score(topology: &AaTopology, bitmap: &Bitmap, aa: AaId) -> u32 {
    topology
        .aa_vbn_ranges(aa)
        .iter()
        .map(|&(start, len)| bitmap.free_count_range_popcount(start, len))
        .sum()
}

/// Runtime state of one RAID group.
pub struct OracleGroup {
    /// Geometry (device counts, capacity, PVBN base).
    pub geometry: RaidGeometry,
    topology: AaTopology,
    cache: RaidAwareCache,
    hdd: HddModel,
    stripes_per_aa: u64,
    batch: ScoreDeltaBatch,
    active_aa: Option<AaId>,
}

impl OracleGroup {
    /// The group's AA topology.
    pub fn topology(&self) -> &AaTopology {
        &self.topology
    }
}

/// One hosted volume: virtual activemap, mappings, RAID-agnostic cache.
pub struct OracleVol {
    id: VolumeId,
    bitmap: Bitmap,
    topology: AaTopology,
    cache: RaidAgnosticCache,
    logical_map: Vec<u64>,
    dirty_stamp: Vec<u8>,
    vvbn_map: HashMap<u64, u64>,
    batch: ScoreDeltaBatch,
    delayed_vvbn_frees: Vec<Vbn>,
    active_aa: Option<AaId>,
    drain_cursor: Option<(AaId, Vbn)>,
}

impl OracleVol {
    /// Free virtual VBNs.
    pub fn free_blocks(&self) -> u64 {
        self.bitmap.free_blocks()
    }

    /// Current virtual VBN of a logical block (`None` if never written).
    pub fn lookup_logical(&self, logical: u64) -> Option<Vbn> {
        let v = *self.logical_map.get(logical as usize)?;
        (v != UNMAPPED).then_some(Vbn(v))
    }

    /// Physical VBN backing a virtual VBN.
    pub fn lookup_vvbn(&self, vvbn: Vbn) -> Option<Vbn> {
        self.vvbn_map.get(&vvbn.get()).copied().map(Vbn)
    }

    /// Read access to the volume's activemap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The volume's AA topology.
    pub fn topology(&self) -> &AaTopology {
        &self.topology
    }

    /// Record that `logical` now lives at (`vvbn`, `pvbn`); returns the
    /// previous pair for the delayed-free path (no snapshots here).
    fn remap(&mut self, logical: u64, vvbn: Vbn, pvbn: Vbn) -> Option<(Vbn, Vbn)> {
        let old_v = self.logical_map[logical as usize];
        self.logical_map[logical as usize] = vvbn.get();
        self.vvbn_map.insert(vvbn.get(), pvbn.get());
        if old_v == UNMAPPED {
            return None;
        }
        let old_p = self
            .vvbn_map
            .remove(&old_v)
            .expect("mapped vvbn lacked a pvbn");
        Some((Vbn(old_v), Vbn(old_p)))
    }

    /// Remove `logical`'s mapping entirely (deletion / hole punch).
    fn unmap(&mut self, logical: u64) -> Option<(Vbn, Vbn)> {
        let old_v = self.logical_map[logical as usize];
        if old_v == UNMAPPED {
            return None;
        }
        self.logical_map[logical as usize] = UNMAPPED;
        let old_p = self
            .vvbn_map
            .remove(&old_v)
            .expect("mapped vvbn lacked a pvbn");
        Some((Vbn(old_v), Vbn(old_p)))
    }

    /// Apply the CP boundary's delayed virtual frees in bulk: sorted
    /// span walk for score accounting and cursor invalidation, then one
    /// batch free. Verbatim `FlexVol::flush_delayed_frees`.
    fn flush_delayed_frees(&mut self) -> WaflResult<u64> {
        let mut frees = std::mem::take(&mut self.delayed_vvbn_frees);
        if frees.is_empty() {
            return Ok(0);
        }
        frees.sort_unstable();
        let total = frees.len() as u64;
        let mut span_aa = AaId(0);
        let mut span_end = Vbn(0);
        let mut span_freed: u32 = 0;
        for &vbn in &frees {
            if vbn >= span_end {
                if span_freed > 0 {
                    self.batch.record_freed(span_aa, span_freed);
                    if self.drain_cursor.map(|(c, _)| c) == Some(span_aa) {
                        self.drain_cursor = None;
                    }
                }
                (span_aa, span_end) = self.topology.aa_span_of_vbn(vbn)?;
                span_freed = 0;
            }
            span_freed += 1;
        }
        if span_freed > 0 {
            self.batch.record_freed(span_aa, span_freed);
            if self.drain_cursor.map(|(c, _)| c) == Some(span_aa) {
                self.drain_cursor = None;
            }
        }
        self.bitmap.free_sorted_blocks(&frees)?;
        Ok(total)
    }

    /// Allocate `n` virtual VBNs, updating bitmap and batch in place.
    /// Verbatim `wafl_fs::allocator::allocate_vvbns`, cache-guided arm
    /// (the cache is always present; no quarantine; audits skipped —
    /// they only record statistics).
    fn allocate_vvbns(&mut self, n: usize) -> WaflResult<Plan> {
        let mut out = Plan::default();
        while out.vbns.len() < n {
            let aa = match self.active_aa {
                Some(aa) => aa,
                None => {
                    let picked = match self.cache.pick_best(&self.bitmap) {
                        Some((aa, score)) if score.get() > 0 => Some((aa, score)),
                        _ => {
                            // List drained: replenish from a scan and
                            // retry once.
                            if self.cache.maybe_replenish(&self.bitmap)? {
                                out.replenish_pages += self.bitmap.page_count() as u64;
                                self.drain_cursor = None;
                                self.cache
                                    .pick_best(&self.bitmap)
                                    .filter(|(_, s)| s.get() > 0)
                            } else {
                                None
                            }
                        }
                    };
                    match picked {
                        Some((aa, score)) => {
                            out.picked.push((aa, score));
                            self.active_aa = Some(aa);
                            aa
                        }
                        None => {
                            // Linear sweep before declaring the space
                            // full: first AA with free blocks, scored by
                            // popcount.
                            let mut found = None;
                            for aa in 0..self.topology.aa_count() {
                                let aa = AaId(aa);
                                let score = popcount_score(&self.topology, &self.bitmap, aa);
                                if score > 0 {
                                    found = Some((aa, AaScore(score)));
                                    break;
                                }
                            }
                            let Some((aa, score)) = found else {
                                return Err(WaflError::SpaceExhausted);
                            };
                            out.picked.push((aa, score));
                            self.active_aa = Some(aa);
                            aa
                        }
                    }
                }
            };
            let mut ranges = self.topology.aa_vbn_ranges(aa);
            match self.drain_cursor {
                Some((cursor_aa, resume)) if cursor_aa == aa => {
                    out.cursor_hits += 1;
                    ranges.retain_mut(|(start, len)| {
                        let end = start.get() + *len;
                        if end <= resume.get() {
                            false
                        } else {
                            if start.get() < resume.get() {
                                *len = end - resume.get();
                                *start = resume;
                            }
                            true
                        }
                    });
                }
                _ => out.cursor_misses += 1,
            }
            let mut plan = Plan::default();
            let exhausted = drain_ranges(&ranges, &self.bitmap, n - out.vbns.len(), &mut plan);
            for &(start, len) in &plan.runs {
                self.bitmap.allocate_run(start, len)?;
            }
            self.batch.record_allocated(aa, plan.vbns.len() as u32);
            out.blocks_examined += plan.blocks_examined;
            out.vbns.extend_from_slice(&plan.vbns);
            out.runs.extend_from_slice(&plan.runs);
            if exhausted {
                self.active_aa = None;
                self.drain_cursor = None;
                if plan.vbns.is_empty() && out.vbns.len() < n {
                    continue;
                }
            } else {
                let last = plan.vbns.last().expect("quota>0 and not exhausted");
                self.drain_cursor = Some((aa, Vbn(last.get() + 1)));
            }
        }
        Ok(out)
    }
}

/// Plan `quota` physical allocations from one RAID group against a
/// bitmap snapshot. Verbatim `wafl_fs::allocator::plan_raid_group`,
/// cache-guided max-heap arm.
fn plan_raid_group(g: &mut OracleGroup, bitmap: &Bitmap, quota: usize) -> WaflResult<Plan> {
    let mut out = Plan::default();
    while out.vbns.len() < quota {
        let aa = match g.active_aa {
            Some(aa) => aa,
            None => match g.cache.take_best() {
                Some((aa, score)) if score.get() > 0 => {
                    out.picked.push((aa, score));
                    g.active_aa = Some(aa);
                    aa
                }
                Some((aa, _)) => {
                    // Best AA is full: the group is exhausted.
                    out.drained.push(aa);
                    break;
                }
                None => break,
            },
        };
        let before = out.vbns.len();
        let ranges = g.topology.aa_write_ranges(aa);
        let exhausted = drain_ranges(&ranges, bitmap, quota, &mut out);
        let taken = (out.vbns.len() - before) as u32;
        g.batch.record_allocated(aa, taken);
        if exhausted {
            out.drained.push(aa);
            g.active_aa = None;
            if taken == 0 {
                // Stale-score AA with nothing actually free — move on.
                continue;
            }
        } else {
            break; // quota met mid-AA; stays active for the next CP
        }
    }
    Ok(out)
}

/// The sequential oracle aggregate: same client API shape as
/// `wafl_fs::Aggregate` for the operations the parity workloads drive
/// (overwrite, delete, CP), same observable state afterwards.
pub struct OracleAggregate {
    bitmap: Bitmap,
    groups: Vec<OracleGroup>,
    vols: Vec<OracleVol>,
    dirty: Vec<DirtyBlock>,
    cp_epoch: u64,
    pending_deletes: Vec<DirtyBlock>,
    delayed_pvbn_frees: Vec<Vbn>,
    pvbn_owner: Vec<u64>,
    cp_count: u64,
}

impl OracleAggregate {
    /// Build an oracle aggregate and its volumes; mirrors
    /// `Aggregate::new` with the paper's standard HDD defaults.
    pub fn new(
        groups: &[OracleRaidGroupSpec],
        vols: &[(OracleVolSpec, u64)],
    ) -> WaflResult<OracleAggregate> {
        if groups.is_empty() {
            return Err(WaflError::InvalidConfig {
                reason: "oracle aggregate needs at least one RAID group".into(),
            });
        }
        let profile = MediaProfile::hdd();
        let mut group_states = Vec::with_capacity(groups.len());
        let mut base = 0u64;
        for (i, spec) in groups.iter().enumerate() {
            let geometry = RaidGeometry::new(
                RaidGroupId(i as u32),
                spec.data_devices,
                spec.parity_devices,
                spec.device_blocks,
                Vbn(base),
            )?;
            base += spec.data_devices as u64 * spec.device_blocks;
            let policy = AaSizingPolicy::for_media(
                MediaType::Hdd,
                ChecksumStyle::Sector520,
                profile.device_unit_blocks(),
            );
            let stripes_per_aa = policy
                .stripes_per_aa()
                .or(policy.blocks_per_aa())
                .unwrap_or(DEFAULT_STRIPES_PER_AA)
                .min(spec.device_blocks);
            let topology = AaTopology::raid_aware(
                geometry.clone(),
                AaSizingPolicy::Stripes {
                    stripes: stripes_per_aa,
                },
            )?;
            group_states.push(OracleGroup {
                geometry,
                topology,
                cache: RaidAwareCache::new_full(Vec::new(), Vec::new())?,
                hdd: HddModel::sas_10k(),
                stripes_per_aa,
                batch: ScoreDeltaBatch::new(),
                active_aa: None,
            });
        }
        let bitmap = Bitmap::new(base);
        for g in &mut group_states {
            let scores = g.topology.all_scores(&bitmap);
            let max: Vec<u32> = (0..g.topology.aa_count())
                .map(|a| g.topology.aa_blocks(AaId(a)) as u32)
                .collect();
            g.cache = RaidAwareCache::new_full(scores.into_iter().map(|(_, s)| s).collect(), max)?;
        }
        let vols = vols
            .iter()
            .enumerate()
            .map(|(i, &(spec, logical))| {
                if spec.size_blocks < logical {
                    return Err(WaflError::InvalidConfig {
                        reason: format!(
                            "oracle volume {i}: virtual space {} smaller than logical \
                             space {logical}",
                            spec.size_blocks
                        ),
                    });
                }
                let aa_blocks = spec.aa_blocks.unwrap_or(RAID_AGNOSTIC_AA_BLOCKS);
                let topology = AaTopology::raid_agnostic(
                    spec.size_blocks,
                    AaSizingPolicy::ConsecutiveVbns { blocks: aa_blocks },
                )?;
                let mut bitmap = Bitmap::new(spec.size_blocks);
                bitmap.enable_aa_summary(aa_blocks)?;
                let cache = RaidAgnosticCache::build(topology.clone(), &bitmap)?;
                Ok(OracleVol {
                    id: VolumeId(i as u32),
                    bitmap,
                    topology,
                    cache,
                    logical_map: vec![UNMAPPED; logical as usize],
                    dirty_stamp: vec![0; logical as usize],
                    vvbn_map: HashMap::new(),
                    batch: ScoreDeltaBatch::new(),
                    delayed_vvbn_frees: Vec::new(),
                    active_aa: None,
                    drain_cursor: None,
                })
            })
            .collect::<WaflResult<Vec<_>>>()?;
        let space = bitmap.space_len() as usize;
        Ok(OracleAggregate {
            bitmap,
            groups: group_states,
            vols,
            dirty: Vec::new(),
            cp_epoch: 1,
            pending_deletes: Vec::new(),
            delayed_pvbn_frees: Vec::new(),
            pvbn_owner: vec![OWNER_NONE; space],
            cp_count: 0,
        })
    }

    /// The one-byte stamp marking a block dirty in `epoch`.
    #[inline]
    fn epoch_stamp(epoch: u64) -> u8 {
        1 + (epoch % 255) as u8
    }

    /// Advance the dirty epoch, zeroing stamps at every byte wrap.
    fn bump_epoch(&mut self) {
        self.cp_epoch += 1;
        if self.cp_epoch.is_multiple_of(255) {
            for v in &mut self.vols {
                v.dirty_stamp.fill(0);
            }
        }
    }

    /// Queue a client overwrite; repeated writes within one CP coalesce.
    pub fn client_overwrite(&mut self, vol: VolumeId, logical: u64) -> WaflResult<()> {
        let v = self.vols.get(vol.index()).ok_or(WaflError::InvalidConfig {
            reason: format!("no volume {vol}"),
        })?;
        if logical >= v.logical_map.len() as u64 {
            return Err(WaflError::VbnOutOfRange {
                vbn: Vbn(logical),
                space_len: v.logical_map.len() as u64,
            });
        }
        let epoch = Self::epoch_stamp(self.cp_epoch);
        let stamp = &mut self.vols[vol.index()].dirty_stamp[logical as usize];
        if *stamp != epoch {
            *stamp = epoch;
            self.dirty.push(DirtyBlock { vol, logical });
        }
        Ok(())
    }

    /// Queue a deletion; the block's VBNs free at the next CP boundary.
    pub fn client_delete(&mut self, vol: VolumeId, logical: u64) -> WaflResult<()> {
        let v = self.vols.get(vol.index()).ok_or(WaflError::InvalidConfig {
            reason: format!("no volume {vol}"),
        })?;
        if logical >= v.logical_map.len() as u64 {
            return Err(WaflError::VbnOutOfRange {
                vbn: Vbn(logical),
                space_len: v.logical_map.len() as u64,
            });
        }
        self.pending_deletes.push(DirtyBlock { vol, logical });
        Ok(())
    }

    /// Client writes waiting for the next CP.
    pub fn pending_ops(&self) -> usize {
        self.dirty.len()
    }

    /// Completed consistency points.
    pub fn cp_count(&self) -> u64 {
        self.cp_count
    }

    /// The aggregate's physical activemap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Hosted volumes.
    pub fn volumes(&self) -> &[OracleVol] {
        &self.vols
    }

    /// RAID groups.
    pub fn groups(&self) -> &[OracleGroup] {
        &self.groups
    }

    /// Physical-allocation quotas per RAID group for `n` blocks.
    /// Verbatim `Aggregate::rg_quotas`, heap-cache arm, HDD media, and
    /// the standard config's `rg_backoff_threshold = 0.0` (the back-off
    /// never fires but stays in the transcription for fidelity).
    fn rg_quotas(&self, n: usize) -> Vec<usize> {
        const RG_BACKOFF_THRESHOLD: f64 = 0.0;
        let weights: Vec<f64> = self
            .groups
            .iter()
            .map(|g| {
                let cache_best = g.cache.best().map(|(_, s)| s.get()).unwrap_or(0);
                let active = g
                    .active_aa
                    .map(|aa| g.topology.score_from_bitmap(&self.bitmap, aa).get())
                    .unwrap_or(0);
                let best = cache_best.max(active) as f64;
                let max = (g.stripes_per_aa * g.geometry.data_devices as u64) as f64;
                let frac = best / max.max(1.0);
                if frac < RG_BACKOFF_THRESHOLD {
                    0.0
                } else {
                    best
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            let per = n / self.groups.len().max(1);
            let mut q = vec![per; self.groups.len()];
            if let Some(first) = q.first_mut() {
                *first += n - per * self.groups.len();
            }
            return q;
        }
        let mut quotas: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor() as usize)
            .collect();
        let assigned: usize = quotas.iter().sum();
        let mut order: Vec<usize> = (0..quotas.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        for i in 0..n - assigned {
            quotas[order[i % order.len()]] += 1;
        }
        quotas
    }

    /// Run one consistency point — the legacy sequential pipeline,
    /// phase for phase:
    ///
    /// 1. take the dirty set, bump the epoch;
    /// 2. virtual allocation per volume (in volume order);
    /// 3. group quotas, physical plans against the bitmap snapshot,
    ///    per-run apply, serial shortfall rounds;
    /// 4. per-block logical→virtual→physical bind, then queued deletes;
    /// 5. delayed frees: per-volume bulk virtual frees, then per-block
    ///    physical frees;
    /// 6. metafile page accounting;
    /// 7. per-block media costing per group;
    /// 8. CP-boundary cache rebalance;
    /// 9. the CPU cost model.
    pub fn run_cp(&mut self) -> WaflResult<OracleCpStats> {
        let dirty = std::mem::take(&mut self.dirty);
        self.bump_epoch();
        let n = dirty.len();
        let mut stats = OracleCpStats {
            ops: n as u64,
            blocks_written: n as u64,
            ..OracleCpStats::default()
        };
        if n == 0
            && self.pending_deletes.is_empty()
            && self.delayed_pvbn_frees.is_empty()
            && self.vols.iter().all(|v| v.delayed_vvbn_frees.is_empty())
        {
            self.cp_count += 1;
            return Ok(stats);
        }

        // ---- 1. group dirtied blocks by volume ------------------------
        let mut per_vol: Vec<Vec<u64>> = vec![Vec::new(); self.vols.len()];
        for DirtyBlock { vol, logical } in &dirty {
            per_vol[vol.index()].push(*logical);
        }

        // ---- 2. virtual allocation, volume by volume ------------------
        let mut vol_outcomes: Vec<Plan> = Vec::with_capacity(self.vols.len());
        for (vol, logicals) in self.vols.iter_mut().zip(&per_vol) {
            if logicals.is_empty() {
                vol_outcomes.push(Plan::default());
                continue;
            }
            vol_outcomes.push(vol.allocate_vvbns(logicals.len())?);
        }
        for out in &vol_outcomes {
            stats.vol_picks += out.picked.len() as u64;
            stats.replenish_pages += out.replenish_pages;
            stats.blocks_examined += out.blocks_examined;
            stats.cursor_hits += out.cursor_hits;
            stats.cursor_misses += out.cursor_misses;
        }

        // ---- 3. physical allocation: quotas, plans, apply -------------
        let quotas = self.rg_quotas(n);
        let plans: Vec<Plan> = {
            let OracleAggregate { bitmap, groups, .. } = self;
            groups
                .iter_mut()
                .zip(&quotas)
                .map(|(g, &quota)| plan_raid_group(g, bitmap, quota))
                .collect::<WaflResult<_>>()?
        };
        let mut pvbns: Vec<Vbn> = Vec::with_capacity(n);
        let mut per_rg_vbns: Vec<Vec<Vbn>> = Vec::with_capacity(self.groups.len());
        for plan in &plans {
            for &(start, len) in &plan.runs {
                self.bitmap.allocate_run(start, len)?;
            }
            pvbns.extend_from_slice(&plan.vbns);
            per_rg_vbns.push(plan.vbns.clone());
        }
        for plan in &plans {
            stats.agg_picks += plan.picked.len() as u64;
            stats.blocks_examined += plan.blocks_examined;
            stats.replenish_pages += plan.replenish_pages;
        }
        // Shortfall: serial rounds against the updated bitmap.
        let mut drained_late: Vec<(usize, AaId)> = Vec::new();
        let mut shortfall = n.saturating_sub(pvbns.len());
        while shortfall > 0 {
            let mut progressed = false;
            for i in 0..self.groups.len() {
                if shortfall == 0 {
                    break;
                }
                let plan = {
                    let OracleAggregate { bitmap, groups, .. } = self;
                    plan_raid_group(&mut groups[i], bitmap, shortfall)?
                };
                if plan.vbns.is_empty() {
                    continue;
                }
                progressed = true;
                for &(start, len) in &plan.runs {
                    self.bitmap.allocate_run(start, len)?;
                }
                shortfall -= plan.vbns.len();
                stats.agg_picks += plan.picked.len() as u64;
                stats.blocks_examined += plan.blocks_examined;
                stats.replenish_pages += plan.replenish_pages;
                pvbns.extend_from_slice(&plan.vbns);
                per_rg_vbns[i].extend_from_slice(&plan.vbns);
                for &aa in &plan.drained {
                    drained_late.push((i, aa));
                }
            }
            if !progressed {
                return Err(WaflError::SpaceExhausted);
            }
        }

        // ---- 4. bind logical -> virtual -> physical -------------------
        let mut pvbn_iter = pvbns.iter().copied();
        for (vol_idx, logicals) in per_vol.iter().enumerate() {
            let outcome = &vol_outcomes[vol_idx];
            let vol = &mut self.vols[vol_idx];
            debug_assert_eq!(outcome.vbns.len(), logicals.len());
            for (&logical, &vvbn) in logicals.iter().zip(&outcome.vbns) {
                let pvbn = pvbn_iter.next().expect("pvbn count == vvbn count");
                self.pvbn_owner[pvbn.index()] = pack_owner(vol.id, vvbn);
                if let Some((old_v, old_p)) = vol.remap(logical, vvbn, pvbn) {
                    vol.delayed_vvbn_frees.push(old_v);
                    self.delayed_pvbn_frees.push(old_p);
                }
            }
        }

        // ---- 4b. deletions queued since the last CP -------------------
        for DirtyBlock { vol, logical } in std::mem::take(&mut self.pending_deletes) {
            let v = &mut self.vols[vol.index()];
            if let Some((old_v, old_p)) = v.unmap(logical) {
                v.delayed_vvbn_frees.push(old_v);
                self.delayed_pvbn_frees.push(old_p);
            }
        }

        // ---- 5. delayed frees at the CP boundary ----------------------
        for vol in &mut self.vols {
            vol.flush_delayed_frees()?;
        }
        for pvbn in std::mem::take(&mut self.delayed_pvbn_frees) {
            self.bitmap.free(pvbn)?;
            self.pvbn_owner[pvbn.index()] = OWNER_NONE;
            let g = self
                .groups
                .iter_mut()
                .find(|g| g.geometry.contains(pvbn))
                .expect("freed pvbn belongs to a group");
            let aa = g.topology.aa_of_vbn(pvbn)?;
            g.batch.record_freed(aa, 1);
        }

        // ---- 6. metafile I/O accounting -------------------------------
        let mut pages = self.bitmap.take_dirty_stats().pages_dirtied;
        for vol in &mut self.vols {
            pages += vol.bitmap.take_dirty_stats().pages_dirtied;
        }
        stats.metafile_pages = pages;

        // ---- 7. media costing, per-block, group by group --------------
        let mut cache_ops = 0u64;
        for (g, vbns) in self.groups.iter_mut().zip(&per_rg_vbns) {
            let rg = cost_raid_group(g, vbns)?;
            stats.media_us = stats.media_us.max(rg.media_us);
            stats.media_us_total += rg.media_us;
            stats.per_rg.push(rg);
        }

        // ---- 8. CP-boundary cache rebalance ---------------------------
        for g in &mut self.groups {
            let touched = g.batch.touched_aas() as u64;
            cache_ops += touched;
            g.cache.apply_batch(&mut g.batch);
        }
        for (g, plan) in self.groups.iter_mut().zip(&plans) {
            for &aa in &plan.drained {
                let score = g.cache.score_of(aa);
                g.cache.insert(aa, score)?;
                cache_ops += 1;
            }
        }
        for (i, aa) in drained_late {
            let g = &mut self.groups[i];
            let score = g.cache.score_of(aa);
            g.cache.insert(aa, score)?;
            cache_ops += 1;
        }
        for vol in &mut self.vols {
            let touched = vol.batch.touched_aas() as u64;
            cache_ops += touched;
            vol.cache.apply_cp_batch(&mut vol.batch, &vol.bitmap)?;
            if vol.cache.maybe_replenish(&vol.bitmap)? {
                vol.drain_cursor = None;
                stats.replenish_pages += vol.bitmap.page_count() as u64;
            }
        }

        // ---- 9. CPU model ---------------------------------------------
        let client_us = n as f64 * BASE_US_PER_OP;
        let metafile_us = pages as f64 * US_PER_METAFILE_PAGE;
        let blocks_us = n as f64 * US_PER_BLOCK;
        let alloc_scan_us = stats.blocks_examined as f64 * US_PER_ALLOC_CANDIDATE;
        stats.cache_maintenance_us = cache_ops as f64 * US_PER_CACHE_OP;
        let replenish_us = stats.replenish_pages as f64 * US_PER_SCAN_PAGE;
        stats.cpu_us = client_us
            + metafile_us
            + blocks_us
            + alloc_scan_us
            + stats.cache_maintenance_us
            + replenish_us;

        self.cp_count += 1;
        Ok(stats)
    }
}

/// Cost one CP's writes to a group per block — the legacy costing path
/// (the sharded pipeline costs per run; equivalence between the two is
/// what the costing parity test pins). HDD arm of
/// `wafl_fs::cp::cost_raid_group`.
fn cost_raid_group(g: &mut OracleGroup, vbns: &[Vbn]) -> WaflResult<OracleRgStats> {
    let analysis = analyze_cp_write(&g.geometry, vbns)?;
    let mut rg = OracleRgStats {
        blocks: analysis.data_blocks,
        tetrises: analysis.tetrises,
        full_stripes: analysis.full_stripes,
        partial_stripes: analysis.partial_stripes,
        parity_reads: analysis.parity_reads,
        parity_writes: analysis.parity_writes,
        per_device_blocks: analysis.per_device_blocks.clone(),
        per_device_chains: analysis.per_device_chains.clone(),
        media_us: 0.0,
    };
    if vbns.is_empty() {
        return Ok(rg);
    }
    let d = g.geometry.data_devices as usize;
    let mut per_device: Vec<Vec<u64>> = vec![Vec::new(); d];
    for &vbn in vbns {
        let loc = g.geometry.vbn_to_loc(vbn)?;
        per_device[loc.device.index()].push(loc.dbn.get());
    }
    for dev in per_device.iter_mut() {
        dev.sort_unstable();
    }
    let mut stripes: Vec<u64> = vbns
        .iter()
        .map(|&v| g.geometry.vbn_to_loc(v).map(|l| l.dbn.get()))
        .collect::<WaflResult<_>>()?;
    stripes.sort_unstable();
    stripes.dedup();
    let parity_per_dev = if g.geometry.parity_devices > 0 {
        stripes.clone()
    } else {
        Vec::new()
    };
    let device_count = (g.geometry.data_devices + g.geometry.parity_devices) as usize;
    let mut dev_times: Vec<f64> = Vec::with_capacity(device_count);
    for i in 0..device_count {
        let dbns: &[u64] = per_device.get(i).map_or(&parity_per_dev, |dev| dev);
        if dbns.is_empty() {
            dev_times.push(0.0);
            continue;
        }
        let chains = dbns_to_chains(dbns);
        let blocks: u64 = chains.iter().map(|&(_, l)| l).sum();
        dev_times.push(g.hdd.write_cost_us(chains.len() as u64, blocks));
    }
    let parity_read_us = g.hdd.random_read_cost_us(analysis.parity_reads);
    rg.media_us = dev_times.iter().copied().fold(0.0, f64::max) + parity_read_us;
    Ok(rg)
}

/// Collapse a sorted DBN list into maximal `(start, len)` chains —
/// the legacy costing path's chain builder.
fn dbns_to_chains(dbns: &[u64]) -> Vec<(u64, u64)> {
    let mut chains = Vec::new();
    let mut iter = dbns.iter().copied();
    let Some(first) = iter.next() else {
        return chains;
    };
    let (mut start, mut len) = (first, 1u64);
    for dbn in iter {
        if dbn == start + len {
            len += 1;
        } else {
            chains.push((start, len));
            start = dbn;
            len = 1;
        }
    }
    chains.push((start, len));
    chains
}

/// Reference per-bit run allocation: one `Bitmap::allocate` per block.
/// The bulk run mutators in `wafl-bitmap` are equivalence-tested
/// against this loop (`run_mutator_proptest.rs`) — it lives here so the
/// reference semantics stay outside the crate under test.
pub fn per_bit_allocate_run(bitmap: &mut Bitmap, start: Vbn, len: u64) -> WaflResult<()> {
    for v in start.get()..start.get() + len {
        bitmap.allocate(Vbn(v))?;
    }
    Ok(())
}

/// Reference per-bit run free: one `Bitmap::free` per block.
pub fn per_bit_free_run(bitmap: &mut Bitmap, start: Vbn, len: u64) -> WaflResult<()> {
    for v in start.get()..start.get() + len {
        bitmap.free(Vbn(v))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> OracleAggregate {
        OracleAggregate::new(
            &[OracleRaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
            }],
            &[(
                OracleVolSpec {
                    size_blocks: 8 * 32768,
                    aa_blocks: None,
                },
                50_000,
            )],
        )
        .unwrap()
    }

    #[test]
    fn dbn_chain_collapse() {
        assert_eq!(dbns_to_chains(&[]), vec![]);
        assert_eq!(dbns_to_chains(&[5]), vec![(5, 1)]);
        assert_eq!(
            dbns_to_chains(&[1, 2, 3, 7, 8, 20]),
            vec![(1, 3), (7, 2), (20, 1)]
        );
    }

    #[test]
    fn first_writes_allocate_both_vbn_spaces() {
        let mut a = oracle();
        for l in 0..1000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(s.ops, 1000);
        assert_eq!(a.volumes()[0].free_blocks(), 8 * 32768 - 1000);
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096 - 1000);
        assert!(s.media_us > 0.0);
        assert!(s.cpu_us > 0.0);
        assert!(a.volumes()[0].lookup_logical(0).is_some());
        assert!(a.volumes()[0].lookup_logical(999).is_some());
        assert!(a.volumes()[0].lookup_logical(1000).is_none());
    }

    #[test]
    fn overwrites_free_old_blocks_at_cp_boundary() {
        let mut a = oracle();
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        let free_v = a.volumes()[0].free_blocks();
        let free_p = a.bitmap().free_blocks();
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        assert_eq!(a.volumes()[0].free_blocks(), free_v);
        assert_eq!(a.bitmap().free_blocks(), free_p);
        a.bitmap().verify_summary();
    }

    #[test]
    fn deletes_reclaim_space() {
        let mut a = oracle();
        for l in 0..300 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        for l in 0..300 {
            a.client_delete(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        assert_eq!(a.volumes()[0].free_blocks(), 8 * 32768);
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096);
        assert!(a.volumes()[0].lookup_logical(0).is_none());
    }

    #[test]
    fn empty_cp_is_a_noop() {
        let mut a = oracle();
        let s = a.run_cp().unwrap();
        assert_eq!(s.ops, 0);
        assert_eq!(a.cp_count(), 1);
    }

    #[test]
    fn overwrites_coalesce_within_a_cp() {
        let mut a = oracle();
        a.client_overwrite(VolumeId(0), 5).unwrap();
        a.client_overwrite(VolumeId(0), 5).unwrap();
        a.client_overwrite(VolumeId(0), 6).unwrap();
        assert_eq!(a.pending_ops(), 2);
        assert!(a.client_overwrite(VolumeId(0), 50_000).is_err());
        assert!(a.client_overwrite(VolumeId(9), 0).is_err());
    }

    #[test]
    fn per_bit_reference_mutators_round_trip() {
        let mut bm = Bitmap::new(4096);
        per_bit_allocate_run(&mut bm, Vbn(100), 64).unwrap();
        assert_eq!(bm.free_blocks(), 4096 - 64);
        per_bit_free_run(&mut bm, Vbn(100), 64).unwrap();
        assert_eq!(bm.free_blocks(), 4096);
        assert!(per_bit_allocate_run(&mut bm, Vbn(4090), 10).is_err());
    }
}
