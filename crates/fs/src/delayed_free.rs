//! Batched delayed-free processing — the second HBPS use case.
//!
//! §3.3.2 closes with: "The HBPS data structure has other uses in WAFL
//! when millions of items need to be sorted in close-to-optimal order and
//! with minimal memory usage. For example, it is used to track
//! *delayed-free scores*." The underlying machinery comes from the
//! paper's companion work on free-space reclamation (its references
//! \[17\]/\[18\]): instead of clearing each freed block's bitmap bit
//! immediately — dirtying whatever metafile page it lands on — frees are
//! *logged*, and a background processor applies them page by page,
//! picking the page with the most pending frees first so each metafile
//! write retires as many frees as possible.
//!
//! The "score" of a metafile page is its pending-free count (0..=32 Ki,
//! the page's bit capacity), so the default HBPS geometry fits exactly.
//!
//! [`DelayedFreeLog`] is that log + HBPS; [`crate::Aggregate`] routes
//! physical frees through it when [`crate::AggregateConfig::batched_frees`]
//! is set, and processes a budgeted number of pages at each CP boundary.

use std::collections::HashMap;
use wafl_bitmap::Bitmap;
use wafl_core::{Hbps, HbpsConfig, HbpsStats};
use wafl_types::{AaId, AaScore, Vbn, WaflResult, BITS_PER_BITMAP_BLOCK};

/// Results of one processing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelayedFreeStats {
    /// Metafile pages written.
    pub pages_processed: u64,
    /// Frees applied to the bitmap.
    pub frees_applied: u64,
}

/// A log of pending physical frees, indexed by the bitmap-metafile page
/// each free will dirty, with an HBPS ranking pages by pending count.
pub struct DelayedFreeLog {
    /// Pending frees per metafile page.
    per_page: HashMap<u64, Vec<Vbn>>,
    /// Pages ranked by pending-free count. Page index stands in for the
    /// "AA" id; the score is the pending count.
    hbps: Hbps,
    total_pending: u64,
}

impl Default for DelayedFreeLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayedFreeLog {
    /// An empty log.
    pub fn new() -> DelayedFreeLog {
        DelayedFreeLog {
            per_page: HashMap::new(),
            // Score space = frees pending against one 32 Ki-bit page.
            // 256 bins (width 128) — finer than the AA cache's 32,
            // because pending counts cluster in the low thousands and the
            // processor wants real discrimination there. Still two pages.
            hbps: Hbps::new(HbpsConfig {
                max_score: 32_768,
                bins: 256,
                list_capacity: 1000,
            })
            .expect("geometry fits two pages"),
            total_pending: 0,
        }
    }

    /// Frees waiting to be applied.
    pub fn pending(&self) -> u64 {
        self.total_pending
    }

    /// Distinct metafile pages with pending frees.
    pub fn pending_pages(&self) -> usize {
        self.per_page.len()
    }

    /// Every logged-but-unapplied VBN, sorted (deterministic order for
    /// WAFL Iron's leak accounting and for crash-replay tests).
    pub fn pending_vbns(&self) -> Vec<Vbn> {
        let mut vbns: Vec<Vbn> = self
            .per_page
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        vbns.sort_unstable_by_key(|v| v.get());
        vbns
    }

    /// Log a freed VBN. The block stays allocated in the bitmap (and thus
    /// invisible to the allocator) until a processing pass applies it.
    /// Fails only if the page's pending count would exceed the ranking
    /// structure's score space (impossible for in-range VBNs: a page holds
    /// at most `max_score` bits).
    pub fn log_free(&mut self, vbn: Vbn) -> WaflResult<()> {
        let page = vbn.get() / BITS_PER_BITMAP_BLOCK;
        let entry = self.per_page.entry(page).or_default();
        let old = entry.len() as u32;
        entry.push(vbn);
        if old == 0 {
            self.hbps.track_new(AaId(page as u32), AaScore(1))?;
        } else {
            self.hbps
                .on_score_change(AaId(page as u32), AaScore(old), AaScore(old + 1))?;
        }
        self.total_pending += 1;
        Ok(())
    }

    /// Apply the pending frees of up to `page_budget` pages — best
    /// (fullest) pages first, so each metafile-page write retires the
    /// most frees. `record` runs once per applied VBN (the CP engine uses
    /// it to update owner maps, AA-score batches, and TRIM).
    pub fn process(
        &mut self,
        bitmap: &mut Bitmap,
        page_budget: usize,
        mut record: impl FnMut(Vbn, &mut Bitmap) -> WaflResult<()>,
    ) -> WaflResult<DelayedFreeStats> {
        let mut stats = DelayedFreeStats::default();
        for _ in 0..page_budget {
            // If the list drained while pages remain, rebuild it.
            if self.hbps.needs_replenish(1) {
                let scores: Vec<(AaId, AaScore)> = self
                    .per_page
                    .iter()
                    .map(|(&p, v)| (AaId(p as u32), AaScore(v.len() as u32)))
                    .collect();
                self.hbps.replenish(scores)?;
            }
            let Some((page, _bound)) = self.hbps.take_best() else {
                break;
            };
            let Some(frees) = self.per_page.remove(&(page.get() as u64)) else {
                continue; // stale entry from a replenish race
            };
            let count = frees.len() as u32;
            // Replay idempotence: a crash between a bitmap-page write and
            // the log absolution leaves entries whose blocks are already
            // free. Skipping them makes post-crash replay safe instead of
            // a double-free error. The survivors are sorted and coalesced
            // so each consecutive run clears with one bulk `free_run` —
            // one summary update per touched page, not one per block.
            let mut live: Vec<Vbn> = Vec::with_capacity(frees.len());
            for vbn in frees {
                if !bitmap.is_free(vbn)? {
                    live.push(vbn);
                }
            }
            live.sort_unstable();
            live.dedup();
            let mut i = 0usize;
            while i < live.len() {
                let start = live[i];
                let mut len = 1u64;
                while i + (len as usize) < live.len()
                    && live[i + len as usize].get() == start.get() + len
                {
                    len += 1;
                }
                bitmap.free_run(start, len)?;
                for k in 0..len {
                    record(Vbn(start.get() + k), bitmap)?;
                }
                stats.frees_applied += len;
                i += len as usize;
            }
            self.total_pending -= count as u64;
            self.hbps.untrack(page, AaScore(count))?;
            stats.pages_processed += 1;
        }
        Ok(stats)
    }

    /// Drain everything regardless of budget (space pressure: the
    /// allocator needs those blocks back *now*).
    pub fn force_drain(
        &mut self,
        bitmap: &mut Bitmap,
        record: impl FnMut(Vbn, &mut Bitmap) -> WaflResult<()>,
    ) -> WaflResult<DelayedFreeStats> {
        let pages = self.per_page.len();
        self.process(bitmap, pages + 1, record)
    }

    /// Memory used by the ranking structure — two pages, per the §3.3.2
    /// claim, regardless of how many frees are pending. (The log entries
    /// themselves model the on-disk delayed-free metafiles of \[18\].)
    pub fn ranking_memory_bytes(&self) -> usize {
        self.hbps.memory_bytes()
    }

    /// Return and reset the ranking HBPS's maintenance counters (delta
    /// scrape for an external metrics registry).
    pub fn take_hbps_stats(&mut self) -> HbpsStats {
        self.hbps.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frees_stay_invisible_until_processed() {
        let mut bitmap = Bitmap::new(4 * 32768);
        for v in 0..1000 {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        let mut log = DelayedFreeLog::new();
        for v in 0..500 {
            log.log_free(Vbn(v)).unwrap();
        }
        assert_eq!(log.pending(), 500);
        assert_eq!(bitmap.free_blocks(), 4 * 32768 - 1000, "not yet applied");
        let stats = log.process(&mut bitmap, 10, |_, _| Ok(())).unwrap();
        assert_eq!(stats.frees_applied, 500);
        assert_eq!(stats.pages_processed, 1, "all 500 shared one page");
        assert_eq!(bitmap.free_blocks(), 4 * 32768 - 500);
        assert_eq!(log.pending(), 0);
    }

    #[test]
    fn fullest_pages_process_first() {
        let mut bitmap = Bitmap::new(8 * 32768);
        // Allocate candidates on three pages.
        let pages = [0u64, 3, 6];
        for &p in &pages {
            for i in 0..1000 {
                bitmap.allocate(Vbn(p * 32768 + i)).unwrap();
            }
        }
        let mut log = DelayedFreeLog::new();
        // Page 3 has the most pending frees, page 0 the fewest.
        for i in 0..10 {
            log.log_free(Vbn(i)).unwrap();
        }
        for i in 0..900 {
            log.log_free(Vbn(3 * 32768 + i)).unwrap();
        }
        for i in 0..300 {
            log.log_free(Vbn(6 * 32768 + i)).unwrap();
        }
        let mut order = Vec::new();
        log.process(&mut bitmap, 1, |v, _| {
            if order.last() != Some(&(v.get() / 32768)) {
                order.push(v.get() / 32768);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(order, vec![3], "fullest page first");
        log.process(&mut bitmap, 1, |v, _| {
            if order.last() != Some(&(v.get() / 32768)) {
                order.push(v.get() / 32768);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(order, vec![3, 6]);
        assert_eq!(log.pending(), 10);
    }

    #[test]
    fn force_drain_empties_everything() {
        let mut bitmap = Bitmap::new(32 * 32768);
        let mut log = DelayedFreeLog::new();
        for p in 0..32u64 {
            for i in 0..5 {
                bitmap.allocate(Vbn(p * 32768 + i)).unwrap();
                log.log_free(Vbn(p * 32768 + i)).unwrap();
            }
        }
        assert_eq!(log.pending_pages(), 32);
        let stats = log.force_drain(&mut bitmap, |_, _| Ok(())).unwrap();
        assert_eq!(stats.frees_applied, 160);
        assert_eq!(stats.pages_processed, 32);
        assert_eq!(log.pending(), 0);
        assert_eq!(bitmap.free_blocks(), 32 * 32768);
    }

    #[test]
    fn ranking_memory_constant() {
        let mut log = DelayedFreeLog::new();
        let mut bitmap = Bitmap::new(1024 * 32768);
        for p in 0..1024u64 {
            bitmap.allocate(Vbn(p * 32768)).unwrap();
            log.log_free(Vbn(p * 32768)).unwrap();
        }
        assert_eq!(log.ranking_memory_bytes(), 2 * 4096);
    }

    #[test]
    fn batching_reduces_pages_dirtied_per_free() {
        // The point of the design (§2.5): N frees scattered over K pages
        // cost K page writes when batched, but up to N when immediate.
        let space = 16 * 32768u64;
        let mut immediate = Bitmap::new(space);
        let mut batched = Bitmap::new(space);
        // Scatter the frees uniformly so every immediate "CP" chunk
        // touches many pages (the aged-COW overwrite pattern).
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let frees: Vec<Vbn> = rand::seq::index::sample(&mut rng, space as usize, 1600)
            .into_iter()
            .map(|i| Vbn(i as u64))
            .collect();
        for &v in &frees {
            immediate.allocate(v).unwrap();
            batched.allocate(v).unwrap();
        }
        immediate.take_dirty_stats();
        batched.take_dirty_stats();

        // Immediate: free as they arrive, taking dirty stats per "CP" of 100.
        let mut immediate_pages = 0;
        for chunk in frees.chunks(100) {
            for &v in chunk {
                immediate.free(v).unwrap();
            }
            immediate_pages += immediate.take_dirty_stats().pages_dirtied;
        }
        // Batched: log everything, then process page-at-a-time.
        let mut log = DelayedFreeLog::new();
        for &v in &frees {
            log.log_free(v).unwrap();
        }
        let mut batched_pages = 0;
        while log.pending() > 0 {
            log.process(&mut batched, 1, |_, _| Ok(())).unwrap();
            batched_pages += batched.take_dirty_stats().pages_dirtied;
        }
        assert!(
            batched_pages <= 16,
            "batched path touches each page once: {batched_pages}"
        );
        assert!(
            immediate_pages >= 10 * batched_pages,
            "immediate {immediate_pages} vs batched {batched_pages}"
        );
    }
}
