//! Sharded multi-threaded write allocation (the CP front end).
//!
//! The paper's allocation areas are not just a search optimization — they
//! are a natural *sharding* unit. An AA is drained by exactly one writer
//! at a time ("the write allocator picks an AA and then assigns all free
//! VBNs from the AA in sequential order", §3.1), so handing *disjoint*
//! write-order work to N worker shards lets every shard run the existing
//! per-AA drain (cursor walk + bulk runs) with **no shared state on the
//! per-block path**: the bitmap is a read-only snapshot during planning,
//! and each shard appends to its own plan.
//!
//! The plan preserves the legacy planner's *rank-order* drain discipline,
//! which is what keeps CP writes dense (§2.3–2.4): the best-ranked AAs
//! are claimed off the TopAA heap until their exact free counts cover the
//! quota — usually one or two AAs — and only *their* write-order ranges
//! are handed out. The block set allocated is exactly the write-order
//! prefix the single-threaded planner would take; what shards change is
//! who walks which slice of it.
//!
//! The shared structure is the group's TopAA ranking plus the per-shard
//! lease queues, wrapped in a [`LeaseManager`]:
//!
//! * **claim** — before the fan-out, the next-best non-quarantined AAs
//!   are popped until quota coverage. Heap scores are exact free counts
//!   and the bitmap is a snapshot, so coverage is exact, not a guess.
//! * **lease** — the claimed AAs' write ranges (tagged with per-range
//!   free counts) are sliced into `shards` contiguous chunks of
//!   near-equal free count and queued per shard as [`RangeLease`]s: AA-
//!   granular when the ranking is deep, range-granular slices of the top
//!   AA when one AA covers the whole quota. A shard touches the mutex
//!   once per lease (many thousand blocks), never per block.
//! * **steal** — a shard whose queue ran dry takes the last-queued lease
//!   of the most-loaded sibling, so one slow shard cannot strand planned
//!   work another could drain.
//! * **return** — fully drained AAs re-rank at the CP boundary with
//!   their post-CP scores, exactly like the legacy planner's drained-AA
//!   reinsertion; the AA that was mid-drain when the quota was met stays
//!   the group's active cursor for the next CP (also exactly like the
//!   legacy planner). Quarantined AAs are never claimed.
//!
//! Each lease carries its global write-order sequence number, and the
//! merge splices shard results back in sequence order — so the plan's
//! VBN stream is *bit-identical* to the legacy planner's rank-order
//! drain at every shard count, no matter how leases were scheduled or
//! stolen. Only wall-clock time depends on scheduling; allocation state
//! never does (tested below down to the f64 media costs).

use crate::aggregate::{GroupCache, RaidGroupState};
use crate::allocator::{
    drain_ranges, plan_raid_group, popcount_score, AllocOutcome, AllocatorMode,
};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;
use wafl_bitmap::Bitmap;
use wafl_core::RaidAwareCache;
use wafl_obs::trace::{TraceData, Tracer};
use wafl_types::{AaId, AaScore, Vbn, WaflResult};

/// Per-shard lease traffic from one plan call, for the
/// `allocator.shard.{i}.*` counters.
#[derive(Debug, Default, Clone)]
pub struct ShardStats {
    /// Leases consumed per shard (own queue + stolen).
    pub leases: Vec<u64>,
    /// Leases stolen from a sibling's queue per shard.
    pub steals: Vec<u64>,
}

impl ShardStats {
    fn new(shards: usize) -> ShardStats {
        ShardStats {
            leases: vec![0; shards],
            steals: vec![0; shards],
        }
    }

    /// Accumulate another plan call's traffic (per-CP totals span groups).
    pub fn accumulate(&mut self, other: &ShardStats) {
        if self.leases.len() < other.leases.len() {
            self.leases.resize(other.leases.len(), 0);
            self.steals.resize(other.steals.len(), 0);
        }
        for (a, b) in self.leases.iter_mut().zip(&other.leases) {
            *a += b;
        }
        for (a, b) in self.steals.iter_mut().zip(&other.steals) {
            *a += b;
        }
    }
}

/// One unit of leased work: a batch of write-order ranges within a single
/// AA, with the exact number of free blocks the holder must take from
/// them. Takes are exact because the ranges were counted against the CP's
/// read-only bitmap snapshot.
#[derive(Debug, Clone)]
pub(crate) struct RangeLease {
    /// Global write-order position of this lease within the plan. The
    /// merge reassembles shard results in `seq` order, so the plan's VBN
    /// sequence is the legacy planner's write order no matter which shard
    /// drained (or stole) which lease.
    pub(crate) seq: usize,
    pub(crate) aa: AaId,
    pub(crate) ranges: Vec<(Vbn, u64)>,
    pub(crate) take: u64,
}

/// The shared lease source: the group's TopAA heap plus the per-shard
/// lease queues. All access is under one mutex, taken once per lease.
struct LeaseState<'a> {
    cache: &'a mut RaidAwareCache,
    quarantined: &'a BTreeSet<AaId>,
    /// Pre-assigned leases per shard, front = next to drain.
    pending: Vec<VecDeque<RangeLease>>,
    stats: ShardStats,
    /// AAs claimed from the heap with score 0 (ranking exhausted): they
    /// re-enter the heap at the CP boundary like every claimed AA.
    exhausted: Vec<AaId>,
}

/// Mutex-wrapped [`LeaseState`]; see the module docs for the protocol.
pub(crate) struct LeaseManager<'a> {
    state: Mutex<LeaseState<'a>>,
}

impl<'a> LeaseManager<'a> {
    fn new(
        cache: &'a mut RaidAwareCache,
        quarantined: &'a BTreeSet<AaId>,
        shards: usize,
    ) -> LeaseManager<'a> {
        LeaseManager {
            state: Mutex::new(LeaseState {
                cache,
                quarantined,
                pending: vec![VecDeque::new(); shards],
                stats: ShardStats::new(shards),
                exhausted: Vec::new(),
            }),
        }
    }

    /// Claim the group's next-best non-quarantined AA straight off the
    /// heap. `None` when the ranking is dry (including "best is empty").
    fn take_ranked(state: &mut LeaseState<'_>) -> WaflResult<Option<(AaId, AaScore)>> {
        // Quarantined AAs are set aside while claiming and always put
        // back: they must neither be leased nor leak out of the heap.
        let mut set_aside: Vec<(AaId, AaScore)> = Vec::new();
        let claimed = loop {
            match state.cache.take_best() {
                Some((aa, score)) if state.quarantined.contains(&aa) => {
                    set_aside.push((aa, score));
                }
                other => break other,
            }
        };
        for (aa, score) in set_aside {
            state.cache.insert(aa, score)?;
        }
        match claimed {
            Some((aa, score)) if score.get() > 0 => Ok(Some((aa, score))),
            Some((aa, _)) => {
                state.exhausted.push(aa);
                Ok(None)
            }
            None => Ok(None),
        }
    }

    /// Next lease for `shard`: its own queue first, then a steal of the
    /// most-loaded sibling's last-queued lease. `None` when every queue
    /// is empty — the plan's work is fully handed out. The flag reports
    /// whether the grant was a steal (for the flight recorder; the
    /// counters aggregate the same fact).
    fn lease(&self, shard: usize) -> Option<(RangeLease, bool)> {
        let mut state = self.state.lock().expect("lease manager poisoned");
        if let Some(lease) = state.pending[shard].pop_front() {
            state.stats.leases[shard] += 1;
            return Some((lease, false));
        }
        let victim = (0..state.pending.len()).max_by_key(|&i| state.pending[i].len());
        if let Some(v) = victim {
            // Steal the sibling's *last*-queued lease: its front is what
            // it will drain next.
            if let Some(lease) = state.pending[v].pop_back() {
                state.stats.leases[shard] += 1;
                state.stats.steals[shard] += 1;
                return Some((lease, true));
            }
        }
        None
    }

    /// Tear down, returning unconsumed leases, heap-exhausted AAs, and
    /// the lease/steal counters.
    fn into_parts(self) -> (Vec<RangeLease>, Vec<AaId>, ShardStats) {
        let state = self.state.into_inner().expect("lease manager poisoned");
        let leftover: Vec<RangeLease> = state.pending.into_iter().flatten().collect();
        (leftover, state.exhausted, state.stats)
    }
}

/// One shard's share of a group plan.
struct ShardPlan {
    out: AllocOutcome,
    /// One entry per drained lease, in this shard's drain order.
    segments: Vec<LeaseSegment>,
}

/// Where one lease's results sit inside its shard's [`AllocOutcome`],
/// plus what the merge needs to replay them in global write order.
struct LeaseSegment {
    seq: usize,
    aa: AaId,
    taken: u32,
    vbn_lo: usize,
    run_lo: usize,
}

/// One claimed AA's write-order range tagged with its exact free count
/// against the plan's bitmap snapshot.
struct RangeJob {
    aa: AaId,
    start: Vbn,
    len: u64,
    free: u64,
}

/// Plan `quota` physical allocations from one RAID group across
/// `shards` worker shards. Falls back to the single-threaded
/// [`plan_raid_group`] whenever sharding does not apply: one shard,
/// random-AA mode, a quarantined or missing cache, or an HBPS-cached
/// range (its probabilistic ranking hands out *bounds*, not exact
/// scores, so leases cannot be sized without re-ranking — such ranges
/// shard at volume granularity instead).
///
/// Reads the shared physical bitmap snapshot; mutates only group-local
/// state. The returned VBNs/runs are applied to the bitmap afterwards
/// (see [`wafl_bitmap::Bitmap::mutate_runs_partitioned`]).
///
/// With a live `tracer`, every lease grant is journaled as an event on
/// its shard's track (tagged `cp`) and each worker's drain as a span —
/// the raw material for the trace-report utilization and steal-rate
/// numbers.
#[allow(clippy::too_many_arguments)] // internal call site; a ctx struct would just rename the list
pub(crate) fn plan_raid_group_sharded(
    g: &mut RaidGroupState,
    bitmap: &Bitmap,
    quota: usize,
    mode: AllocatorMode,
    seed: u64,
    pick_audit_sample: u32,
    shards: usize,
    tracer: Option<&Tracer>,
    cp: u64,
) -> WaflResult<(AllocOutcome, ShardStats)> {
    let shardable = shards > 1
        && mode == AllocatorMode::CacheGuided
        && !g.cache_quarantined
        && matches!(g.cache, Some(GroupCache::Heap(_)));
    if !shardable {
        let out = plan_raid_group(g, bitmap, quota, mode, seed, pick_audit_sample)?;
        return Ok((out, ShardStats::new(shards.max(1))));
    }
    let Some(GroupCache::Heap(cache)) = g.cache.as_mut() else {
        unreachable!("shardable checked Heap");
    };

    let mut out = AllocOutcome::default();
    // The cross-CP active AA joins the claim order first (best position):
    // it is mid-drain, so its remaining free count is its exact score. A
    // quarantined active AA goes back to the heap instead, popcount-
    // scored, exactly like the legacy planner.
    let mut seed_lease: Option<(AaId, AaScore)> = None;
    if let Some(aa) = g.active_aa.take() {
        if g.quarantined_aas.contains(&aa) {
            let score = popcount_score(&g.topology, bitmap, aa);
            if !cache.contains(aa) {
                cache.insert(aa, AaScore(score))?;
            }
        } else {
            seed_lease = Some((aa, g.topology.score_from_bitmap(bitmap, aa)));
        }
    }

    let topology = &g.topology;
    let mgr = LeaseManager::new(cache, &g.quarantined_aas, shards);

    // ---- claim: pop best AAs until quota coverage --------------------
    // Exactly the AAs the legacy planner would drain this CP, in the same
    // rank order. Each claimed AA's write ranges are tagged with their
    // exact free counts (against the snapshot) so the slicing below can
    // hand out precisely `quota` blocks; tagging stops as soon as the
    // quota is covered — an AA's untagged tail simply stays free.
    let mut jobs: Vec<RangeJob> = Vec::new();
    let mut covered = 0u64;
    let mut claimed: Vec<AaId> = Vec::new();
    {
        let mut state = mgr.state.lock().expect("fresh manager");
        while covered < quota as u64 {
            let lease = match seed_lease.take() {
                Some(l) => Some(l),
                None => LeaseManager::take_ranked(&mut state)?,
            };
            let Some((aa, score)) = lease else {
                break; // ranking dry; the CP's shortfall pass takes over
            };
            out.picked.push((aa, score));
            claimed.push(aa);
            for (start, len) in topology.aa_write_ranges(aa) {
                if covered >= quota as u64 {
                    break;
                }
                let free = u64::from(bitmap.free_count_range(start, len));
                if free == 0 {
                    continue;
                }
                covered += free;
                jobs.push(RangeJob {
                    aa,
                    start,
                    len,
                    free,
                });
            }
        }
    }

    // Active-AA semantics mirror the legacy planner exactly: when the
    // quota was met, the last claimed AA is mid-drain and stays the
    // group's active cursor for the next CP (it is *not* re-ranked);
    // every other claimed AA was fully drained and re-ranks at the CP
    // boundary with its post-batch score.
    let new_active = if covered >= quota as u64 {
        claimed.pop()
    } else {
        None
    };
    out.drained.extend(claimed);

    // ---- slice: contiguous chunks of near-equal free count -----------
    // Cut points land on range boundaries, so a chunk may overshoot its
    // even share by at most one range's free count; the final take is
    // clipped so the chunks sum to exactly `want`. Every lease groups one
    // chunk's consecutive same-AA ranges.
    let want = (quota as u64).min(covered);
    {
        let mut bounds: Vec<usize> = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut ji = 0usize;
        let mut cum = 0u64;
        for shard in 0..shards {
            let target = want * (shard as u64 + 1) / shards as u64;
            while cum < target {
                cum += jobs[ji].free;
                ji += 1;
            }
            bounds.push(ji);
        }
        let mut state = mgr.state.lock().expect("fresh manager");
        let mut assigned = 0u64;
        let mut seq = 0usize;
        for shard in 0..shards {
            for group in jobs[bounds[shard]..bounds[shard + 1]].chunk_by(|a, b| a.aa == b.aa) {
                let free: u64 = group.iter().map(|j| j.free).sum();
                let take = free.min(want - assigned);
                if take == 0 {
                    break;
                }
                assigned += take;
                state.pending[shard].push_back(RangeLease {
                    seq,
                    aa: group[0].aa,
                    ranges: group.iter().map(|j| (j.start, j.len)).collect(),
                    take,
                });
                seq += 1;
            }
        }
        debug_assert_eq!(assigned, want, "chunk takes must sum to the quota");
    }

    // Fan the drain out. Each shard walks its leased ranges against the
    // read-only bitmap snapshot, so shard plans touch no shared memory
    // beyond the lease mutex (once per lease). Per-lease segment bounds
    // are kept so the merge can splice results back into `seq` order.
    let shard_plans: Vec<WaflResult<ShardPlan>> = {
        use rayon::prelude::*;
        (0..shards)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|shard| {
                let drain_t0 = tracer.map(|t| t.now_us());
                let mut plan = ShardPlan {
                    out: AllocOutcome::default(),
                    segments: Vec::new(),
                };
                while let Some((lease, stolen)) = mgr.lease(shard) {
                    if let Some(t) = tracer {
                        t.emit(
                            cp,
                            Some(shard as u32),
                            TraceData::Lease {
                                aa: lease.aa.0,
                                take: lease.take,
                                stolen,
                            },
                        );
                    }
                    let (vbn_lo, run_lo) = (plan.out.vbns.len(), plan.out.runs.len());
                    let quota_here = vbn_lo + lease.take as usize;
                    drain_ranges(&lease.ranges, bitmap, quota_here, &mut plan.out);
                    let taken = (plan.out.vbns.len() - vbn_lo) as u32;
                    debug_assert_eq!(
                        u64::from(taken),
                        lease.take,
                        "exact free counts on a snapshot"
                    );
                    plan.segments.push(LeaseSegment {
                        seq: lease.seq,
                        aa: lease.aa,
                        taken,
                        vbn_lo,
                        run_lo,
                    });
                }
                if let (Some(t), Some(t0)) = (tracer, drain_t0) {
                    // Real-timestamp worker span: the utilization signal
                    // is how long each shard actually spent draining
                    // within its CP, stolen leases included.
                    t.emit_at(
                        t0,
                        cp,
                        Some(shard as u32),
                        TraceData::Span {
                            name: "shard.drain",
                            dur_us: t.now_us() - t0,
                            model_us: 0.0,
                        },
                    );
                }
                Ok(plan)
            })
            .collect()
    };

    // Serial merge, in global write order: every lease's segment splices
    // back at its `seq` position, so the plan's VBN/run sequence — and
    // with it the logical->physical binding downstream — is identical to
    // the legacy planner's rank-order drain, independent of how leases
    // were scheduled or stolen across shards. Per-AA takes land in the
    // group's score-delta batch in the same order.
    let (leftover, exhausted, stats) = mgr.into_parts();
    debug_assert!(leftover.is_empty(), "shards consumed every lease");
    drop(leftover);
    let shard_plans = shard_plans.into_iter().collect::<WaflResult<Vec<_>>>()?;
    let mut ordered: Vec<(usize, &ShardPlan, usize)> = Vec::new();
    for plan in &shard_plans {
        out.blocks_examined += plan.out.blocks_examined;
        out.replenish_pages += plan.out.replenish_pages;
        out.cursor_hits += plan.out.cursor_hits;
        out.cursor_misses += plan.out.cursor_misses;
        out.sweep_picks += plan.out.sweep_picks;
        out.pick_errors.extend(plan.out.pick_errors.iter().cloned());
        for (i, seg) in plan.segments.iter().enumerate() {
            ordered.push((seg.seq, plan, i));
        }
    }
    ordered.sort_unstable_by_key(|&(seq, _, _)| seq);
    for &(_, plan, i) in &ordered {
        let seg = &plan.segments[i];
        let vbn_hi = plan
            .segments
            .get(i + 1)
            .map_or(plan.out.vbns.len(), |next| next.vbn_lo);
        let run_hi = plan
            .segments
            .get(i + 1)
            .map_or(plan.out.runs.len(), |next| next.run_lo);
        out.vbns
            .extend_from_slice(&plan.out.vbns[seg.vbn_lo..vbn_hi]);
        out.runs
            .extend_from_slice(&plan.out.runs[seg.run_lo..run_hi]);
        g.batch.record_allocated(seg.aa, seg.taken);
    }
    // Heap-exhausted claims re-rank at the CP boundary with the other
    // claimed AAs (same-CP frees may revive them).
    out.drained.extend(exhausted);
    g.active_aa = new_active;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn agg(shards: usize) -> Aggregate {
        Aggregate::new(
            AggregateConfig {
                write_shards: shards,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                50_000,
            )],
            1,
        )
        .unwrap()
    }

    /// Drive one aggregate for `rounds` CPs of random overwrites and
    /// return a digest of the physical and virtual state: free counts
    /// plus the exact per-page physical layout.
    fn drive(mut agg: Aggregate, rounds: usize) -> (u64, u64, Vec<u16>) {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..rounds {
            for _ in 0..2000 {
                agg.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                    .unwrap();
            }
            agg.run_cp().unwrap();
        }
        let bm = agg.bitmap();
        (
            bm.free_blocks(),
            agg.volumes()[0].free_blocks(),
            bm.page_free_counts().to_vec(),
        )
    }

    /// [`drive`] for the sequential reference planner: same workload,
    /// same digest shape.
    fn drive_oracle(rounds: usize) -> (u64, u64, Vec<u16>) {
        use rand::prelude::*;
        let mut orc = wafl_oracle::OracleAggregate::new(
            &[wafl_oracle::OracleRaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
            }],
            &[(
                wafl_oracle::OracleVolSpec {
                    size_blocks: 8 * 32768,
                    aa_blocks: None,
                },
                50_000,
            )],
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..rounds {
            for _ in 0..2000 {
                orc.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                    .unwrap();
            }
            orc.run_cp().unwrap();
        }
        let bm = orc.bitmap();
        (
            bm.free_blocks(),
            orc.volumes()[0].free_blocks(),
            bm.page_free_counts().to_vec(),
        )
    }

    /// Build a LeaseManager with `n` single-range leases of `take` blocks
    /// each queued round-robin across `shards`.
    fn queued_manager<'a>(
        cache: &'a mut RaidAwareCache,
        quarantined: &'a BTreeSet<AaId>,
        shards: usize,
        n: usize,
        take: u64,
    ) -> LeaseManager<'a> {
        let mgr = LeaseManager::new(cache, quarantined, shards);
        {
            let mut st = mgr.state.lock().unwrap();
            for i in 0..n {
                st.pending[i % shards].push_back(RangeLease {
                    seq: i,
                    aa: AaId(i as u32),
                    ranges: vec![(Vbn(i as u64 * 1000), take)],
                    take,
                });
            }
        }
        mgr
    }

    #[test]
    fn sharded_plan_allocates_disjoint_blocks() {
        let mut a = agg(4);
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..6 {
            for _ in 0..3000 {
                a.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                    .unwrap();
            }
            a.run_cp().unwrap();
        }
        // The run invariants (no double allocation, summary counters
        // exact) are enforced by the bitmap itself; reaching here without
        // a BitmapStateMismatch *is* the disjointness proof. Check space
        // accounting end-to-end on top.
        a.bitmap().verify_summary();
        let mapped = (0..50_000u64)
            .filter(|&l| a.volumes()[0].lookup_logical(l).is_some())
            .count() as u64;
        assert_eq!(
            a.bitmap().free_blocks() + mapped,
            a.bitmap().space_len(),
            "every live logical block occupies exactly one pvbn"
        );
    }

    #[test]
    fn shards_respect_quarantine() {
        let mut a = agg(4);
        // Quarantine a few physical AAs, then allocate heavily.
        {
            let g = &mut a.groups_mut()[0];
            g.quarantined_aas.insert(wafl_types::AaId(0));
            g.quarantined_aas.insert(wafl_types::AaId(1));
        }
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..4 {
            for _ in 0..2000 {
                a.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                    .unwrap();
            }
            a.run_cp().unwrap();
        }
        let g = &a.groups()[0];
        for aa in [wafl_types::AaId(0), wafl_types::AaId(1)] {
            for &(start, len) in &g.topology().aa_vbn_ranges(aa) {
                assert_eq!(
                    a.bitmap().free_count_range(start, len) as u64,
                    len,
                    "quarantined AA {aa:?} must never be leased"
                );
            }
        }
    }

    #[test]
    fn one_shard_matches_oracle_state() {
        // The sharded pipeline at shards=1 must reproduce the sequential
        // reference planner's state bit for bit — one shard drains in
        // exact rank order, like the retired legacy pipeline the oracle
        // preserves.
        let (free_new, vfree_new, pages_new) = drive(agg(1), 8);
        let (free_old, vfree_old, pages_old) = drive_oracle(8);
        assert_eq!(free_new, free_old);
        assert_eq!(vfree_new, vfree_old);
        assert_eq!(pages_new, pages_old);
    }

    #[test]
    fn sharded_block_set_matches_oracle_rank_order_drain() {
        // Stronger than virtual-state parity: the sharded plan's *physical*
        // block set is the same rank-order write-order prefix the reference
        // planner drains, so even the per-page physical free counts match
        // block for block.
        let (_, _, pages_new) = drive(agg(4), 8);
        let (_, _, pages_old) = drive_oracle(8);
        assert_eq!(pages_new, pages_old);
    }

    #[test]
    fn run_based_costing_matches_per_block_costing() {
        // The sharded pipeline costs media from run intervals, the
        // reference planner from block lists. Same workload, same physical
        // block set (rank-order parity), so every per-group stat —
        // including the f64 media time — must be bit-identical.
        use rand::prelude::*;
        let mut a = agg(4);
        let mut b = wafl_oracle::OracleAggregate::new(
            &[wafl_oracle::OracleRaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
            }],
            &[(
                wafl_oracle::OracleVolSpec {
                    size_blocks: 8 * 32768,
                    aa_blocks: None,
                },
                50_000,
            )],
        )
        .unwrap();
        let mut ra = rand::rngs::StdRng::seed_from_u64(5);
        let mut rb = rand::rngs::StdRng::seed_from_u64(5);
        for round in 0..6 {
            for _ in 0..2500 {
                a.client_overwrite(VolumeId(0), ra.random_range(0..50_000))
                    .unwrap();
                b.client_overwrite(VolumeId(0), rb.random_range(0..50_000))
                    .unwrap();
            }
            let sa = a.run_cp().unwrap();
            let sb = b.run_cp().unwrap();
            assert_eq!(sa.per_rg.len(), sb.per_rg.len(), "round {round}");
            for (x, y) in sa.per_rg.iter().zip(&sb.per_rg) {
                assert_eq!(x.blocks, y.blocks, "round {round}");
                assert_eq!(x.tetrises, y.tetrises, "round {round}");
                assert_eq!(x.full_stripes, y.full_stripes, "round {round}");
                assert_eq!(x.partial_stripes, y.partial_stripes, "round {round}");
                assert_eq!(x.parity_reads, y.parity_reads, "round {round}");
                assert_eq!(x.parity_writes, y.parity_writes, "round {round}");
                assert_eq!(x.per_device_blocks, y.per_device_blocks, "round {round}");
                assert_eq!(x.per_device_chains, y.per_device_chains, "round {round}");
                assert_eq!(x.media_us.to_bits(), y.media_us.to_bits(), "round {round}");
            }
        }
    }

    #[test]
    fn lease_manager_steals_when_own_queue_dry() {
        // Two queued leases, two shards; shard 0 consumes its own, then
        // steals shard 1's.
        let mut cache =
            RaidAwareCache::new_full(vec![AaScore(100), AaScore(90)], vec![32_768; 2]).unwrap();
        let quarantined = BTreeSet::new();
        let mgr = queued_manager(&mut cache, &quarantined, 2, 2, 10);
        let (_, stolen) = mgr.lease(0).expect("own queue");
        assert!(!stolen, "own-queue grant is not a steal");
        let (_, stolen) = mgr.lease(0).expect("steal from shard 1");
        assert!(stolen, "cross-queue grant reports the steal");
        assert!(mgr.lease(1).is_none(), "nothing left anywhere");
        let (leftover, _, stats) = mgr.into_parts();
        assert!(leftover.is_empty());
        assert_eq!(stats.leases, vec![2, 0]);
        assert_eq!(stats.steals, vec![1, 0]);
    }

    /// Pin the steal policy precisely, so the module docs, the metric
    /// semantics (`allocator.shard.{i}.steals`), and the code can't
    /// silently drift apart again: a shard whose *own* queue is dry takes
    /// the *last*-queued lease (`pop_back`) of the *most-loaded* sibling
    /// — ties resolved to the highest shard index (`max_by_key` keeps the
    /// last maximum) — and the steal is counted against the *stealer*.
    #[test]
    fn steal_policy_victim_order_and_attribution() {
        let mut cache = RaidAwareCache::new_full(vec![AaScore(100); 9], vec![32_768; 9]).unwrap();
        let quarantined = BTreeSet::new();
        // 9 leases round-robin over 3 shards: every queue holds seqs
        // {i, i+3, i+6} front-to-back.
        let mgr = queued_manager(&mut cache, &quarantined, 3, 9, 10);

        // Drain shard 0's own queue in FIFO order: 0, 3, 6.
        let own: Vec<usize> = (0..3).map(|_| mgr.lease(0).unwrap().0.seq).collect();
        assert_eq!(own, vec![0, 3, 6], "own queue drains front-first");

        // First steal: shards 1 and 2 both hold 3 leases — the tie goes
        // to the LAST maximal index (shard 2), and the victim loses its
        // last-queued lease (seq 8), not the seq-2 front it drains next.
        let (lease, stolen) = mgr.lease(0).unwrap();
        assert_eq!(lease.seq, 8, "tie → highest index, pop_back");
        assert!(stolen);
        // Now shard 1 (3 leases) is strictly more loaded than shard 2
        // (2 leases): steal its back (seq 7).
        let (lease, stolen) = mgr.lease(0).unwrap();
        assert_eq!(lease.seq, 7, "most-loaded victim, pop_back");
        assert!(stolen);

        // Victims still drain their own fronts untouched.
        assert_eq!(mgr.lease(1).unwrap().0.seq, 1);
        assert_eq!(mgr.lease(2).unwrap().0.seq, 2);

        let (leftover, _, stats) = mgr.into_parts();
        // Leases 4 and 5 remain queued (shard 1 and 2 backs).
        let left: Vec<usize> = leftover.iter().map(|l| l.seq).collect();
        assert_eq!(left, vec![4, 5]);
        // Every grant — own or stolen — counts as a lease for the shard
        // that received it; steals are attributed to the stealer only.
        assert_eq!(stats.leases, vec![5, 1, 1]);
        assert_eq!(stats.steals, vec![2, 0, 0]);
    }

    /// Contention stress for the lease handoff: real OS threads hammer
    /// one [`LeaseManager`] (loom is unavailable offline, so this relies
    /// on scheduler preemption plus `yield_now` to widen interleavings).
    /// Every queued lease must be granted exactly once across all
    /// threads, and the counters must add up.
    #[test]
    fn lease_handoff_survives_thread_contention() {
        const LEASES: usize = 64;
        const SHARDS: usize = 4;
        let scores: Vec<AaScore> = (0..LEASES).map(|i| AaScore(1 + i as u32)).collect();
        let mut cache = RaidAwareCache::new_full(scores, vec![32_768; LEASES]).unwrap();
        let quarantined = BTreeSet::new();
        let mgr = queued_manager(&mut cache, &quarantined, SHARDS, LEASES, 8);
        let granted: Vec<Vec<AaId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..SHARDS)
                .map(|shard| {
                    let mgr = &mgr;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some((lease, _)) = mgr.lease(shard) {
                            got.push(lease.aa);
                            std::thread::yield_now();
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (leftover, exhausted, stats) = mgr.into_parts();
        assert!(leftover.is_empty(), "threads drained every queued lease");
        assert!(exhausted.is_empty(), "the ranking was never consulted");
        let mut all: Vec<AaId> = granted.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "a lease was granted to two shards");
        assert_eq!(total, LEASES, "every queued lease granted exactly once");
        assert_eq!(stats.leases.iter().sum::<u64>() as usize, total);
        assert!(stats.steals.iter().sum::<u64>() <= stats.leases.iter().sum::<u64>());
    }

    #[test]
    fn quarantined_aas_never_claimed_off_the_ranking() {
        // take_ranked sets quarantined AAs aside and restores them: the
        // best clean AA is claimed, the quarantined better-ranked ones
        // stay ranked.
        let mut cache = RaidAwareCache::new_full(
            vec![AaScore(100), AaScore(90), AaScore(80)],
            vec![32_768; 3],
        )
        .unwrap();
        let quarantined: BTreeSet<AaId> = [AaId(0), AaId(1)].into_iter().collect();
        let mgr = LeaseManager::new(&mut cache, &quarantined, 2);
        {
            let mut st = mgr.state.lock().unwrap();
            let claimed = LeaseManager::take_ranked(&mut st).unwrap();
            assert_eq!(claimed.map(|(aa, _)| aa), Some(AaId(2)));
            assert!(LeaseManager::take_ranked(&mut st).unwrap().is_none());
        }
        drop(mgr);
        assert!(cache.contains(AaId(0)), "quarantined AAs stay ranked");
        assert!(cache.contains(AaId(1)));
    }

    #[test]
    fn shard_stats_accumulate_across_groups() {
        let mut a = ShardStats::new(2);
        a.leases = vec![1, 2];
        let mut b = ShardStats::new(4);
        b.leases = vec![10, 20, 30, 40];
        b.steals = vec![1, 0, 0, 1];
        a.accumulate(&b);
        assert_eq!(a.leases, vec![11, 22, 30, 40]);
        assert_eq!(a.steals, vec![1, 0, 0, 1]);
    }

    #[test]
    fn partial_drains_keep_the_active_cursor_like_legacy() {
        let mut a = agg(4);
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..3 {
            for _ in 0..1000 {
                a.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                    .unwrap();
            }
            a.run_cp().unwrap();
        }
        // 1000 ops per CP never fill an AA, so the quota was met mid-AA:
        // that AA stays the group's active cursor (the legacy planner's
        // invariant), held *out* of the ranking until it drains dry.
        let g = &a.groups()[0];
        let aa = g.active_aa.expect("quota met mid-AA leaves a cursor");
        match g.cache.as_ref() {
            Some(GroupCache::Heap(cache)) => {
                assert!(!cache.contains(aa), "active cursor must be off the heap");
            }
            other => panic!("expected a heap cache, got {:?}", other.is_some()),
        }
    }

    #[test]
    fn bind_batch_owner_updates_survive_reads() {
        // End-to-end read-back through the sharded pipeline: data written
        // before a CP remains addressable after it.
        let mut a = agg(4);
        for l in 0..500u64 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        for l in (0..500u64).step_by(7) {
            let vvbn = a.volumes()[0].lookup_logical(l).expect("mapped");
            assert!(a.volumes()[0].lookup_vvbn(vvbn).is_some());
        }
    }
}
