//! The aggregate: physical storage, RAID groups, hosted volumes.

use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
use crate::delayed_free::DelayedFreeLog;
use crate::obs::FsObs;
use crate::scrub::{HealthState, ScrubState, ScrubStatus};
use crate::volume::FlexVol;
use wafl_bitmap::Bitmap;
use wafl_core::{AaTopology, Hbps, HbpsConfig, RaidAwareCache, ScoreDeltaBatch};
use wafl_media::{HddModel, MediaProfile, ObjectStoreModel, SmrModel, SsdFtl};
use wafl_raid::RaidGeometry;
use wafl_types::{
    AaSizingPolicy, ChecksumStyle, MediaType, RaidGroupId, Vbn, VolumeId, WaflError, WaflResult,
    DEFAULT_STRIPES_PER_AA,
};

/// Per-device media model instance.
pub(crate) enum DeviceMedia {
    /// Conventional hard drive (stateless cost model).
    Hdd(HddModel),
    /// SSD with its own FTL state.
    Ssd(Box<SsdFtl>),
    /// Drive-managed SMR disk with zone state.
    Smr(Box<SmrModel>),
    /// Object store endpoint (only used for RAID-agnostic physical ranges;
    /// kept here so every device slot has a priced backend).
    Object(ObjectStoreModel),
}

impl DeviceMedia {
    /// `device_blocks` counts PVBN-addressable (data) blocks. With AZCS,
    /// the physical device also holds one checksum block per 63 data
    /// blocks (§3.2.4), so SMR zone accounting sizes the drive in
    /// physical blocks.
    fn for_profile(
        profile: &MediaProfile,
        device_blocks: u64,
        checksum: ChecksumStyle,
    ) -> WaflResult<DeviceMedia> {
        let physical_blocks = match checksum {
            ChecksumStyle::Sector520 => device_blocks,
            ChecksumStyle::Azcs => {
                device_blocks.div_ceil(wafl_types::AZCS_DATA_BLOCKS)
                    * wafl_types::AZCS_REGION_BLOCKS
            }
        };
        Ok(match profile.media {
            MediaType::Hdd => DeviceMedia::Hdd(HddModel::sas_10k()),
            MediaType::Ssd => DeviceMedia::Ssd(Box::new(SsdFtl::new(
                physical_blocks as u32,
                profile.erase_block_blocks as u32,
                profile.over_provisioning,
            )?)),
            MediaType::Smr => {
                let zones = physical_blocks.div_ceil(profile.zone_blocks);
                DeviceMedia::Smr(Box::new(SmrModel::new(zones, profile.zone_blocks)?))
            }
            MediaType::ObjectStore => DeviceMedia::Object(ObjectStoreModel::s3_class()),
        })
    }
}

/// The AA cache guiding a physical VBN range (§3.3): RAID groups get the
/// max-heap; natively redundant storage (object stores) gets the
/// two-page HBPS, exactly like FlexVols.
pub(crate) enum GroupCache {
    /// §3.3.1: max-heap over all AAs of a RAID group.
    Heap(RaidAwareCache),
    /// §3.3.2: histogram-based partial sort for storage with built-in
    /// redundancy, where tracking every AA "is not worth the memory".
    Hbps(Box<Hbps>),
}

/// Runtime state of one RAID group (or natively redundant range).
pub struct RaidGroupState {
    /// Geometry (device counts, capacity, PVBN base).
    pub geometry: RaidGeometry,
    /// AA tiling (consecutive stripes).
    pub(crate) topology: AaTopology,
    /// AA cache; `None` when the aggregate AA cache is disabled.
    pub(crate) cache: Option<GroupCache>,
    /// Media description.
    pub profile: MediaProfile,
    /// Per-device media state: `data_devices` entries then
    /// `parity_devices` entries.
    pub(crate) media: Vec<DeviceMedia>,
    /// AA height in stripes (after sizing policy).
    pub stripes_per_aa: u64,
    /// Score deltas accumulated during the current CP.
    pub(crate) batch: ScoreDeltaBatch,
    /// The AA currently being drained. WAFL assigns *all* free VBNs of a
    /// picked AA in sequential order (§3.1) — the AA stays the active
    /// allocation context across CPs until exhausted, and stays out of
    /// the max-heap meanwhile.
    pub(crate) active_aa: Option<wafl_types::AaId>,
    /// Per-device AZCS stream state: the next data DBN expected to extend
    /// each device's open checksum region (`u64::MAX` = no open stream).
    /// Indexed like `media` (data devices then parity).
    pub(crate) azcs_next: Vec<u64>,
    /// Physical AAs the runtime scrubber has quarantined: their summary
    /// counters disagreed with the popcount ground truth, so allocation
    /// must not land on them until the scheduled repair clears.
    pub(crate) quarantined_aas: std::collections::BTreeSet<wafl_types::AaId>,
    /// Structure-level quarantine: the group's TopAA cache is suspect
    /// (degraded at mount, or a scrub verify failed). Allocation bypasses
    /// it and sweeps the bitmap until the quarantine lifts.
    pub(crate) cache_quarantined: bool,
    /// HBPS picks seen by this group, for the sampled pick-error audit
    /// (1 in `pick_audit_sample` picks pays for a ground-truth scan).
    pub(crate) pick_audit_tick: u64,
}

impl RaidGroupState {
    /// The group's AA topology.
    pub fn topology(&self) -> &AaTopology {
        &self.topology
    }

    /// The group's max-heap cache, if enabled and RAID-backed. `None`
    /// for natively redundant (HBPS-cached) ranges.
    pub fn cache(&self) -> Option<&RaidAwareCache> {
        match self.cache.as_ref() {
            Some(GroupCache::Heap(h)) => Some(h),
            _ => None,
        }
    }

    /// The group's HBPS cache, if enabled and natively redundant.
    pub fn hbps_cache(&self) -> Option<&Hbps> {
        match self.cache.as_ref() {
            Some(GroupCache::Hbps(h)) => Some(h),
            _ => None,
        }
    }

    /// Physical AAs currently quarantined by the runtime scrubber.
    pub fn quarantined_aas(&self) -> Vec<wafl_types::AaId> {
        self.quarantined_aas.iter().copied().collect()
    }

    /// Whether the group's TopAA cache is structure-quarantined
    /// (allocation bypasses it and sweeps the bitmap).
    pub fn cache_quarantined(&self) -> bool {
        self.cache_quarantined
    }

    /// Mean write amplification across this group's SSDs (1.0 for
    /// non-SSD groups or before any writes).
    pub fn mean_write_amplification(&self) -> f64 {
        let was: Vec<f64> = self
            .media
            .iter()
            .filter_map(|m| match m {
                DeviceMedia::Ssd(ftl) => Some(ftl.write_amplification()),
                _ => None,
            })
            .collect();
        if was.is_empty() {
            1.0
        } else {
            was.iter().sum::<f64>() / was.len() as f64
        }
    }

    /// Total SMR drive interventions across this group's devices.
    pub fn smr_interventions(&self) -> u64 {
        self.media
            .iter()
            .map(|m| match m {
                DeviceMedia::Smr(s) => s.stats().interventions,
                _ => 0,
            })
            .sum()
    }

    /// Reset media counters (after aging, before measurement).
    pub fn reset_media_stats(&mut self) {
        for m in &mut self.media {
            match m {
                DeviceMedia::Ssd(ftl) => ftl.reset_stats(),
                DeviceMedia::Smr(s) => s.reset_stats(),
                _ => {}
            }
        }
    }
}

/// A client write queued for the next CP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct DirtyBlock {
    pub vol: VolumeId,
    pub logical: u64,
}

/// The aggregate: the physical WAFL instance hosting FlexVols (§2.1).
pub struct Aggregate {
    pub(crate) cfg: AggregateConfig,
    /// Physical activemap over the whole PVBN space.
    pub(crate) bitmap: Bitmap,
    pub(crate) groups: Vec<RaidGroupState>,
    pub(crate) vols: Vec<FlexVol>,
    /// Client writes since the last CP, in arrival order, deduplicated
    /// (WAFL coalesces repeated overwrites of a block within one CP).
    /// Dedup rides per-volume epoch stamps (`FlexVol::dirty_stamp` vs
    /// `cp_epoch`), not a hash set: one indexed load per overwrite, and
    /// the CP boundary invalidates every stamp by bumping the epoch.
    pub(crate) dirty: Vec<DirtyBlock>,
    /// Current dirty epoch; a logical block is dirty iff its stamp
    /// equals this epoch's byte ([`Aggregate::epoch_stamp`]). Bumped at
    /// every CP start and on volatile-state loss via
    /// [`Aggregate::bump_epoch`], which also zeroes every stamp array
    /// each time the byte wraps.
    pub(crate) cp_epoch: u64,
    /// Deletions queued for the next CP (logical blocks to unmap).
    pub(crate) pending_deletes: Vec<DirtyBlock>,
    /// PVBNs freed by overwrites, applied at the CP boundary (§3.3's
    /// delayed frees).
    pub(crate) delayed_pvbn_frees: Vec<Vbn>,
    /// Reverse ownership map: pvbn -> packed (volume, vvbn), or one of the
    /// sentinels below. WAFL keeps equivalent owner metadata in container
    /// files; segment cleaning needs it to redirect relocated blocks.
    pub(crate) pvbn_owner: Vec<u64>,
    /// Pending physical frees when `batched_frees` is configured.
    pub(crate) free_log: DelayedFreeLog,
    /// Completed CPs.
    pub(crate) cp_count: u64,
    /// Observability handles for the allocator pipeline. Host state: the
    /// counters survive simulated crashes and remounts of this instance.
    pub(crate) obs: FsObs,
    /// Runtime scrubber: cursor, repair tickets, health state machine.
    pub(crate) scrub: ScrubState,
}

/// Owner sentinel: block free / untracked.
pub(crate) const OWNER_NONE: u64 = u64::MAX;
/// Owner sentinel: block allocated by an aging seed with no volume owner.
pub(crate) const OWNER_ORPHAN: u64 = u64::MAX - 1;

/// Pack a (volume, vvbn) owner reference.
pub(crate) fn pack_owner(vol: VolumeId, vvbn: Vbn) -> u64 {
    ((vol.get() as u64) << 40) | vvbn.get()
}

/// Unpack an owner reference (must not be a sentinel).
pub(crate) fn unpack_owner(packed: u64) -> (VolumeId, Vbn) {
    (
        VolumeId((packed >> 40) as u32),
        Vbn(packed & ((1 << 40) - 1)),
    )
}

/// Build the appropriate cache for a physical range from its bitmap state:
/// max-heap for RAID groups, HBPS for natively redundant storage.
pub(crate) fn build_group_cache(g: &RaidGroupState, bitmap: &Bitmap) -> WaflResult<GroupCache> {
    if g.profile.media == MediaType::ObjectStore {
        let max_score = g.topology.max_score();
        let cfg = HbpsConfig {
            max_score,
            ..HbpsConfig::default()
        };
        let hbps = Hbps::build(cfg, g.topology.all_scores(bitmap))?;
        Ok(GroupCache::Hbps(Box::new(hbps)))
    } else {
        let scores = g.topology.all_scores(bitmap);
        let max: Vec<u32> = (0..g.topology.aa_count())
            .map(|a| g.topology.aa_blocks(wafl_types::AaId(a)) as u32)
            .collect();
        Ok(GroupCache::Heap(RaidAwareCache::new_full(
            scores.into_iter().map(|(_, s)| s).collect(),
            max,
        )?))
    }
}

impl Aggregate {
    /// Build an aggregate and its volumes. `vols` pairs each volume's
    /// config with its client-addressable (logical) size.
    pub fn new(
        cfg: AggregateConfig,
        vols: &[(FlexVolConfig, u64)],
        _seed: u64,
    ) -> WaflResult<Aggregate> {
        if cfg.raid_groups.is_empty() {
            return Err(WaflError::InvalidConfig {
                reason: "aggregate needs at least one RAID group".into(),
            });
        }
        if cfg.write_shards == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "write_shards must be >= 1: the legacy shards=0 pipeline moved to the \
                         test-only wafl-oracle crate"
                    .into(),
            });
        }
        let mut groups = Vec::with_capacity(cfg.raid_groups.len());
        let mut base = 0u64;
        for (i, spec) in cfg.raid_groups.iter().enumerate() {
            let geometry = RaidGeometry::new(
                RaidGroupId(i as u32),
                spec.data_devices,
                spec.parity_devices,
                spec.device_blocks,
                Vbn(base),
            )?;
            base += spec.data_blocks();
            let policy = cfg.aa_policy_override.unwrap_or_else(|| {
                AaSizingPolicy::for_media(
                    spec.profile.media,
                    cfg.checksum,
                    spec.profile.device_unit_blocks(),
                )
            });
            if spec.profile.media == MediaType::ObjectStore
                && (spec.parity_devices != 0 || spec.data_devices != 1)
            {
                return Err(WaflError::InvalidConfig {
                    reason: format!(
                        "object-store range {i} provides native redundancy: \
                         configure it as 1 data device, 0 parity"
                    ),
                });
            }
            // RAID-agnostic policies size AAs in consecutive blocks; with
            // a single logical device, stripes == blocks, so the same
            // stripe-based topology machinery serves both shapes.
            let stripes_per_aa = policy
                .stripes_per_aa()
                .or(policy.blocks_per_aa())
                .unwrap_or(DEFAULT_STRIPES_PER_AA)
                .min(spec.device_blocks);
            let topology = AaTopology::raid_aware(
                geometry.clone(),
                AaSizingPolicy::Stripes {
                    stripes: stripes_per_aa,
                },
            )?;
            let mut media = Vec::new();
            for _ in 0..spec.data_devices + spec.parity_devices {
                media.push(DeviceMedia::for_profile(
                    &spec.profile,
                    spec.device_blocks,
                    cfg.checksum,
                )?);
            }
            let device_count = (spec.data_devices + spec.parity_devices) as usize;
            groups.push(RaidGroupState {
                geometry,
                topology,
                cache: None, // built below once the bitmap exists
                profile: spec.profile.clone(),
                media,
                stripes_per_aa,
                batch: ScoreDeltaBatch::new(),
                active_aa: None,
                azcs_next: vec![u64::MAX; device_count],
                quarantined_aas: std::collections::BTreeSet::new(),
                cache_quarantined: false,
                pick_audit_tick: 0,
            });
        }
        let bitmap = Bitmap::new(base);
        if cfg.raid_aware_cache {
            for g in &mut groups {
                g.cache = Some(build_group_cache(g, &bitmap)?);
            }
        }
        let vols = vols
            .iter()
            .enumerate()
            .map(|(i, &(vcfg, logical))| FlexVol::new(VolumeId(i as u32), vcfg, logical))
            .collect::<WaflResult<Vec<_>>>()?;
        let space = bitmap.space_len() as usize;
        let scrub = ScrubState::new(cfg.scrub_pages_per_cp);
        let mut obs = FsObs::default();
        if cfg.write_shards > 1 {
            obs.register_shards(cfg.write_shards);
        }
        if cfg.trace_events > 0 {
            obs.enable_tracing(cfg.trace_events);
        }
        Ok(Aggregate {
            cfg,
            bitmap,
            groups,
            vols,
            dirty: Vec::new(),
            cp_epoch: 1,
            pending_deletes: Vec::new(),
            delayed_pvbn_frees: Vec::new(),
            pvbn_owner: vec![OWNER_NONE; space],
            free_log: DelayedFreeLog::new(),
            cp_count: 0,
            obs,
            scrub,
        })
    }

    /// Grow the aggregate by one RAID group (§3.1: "On RAID group
    /// creation and growth, WAFL maintains the mapping of physical VBN
    /// ranges to storage devices" — and §4.2: "customers increase the
    /// storage capacity of an aggregate over time by adding discrete RAID
    /// groups"). The new group's PVBN range starts where the aggregate
    /// currently ends; its AA cache is built immediately (everything is
    /// free, so no bitmap walk is needed in spirit — we build from the
    /// extended bitmap).
    pub fn add_raid_group(&mut self, spec: RaidGroupSpec) -> WaflResult<RaidGroupId> {
        let base = self.bitmap.space_len();
        let id = RaidGroupId(self.groups.len() as u32);
        let geometry = RaidGeometry::new(
            id,
            spec.data_devices,
            spec.parity_devices,
            spec.device_blocks,
            Vbn(base),
        )?;
        if spec.profile.media == MediaType::ObjectStore
            && (spec.parity_devices != 0 || spec.data_devices != 1)
        {
            return Err(WaflError::InvalidConfig {
                reason: "object-store range provides native redundancy: \
                         configure it as 1 data device, 0 parity"
                    .into(),
            });
        }
        let policy = self.cfg.aa_policy_override.unwrap_or_else(|| {
            AaSizingPolicy::for_media(
                spec.profile.media,
                self.cfg.checksum,
                spec.profile.device_unit_blocks(),
            )
        });
        let stripes_per_aa = policy
            .stripes_per_aa()
            .or(policy.blocks_per_aa())
            .unwrap_or(DEFAULT_STRIPES_PER_AA)
            .min(spec.device_blocks);
        let topology = AaTopology::raid_aware(
            geometry.clone(),
            AaSizingPolicy::Stripes {
                stripes: stripes_per_aa,
            },
        )?;
        let mut media = Vec::new();
        for _ in 0..spec.data_devices + spec.parity_devices {
            media.push(DeviceMedia::for_profile(
                &spec.profile,
                spec.device_blocks,
                self.cfg.checksum,
            )?);
        }
        let device_count = (spec.data_devices + spec.parity_devices) as usize;
        self.bitmap.extend(base + spec.data_blocks())?;
        self.pvbn_owner
            .resize(self.bitmap.space_len() as usize, OWNER_NONE);
        let mut g = RaidGroupState {
            geometry,
            topology,
            cache: None,
            profile: spec.profile.clone(),
            media,
            stripes_per_aa,
            batch: ScoreDeltaBatch::new(),
            active_aa: None,
            azcs_next: vec![u64::MAX; device_count],
            quarantined_aas: std::collections::BTreeSet::new(),
            cache_quarantined: false,
            pick_audit_tick: 0,
        };
        if self.cfg.raid_aware_cache {
            g.cache = Some(build_group_cache(&g, &self.bitmap)?);
        }
        self.groups.push(g);
        self.cfg.raid_groups.push(spec);
        Ok(id)
    }

    /// Reject a client mutation while the scrubber has the aggregate in
    /// [`HealthState::ReadOnly`] (a repair exhausted its retry budget;
    /// allocation can no longer trust the free-space metadata).
    fn check_writable(&self) -> WaflResult<()> {
        if self.scrub.health() == HealthState::ReadOnly {
            return Err(WaflError::ReadOnly {
                reason: self
                    .scrub
                    .read_only_reason()
                    .unwrap_or("scrub escalation")
                    .to_string(),
            });
        }
        Ok(())
    }

    /// Queue a client overwrite of `logical` in `vol` for the next CP.
    /// Repeated writes to the same block within one CP coalesce (§2.1).
    pub fn client_overwrite(&mut self, vol: VolumeId, logical: u64) -> WaflResult<()> {
        self.check_writable()?;
        let v = self.vols.get(vol.index()).ok_or(WaflError::InvalidConfig {
            reason: format!("no volume {vol}"),
        })?;
        if logical >= v.logical_blocks() {
            return Err(WaflError::VbnOutOfRange {
                vbn: Vbn(logical),
                space_len: v.logical_blocks(),
            });
        }
        let epoch = Self::epoch_stamp(self.cp_epoch);
        let stamp = &mut self.vols[vol.index()].dirty_stamp[logical as usize];
        if *stamp != epoch {
            *stamp = epoch;
            self.dirty.push(DirtyBlock { vol, logical });
        }
        Ok(())
    }

    /// The one-byte stamp value marking a block dirty in `epoch`: `0` is
    /// reserved for "cleared", so the byte cycles through `1..=255`.
    #[inline]
    pub(crate) fn epoch_stamp(epoch: u64) -> u8 {
        1 + (epoch % 255) as u8
    }

    /// Advance the dirty epoch. Stamps from earlier epochs read as clean
    /// immediately; each time the epoch byte completes a cycle, every
    /// volume's stamp array is zeroed so a 255-epoch-old stamp cannot
    /// alias the fresh epoch byte (a 200k-block volume zeroes 200 KB
    /// every 255 CPs — noise next to one CP, let alone 255).
    pub(crate) fn bump_epoch(&mut self) {
        self.cp_epoch += 1;
        if self.cp_epoch.is_multiple_of(255) {
            for v in &mut self.vols {
                v.dirty_stamp.fill(0);
            }
        }
    }

    /// Queue a deletion of `logical` in `vol`: the block's virtual and
    /// physical VBNs are freed at the next CP boundary (file deletions are
    /// one of the §2.2 fragmentation sources). Deleting an unmapped block
    /// is a no-op, matching hole-punching semantics.
    pub fn client_delete(&mut self, vol: VolumeId, logical: u64) -> WaflResult<()> {
        self.check_writable()?;
        let v = self.vols.get(vol.index()).ok_or(WaflError::InvalidConfig {
            reason: format!("no volume {vol}"),
        })?;
        if logical >= v.logical_blocks() {
            return Err(WaflError::VbnOutOfRange {
                vbn: Vbn(logical),
                space_len: v.logical_blocks(),
            });
        }
        self.pending_deletes.push(DirtyBlock { vol, logical });
        Ok(())
    }

    /// Cost (µs) of reading `logical` from `vol` at the media layer.
    /// Unmapped blocks read as zeroes for free.
    pub fn client_read(&self, vol: VolumeId, logical: u64) -> WaflResult<f64> {
        let v = self.vols.get(vol.index()).ok_or(WaflError::InvalidConfig {
            reason: format!("no volume {vol}"),
        })?;
        let Some(vvbn) = v.lookup_logical(logical) else {
            return Ok(0.0);
        };
        let Some(pvbn) = v.lookup_vvbn(vvbn) else {
            return Ok(0.0);
        };
        let g = self
            .groups
            .iter()
            .find(|g| g.geometry.contains(pvbn))
            .ok_or(WaflError::VbnOutOfRange {
                vbn: pvbn,
                space_len: self.bitmap.space_len(),
            })?;
        let loc = g.geometry.vbn_to_loc(pvbn)?;
        Ok(match &g.media[loc.device.index()] {
            DeviceMedia::Hdd(h) => h.random_read_cost_us(1),
            DeviceMedia::Ssd(s) => s.random_read_cost_us(1),
            DeviceMedia::Smr(s) => s.position_us + s.transfer_us,
            DeviceMedia::Object(o) => o.random_read_cost_us(1),
        })
    }

    /// Number of client writes waiting for the next CP.
    pub fn pending_ops(&self) -> usize {
        self.dirty.len()
    }

    /// Completed consistency points.
    pub fn cp_count(&self) -> u64 {
        self.cp_count
    }

    /// The aggregate's physical activemap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Hosted volumes.
    pub fn volumes(&self) -> &[FlexVol] {
        &self.vols
    }

    /// Mutable volume access (workload helpers).
    pub fn volume_mut(&mut self, vol: VolumeId) -> Option<&mut FlexVol> {
        self.vols.get_mut(vol.index())
    }

    /// RAID groups.
    pub fn groups(&self) -> &[RaidGroupState] {
        &self.groups
    }

    /// Mutable group access (experiments resetting media stats).
    pub fn groups_mut(&mut self) -> &mut [RaidGroupState] {
        &mut self.groups
    }

    /// Aggregate configuration.
    pub fn config(&self) -> &AggregateConfig {
        &self.cfg
    }

    /// Fraction of the physical space free.
    pub fn free_fraction(&self) -> f64 {
        self.bitmap.free_fraction()
    }

    /// Mean write amplification across all SSDs in the aggregate.
    pub fn mean_write_amplification(&self) -> f64 {
        let was: Vec<f64> = self
            .groups
            .iter()
            .flat_map(|g| g.media.iter())
            .filter_map(|m| match m {
                DeviceMedia::Ssd(ftl) => Some(ftl.write_amplification()),
                _ => None,
            })
            .collect();
        if was.is_empty() {
            1.0
        } else {
            was.iter().sum::<f64>() / was.len() as f64
        }
    }

    /// Reset every media model's counters (post-aging).
    pub fn reset_media_stats(&mut self) {
        for g in &mut self.groups {
            g.reset_media_stats();
        }
    }

    /// Clear accumulated bitmap dirty-page statistics without running a
    /// CP (post-setup, pre-measurement).
    pub fn bitmapless_dirty_reset(&mut self) {
        self.bitmap.take_dirty_stats();
        for v in &mut self.vols {
            v.bitmap.take_dirty_stats();
        }
    }

    /// The delayed-free log (empty unless `batched_frees` is configured).
    pub fn free_log(&self) -> &DelayedFreeLog {
        &self.free_log
    }

    /// Current aggregate health, as driven by the runtime scrubber.
    pub fn health(&self) -> HealthState {
        self.scrub.health()
    }

    /// Snapshot of the runtime scrubber: health, pending repairs,
    /// quarantine census.
    pub fn scrub_status(&self) -> ScrubStatus {
        crate::scrub::status(self)
    }

    /// Replace the scrubber's repair retry/backoff policy (tests and
    /// harness runs that need faster escalation or tighter backoff).
    pub fn set_scrub_retry_policy(&mut self, policy: wafl_types::RetryPolicy) {
        self.scrub.set_policy(policy);
    }

    /// Quarantine physical AAs of `group` directly (tests exercising the
    /// allocator's avoidance paths without staging real corruption).
    pub fn quarantine_physical_aas(&mut self, group: usize, aas: &[wafl_types::AaId]) {
        if let Some(g) = self.groups.get_mut(group) {
            g.quarantined_aas.extend(aas.iter().copied());
        }
    }

    /// Quarantine virtual AAs of volume `vol` directly (test hook).
    pub fn quarantine_virtual_aas(&mut self, vol: VolumeId, aas: &[wafl_types::AaId]) {
        if let Some(v) = self.vols.get_mut(vol.index()) {
            v.quarantined_aas.extend(aas.iter().copied());
        }
    }

    /// The metrics registry observing this aggregate's allocator pipeline.
    /// See `docs/observability.md` for the metric catalog;
    /// `Registry::snapshot_json` exports everything as one JSON object.
    pub fn obs(&self) -> &wafl_obs::Registry {
        self.obs.registry()
    }

    /// The flight-recorder trace journal, when the aggregate was
    /// configured with `trace_events > 0`. Snapshot with
    /// [`wafl_obs::trace::Tracer::events`] and export with
    /// [`wafl_obs::trace::chrome_trace_json`].
    pub fn tracer(&self) -> Option<&wafl_obs::trace::Tracer> {
        self.obs.tracer.as_ref()
    }

    /// The per-CP time series sampled at every completed CP, when
    /// tracing is enabled.
    pub fn cp_series(&self) -> Option<&wafl_obs::trace::PerCpSeries> {
        self.obs.cp_series.as_ref()
    }

    /// Reset AA-cache pick statistics on all volumes (post-aging).
    pub fn reset_cache_stats(&mut self) {
        for v in &mut self.vols {
            if let Some(c) = v.cache.as_mut() {
                c.reset_stats();
            }
        }
    }

    /// Discard everything a power loss would: queued client writes and
    /// deletes, delayed frees not yet applied to the bitmaps, and the
    /// CP-in-progress score batches. Persistent state (bitmaps, volume
    /// maps, owner map, the delayed-free *log*) survives.
    pub(crate) fn lose_volatile_state(&mut self) {
        self.dirty.clear();
        self.bump_epoch();
        self.pending_deletes.clear();
        self.delayed_pvbn_frees.clear();
        for v in &mut self.vols {
            v.delayed_vvbn_frees.clear();
            let _ = v.batch.drain().count();
        }
        for g in &mut self.groups {
            let _ = g.batch.drain().count();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RaidGroupSpec;

    fn small_cfg() -> AggregateConfig {
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 3,
            parity_devices: 1,
            device_blocks: 4096,
            profile: MediaProfile::hdd(),
        })
    }

    #[test]
    fn construction_wires_groups_and_vols() {
        let agg = Aggregate::new(
            small_cfg(),
            &[(
                FlexVolConfig {
                    size_blocks: 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1000,
            )],
            1,
        )
        .unwrap();
        assert_eq!(agg.groups().len(), 1);
        assert_eq!(agg.volumes().len(), 1);
        assert_eq!(agg.bitmap().space_len(), 3 * 4096);
        assert_eq!(agg.free_fraction(), 1.0);
        assert!(agg.groups()[0].cache().is_some());
    }

    #[test]
    fn empty_aggregate_rejected() {
        let cfg = AggregateConfig {
            raid_groups: vec![],
            ..small_cfg()
        };
        assert!(Aggregate::new(cfg, &[], 1).is_err());
    }

    #[test]
    fn overwrites_coalesce_within_a_cp() {
        let mut agg = Aggregate::new(
            small_cfg(),
            &[(
                FlexVolConfig {
                    size_blocks: 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1000,
            )],
            1,
        )
        .unwrap();
        agg.client_overwrite(VolumeId(0), 5).unwrap();
        agg.client_overwrite(VolumeId(0), 5).unwrap();
        agg.client_overwrite(VolumeId(0), 6).unwrap();
        assert_eq!(agg.pending_ops(), 2);
        assert!(agg.client_overwrite(VolumeId(0), 1000).is_err());
        assert!(agg.client_overwrite(VolumeId(9), 0).is_err());
    }

    #[test]
    fn reads_of_unwritten_blocks_are_free() {
        let agg = Aggregate::new(
            small_cfg(),
            &[(
                FlexVolConfig {
                    size_blocks: 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                1000,
            )],
            1,
        )
        .unwrap();
        assert_eq!(agg.client_read(VolumeId(0), 7).unwrap(), 0.0);
    }

    #[test]
    fn cache_disabled_leaves_none() {
        let cfg = AggregateConfig {
            raid_aware_cache: false,
            ..small_cfg()
        };
        let agg = Aggregate::new(cfg, &[], 1).unwrap();
        assert!(agg.groups()[0].cache().is_none());
    }

    #[test]
    fn ssd_groups_get_ftl_per_device() {
        let cfg = AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 2,
            parity_devices: 1,
            device_blocks: 64 * 100,
            profile: MediaProfile::ssd(),
        });
        let agg = Aggregate::new(cfg, &[], 1).unwrap();
        assert_eq!(agg.groups()[0].media.len(), 3);
        assert_eq!(agg.mean_write_amplification(), 1.0);
        // SSD default policy: AA column is a multiple of the erase block.
        assert_eq!(agg.groups()[0].stripes_per_aa % 512, 0);
    }
}
