//! Volume snapshots — the COW machinery that motivates the paper.
//!
//! WAFL is "a transaction-based file system that employs copy-on-write
//! mechanisms to achieve fast write performance and efficient snapshot
//! creation" (§1), and §4.1.1 notes that "the freeing of blocks due to
//! other internal activity, such as snapshot deletion, further adds to
//! this nonuniformity" of free space — the nonuniformity the AA caches
//! exploit.
//!
//! Model: a snapshot pins every virtual VBN live at creation time.
//! Overwrites and deletions of pinned blocks *detach* them (the active
//! map moves on; the block pair stays allocated for the snapshot's sake);
//! deleting the snapshot releases every pair whose last reference it held
//! — a burst of frees colocated wherever that snapshot's data was
//! written, applied as delayed frees at the next CP.
//!
//! Physical locations are resolved through the volume's live vvbn→pvbn
//! map at release time, so segment cleaning can relocate pinned blocks
//! freely in the meantime.

use crate::aggregate::Aggregate;
use crate::volume::FlexVol;
use serde::{Deserialize, Serialize};
use wafl_types::{Vbn, VolumeId, WaflError, WaflResult};

/// Identifier of a snapshot within its volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SnapshotId(pub u64);

impl std::fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapshotId({})", self.0)
    }
}

/// One snapshot: the set of virtual VBNs live at creation.
pub(crate) struct Snapshot {
    pub id: SnapshotId,
    /// Pinned virtual VBNs (their physical homes are resolved through the
    /// volume's vvbn map, which cleaning keeps current).
    pub pinned: Vec<Vbn>,
}

/// Statistics from a snapshot deletion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotDeleteStats {
    /// Block pairs whose last reference the snapshot held — queued as
    /// delayed frees for the next CP.
    pub blocks_released: u64,
    /// Pairs still referenced elsewhere (active map or other snapshots).
    pub blocks_still_referenced: u64,
}

impl Aggregate {
    /// Take a snapshot of `vol`, pinning every currently-mapped block.
    pub fn snapshot_create(&mut self, vol: VolumeId) -> WaflResult<SnapshotId> {
        let v = self
            .vols
            .get_mut(vol.index())
            .ok_or_else(|| WaflError::InvalidConfig {
                reason: format!("no volume {vol}"),
            })?;
        Ok(v.snapshot_create())
    }

    /// Delete a snapshot: every block pair whose last reference it held
    /// becomes a delayed free, applied at the next CP boundary (the
    /// §4.1.1 "internal activity" burst).
    pub fn snapshot_delete(
        &mut self,
        vol: VolumeId,
        id: SnapshotId,
    ) -> WaflResult<SnapshotDeleteStats> {
        let v = self
            .vols
            .get_mut(vol.index())
            .ok_or_else(|| WaflError::InvalidConfig {
                reason: format!("no volume {vol}"),
            })?;
        let (released, stats) = v.snapshot_delete(id)?;
        for (vvbn, pvbn) in released {
            v.delayed_vvbn_frees.push(vvbn);
            self.delayed_pvbn_frees.push(pvbn);
        }
        Ok(stats)
    }

    /// Snapshots currently held by `vol`.
    pub fn snapshots(&self, vol: VolumeId) -> &[SnapshotId] {
        self.vols
            .get(vol.index())
            .map(|v| v.snapshot_ids())
            .unwrap_or(&[])
    }
}

impl FlexVol {
    pub(crate) fn snapshot_create(&mut self) -> SnapshotId {
        let id = SnapshotId(self.next_snapshot_id);
        self.next_snapshot_id += 1;
        let mut pinned = Vec::new();
        for l in 0..self.logical_blocks() {
            if let Some(vvbn) = self.lookup_logical(l) {
                pinned.push(vvbn);
                *self.snap_refs.entry(vvbn.get()).or_insert(0) += 1;
            }
        }
        self.snapshots.push(Snapshot { id, pinned });
        self.refresh_snapshot_id_cache();
        id
    }

    pub(crate) fn snapshot_delete(
        &mut self,
        id: SnapshotId,
    ) -> WaflResult<(Vec<(Vbn, Vbn)>, SnapshotDeleteStats)> {
        let idx = self
            .snapshots
            .iter()
            .position(|s| s.id == id)
            .ok_or_else(|| WaflError::InvalidConfig {
                reason: format!("volume {} has no snapshot {}", self.id, id.0),
            })?;
        let snap = self.snapshots.remove(idx);
        let mut released = Vec::new();
        let mut stats = SnapshotDeleteStats::default();
        for vvbn in snap.pinned {
            let refs = self
                .snap_refs
                .get_mut(&vvbn.get())
                .expect("pinned block has a refcount");
            *refs -= 1;
            if *refs > 0 {
                stats.blocks_still_referenced += 1;
                continue;
            }
            self.snap_refs.remove(&vvbn.get());
            if self.detached.remove(&vvbn.get()) {
                // Last reference: the pair finally frees.
                let pvbn = self
                    .take_vvbn_mapping(vvbn)
                    .expect("detached vvbn keeps its pvbn mapping");
                released.push((vvbn, pvbn));
                stats.blocks_released += 1;
            } else {
                // Still live in the active file system.
                stats.blocks_still_referenced += 1;
            }
        }
        self.refresh_snapshot_id_cache();
        Ok((released, stats))
    }

    /// Whether any snapshot pins `vvbn` (the overwrite/delete paths ask
    /// before freeing an old pair).
    pub(crate) fn vvbn_pinned(&self, vvbn: Vbn) -> bool {
        self.snap_refs.contains_key(&vvbn.get())
    }

    /// Mark a pinned vvbn as no longer active (overwritten/deleted while
    /// a snapshot holds it).
    pub(crate) fn detach_pinned(&mut self, vvbn: Vbn) {
        let inserted = self.detached.insert(vvbn.get());
        debug_assert!(inserted, "double detach of {vvbn}");
    }

    pub(crate) fn snapshot_ids(&self) -> &[SnapshotId] {
        &self.snapshot_id_cache
    }

    fn refresh_snapshot_id_cache(&mut self) {
        self.snapshot_id_cache = self.snapshots.iter().map(|s| s.id).collect();
    }

    /// Blocks pinned by snapshots but gone from the active file system.
    pub fn detached_blocks(&self) -> u64 {
        self.detached.len() as u64
    }
}
