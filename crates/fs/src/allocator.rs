//! AA selection and sequential VBN assignment — the write allocator's
//! free-space side (§3.1: "the write allocator picks an AA and then
//! assigns all free VBNs from the AA in sequential order").
//!
//! Once picked, an AA remains the *active* allocation context across CPs
//! until every free VBN in it has been assigned; only then is the next AA
//! taken from the cache (or at random, in the baseline arms). While
//! active, a RAID-aware AA stays out of the max-heap.
//!
//! Besides the VBNs themselves, planning tracks `blocks_examined`: the
//! number of candidate block positions the allocator stepped over while
//! collecting free ones. Draining an AA with free fraction *f* examines
//! ~1/f candidates per allocation — the §2.5/§4.1.2 CPU effect of writing
//! into fuller regions.

use crate::aggregate::{GroupCache, RaidGroupState};
use crate::volume::FlexVol;
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_types::{AaId, AaScore, Vbn, WaflError, WaflResult};

/// How AAs are selected for writing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorMode {
    /// Consult the AA cache for the emptiest AA (the paper's design).
    CacheGuided,
    /// Pick AAs uniformly at random among non-full ones — the §4.1
    /// baseline ("randomly selected AAs average only 46% free space").
    RandomAa,
}

/// Result of planning allocation within one space.
#[derive(Debug, Default)]
pub(crate) struct AllocOutcome {
    /// VBNs to consume, in assignment order.
    pub vbns: Vec<Vbn>,
    /// `(aa, score at claim time)` for every AA newly claimed — feeds the
    /// chosen-AA-quality statistics of §4.1.
    pub picked: Vec<(AaId, AaScore)>,
    /// RAID-aware only: AAs fully drained by this plan, to be re-inserted
    /// into the max-heap (with post-batch scores) at the CP boundary.
    pub drained: Vec<AaId>,
    /// Candidate block positions examined while collecting free VBNs.
    pub blocks_examined: u64,
    /// Bitmap pages scanned by replenish walks triggered while planning.
    pub replenish_pages: u64,
    /// `(true_best - picked, bin_width)` score error for each HBPS-guided
    /// pick, in blocks. The §3.3.2 bound keeps the error under one bin
    /// width; heap picks are exact and record nothing.
    pub pick_errors: Vec<(u32, u32)>,
    /// Picks served by the linear bitmap sweep instead of a cache (the
    /// cache-less degraded-mount fallback, or baseline-mode exhaustion).
    pub sweep_picks: u64,
    /// The VBNs of `vbns` coalesced into maximal consecutive runs, in the
    /// same order. The apply phase walks these through the bulk bitmap
    /// mutators instead of flipping one bit at a time.
    pub runs: Vec<(Vbn, u64)>,
    /// Drains that resumed from the volume's per-AA cursor instead of
    /// re-walking the AA's allocated prefix.
    pub cursor_hits: u64,
    /// Drains that started from the AA's first VBN (no cursor, cursor on
    /// another AA, or cursor invalidated by frees/quarantine/replenish).
    pub cursor_misses: u64,
}

/// Dense "already tried" set over AA ids for one plan call — replaces a
/// `HashSet` on the random-pick path so each membership test is a word
/// index and a mask instead of a hash.
struct AaBitset {
    words: Vec<u64>,
}

impl AaBitset {
    fn new(aa_count: u32) -> Self {
        Self {
            words: vec![0; aa_count.div_ceil(64) as usize],
        }
    }

    /// Insert `aa`; returns `true` if it was not already present.
    fn insert(&mut self, aa: AaId) -> bool {
        let (w, bit) = ((aa.get() / 64) as usize, 1u64 << (aa.get() % 64));
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }
}

/// Drain free VBNs of `aa` from `bitmap` (read-only) in write order, up to
/// `quota` total in `out`. Returns whether the AA was exhausted.
pub(crate) fn drain_ranges(
    ranges: &[(Vbn, u64)],
    bitmap: &wafl_bitmap::Bitmap,
    quota: usize,
    out: &mut AllocOutcome,
) -> bool {
    for &(start, len) in ranges {
        let mut last_taken: Option<u64> = None;
        for (run_start, run_len) in bitmap.free_runs_in_range(start, len) {
            let remaining = (quota - out.vbns.len()) as u64;
            if remaining == 0 {
                // Quota hit mid-range: examined up to the previous take.
                if let Some(last) = last_taken {
                    out.blocks_examined += last - start.get() + 1;
                }
                return false;
            }
            let take = run_len.min(remaining);
            out.vbns.extend((0..take).map(|i| Vbn(run_start.get() + i)));
            out.runs.push((run_start, take));
            last_taken = Some(run_start.get() + take - 1);
            if take < run_len {
                // Quota hit mid-run.
                out.blocks_examined += run_start.get() + take - start.get();
                return false;
            }
        }
        // Range fully consumed (or empty): every position was examined.
        out.blocks_examined += len;
    }
    true
}

/// Popcount an AA's free blocks directly from the raw bits, bypassing the
/// summary-accelerated score paths. The quarantine machinery uses this:
/// when summaries (or the cache built from them) are suspect, the raw
/// bitmap words are the only state still trusted.
pub(crate) fn popcount_score(
    topology: &wafl_core::AaTopology,
    bitmap: &wafl_bitmap::Bitmap,
    aa: AaId,
) -> u32 {
    topology
        .aa_vbn_ranges(aa)
        .iter()
        .map(|&(start, len)| bitmap.free_count_range_popcount(start, len))
        .sum()
}

/// Plan physical allocations with the group's cache structure-quarantined:
/// walk the AAs in order, skipping quarantined ones, scoring each by
/// popcount. No AA becomes active — the sweep makes no claim the repaired
/// cache would have to honor later.
fn plan_group_quarantine_sweep(
    g: &mut RaidGroupState,
    bitmap: &wafl_bitmap::Bitmap,
    quota: usize,
    out: &mut AllocOutcome,
) {
    for aa in 0..g.topology.aa_count() {
        if out.vbns.len() >= quota {
            break;
        }
        let aa = AaId(aa);
        if g.quarantined_aas.contains(&aa) {
            continue;
        }
        let score = popcount_score(&g.topology, bitmap, aa);
        if score == 0 {
            continue;
        }
        out.sweep_picks += 1;
        out.picked.push((aa, AaScore(score)));
        let before = out.vbns.len();
        let ranges = g.topology.aa_write_ranges(aa);
        drain_ranges(&ranges, bitmap, quota, out);
        g.batch
            .record_allocated(aa, (out.vbns.len() - before) as u32);
    }
}

/// Plan `quota` physical allocations from one RAID group. Reads the
/// shared physical bitmap; mutates only group-local state (cache, batch,
/// active AA), so plans for different groups run in parallel. The
/// returned VBNs are applied to the bitmap serially afterwards.
pub(crate) fn plan_raid_group(
    g: &mut RaidGroupState,
    bitmap: &wafl_bitmap::Bitmap,
    quota: usize,
    mode: AllocatorMode,
    seed: u64,
    pick_audit_sample: u32,
) -> WaflResult<AllocOutcome> {
    let mut out = AllocOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tried = AaBitset::new(g.topology.aa_count());
    let aa_count = g.topology.aa_count();
    let mut attempts = 0u32;
    // Exact ground-truth best score, computed at most once per plan call
    // (the plan phase reads a bitmap snapshot, so it cannot change
    // mid-plan). Only sampled picks pay for it; see the HBPS arm below.
    let mut audited_best: Option<u32> = None;
    // Structure quarantine: the cache's scores are suspect, so don't
    // consult it at all — sweep the bitmap with popcount scoring instead.
    if mode == AllocatorMode::CacheGuided && g.cache_quarantined {
        g.active_aa = None;
        plan_group_quarantine_sweep(g, bitmap, quota, &mut out);
        return Ok(out);
    }
    while out.vbns.len() < quota {
        // Continue the active AA, or claim a new one. The active AA joins
        // `tried` so the random picker cannot re-pick it after this plan
        // drains it — the plan phase reads a bitmap snapshot, so a fresh
        // `score_from_bitmap` would be stale and cause double allocation.
        let aa = match g.active_aa {
            // A quarantine landed on the active AA: stop draining it and
            // hand it back to the heap (popcount-scored — its summary
            // counters are exactly what is suspect) so it returns to
            // rotation once the repair releases it.
            Some(aa) if g.quarantined_aas.contains(&aa) => {
                g.active_aa = None;
                let score = popcount_score(&g.topology, bitmap, aa);
                if let Some(GroupCache::Heap(cache)) = g.cache.as_mut() {
                    if !cache.contains(aa) {
                        cache.insert(aa, AaScore(score))?;
                    }
                }
                continue;
            }
            Some(aa) => {
                tried.insert(aa);
                aa
            }
            None => match mode {
                AllocatorMode::CacheGuided => match g.cache.as_mut() {
                    Some(GroupCache::Heap(cache)) => {
                        // Set quarantined AAs aside while claiming, then
                        // put every one of them back — they must neither
                        // be picked nor leak out of the heap.
                        let mut set_aside: Vec<(AaId, AaScore)> = Vec::new();
                        let claimed = loop {
                            match cache.take_best() {
                                Some((aa, score)) if g.quarantined_aas.contains(&aa) => {
                                    set_aside.push((aa, score));
                                }
                                other => break other,
                            }
                        };
                        for (aa, score) in set_aside {
                            cache.insert(aa, score)?;
                        }
                        match claimed {
                            Some((aa, score)) if score.get() > 0 => {
                                out.picked.push((aa, score));
                                g.active_aa = Some(aa);
                                aa
                            }
                            Some((aa, _)) => {
                                // Best AA is full: the group is exhausted.
                                out.drained.push(aa);
                                break;
                            }
                            None => break,
                        }
                    }
                    Some(GroupCache::Hbps(hbps)) => {
                        // The HBPS bound is a bin edge; the exact score
                        // comes from the bitmap, as in §3.3. An empty or
                        // degraded list replenishes from a scan first.
                        // Bound the retry loop: a full range would
                        // otherwise cycle take -> stale -> replenish.
                        attempts += 1;
                        if attempts > 2 * aa_count.max(8) {
                            break;
                        }
                        if hbps.needs_replenish(4) {
                            hbps.replenish(g.topology.all_scores(bitmap))?;
                            out.replenish_pages += (g.geometry.data_blocks() / 32_768).max(1);
                        }
                        match hbps.take_best() {
                            Some((aa, _bound)) => {
                                if g.quarantined_aas.contains(&aa) {
                                    continue; // attempts bound caps this
                                }
                                let score = g.topology.score_from_bitmap(bitmap, aa);
                                if score.get() == 0 {
                                    continue; // stale entry; pick again
                                }
                                // The exact audit costs a full-group score
                                // scan, so it no longer rides every pick:
                                // sample 1-in-N picks (N from config), and
                                // amortize even those through a per-plan
                                // memo — one scan per group per CP at most,
                                // the §3.3 CP-boundary discipline.
                                g.pick_audit_tick = g.pick_audit_tick.wrapping_add(1);
                                if pick_audit_sample > 0
                                    && g.pick_audit_tick.is_multiple_of(pick_audit_sample as u64)
                                {
                                    let true_best = *audited_best.get_or_insert_with(|| {
                                        g.topology
                                            .all_scores(bitmap)
                                            .into_iter()
                                            .map(|(_, s)| s.get())
                                            .max()
                                            .unwrap_or(score.get())
                                    });
                                    out.pick_errors.push((
                                        true_best.saturating_sub(score.get()),
                                        hbps.config().bin_width(),
                                    ));
                                }
                                out.picked.push((aa, score));
                                g.active_aa = Some(aa);
                                aa
                            }
                            None => break,
                        }
                    }
                    None => break,
                },
                AllocatorMode::RandomAa => {
                    attempts += 1;
                    if attempts > 4 * aa_count.max(8) {
                        break; // group effectively full
                    }
                    let aa = AaId(rng.random_range(0..aa_count));
                    if !tried.insert(aa) || g.quarantined_aas.contains(&aa) {
                        continue;
                    }
                    let score = g.topology.score_from_bitmap(bitmap, aa);
                    if score.get() == 0 {
                        continue;
                    }
                    out.picked.push((aa, score));
                    g.active_aa = Some(aa);
                    aa
                }
            },
        };
        // Assign the AA's free VBNs in write order: tetris by tetris, one
        // chain per device — full stripes and long chains (§2.3–2.4).
        // The plan phase must also skip VBNs it already took itself.
        let before = out.vbns.len();
        let ranges = g.topology.aa_write_ranges(aa);
        let exhausted = drain_ranges(&ranges, bitmap, quota, &mut out);
        let taken = (out.vbns.len() - before) as u32;
        g.batch.record_allocated(aa, taken);
        if exhausted {
            out.drained.push(aa);
            g.active_aa = None;
            if taken == 0 && mode == AllocatorMode::CacheGuided {
                // Claimed a stale-score AA with nothing actually free —
                // move on (its post-batch reinsert will carry score 0).
                continue;
            }
        } else {
            break; // quota met mid-AA; stays active for the next CP
        }
    }
    Ok(out)
}

/// Allocate `n` virtual VBNs from a volume, updating its bitmap and batch
/// in place (the volume owns both, so this runs in parallel across
/// volumes).
pub(crate) fn allocate_vvbns(
    vol: &mut FlexVol,
    n: usize,
    seed: u64,
    mode: AllocatorMode,
) -> WaflResult<AllocOutcome> {
    let mut out = AllocOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tried = AaBitset::new(vol.topology.aa_count());
    let aa_count = vol.topology.aa_count();
    let mut attempts = 0u32;
    while out.vbns.len() < n {
        let aa = match vol.active_aa {
            // A quarantine landed on the active AA: stop draining it and
            // pick elsewhere (the pick paths below skip quarantined AAs,
            // so this cannot loop).
            Some(aa) if vol.quarantined_aas.contains(&aa) => {
                vol.active_aa = None;
                vol.invalidate_drain_cursor();
                continue;
            }
            Some(aa) => aa,
            None => {
                let picked = match mode {
                    // Structure quarantine: the cache's scores are suspect;
                    // ignore it and use the popcount sweep below, exactly
                    // like the cache-less degraded-mount path.
                    AllocatorMode::CacheGuided if vol.cache_quarantined => None,
                    AllocatorMode::CacheGuided => match vol.cache.as_mut() {
                        Some(cache) => {
                            let pick = match cache.pick_best(&vol.bitmap) {
                                Some((aa, score)) if score.get() > 0 => Some((aa, score)),
                                _ => {
                                    // List drained: replenish from a scan
                                    // and retry once; the scan cost is
                                    // charged to the CP (§3.3.2's
                                    // background scan).
                                    if cache.maybe_replenish(&vol.bitmap)? {
                                        out.replenish_pages += vol.bitmap.page_count() as u64;
                                        // The replenish scan re-derives AA
                                        // scores from scratch; the cursor's
                                        // resume point is no longer known
                                        // to be ahead of every free block.
                                        vol.drain_cursor = None;
                                        cache.pick_best(&vol.bitmap).filter(|(_, s)| s.get() > 0)
                                    } else {
                                        None
                                    }
                                }
                            };
                            let pick = match pick {
                                Some((aa, _)) if vol.quarantined_aas.contains(&aa) => {
                                    // Quarantined pick: retry within the
                                    // attempts bound, then sweep.
                                    attempts += 1;
                                    if attempts <= 4 * aa_count.max(8) {
                                        continue;
                                    }
                                    None
                                }
                                p => p,
                            };
                            if let Some((_, score)) = pick {
                                // True-best from the per-AA free-count
                                // summary: O(aa_count) counter reads, not a
                                // bitmap scan. Volume bitmaps always carry
                                // the summary (enabled at creation), so the
                                // audit population stays complete; the
                                // popcount scan remains only as a paranoia
                                // fallback.
                                let true_best = vol
                                    .bitmap
                                    .aa_summary_blocks()
                                    .and_then(|ab| vol.bitmap.aa_free_counts(ab))
                                    .and_then(|counts| counts.iter().copied().max())
                                    .unwrap_or_else(|| {
                                        vol.topology
                                            .all_scores(&vol.bitmap)
                                            .into_iter()
                                            .map(|(_, s)| s.get())
                                            .max()
                                            .unwrap_or(score.get())
                                    });
                                out.pick_errors.push((
                                    true_best.saturating_sub(score.get()),
                                    cache.hbps().config().bin_width(),
                                ));
                            }
                            pick
                        }
                        // A degraded mount can leave a cache-guided volume
                        // without its HBPS. Fall through to the linear
                        // sweep below rather than panicking; the cache is
                        // rebuilt at the next clean mount.
                        None => None,
                    },
                    AllocatorMode::RandomAa => {
                        attempts += 1;
                        if attempts > 4 * aa_count.max(8) {
                            None
                        } else {
                            let aa = AaId(rng.random_range(0..aa_count));
                            if !tried.insert(aa) || vol.quarantined_aas.contains(&aa) {
                                continue;
                            }
                            let score = vol.topology.score_from_bitmap(&vol.bitmap, aa);
                            if score.get() == 0 {
                                continue;
                            }
                            Some((aa, score))
                        }
                    }
                };
                match picked {
                    Some((aa, score)) => {
                        out.picked.push((aa, score));
                        vol.active_aa = Some(aa);
                        aa
                    }
                    None => {
                        // Fall back to a linear sweep before declaring the
                        // space full: first non-quarantined AA with free
                        // blocks, scored by popcount (a quarantined
                        // volume's summaries are exactly what is suspect).
                        let mut found = None;
                        for aa in 0..aa_count {
                            let aa = AaId(aa);
                            if vol.quarantined_aas.contains(&aa) {
                                continue;
                            }
                            let score = popcount_score(&vol.topology, &vol.bitmap, aa);
                            if score > 0 {
                                found = Some((aa, AaScore(score)));
                                break;
                            }
                        }
                        let Some((aa, score)) = found else {
                            return Err(WaflError::SpaceExhausted);
                        };
                        out.sweep_picks += 1;
                        out.picked.push((aa, score));
                        vol.active_aa = Some(aa);
                        aa
                    }
                }
            }
        };
        // Drain (allocating as we go — the volume owns its bitmap). A
        // valid cursor lets the walk resume just past the last run this
        // AA handed out, instead of re-examining its allocated prefix on
        // every re-entry.
        let mut ranges = vol.topology.aa_vbn_ranges(aa);
        match vol.drain_cursor {
            Some((cursor_aa, resume)) if cursor_aa == aa => {
                out.cursor_hits += 1;
                ranges.retain_mut(|(start, len)| {
                    let end = start.get() + *len;
                    if end <= resume.get() {
                        false // entirely behind the cursor
                    } else {
                        if start.get() < resume.get() {
                            *len = end - resume.get();
                            *start = resume;
                        }
                        true
                    }
                });
            }
            _ => out.cursor_misses += 1,
        }
        let mut plan = AllocOutcome::default();
        let exhausted = drain_ranges(&ranges, &vol.bitmap, n - out.vbns.len(), &mut plan);
        for &(start, len) in &plan.runs {
            vol.bitmap.allocate_run(start, len)?;
        }
        vol.batch.record_allocated(aa, plan.vbns.len() as u32);
        out.blocks_examined += plan.blocks_examined;
        out.vbns.extend_from_slice(&plan.vbns);
        out.runs.extend_from_slice(&plan.runs);
        if exhausted {
            vol.active_aa = None;
            vol.drain_cursor = None;
            if plan.vbns.is_empty() && out.vbns.len() < n && mode == AllocatorMode::CacheGuided {
                // Stale pick with nothing free; loop to pick again. The
                // linear-sweep fallback above bounds this.
                continue;
            }
        } else {
            // Quota met mid-AA: the next drain resumes one past the last
            // VBN taken (frees into this AA invalidate the cursor).
            let last = plan.vbns.last().expect("quota>0 and not exhausted");
            vol.drain_cursor = Some((aa, Vbn(last.get() + 1)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlexVolConfig;
    use wafl_types::VolumeId;

    fn vol(cache: bool) -> FlexVol {
        FlexVol::new(
            VolumeId(0),
            FlexVolConfig {
                size_blocks: 4 * 32768,
                aa_cache: cache,
                aa_blocks: None,
            },
            1000,
        )
        .unwrap()
    }

    #[test]
    fn vvbns_come_sequentially_from_one_aa() {
        let mut v = vol(true);
        let out = allocate_vvbns(&mut v, 100, 7, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out.vbns.len(), 100);
        for w in out.vbns.windows(2) {
            assert_eq!(w[1].get(), w[0].get() + 1);
        }
        assert_eq!(out.picked.len(), 1);
        // A fresh AA: one candidate examined per block taken.
        assert_eq!(out.blocks_examined, 100);
        assert_eq!(v.bitmap().free_blocks(), 4 * 32768 - 100);
        // The AA stays active for the next CP...
        assert!(v.active_aa.is_some());
        let aa = v.active_aa.unwrap();
        // ...and the next allocation continues it contiguously.
        let out2 = allocate_vvbns(&mut v, 50, 8, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out2.vbns[0].get(), out.vbns.last().unwrap().get() + 1);
        assert!(out2.picked.is_empty(), "no new pick while an AA is active");
        assert_eq!(v.active_aa, Some(aa));
    }

    #[test]
    fn drain_cursor_resumes_and_never_skips_freed_blocks() {
        let mut v = vol(true);
        let out = allocate_vvbns(&mut v, 100, 7, AllocatorMode::CacheGuided).unwrap();
        assert_eq!((out.cursor_hits, out.cursor_misses), (0, 1));
        assert_eq!(out.runs, vec![(Vbn(0), 100)], "contiguous drain is one run");
        assert!(v.drain_cursor.is_some());
        // The second drain resumes from the cursor: no re-walk of the
        // allocated prefix, so only the 50 taken blocks are examined.
        let out2 = allocate_vvbns(&mut v, 50, 8, AllocatorMode::CacheGuided).unwrap();
        assert_eq!((out2.cursor_hits, out2.cursor_misses), (1, 0));
        assert_eq!(out2.blocks_examined, 50);
        assert_eq!(out2.vbns[0], Vbn(100));
        // Interleaved frees behind the cursor (the CP delayed-free path)
        // must invalidate it; the next drain then finds the freed blocks
        // instead of skipping them.
        v.delayed_vvbn_frees.extend([Vbn(10), Vbn(11), Vbn(12)]);
        v.flush_delayed_frees().unwrap();
        assert!(
            v.drain_cursor.is_none(),
            "a free into the cursor's AA must invalidate it"
        );
        let out3 = allocate_vvbns(&mut v, 3, 9, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out3.vbns, vec![Vbn(10), Vbn(11), Vbn(12)]);
        assert_eq!((out3.cursor_hits, out3.cursor_misses), (0, 1));
    }

    #[test]
    fn fragmented_drain_reports_per_run_granularity() {
        let mut v = vol(true);
        for b in (0..32768u64).step_by(2) {
            v.bitmap.allocate(Vbn(b)).unwrap();
        }
        v.active_aa = Some(AaId(0));
        let out = allocate_vvbns(&mut v, 10, 3, AllocatorMode::CacheGuided).unwrap();
        // Every other block free: ten single-block runs, each applied as
        // its own bulk mutation.
        assert_eq!(out.runs.len(), 10);
        assert!(out.runs.iter().all(|&(_, len)| len == 1));
        assert_eq!(out.vbns.len(), 10);
    }

    #[test]
    fn allocation_spills_to_next_aa_when_one_fills() {
        let mut v = vol(true);
        let out = allocate_vvbns(&mut v, 3 * 32768 + 10, 7, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out.vbns.len(), 3 * 32768 + 10);
        assert!(out.picked.len() >= 4);
    }

    #[test]
    fn space_exhaustion_reported() {
        let mut v = vol(true);
        assert!(matches!(
            allocate_vvbns(&mut v, 4 * 32768 + 1, 7, AllocatorMode::CacheGuided),
            Err(WaflError::SpaceExhausted)
        ));
    }

    #[test]
    fn random_mode_picks_varied_aas() {
        let mut v = vol(false);
        let out = allocate_vvbns(&mut v, 200, 11, AllocatorMode::RandomAa).unwrap();
        assert_eq!(out.vbns.len(), 200);
        assert_eq!(v.bitmap().free_blocks(), 4 * 32768 - 200);
    }

    #[test]
    fn cache_guided_prefers_emptier_aas() {
        let mut v = vol(true);
        for b in 0..16_384u64 {
            v.bitmap.allocate(Vbn(b)).unwrap();
        }
        let mut cache = wafl_core::RaidAgnosticCache::build(v.topology.clone(), &v.bitmap).unwrap();
        std::mem::swap(v.cache.as_mut().unwrap(), &mut cache);
        let out = allocate_vvbns(&mut v, 100, 7, AllocatorMode::CacheGuided).unwrap();
        assert!(out.picked[0].0.get() >= 1);
        assert_eq!(out.picked[0].1, AaScore(32768));
    }

    #[test]
    fn cache_guided_without_cache_falls_back_to_sweep() {
        // Regression: a degraded mount leaves `cache = None`; CacheGuided
        // allocation used to panic on `.expect("cache-guided without a
        // cache")`. It must fall back to the linear sweep instead.
        let mut v = vol(true);
        v.cache = None;
        let out = allocate_vvbns(&mut v, 100, 7, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out.vbns.len(), 100);
        assert!(out.sweep_picks >= 1, "sweep fallback should be counted");
        assert!(out.pick_errors.is_empty(), "sweep picks record no error");
        assert_eq!(v.bitmap().free_blocks(), 4 * 32768 - 100);
    }

    #[test]
    fn pick_error_stays_under_one_bin_width() {
        let mut v = vol(true);
        // Skew free space so AAs have distinct scores, then let the cache
        // (rebalanced at build time) pick; the HBPS bound caps the error.
        for b in 0..10_000u64 {
            v.bitmap.allocate(Vbn(b)).unwrap();
        }
        let mut cache = wafl_core::RaidAgnosticCache::build(v.topology.clone(), &v.bitmap).unwrap();
        std::mem::swap(v.cache.as_mut().unwrap(), &mut cache);
        let out = allocate_vvbns(&mut v, 100, 7, AllocatorMode::CacheGuided).unwrap();
        assert!(!out.pick_errors.is_empty());
        for &(err, width) in &out.pick_errors {
            assert!(err < width, "pick error {err} >= bin width {width}");
        }
    }

    #[test]
    fn examined_exceeds_taken_in_fragmented_aas() {
        let mut v = vol(true);
        // Fragment AA 0: every other block allocated.
        for b in (0..32768u64).step_by(2) {
            v.bitmap.allocate(Vbn(b)).unwrap();
        }
        // Force AA 0 active.
        v.active_aa = Some(AaId(0));
        let out = allocate_vvbns(&mut v, 1000, 3, AllocatorMode::CacheGuided).unwrap();
        assert_eq!(out.vbns.len(), 1000);
        // Half-free AA: ~2 candidates examined per block taken.
        assert!(
            out.blocks_examined >= 1990 && out.blocks_examined <= 2010,
            "examined {}",
            out.blocks_examined
        );
    }
}
