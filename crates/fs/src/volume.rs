//! FlexVol state: virtual VBN space, logical→virtual→physical mappings,
//! and the volume's RAID-agnostic AA cache.

use crate::config::FlexVolConfig;
use crate::paged_map::PagedMap;
use crate::snapshot::{Snapshot, SnapshotId};
use std::collections::{HashMap, HashSet};
use wafl_bitmap::Bitmap;
use wafl_core::{AaTopology, RaidAgnosticCache, ScoreDeltaBatch};
use wafl_types::{AaSizingPolicy, Vbn, VolumeId, WaflError, WaflResult, RAID_AGNOSTIC_AA_BLOCKS};

/// Sentinel for "no mapping".
const UNMAPPED: u64 = u64::MAX;

/// One FlexVol volume hosted in the aggregate.
///
/// Three layers of numbering meet here (§2.1):
/// * *logical blocks* — the client-visible file/LUN offsets;
/// * *virtual VBNs* — the volume's own block-number space, tracked by the
///   volume's activemap and AA cache;
/// * *physical VBNs* — owned by the aggregate; the volume only remembers
///   the virtual→physical map.
///
/// Copy-on-write: every overwrite of a logical block gets a fresh virtual
/// and physical VBN; the old pair is freed *at the CP boundary* (delayed
/// frees, §3.3).
pub struct FlexVol {
    /// This volume's id within the aggregate.
    pub id: VolumeId,
    cfg: FlexVolConfig,
    /// Virtual activemap.
    pub(crate) bitmap: Bitmap,
    /// AA tiling of the virtual space (32 Ki consecutive VBNs by default).
    pub(crate) topology: AaTopology,
    /// HBPS-backed cache; `None` when the volume's AA cache is disabled.
    pub(crate) cache: Option<RaidAgnosticCache>,
    /// Logical block → virtual VBN.
    logical_map: Vec<u64>,
    /// Dirty-epoch stamp per logical block: the block is queued for the
    /// next CP iff its stamp equals the aggregate's current epoch byte
    /// (`1 + cp_epoch % 255`; `0` = never stamped). Replaces a
    /// per-overwrite hash-set membership test with an indexed load; the
    /// CP boundary "clears" every stamp by bumping the epoch. One byte
    /// per block keeps the whole array cache-resident on the overwrite
    /// hot path (a `u64` stamp array is 8x the footprint for the same
    /// information); the aggregate zeroes it every 255 epochs so a stale
    /// stamp can never alias the current epoch byte after wraparound.
    pub(crate) dirty_stamp: Vec<u8>,
    /// Virtual VBN → physical VBN. Paged and direct-indexed: virtual
    /// spaces are thin-provisioned and can dwarf the live data, so the
    /// map faults in fixed-size pages on first touch (memory proportional
    /// to touched regions, not volume size) — while the bind path, which
    /// hits this once or twice per written block every CP, pays an index
    /// computation instead of a hash (see `docs/perf.md`).
    vvbn_map: PagedMap,
    /// Score deltas accumulated during the current CP.
    pub(crate) batch: ScoreDeltaBatch,
    /// Virtual VBNs freed by overwrites, applied at the CP boundary.
    pub(crate) delayed_vvbn_frees: Vec<Vbn>,
    /// The AA currently being drained (kept across CPs until exhausted,
    /// §3.1 — all free VBNs of a picked AA are assigned in order).
    pub(crate) active_aa: Option<wafl_types::AaId>,
    /// Resume point for draining the active AA: `(aa, first VBN not yet
    /// walked)`. Lets repeated drains skip the AA's allocated prefix.
    /// Purely an accelerator — it must be invalidated (set to `None`)
    /// whenever a free lands in its AA, the AA is quarantined, or a cache
    /// replenish rescans the space; a stale cursor would skip free blocks.
    pub(crate) drain_cursor: Option<(wafl_types::AaId, Vbn)>,
    /// Virtual AAs the runtime scrubber has quarantined: their summary
    /// counters disagreed with the popcount ground truth, so allocation
    /// must not trust (or land on) them until the scheduled repair clears.
    pub(crate) quarantined_aas: std::collections::BTreeSet<wafl_types::AaId>,
    /// Structure-level quarantine: the volume's AA cache is suspect
    /// (degraded at mount, or a scrub verify failed). Allocation bypasses
    /// the cache and sweeps the bitmap until the quarantine lifts.
    pub(crate) cache_quarantined: bool,
    /// Snapshots pinning old block versions (see [`crate::snapshot`]).
    pub(crate) snapshots: Vec<Snapshot>,
    /// vvbn -> number of snapshots pinning it.
    pub(crate) snap_refs: HashMap<u64, u32>,
    /// Pinned vvbns no longer in the active file system (freed when their
    /// last snapshot goes).
    pub(crate) detached: HashSet<u64>,
    pub(crate) next_snapshot_id: u64,
    pub(crate) snapshot_id_cache: Vec<SnapshotId>,
}

impl FlexVol {
    /// Create an empty volume with `logical_blocks` of client-addressable
    /// space. The virtual space (`cfg.size_blocks`) must be at least as
    /// large.
    pub fn new(id: VolumeId, cfg: FlexVolConfig, logical_blocks: u64) -> WaflResult<FlexVol> {
        if cfg.size_blocks < logical_blocks {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "volume {id}: virtual space {} smaller than logical space \
                     {logical_blocks}",
                    cfg.size_blocks
                ),
            });
        }
        let aa_blocks = cfg.aa_blocks.unwrap_or(RAID_AGNOSTIC_AA_BLOCKS);
        if aa_blocks == 0 || !aa_blocks.is_multiple_of(32) {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "volume {id}: AA size {aa_blocks} must be a positive \
                     multiple of the HBPS bin count (32)"
                ),
            });
        }
        let topology = AaTopology::raid_agnostic(
            cfg.size_blocks,
            AaSizingPolicy::ConsecutiveVbns { blocks: aa_blocks },
        )?;
        let mut bitmap = Bitmap::new(cfg.size_blocks);
        // Per-AA free-count summary: every score query (CP batch apply,
        // replenish scans, Iron audits, mount rebuilds) reads a counter
        // instead of popcounting the AA's bits.
        bitmap.enable_aa_summary(aa_blocks)?;
        let cache = if cfg.aa_cache {
            Some(RaidAgnosticCache::build(topology.clone(), &bitmap)?)
        } else {
            None
        };
        Ok(FlexVol {
            id,
            cfg,
            bitmap,
            topology,
            cache,
            logical_map: vec![UNMAPPED; logical_blocks as usize],
            dirty_stamp: vec![0; logical_blocks as usize],
            vvbn_map: PagedMap::new(cfg.size_blocks),
            batch: ScoreDeltaBatch::new(),
            delayed_vvbn_frees: Vec::new(),
            active_aa: None,
            drain_cursor: None,
            quarantined_aas: std::collections::BTreeSet::new(),
            cache_quarantined: false,
            snapshots: Vec::new(),
            snap_refs: HashMap::new(),
            detached: HashSet::new(),
            next_snapshot_id: 0,
            snapshot_id_cache: Vec::new(),
        })
    }

    /// Volume configuration.
    pub fn config(&self) -> FlexVolConfig {
        self.cfg
    }

    /// Client-addressable blocks.
    pub fn logical_blocks(&self) -> u64 {
        self.logical_map.len() as u64
    }

    /// Virtual space size.
    pub fn size_blocks(&self) -> u64 {
        self.cfg.size_blocks
    }

    /// Virtual AAs currently quarantined by the runtime scrubber.
    pub fn quarantined_aas(&self) -> Vec<wafl_types::AaId> {
        self.quarantined_aas.iter().copied().collect()
    }

    /// Whether the volume's AA cache is structure-quarantined (allocation
    /// bypasses it and sweeps the bitmap).
    pub fn cache_quarantined(&self) -> bool {
        self.cache_quarantined
    }

    /// Free virtual VBNs.
    pub fn free_blocks(&self) -> u64 {
        self.bitmap.free_blocks()
    }

    /// Current virtual VBN of a logical block (`None` if never written).
    pub fn lookup_logical(&self, logical: u64) -> Option<Vbn> {
        let v = *self.logical_map.get(logical as usize)?;
        (v != UNMAPPED).then_some(Vbn(v))
    }

    /// Physical VBN backing a virtual VBN.
    pub fn lookup_vvbn(&self, vvbn: Vbn) -> Option<Vbn> {
        self.vvbn_map.get(vvbn.get()).map(Vbn)
    }

    /// Record that `logical` now lives at (`vvbn`, `pvbn`). Returns the
    /// *previous* (vvbn, pvbn) pair if the block was mapped and no
    /// snapshot pins it — those become delayed frees; pinned pairs detach
    /// instead and free when their last snapshot goes. Called by the CP
    /// engine only.
    pub(crate) fn remap(&mut self, logical: u64, vvbn: Vbn, pvbn: Vbn) -> Option<(Vbn, Vbn)> {
        let old_v = self.logical_map[logical as usize];
        self.logical_map[logical as usize] = vvbn.get();
        self.vvbn_map.insert(vvbn.get(), pvbn.get());
        if old_v == UNMAPPED {
            return None;
        }
        self.release_or_detach(Vbn(old_v))
    }

    /// CP bind for one volume's whole write set: record that each
    /// `logicals[i]` now lives at (`vvbns[i]`, `pvbns[i]`), queue freed
    /// old virtual VBNs on the volume's delayed-free list, and return the
    /// freed *physical* VBNs for the aggregate's delayed-free path.
    /// Semantically [`FlexVol::remap`] in a loop; shaped as a batch so
    /// the CP engine can fan whole volumes out across worker shards —
    /// every structure touched here belongs to this volume alone.
    pub(crate) fn remap_batch(
        &mut self,
        logicals: &[u64],
        vvbns: &[Vbn],
        pvbns: &[Vbn],
    ) -> Vec<Vbn> {
        debug_assert_eq!(logicals.len(), vvbns.len());
        debug_assert_eq!(logicals.len(), pvbns.len());
        let mut freed_pvbns = Vec::with_capacity(logicals.len());
        for ((&logical, &vvbn), &pvbn) in logicals.iter().zip(vvbns).zip(pvbns) {
            if let Some((old_v, old_p)) = self.remap(logical, vvbn, pvbn) {
                self.delayed_vvbn_frees.push(old_v);
                freed_pvbns.push(old_p);
            }
        }
        freed_pvbns
    }

    /// Remove `logical`'s mapping entirely (file deletion / hole punch),
    /// returning the freed (vvbn, pvbn) pair for the delayed-free path
    /// (or `None` when a snapshot pins it).
    pub(crate) fn unmap(&mut self, logical: u64) -> Option<(Vbn, Vbn)> {
        let old_v = self.logical_map[logical as usize];
        if old_v == UNMAPPED {
            return None;
        }
        self.logical_map[logical as usize] = UNMAPPED;
        self.release_or_detach(Vbn(old_v))
    }

    /// The active file system no longer references `old_v`: free it now,
    /// or keep it (detached) for the snapshots that pin it.
    fn release_or_detach(&mut self, old_v: Vbn) -> Option<(Vbn, Vbn)> {
        // `snap_refs` is only populated while snapshots exist; skipping
        // the pin lookup when it is empty keeps the common no-snapshot
        // bind path to pure map traffic.
        if !self.snap_refs.is_empty() && self.vvbn_pinned(old_v) {
            self.detach_pinned(old_v);
            return None;
        }
        let old_p = self
            .vvbn_map
            .remove(old_v.get())
            .expect("mapped vvbn lacked a pvbn");
        Some((old_v, Vbn(old_p)))
    }

    /// Remove and return `vvbn`'s physical mapping (snapshot release).
    pub(crate) fn take_vvbn_mapping(&mut self, vvbn: Vbn) -> Option<Vbn> {
        self.vvbn_map.remove(vvbn.get()).map(Vbn)
    }

    /// All referenced (vvbn, pvbn) pairs: the active file system plus
    /// snapshot-pinned blocks. This is what the aggregate's owner map
    /// mirrors.
    pub(crate) fn vvbn_entries(&self) -> impl Iterator<Item = (Vbn, Vbn)> + '_ {
        self.vvbn_map.iter().map(|(v, p)| (Vbn(v), Vbn(p)))
    }

    /// Point an existing virtual VBN at a new physical location (segment
    /// cleaning relocated the block). The virtual VBN itself is unchanged,
    /// so logical mappings and the volume's activemap are untouched.
    pub(crate) fn redirect_vvbn(&mut self, vvbn: Vbn, new_pvbn: Vbn) {
        let slot = self
            .vvbn_map
            .get_mut(vvbn.get())
            .expect("redirected vvbn must be mapped");
        *slot = new_pvbn.get();
    }

    /// Read access to the volume's activemap (diagnostics, scans).
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The volume's AA topology.
    pub fn topology(&self) -> &AaTopology {
        &self.topology
    }

    /// The volume's AA cache, if enabled.
    pub fn cache(&self) -> Option<&RaidAgnosticCache> {
        self.cache.as_ref()
    }

    /// Fraction of the virtual space in use.
    pub fn used_fraction(&self) -> f64 {
        1.0 - self.bitmap.free_fraction()
    }

    /// Drop the drain-cursor accelerator. Called whenever its resume
    /// point can no longer be trusted to sit ahead of every free block in
    /// its AA: quarantine events, cache replenish rescans, repairs.
    pub(crate) fn invalidate_drain_cursor(&mut self) {
        self.drain_cursor = None;
    }

    /// A block was freed at `vvbn` outside the delayed-free path (Iron
    /// repair, snapshot release): drop the cursor if the free landed in
    /// its AA, since the freed block may now sit behind the resume point.
    pub(crate) fn note_vvbn_freed(&mut self, vvbn: Vbn) {
        if let Some((aa, _)) = self.drain_cursor {
            if self.topology.aa_of_vbn(vvbn).ok() == Some(aa) {
                self.drain_cursor = None;
            }
        }
    }

    /// Apply the CP boundary's delayed virtual frees (§3.3) in bulk:
    /// sort, then clear the whole batch with
    /// [`Bitmap::free_sorted_blocks`] — one masked word store per
    /// touched word instead of one bit flip per block. Invalidates the
    /// drain cursor for any AA a free lands in. Returns the blocks freed.
    pub(crate) fn flush_delayed_frees(&mut self) -> WaflResult<u64> {
        let mut frees = std::mem::take(&mut self.delayed_vvbn_frees);
        if frees.is_empty() {
            return Ok(0);
        }
        frees.sort_unstable();
        let total = frees.len() as u64;
        // Sorted input: one aa_span_of_vbn lookup per AA span crossed
        // instead of one aa_of_vbn per block, one record_freed per span
        // rather than per block, and one word-masked bitmap store per
        // touched word via the batch free — random overwrites free
        // thousands of isolated blocks, so per-block bookkeeping is the
        // cost that matters here.
        let mut span_aa = wafl_types::AaId(0);
        let mut span_end = Vbn(0);
        let mut span_freed: u32 = 0;
        for &vbn in &frees {
            if vbn >= span_end {
                if span_freed > 0 {
                    self.batch.record_freed(span_aa, span_freed);
                    if self.drain_cursor.map(|(c, _)| c) == Some(span_aa) {
                        self.drain_cursor = None;
                    }
                }
                (span_aa, span_end) = self.topology.aa_span_of_vbn(vbn)?;
                span_freed = 0;
            }
            span_freed += 1;
        }
        if span_freed > 0 {
            self.batch.record_freed(span_aa, span_freed);
            if self.drain_cursor.map(|(c, _)| c) == Some(span_aa) {
                self.drain_cursor = None;
            }
        }
        self.bitmap.free_sorted_blocks(&frees)?;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> FlexVol {
        FlexVol::new(
            VolumeId(0),
            FlexVolConfig {
                size_blocks: 4 * RAID_AGNOSTIC_AA_BLOCKS,
                aa_cache: true,
                aa_blocks: None,
            },
            1000,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_sizes() {
        assert!(FlexVol::new(
            VolumeId(0),
            FlexVolConfig {
                size_blocks: 10,
                aa_cache: true,
                aa_blocks: None,
            },
            100
        )
        .is_err());
    }

    #[test]
    fn remap_returns_previous_pair_for_cow_frees() {
        let mut v = vol();
        assert_eq!(v.remap(5, Vbn(100), Vbn(9000)), None);
        assert_eq!(v.lookup_logical(5), Some(Vbn(100)));
        assert_eq!(v.lookup_vvbn(Vbn(100)), Some(Vbn(9000)));
        // Overwrite: new location, old pair handed back for delayed free.
        assert_eq!(v.remap(5, Vbn(200), Vbn(9500)), Some((Vbn(100), Vbn(9000))));
        assert_eq!(v.lookup_logical(5), Some(Vbn(200)));
        assert_eq!(v.lookup_vvbn(Vbn(100)), None);
    }

    #[test]
    fn unwritten_blocks_have_no_mapping() {
        let v = vol();
        assert_eq!(v.lookup_logical(0), None);
        assert_eq!(v.lookup_logical(10_000_000), None);
        assert_eq!(v.lookup_vvbn(Vbn(0)), None);
    }

    #[test]
    fn flush_delayed_frees_splits_accounting_at_aa_boundaries() {
        let mut v = vol();
        // A run straddling the AA 0 / AA 1 boundary, queued in scrambled
        // order plus a lone block far away.
        let boundary = RAID_AGNOSTIC_AA_BLOCKS;
        v.bitmap.allocate_run(Vbn(boundary - 50), 100).unwrap();
        v.bitmap.allocate(Vbn(7)).unwrap();
        v.delayed_vvbn_frees = (boundary - 50..boundary + 50).rev().map(Vbn).collect();
        v.delayed_vvbn_frees.push(Vbn(7));
        v.drain_cursor = Some((wafl_types::AaId(0), Vbn(100)));
        assert_eq!(v.flush_delayed_frees().unwrap(), 101);
        assert!(v.delayed_vvbn_frees.is_empty());
        assert!(
            v.drain_cursor.is_none(),
            "frees into the cursor's AA invalidate it"
        );
        assert_eq!(v.bitmap.free_blocks(), v.size_blocks());
        v.bitmap.verify_summary();
        // The batch saw both AAs the straddling run touched.
        assert_eq!(v.batch.touched_aas(), 2);
    }

    #[test]
    fn cache_presence_follows_config() {
        let v = vol();
        assert!(v.cache().is_some());
        let v2 = FlexVol::new(
            VolumeId(1),
            FlexVolConfig {
                size_blocks: RAID_AGNOSTIC_AA_BLOCKS,
                aa_cache: false,
                aa_blocks: None,
            },
            100,
        )
        .unwrap();
        assert!(v2.cache().is_none());
    }
}
