//! A paged, direct-indexed `u64 -> u64` map for the CP bind path.
//!
//! The virtual→physical VBN map is the hottest structure in a CP: every
//! written block inserts one entry and (on copy-on-write) removes the old
//! one. A `HashMap` spends most of that time hashing; at ~8 Ki blocks per
//! CP the hashing alone dominated the bind phase (see `docs/perf.md`).
//!
//! Keys here are virtual VBNs, bounded by the volume's configured virtual
//! space, so the map can be *direct-indexed*: fixed-size pages of slots,
//! allocated lazily the first time a key lands in them. Lookup, insert,
//! and remove are a shift, a bounds-checked page deref, and a slot store —
//! no hashing, no probing. Memory stays proportional to the *touched*
//! regions of the space (thin-provisioned volumes never fault in pages for
//! VBN ranges they never map), and because the allocator assigns VBNs in
//! AA-dense order, touched pages run nearly full in practice.

/// Slots per page. One page covers 4 Ki keys and costs 32 KiB — the same
/// granularity as a bitmap metafile block, and small enough that sparse
/// workloads waste little.
const PAGE: usize = 4096;

/// Slot sentinel for "no mapping". `u64::MAX` is never a valid physical
/// VBN (spaces are far smaller), enforced by a debug assert on insert.
const EMPTY: u64 = u64::MAX;

/// Paged direct-indexed map; see the module docs.
pub(crate) struct PagedMap {
    pages: Vec<Option<Box<[u64; PAGE]>>>,
    len: u64,
}

impl PagedMap {
    /// An empty map for keys in `0..key_space`.
    pub(crate) fn new(key_space: u64) -> PagedMap {
        PagedMap {
            pages: vec![None; (key_space as usize).div_ceil(PAGE)],
            len: 0,
        }
    }

    /// Number of mappings.
    #[cfg(test)]
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Value mapped to `key`, if any.
    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<u64> {
        let page = self.pages.get(key as usize / PAGE)?.as_ref()?;
        let v = page[key as usize % PAGE];
        (v != EMPTY).then_some(v)
    }

    /// Map `key` to `value`, returning the previous value if present.
    /// Panics if `key` is outside the map's key space.
    #[inline]
    pub(crate) fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert_ne!(value, EMPTY, "PagedMap value sentinel collision");
        let slot_page = &mut self.pages[key as usize / PAGE];
        let page = slot_page.get_or_insert_with(|| Box::new([EMPTY; PAGE]));
        let slot = &mut page[key as usize % PAGE];
        let old = *slot;
        *slot = value;
        if old == EMPTY {
            self.len += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Remove `key`, returning its value if it was mapped.
    #[inline]
    pub(crate) fn remove(&mut self, key: u64) -> Option<u64> {
        let page = self.pages.get_mut(key as usize / PAGE)?.as_mut()?;
        let slot = &mut page[key as usize % PAGE];
        let old = *slot;
        if old == EMPTY {
            return None;
        }
        *slot = EMPTY;
        self.len -= 1;
        Some(old)
    }

    /// Mutable access to `key`'s value, if mapped.
    #[inline]
    pub(crate) fn get_mut(&mut self, key: u64) -> Option<&mut u64> {
        let page = self.pages.get_mut(key as usize / PAGE)?.as_mut()?;
        let slot = &mut page[key as usize % PAGE];
        (*slot != EMPTY).then_some(slot)
    }

    /// All `(key, value)` pairs in ascending key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter().flat_map(move |p| {
                p.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != EMPTY)
                    .map(move |(si, &v)| ((pi * PAGE + si) as u64, v))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PagedMap::new(100_000);
        assert_eq!(m.get(42), None);
        assert_eq!(m.insert(42, 7), None);
        assert_eq!(m.insert(42, 8), Some(7));
        assert_eq!(m.get(42), Some(8));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(42), Some(8));
        assert_eq!(m.remove(42), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn pages_fault_in_lazily() {
        let mut m = PagedMap::new(10 * PAGE as u64);
        m.insert(5, 1);
        m.insert(9 * PAGE as u64 + 3, 2);
        assert_eq!(m.pages.iter().filter(|p| p.is_some()).count(), 2);
        assert_eq!(m.get(5), Some(1));
        assert_eq!(m.get(9 * PAGE as u64 + 3), Some(2));
        assert_eq!(m.get(5 * PAGE as u64), None);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut m = PagedMap::new(3 * PAGE as u64);
        for k in [7u64, 2, PAGE as u64 + 1, 2 * PAGE as u64] {
            m.insert(k, k * 10);
        }
        let got: Vec<_> = m.iter().collect();
        assert_eq!(
            got,
            vec![
                (2, 20),
                (7, 70),
                (PAGE as u64 + 1, (PAGE as u64 + 1) * 10),
                (2 * PAGE as u64, 2 * PAGE as u64 * 10),
            ]
        );
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut m = PagedMap::new(1000);
        m.insert(1, 10);
        *m.get_mut(1).unwrap() = 11;
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.get_mut(999), None);
    }

    #[test]
    fn matches_hashmap_reference() {
        use std::collections::HashMap;
        let mut m = PagedMap::new(4096 * 4);
        let mut r: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % (4096 * 4);
            let val = state & 0xffff_ffff;
            match state % 3 {
                0 => assert_eq!(m.insert(key, val), r.insert(key, val)),
                1 => assert_eq!(m.remove(key), r.remove(&key)),
                _ => assert_eq!(m.get(key), r.get(&key).copied()),
            }
        }
        assert_eq!(m.len(), r.len() as u64);
        let mut pairs: Vec<_> = r.into_iter().collect();
        pairs.sort_unstable();
        assert_eq!(m.iter().collect::<Vec<_>>(), pairs);
    }
}
