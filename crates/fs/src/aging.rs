//! Aging recipes: reproduce the paper's aged, fragmented file systems.
//!
//! §4.1's setup: "the aggregate was filled up to 55% and was thoroughly
//! fragmented by applying heavy random write traffic for a long period of
//! time" — random overwrites in a COW file system free random blocks,
//! fragmenting the free space (§2.2).

use crate::aggregate::{build_group_cache, Aggregate, OWNER_ORPHAN};
use crate::cp::CpStats;
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_types::{Vbn, VolumeId, WaflResult};

/// Write every logical block of `vol` once (sequential fill), in CPs of
/// `ops_per_cp` operations. Returns accumulated CP stats.
pub fn fill_volume(agg: &mut Aggregate, vol: VolumeId, ops_per_cp: usize) -> WaflResult<CpStats> {
    let blocks = agg.volumes()[vol.index()].logical_blocks();
    let mut acc = CpStats::default();
    let mut l = 0u64;
    while l < blocks {
        let end = (l + ops_per_cp as u64).min(blocks);
        for b in l..end {
            agg.client_overwrite(vol, b)?;
        }
        acc.accumulate(&agg.run_cp()?);
        l = end;
    }
    Ok(acc)
}

/// Fill a fraction of `vol`'s logical space (from block 0 upward).
pub fn fill_volume_fraction(
    agg: &mut Aggregate,
    vol: VolumeId,
    fraction: f64,
    ops_per_cp: usize,
) -> WaflResult<CpStats> {
    let blocks =
        (agg.volumes()[vol.index()].logical_blocks() as f64 * fraction.clamp(0.0, 1.0)) as u64;
    let mut acc = CpStats::default();
    let mut l = 0u64;
    while l < blocks {
        let end = (l + ops_per_cp as u64).min(blocks);
        for b in l..end {
            agg.client_overwrite(vol, b)?;
        }
        acc.accumulate(&agg.run_cp()?);
        l = end;
    }
    Ok(acc)
}

/// Random-overwrite churn: `total_ops` uniform overwrites of already-
/// written logical blocks, flushed every `ops_per_cp`. This is the §4.1
/// fragmentation workload ("random overwrites create worst-case
/// fragmentation in a COW file system").
pub fn random_overwrite_churn(
    agg: &mut Aggregate,
    vol: VolumeId,
    total_ops: u64,
    ops_per_cp: usize,
    seed: u64,
) -> WaflResult<CpStats> {
    let written = agg.volumes()[vol.index()].logical_blocks();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = CpStats::default();
    let mut done = 0u64;
    while done < total_ops {
        let burst = (total_ops - done).min(ops_per_cp as u64);
        for _ in 0..burst {
            agg.client_overwrite(vol, rng.random_range(0..written))?;
        }
        acc.accumulate(&agg.run_cp()?);
        done += burst;
    }
    Ok(acc)
}

/// Directly seed a RAID group's PVBN range to `fraction` random occupancy
/// and rebuild its AA cache — the §4.2 setup where "disks in RG0 and RG1
/// were aged ... until a random 50% of its blocks were used". The seeded
/// blocks carry no volume owner (they model other tenants' cold data);
/// segment cleaning can still relocate them.
pub fn seed_rg_random_occupancy(
    agg: &mut Aggregate,
    rg_index: usize,
    fraction: f64,
    seed: u64,
) -> WaflResult<()> {
    let (base, len) = {
        let g = &agg.groups()[rg_index];
        (g.geometry.base_vbn.get(), g.geometry.data_blocks())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let target = (len as f64 * fraction.clamp(0.0, 1.0)) as u64;
    let mut placed = 0u64;
    while placed < target {
        let vbn = Vbn(base + rng.random_range(0..len));
        if agg.bitmap.allocate(vbn).is_ok() {
            agg.pvbn_owner[vbn.index()] = OWNER_ORPHAN;
            placed += 1;
        }
    }
    agg.bitmap.take_dirty_stats(); // seeding is setup, not measured I/O
    rebuild_rg_cache(agg, rg_index)
}

/// Rebuild one RAID group's AA cache from the bitmap (used after direct
/// bitmap seeding, which bypasses the CP's batched updates, and by the
/// cold mount path). No-op when the aggregate config disables the cache.
pub fn rebuild_rg_cache(agg: &mut Aggregate, rg_index: usize) -> WaflResult<()> {
    if !agg.cfg.raid_aware_cache {
        return Ok(());
    }
    let bitmap = &agg.bitmap;
    let g = &mut agg.groups[rg_index];
    let cache = build_group_cache(g, bitmap)?;
    g.cache = Some(cache);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;

    fn agg() -> Aggregate {
        Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            1,
        )
        .unwrap()
    }

    #[test]
    fn fill_then_churn_fragments_free_space() {
        let mut a = agg();
        fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096 - 60_000);
        let frag_before =
            wafl_bitmap::scan::fragmentation_in_range(a.bitmap(), Vbn(0), a.bitmap().space_len());
        random_overwrite_churn(&mut a, VolumeId(0), 60_000, 4096, 9).unwrap();
        // Occupancy unchanged (COW overwrites are net-zero), but the free
        // space shattered into many more runs.
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096 - 60_000);
        let frag_after =
            wafl_bitmap::scan::fragmentation_in_range(a.bitmap(), Vbn(0), a.bitmap().space_len());
        assert!(
            frag_after.1 > 4 * frag_before.1,
            "runs before {} after {}",
            frag_before.1,
            frag_after.1
        );
        assert!(frag_after.2 < frag_before.2, "longest run must shrink");
    }

    #[test]
    fn rg_seeding_hits_target_occupancy() {
        let mut a = agg();
        seed_rg_random_occupancy(&mut a, 0, 0.5, 5).unwrap();
        let free = a.bitmap().free_fraction();
        assert!((free - 0.5).abs() < 0.01, "free fraction {free}");
        // Cache rebuilt: best AA is roughly half empty, not full-empty.
        let best = a.groups()[0].cache().unwrap().best().unwrap().1;
        let max = a.groups()[0].stripes_per_aa * 4;
        let frac = best.get() as f64 / max as f64;
        assert!(frac < 0.9, "best AA still looks empty: {frac}");
        assert!(frac > 0.4);
    }
}
