//! Unmount/mount with and without TopAA metafiles (§3.4).
//!
//! After a failover or reboot, write allocation cannot begin until an AA
//! can be selected, which requires operational AA caches. The slow path
//! walks every bitmap-metafile block; the fast path reads the fixed-size
//! TopAA metafile: one block per RAID-aware cache (512 best AAs) and two
//! blocks (the embedded HBPS pages) per RAID-agnostic cache. Figure 10
//! measures exactly this difference, and [`MountStats`] carries the
//! numbers the harness plots.

use crate::aggregate::{Aggregate, GroupCache};
use serde::{Deserialize, Serialize};
use wafl_core::{topaa, Hbps, RaidAgnosticCache, RaidAwareCache};
use wafl_faults::{FaultPlan, FaultSession, PageSel, ReadOutcome, StructureId};
use wafl_obs::trace::TraceData;
use wafl_types::{AaId, RetryPolicy, WaflError, WaflResult, BITS_PER_BITMAP_BLOCK, BLOCK_SIZE};

/// Journal a mount-path span on the engine track: real wall duration from
/// `t0` (a [`crate::obs::FsObs::trace_now_us`] stamp taken at entry),
/// modeled time = the path's first-CP-ready cost.
fn trace_mount_span(agg: &Aggregate, name: &'static str, t0: Option<f64>, model_us: f64) {
    if let (Some(t0), Some(now)) = (t0, agg.obs.trace_now_us()) {
        agg.obs.trace_at(
            t0,
            agg.cp_count,
            None,
            TraceData::Span {
                name,
                dur_us: now - t0,
                model_us,
            },
        );
    }
}

/// Persisted form of one physical range's AA cache.
#[allow(clippy::large_enum_variant)] // both variants are page images
#[derive(Clone)]
pub enum RgTopAa {
    /// One 4 KiB block: the 512 best AAs of a RAID-aware max-heap (§3.4).
    Heap([u8; BLOCK_SIZE]),
    /// Two 4 KiB blocks: the HBPS pages of a natively redundant range,
    /// embedded verbatim like a FlexVol cache.
    Hbps([u8; BLOCK_SIZE], [u8; BLOCK_SIZE]),
}

/// The persisted TopAA metafile image of a whole aggregate: one block per
/// RAID group (two for HBPS-cached ranges) plus two per FlexVol.
#[derive(Clone)]
pub struct TopAaImage {
    /// Per-group cache image (index = RAID group).
    pub rg_blocks: Vec<Option<RgTopAa>>,
    /// Two 4 KiB blocks per volume cache (index = volume).
    pub vol_pages: Vec<Option<([u8; BLOCK_SIZE], [u8; BLOCK_SIZE])>>,
}

impl TopAaImage {
    /// Metafile blocks this image occupies on storage.
    pub fn block_count(&self) -> u64 {
        let rg: u64 = self
            .rg_blocks
            .iter()
            .flatten()
            .map(|b| match b {
                RgTopAa::Heap(_) => 1,
                RgTopAa::Hbps(..) => 2,
            })
            .sum();
        let vol = self.vol_pages.iter().flatten().count() as u64 * 2;
        rg + vol
    }
}

/// Which structure's TopAA state fell back to a cold bitmap scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedPart {
    /// A RAID group's TopAA block / HBPS page pair.
    Group(usize),
    /// A FlexVol's HBPS page pair.
    Volume(usize),
}

/// One structure [`mount_auto`] could not seed from the TopAA metafile:
/// its cache was rebuilt from the authoritative bitmap instead. The rest
/// of the mount stays on the fast path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// The structure that degraded.
    pub part: DegradedPart,
    /// Why the fast path failed (CRC mismatch, persistent I/O error, ...).
    pub reason: String,
    /// Bitmap pages the cold rebuild of this structure scanned.
    pub pages_scanned: u64,
}

/// What a mount path cost and left behind.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MountStats {
    /// Metafile blocks read before the first CP could run (TopAA blocks
    /// plus any bitmap pages scanned for degraded structures).
    pub metafile_blocks_read: u64,
    /// Modelled time until the first CP can start, µs (reads + processing).
    pub first_cp_ready_us: f64,
    /// Bitmap pages a background walk must still scan to complete the
    /// caches (zero for the cold path, which scans everything up front).
    pub background_pages_remaining: u64,
    /// Transient metafile read failures absorbed by retries during the
    /// mount (only [`mount_auto_with`] can make this nonzero).
    pub transient_retries: u64,
    /// Structures that fell back to a cold bitmap scan (empty on a fully
    /// fast mount).
    pub degraded: Vec<DegradationEvent>,
}

/// Serialize every cache's TopAA state — what WAFL persists at each CP so
/// a crash loses nothing (§3.4).
pub fn save_topaa(agg: &Aggregate) -> TopAaImage {
    TopAaImage {
        rg_blocks: agg
            .groups
            .iter()
            .map(|g| {
                g.cache.as_ref().map(|c| match c {
                    GroupCache::Heap(h) => RgTopAa::Heap(topaa::serialize_raid_aware(h)),
                    GroupCache::Hbps(h) => {
                        let (a, b) = h.to_pages();
                        RgTopAa::Hbps(a, b)
                    }
                })
            })
            .collect(),
        vol_pages: agg
            .volumes()
            .iter()
            .map(|v| v.cache().map(RaidAgnosticCache::to_topaa))
            .collect(),
    }
}

/// Simulate a crash/reboot: all in-memory AA caches, allocator context
/// (active AAs, device stream state), queued client operations, and
/// unapplied delayed frees are lost. Bitmaps, volume maps, the owner map,
/// snapshots, and the delayed-free *log* — the persistent state — survive.
pub fn crash(agg: &mut Aggregate) {
    for g in agg.groups.iter_mut() {
        g.cache = None;
        g.active_aa = None;
        g.azcs_next.iter_mut().for_each(|n| *n = u64::MAX);
        g.quarantined_aas.clear();
        g.cache_quarantined = false;
    }
    for v in agg.vols.iter_mut() {
        v.cache = None;
        v.active_aa = None;
        v.quarantined_aas.clear();
        v.cache_quarantined = false;
    }
    // The scrubber's cursor, tickets, and health are volatile too: the
    // remount re-derives health from its own degradation events.
    agg.scrub.reset_volatile();
    agg.lose_volatile_state();
}

/// Fast mount: seed every cache from the TopAA image (§3.4). Reads a
/// fixed number of metafile blocks regardless of file-system size; the
/// max-heaps start partial and [`complete_background_rebuild`] finishes
/// them later.
pub fn mount_with_topaa(agg: &mut Aggregate, image: &TopAaImage) -> WaflResult<MountStats> {
    let t0 = agg.obs.trace_now_us();
    let cpu = agg.config().cpu;
    let mut blocks_read = 0u64;
    let mut seed_hits = 0u64;
    let mut partial_heap_seeded = false;
    for (i, block) in image.rg_blocks.iter().enumerate() {
        let g = &mut agg.groups[i];
        match block {
            Some(RgTopAa::Heap(block)) => {
                blocks_read += 1;
                let entries = topaa::deserialize_raid_aware(block)?;
                let max: Vec<u32> = (0..g.topology.aa_count())
                    .map(|a| g.topology.aa_blocks(AaId(a)) as u32)
                    .collect();
                let seeded = RaidAwareCache::seeded(max, &entries)?;
                partial_heap_seeded |= !seeded.is_complete();
                g.cache = Some(GroupCache::Heap(seeded));
                seed_hits += 1;
            }
            Some(RgTopAa::Hbps(hist, list)) => {
                blocks_read += 2;
                // HBPS restores complete — like a volume cache.
                g.cache = Some(GroupCache::Hbps(Box::new(Hbps::from_pages(hist, list)?)));
                seed_hits += 1;
            }
            None => {}
        }
    }
    for (i, pages) in image.vol_pages.iter().enumerate() {
        let Some((hist, list)) = pages else { continue };
        blocks_read += 2;
        let v = &mut agg.vols[i];
        v.cache = Some(RaidAgnosticCache::from_topaa(
            v.topology.clone(),
            hist,
            list,
        )?);
        seed_hits += 1;
        // HBPS restores complete — no background debt for volumes.
    }
    agg.obs.mount_seed_hits.inc(seed_hits);
    let stats = MountStats {
        metafile_blocks_read: blocks_read,
        first_cp_ready_us: blocks_read as f64 * (cpu.us_per_metafile_read + cpu.us_per_scan_page),
        // The background walk owes a pass over the physical bitmap only
        // when a partial heap seed was actually installed; an all-HBPS
        // (or seed-covers-everything) mount restores complete.
        background_pages_remaining: if partial_heap_seeded {
            agg.bitmap.page_count() as u64
        } else {
            0
        },
        transient_retries: 0,
        degraded: Vec::new(),
    };
    trace_mount_span(agg, "mount.topaa", t0, stats.first_cp_ready_us);
    Ok(stats)
}

/// Apply a fault plan's scribbles to a persisted TopAA image — the damage
/// the torture driver inflicts between crash and remount. Scribbles aimed
/// at absent structures (or at the nonexistent second page of a heap
/// block) hit unused media and are ignored.
pub fn apply_scribbles(image: &mut TopAaImage, plan: &FaultPlan) {
    for s in &plan.scribbles {
        match s.target {
            StructureId::Group(i) => {
                if let Some(Some(block)) = image.rg_blocks.get_mut(i) {
                    match block {
                        RgTopAa::Heap(page) => {
                            if s.page == PageSel::First {
                                s.apply(page);
                            }
                        }
                        RgTopAa::Hbps(hist, list) => s.apply(match s.page {
                            PageSel::First => hist,
                            PageSel::Second => list,
                        }),
                    }
                }
            }
            StructureId::Volume(i) => {
                if let Some(Some((hist, list))) = image.vol_pages.get_mut(i) {
                    s.apply(match s.page {
                        PageSel::First => hist,
                        PageSel::Second => list,
                    });
                }
            }
        }
    }
}

/// Fault-free [`mount_auto_with`]: fast-path every structure, degrading
/// any whose persisted state fails its CRC or structural validation.
pub fn mount_auto(agg: &mut Aggregate, image: &TopAaImage) -> MountStats {
    let plan = FaultPlan::none();
    let mut session = FaultSession::new(&plan);
    mount_auto_with(agg, image, &mut session, RetryPolicy::default())
}

/// Degraded-mode mount: seed every cache from the TopAA image where
/// possible, and fall back to a cold bitmap scan *per structure* where
/// not. Unlike [`mount_with_topaa`], this never returns an error and
/// never leaves a cache-configured structure without its cache: a corrupt
/// TopAA block or a persistently unreadable metafile costs that one
/// group/volume a bitmap walk (recorded in [`MountStats::degraded`])
/// while everything else keeps the fast path. Transient read errors are
/// retried within `retry`'s budget and surface only as
/// [`MountStats::transient_retries`].
pub fn mount_auto_with(
    agg: &mut Aggregate,
    image: &TopAaImage,
    faults: &mut FaultSession<'_>,
    retry: RetryPolicy,
) -> MountStats {
    let t0 = agg.obs.trace_now_us();
    let cpu = agg.config().cpu;
    let mut stats = MountStats::default();
    let mut seed_hits = 0u64;
    let mut partial_heap_seeded = false;

    let want_group_caches = agg.config().raid_aware_cache;
    for i in 0..agg.groups.len() {
        if !want_group_caches {
            continue;
        }
        let (read, retries) = faulted_read(faults, StructureId::Group(i), retry);
        stats.transient_retries += retries as u64;
        let seeded = read.and_then(|()| match image.rg_blocks.get(i).and_then(Option::as_ref) {
            Some(RgTopAa::Heap(block)) => {
                stats.metafile_blocks_read += 1;
                let entries = topaa::deserialize_raid_aware(block)?;
                let g = &mut agg.groups[i];
                let max: Vec<u32> = (0..g.topology.aa_count())
                    .map(|a| g.topology.aa_blocks(AaId(a)) as u32)
                    .collect();
                let cache = RaidAwareCache::seeded(max, &entries)?;
                partial_heap_seeded |= !cache.is_complete();
                g.cache = Some(GroupCache::Heap(cache));
                seed_hits += 1;
                Ok(())
            }
            Some(RgTopAa::Hbps(hist, list)) => {
                stats.metafile_blocks_read += 2;
                agg.groups[i].cache =
                    Some(GroupCache::Hbps(Box::new(Hbps::from_pages(hist, list)?)));
                seed_hits += 1;
                Ok(())
            }
            None => Err(WaflError::CorruptMetafile {
                reason: "TopAA image missing for this group".into(),
            }),
        });
        if let Err(e) = seeded {
            // Per-structure degradation: recompute this group's cache
            // from the authoritative bitmap (§3.4's fallback), leaving
            // every other structure on the fast path.
            crate::aging::rebuild_rg_cache(agg, i)
                .expect("cold cache rebuild from the authoritative bitmap");
            let pages = agg.groups[i]
                .geometry
                .data_blocks()
                .div_ceil(BITS_PER_BITMAP_BLOCK);
            stats.metafile_blocks_read += pages;
            stats.degraded.push(DegradationEvent {
                part: DegradedPart::Group(i),
                reason: e.to_string(),
                pages_scanned: pages,
            });
            // A degraded-at-mount structure starts quarantined: its cold-
            // rebuilt cache is trusted only after the first clean scrub
            // pass over it (or `complete_background_rebuild`) releases it.
            agg.groups[i].cache_quarantined = true;
        }
    }

    for i in 0..agg.vols.len() {
        if !agg.vols[i].config().aa_cache {
            continue;
        }
        let (read, retries) = faulted_read(faults, StructureId::Volume(i), retry);
        stats.transient_retries += retries as u64;
        let seeded = read.and_then(|()| match image.vol_pages.get(i).and_then(Option::as_ref) {
            Some((hist, list)) => {
                stats.metafile_blocks_read += 2;
                let v = &mut agg.vols[i];
                v.cache = Some(RaidAgnosticCache::from_topaa(
                    v.topology.clone(),
                    hist,
                    list,
                )?);
                seed_hits += 1;
                Ok(())
            }
            None => Err(WaflError::CorruptMetafile {
                reason: "TopAA image missing for this volume".into(),
            }),
        });
        if let Err(e) = seeded {
            let v = &mut agg.vols[i];
            v.cache = Some(
                RaidAgnosticCache::build(v.topology.clone(), &v.bitmap)
                    .expect("cold cache rebuild from the authoritative bitmap"),
            );
            let pages = v.bitmap.page_count() as u64;
            stats.metafile_blocks_read += pages;
            stats.degraded.push(DegradationEvent {
                part: DegradedPart::Volume(i),
                reason: e.to_string(),
                pages_scanned: pages,
            });
            agg.vols[i].cache_quarantined = true;
        }
    }

    stats.first_cp_ready_us =
        stats.metafile_blocks_read as f64 * (cpu.us_per_metafile_read + cpu.us_per_scan_page);
    stats.background_pages_remaining = if partial_heap_seeded {
        agg.bitmap.page_count() as u64
    } else {
        0
    };
    agg.obs.mount_seed_hits.inc(seed_hits);
    agg.obs.mount_degradations.inc(stats.degraded.len() as u64);
    agg.obs
        .mount_cold_pages
        .inc(stats.degraded.iter().map(|d| d.pages_scanned).sum());
    agg.obs.mount_retries.inc(stats.transient_retries);
    // Reflect the mount's degradations in the health state machine (the
    // scrub-state fix: a degraded mount used to report Healthy until the
    // first scrub step happened to run).
    crate::scrub::refresh_health(agg);
    trace_mount_span(agg, "mount.auto", t0, stats.first_cp_ready_us);
    stats
}

/// One metafile read against the fault session, retried within `retry`'s
/// budget. Returns the settled result and the retries consumed.
fn faulted_read(
    faults: &mut FaultSession<'_>,
    target: StructureId,
    retry: RetryPolicy,
) -> (WaflResult<()>, u32) {
    retry.run(|| match faults.on_read(target) {
        ReadOutcome::Ok => Ok(()),
        ReadOutcome::Transient => Err(WaflError::TransientIo {
            reason: format!("metafile read failed for {target:?}"),
        }),
        ReadOutcome::Persistent => Err(WaflError::CorruptMetafile {
            reason: format!("metafile persistently unreadable for {target:?}"),
        }),
    })
}

/// Cold mount: no TopAA metafile — walk every bitmap page of the
/// aggregate and of every volume to compute all AA scores (§3.4's
/// "linear walk of the bitmap metafiles ... may take multiple seconds").
pub fn mount_cold(agg: &mut Aggregate) -> WaflResult<MountStats> {
    let t0 = agg.obs.trace_now_us();
    let cpu = agg.config().cpu;
    let mut pages = agg.bitmap.page_count() as u64;
    for i in 0..agg.groups.len() {
        crate::aging::rebuild_rg_cache(agg, i)?;
    }
    for v in agg.vols.iter_mut() {
        pages += v.bitmap.page_count() as u64;
        v.cache = Some(RaidAgnosticCache::build(v.topology.clone(), &v.bitmap)?);
    }
    agg.obs.mount_cold_pages.inc(pages);
    let stats = MountStats {
        metafile_blocks_read: pages,
        first_cp_ready_us: pages as f64 * (cpu.us_per_metafile_read + cpu.us_per_scan_page),
        background_pages_remaining: 0,
        transient_retries: 0,
        degraded: Vec::new(),
    };
    trace_mount_span(agg, "mount.cold", t0, stats.first_cp_ready_us);
    Ok(stats)
}

/// Finish a TopAA-seeded mount: the background walk that completes every
/// RAID-aware max-heap with authoritative scores. Returns the pages
/// scanned (its cost runs behind client traffic, not in front of it).
/// The *modelled* cost stays a full metafile walk — the paper's §3.4
/// I/O — but the in-memory recomputation is summary-driven: each AA's
/// score comes from the free-count counters, not a popcount over raw
/// bits, so the rebuild no longer competes with client CPs for CPU.
pub fn complete_background_rebuild(agg: &mut Aggregate) -> WaflResult<u64> {
    let bitmap = &agg.bitmap;
    let mut scanned = 0u64;
    let mut released = false;
    for g in agg.groups.iter_mut() {
        let Some(GroupCache::Heap(cache)) = g.cache.as_mut() else {
            continue; // HBPS ranges restore complete from their two pages
        };
        // Complete and trusted: nothing to do. A quarantined heap is
        // recomputed even when complete (a degraded mount cold-rebuilt
        // it, but only an authoritative pass lifts the quarantine).
        if cache.is_complete() && !g.cache_quarantined {
            continue;
        }
        let scores = g.topology.all_scores(bitmap);
        cache.absorb_rebuild(&scores)?;
        scanned += bitmap.page_count() as u64;
        // The heap now carries authoritative scores for every AA: a
        // mount-time structure quarantine on this group is settled.
        if g.cache_quarantined {
            g.cache_quarantined = false;
            released = true;
        }
    }
    if released {
        crate::scrub::refresh_health(agg);
    }
    Ok(scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn aged_agg(vols: usize) -> Aggregate {
        let mut a = Aggregate::new(
            AggregateConfig {
                // 64-stripe AAs -> 2048 AAs per group, so the 512-entry
                // TopAA seed is a strict subset and the background rebuild
                // has real work to do.
                aa_policy_override: Some(wafl_types::AaSizingPolicy::Stripes { stripes: 64 }),
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 32 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &vec![
                (
                    FlexVolConfig {
                        size_blocks: 8 * 32768,
                        aa_cache: true,
                        aa_blocks: None,
                    },
                    40_000,
                );
                vols
            ],
            3,
        )
        .unwrap();
        for v in 0..vols {
            aging::fill_volume(&mut a, VolumeId(v as u32), 8192).unwrap();
            aging::random_overwrite_churn(&mut a, VolumeId(v as u32), 20_000, 8192, v as u64)
                .unwrap();
        }
        a
    }

    #[test]
    fn topaa_mount_reads_fixed_blocks() {
        let mut a = aged_agg(2);
        let image = save_topaa(&a);
        assert_eq!(image.block_count(), 1 + 2 * 2);
        crash(&mut a);
        assert!(a.groups()[0].cache().is_none());
        let stats = mount_with_topaa(&mut a, &image).unwrap();
        assert_eq!(stats.metafile_blocks_read, 5);
        assert!(stats.background_pages_remaining > 0);
        assert!(a.groups()[0].cache().is_some());
        assert!(!a.groups()[0].cache().unwrap().is_complete());
        // Volume caches are fully operational immediately.
        assert!(a.volumes()[0].cache().is_some());
    }

    #[test]
    fn cold_mount_scales_with_size() {
        let mut a = aged_agg(1);
        crash(&mut a);
        let cold = mount_cold(&mut a).unwrap();
        // Cold mount reads every bitmap page: aggregate (16 pages for
        // 4*32*4096 blocks) + volume (8 pages).
        assert_eq!(cold.metafile_blocks_read, 16 + 8);
        assert_eq!(cold.background_pages_remaining, 0);
        assert!(a.groups()[0].cache().unwrap().is_complete());
    }

    #[test]
    fn seeded_mount_can_run_cps_then_rebuild() {
        let mut a = aged_agg(1);
        let image = save_topaa(&a);
        crash(&mut a);
        mount_with_topaa(&mut a, &image).unwrap();
        // Client traffic works on the seeded caches.
        for l in 0..2000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(s.blocks_written, 2000);
        // Background rebuild completes the heap.
        let scanned = complete_background_rebuild(&mut a).unwrap();
        assert!(scanned > 0);
        assert!(a.groups()[0].cache().unwrap().is_complete());
        // Idempotent.
        assert_eq!(complete_background_rebuild(&mut a).unwrap(), 0);
    }

    #[test]
    fn cp_with_cacheless_volume_falls_back_instead_of_panicking() {
        // Regression: a volume running cache-guided without its HBPS
        // (traffic admitted against a degraded structure) used to panic in
        // `allocate_vvbns`. It must take the linear-sweep fallback.
        let mut a = aged_agg(1);
        a.vols[0].cache = None;
        a.vols[0].active_aa = None;
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(s.blocks_written, 500);
        assert!(
            a.obs()
                .counter_value("allocator.sweep_fallback_picks")
                .unwrap()
                >= 1,
            "sweep fallback must be visible in the metrics"
        );
    }

    #[test]
    fn mount_paths_record_metrics() {
        let mut a = aged_agg(1);
        let image = save_topaa(&a);
        crash(&mut a);
        mount_with_topaa(&mut a, &image).unwrap();
        assert_eq!(a.obs().counter_value("mount.topaa_seed_hits"), Some(2));
        crash(&mut a);
        mount_cold(&mut a).unwrap();
        assert_eq!(a.obs().counter_value("mount.cold_scan_pages"), Some(16 + 8));
    }

    #[test]
    fn seeded_and_cold_mounts_agree_on_best_aas() {
        let mut a = aged_agg(1);
        let image = save_topaa(&a);
        let best_before = a.groups()[0].cache().unwrap().best().unwrap();
        crash(&mut a);
        mount_with_topaa(&mut a, &image).unwrap();
        let best_seeded = a.groups()[0].cache().unwrap().best().unwrap();
        assert_eq!(best_before, best_seeded, "seed preserves the best AA");
        crash(&mut a);
        mount_cold(&mut a).unwrap();
        let best_cold = a.groups()[0].cache().unwrap().best().unwrap();
        assert_eq!(best_before.1, best_cold.1, "cold rebuild agrees on score");
    }
}
