//! Just-in-time segment cleaning of top-of-heap allocation areas
//! (§3.3.1).
//!
//! WAFL "improves AA scores through a process similar to segment cleaning,
//! in which the content of all in-use blocks in an entire allocation area
//! is relocated elsewhere on storage in order to generate completely empty
//! AAs. ... Cleaning AAs with the best scores implies the relocation of
//! the fewest in-use blocks, so just-in-time cleaning of AAs provided by
//! the AA cache yields the best return on investment."
//!
//! The paper defers full details to a future publication; this module
//! implements the described mechanism: take AAs from the top of the
//! max-heap, move their live blocks into other AAs (updating the owning
//! volume's virtual→physical map), and return them to the heap empty.

use crate::aggregate::{pack_owner, unpack_owner, Aggregate, GroupCache, OWNER_NONE, OWNER_ORPHAN};
use crate::allocator::{plan_raid_group, AllocatorMode};
use serde::{Deserialize, Serialize};
use wafl_types::{Vbn, WaflError, WaflResult};

/// Results of a cleaning pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CleaningStats {
    /// AAs emptied.
    pub aas_cleaned: u64,
    /// Live blocks relocated (the cleaning cost the §3.3.1 best-score
    /// policy minimizes).
    pub blocks_relocated: u64,
}

/// Clean up to `count` AAs from the top of `rg_index`'s max-heap. Each
/// cleaned AA has every live block relocated to other AAs of the same
/// group and re-enters the heap completely empty.
///
/// Returns an error if the group has no AA cache (cleaning is driven by
/// the heap) or not enough free space elsewhere to absorb the live blocks.
pub fn clean_top_aas(
    agg: &mut Aggregate,
    rg_index: usize,
    count: usize,
) -> WaflResult<CleaningStats> {
    let mut stats = CleaningStats::default();
    for _ in 0..count {
        let (aa, ranges, aa_blocks) = {
            let g = &mut agg.groups[rg_index];
            let cache = match g.cache.as_mut() {
                Some(GroupCache::Heap(h)) => h,
                _ => {
                    return Err(WaflError::InvalidConfig {
                        reason: "segment cleaning requires the RAID-aware \
                                 max-heap cache (object stores garbage-collect \
                                 internally)"
                            .into(),
                    })
                }
            };
            let Some((aa, _score)) = cache.take_best() else {
                break;
            };
            (
                aa,
                g.topology.aa_vbn_ranges(aa),
                g.topology.aa_blocks(aa) as u32,
            )
        };
        // Live blocks of the AA.
        let mut live: Vec<Vbn> = Vec::new();
        for (start, len) in &ranges {
            for v in start.get()..start.get() + len {
                if !agg.bitmap.is_free(Vbn(v))? {
                    live.push(Vbn(v));
                }
            }
        }
        // Destinations from the same group's remaining AAs (the cleaned AA
        // is off the heap, so the planner cannot pick it).
        let plan = {
            let g = &mut agg.groups[rg_index];
            plan_raid_group(
                g,
                &agg.bitmap,
                live.len(),
                AllocatorMode::CacheGuided,
                0xC1EA_u64 ^ aa.get() as u64,
                agg.cfg.pick_audit_sample,
            )?
        };
        if plan.vbns.len() < live.len() {
            // Not enough room elsewhere: put everything back and stop.
            let g = &mut agg.groups[rg_index];
            let score = g.topology.score_from_bitmap(&agg.bitmap, aa);
            if let Some(GroupCache::Heap(cache)) = g.cache.as_mut() {
                cache.insert(aa, score)?;
                for &drained in &plan.drained {
                    let s = g.topology.score_from_bitmap(&agg.bitmap, drained);
                    cache.insert(drained, s)?;
                }
                // Drop the planner's tentative batch: nothing was applied.
                let _ = g.batch.drain().count();
            }
            break;
        }
        // Relocate: free source, allocate destination, redirect the owner.
        for (&src, &dst) in live.iter().zip(&plan.vbns) {
            agg.bitmap.free(src)?;
            agg.bitmap.allocate(dst)?;
            let owner = agg.pvbn_owner[src.index()];
            agg.pvbn_owner[src.index()] = OWNER_NONE;
            agg.pvbn_owner[dst.index()] = owner;
            match owner {
                OWNER_NONE => {
                    return Err(WaflError::BitmapStateMismatch {
                        vbn: src,
                        expected_free: false,
                    });
                }
                OWNER_ORPHAN => {}
                packed => {
                    let (vol, vvbn) = unpack_owner(packed);
                    let v = &mut agg.vols[vol.index()];
                    debug_assert_eq!(v.lookup_vvbn(vvbn), Some(src));
                    v.redirect_vvbn(vvbn, dst);
                    debug_assert_eq!(agg.pvbn_owner[dst.index()], pack_owner(vol, vvbn));
                }
            }
        }
        stats.blocks_relocated += live.len() as u64;
        stats.aas_cleaned += 1;
        // Settle scores: the cleaned AA is empty; destination AAs changed.
        let g = &mut agg.groups[rg_index];
        if let Some(GroupCache::Heap(cache)) = g.cache.as_mut() {
            cache.apply_batch(&mut g.batch);
            cache.insert(aa, wafl_types::AaScore(aa_blocks))?;
            for &drained in &plan.drained {
                let s = g.topology.score_from_bitmap(&agg.bitmap, drained);
                cache.insert(drained, s)?;
            }
        }
        agg.bitmap.take_dirty_stats(); // cleaning I/O tracked via stats
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::{AaScore, VolumeId};

    fn aged() -> Aggregate {
        let mut a = Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            2,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 8192).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 60_000, 8192, 4).unwrap();
        a
    }

    #[test]
    fn cleaning_produces_empty_aas() {
        // Deterministic setup: every AA seeded to ~50 % random occupancy,
        // so the heap's best AA is never empty and cleaning must relocate.
        let mut a = Aggregate::new(
            AggregateConfig {
                aa_policy_override: Some(wafl_types::AaSizingPolicy::Stripes { stripes: 256 }),
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[],
            2,
        )
        .unwrap();
        aging::seed_rg_random_occupancy(&mut a, 0, 0.5, 77).unwrap();
        let occupied_before = a.bitmap().space_len() - a.bitmap().free_blocks();
        let aa_blocks = (a.groups()[0].stripes_per_aa * 4) as u32;
        let best_before = a.groups()[0].cache().unwrap().best().unwrap().1;
        assert!(
            best_before.get() < aa_blocks,
            "50 % seed leaves no empty AA"
        );
        let stats = clean_top_aas(&mut a, 0, 2).unwrap();
        assert_eq!(stats.aas_cleaned, 2);
        assert!(stats.blocks_relocated > 0);
        // Now the heap's best is a completely empty AA.
        let best_after = a.groups()[0].cache().unwrap().best().unwrap().1;
        assert_eq!(best_after, AaScore(aa_blocks));
        // Occupancy conserved: relocation moves blocks, frees nothing.
        assert_eq!(
            a.bitmap().space_len() - a.bitmap().free_blocks(),
            occupied_before
        );
    }

    #[test]
    fn relocated_blocks_stay_readable() {
        let mut a = aged();
        // Remember some logical mappings.
        let probes: Vec<u64> = (0..60_000).step_by(997).collect();
        clean_top_aas(&mut a, 0, 3).unwrap();
        // Every probe still resolves through vvbn -> pvbn to an allocated
        // physical block.
        for &l in &probes {
            let v = &a.volumes()[0];
            let vvbn = v.lookup_logical(l).expect("mapping survives cleaning");
            let pvbn = v.lookup_vvbn(vvbn).expect("pvbn survives cleaning");
            assert!(!a.bitmap().is_free(pvbn).unwrap());
        }
        // And overwrites after cleaning still work.
        for l in 0..1000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
    }

    #[test]
    fn cleaning_without_cache_is_rejected() {
        let mut a = Aggregate::new(
            AggregateConfig {
                raid_aware_cache: false,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[],
            1,
        )
        .unwrap();
        assert!(clean_top_aas(&mut a, 0, 1).is_err());
    }
}
