//! The consistency point: flush everything collected since the last CP as
//! one transaction (§2.1), allocating virtual + physical VBNs from the
//! emptiest AAs and batching all score updates at the boundary (§3.3).

use crate::aggregate::{pack_owner, Aggregate, DeviceMedia, DirtyBlock, GroupCache, OWNER_NONE};
use crate::allocator::{allocate_vvbns, plan_raid_group, AllocOutcome, AllocatorMode};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wafl_faults::{CrashSite, FaultSession};
use wafl_obs::trace::TraceData;
use wafl_raid::analyze_cp_write_runs;
use wafl_types::{ChecksumStyle, Vbn, WaflError, WaflResult, AZCS_DATA_BLOCKS, AZCS_REGION_BLOCKS};

/// How a faulted consistency point ended.
// `Completed` carries the full per-CP stats inline: CPs run at hertz, not
// megahertz, so the variant-size asymmetry costs nothing measurable and a
// `Box` would only push the stats behind a pointer for every reader.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CpOutcome {
    /// The CP ran to completion.
    Completed(CpStats),
    /// A crash cut the CP short at the given site. Persistent state holds
    /// whatever tear the site implies; all volatile state (queued writes,
    /// unapplied delayed frees, CP score batches) is gone. The caller
    /// remounts via [`crate::mount::mount_auto`] and runs
    /// [`crate::iron::check`] / [`crate::iron::repair`].
    Crashed(CrashSite),
}

/// Per-RAID-group results of one CP.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RgCpStats {
    /// Data blocks written to this group.
    pub blocks: u64,
    /// Tetrises (64-stripe RAID I/O units) issued.
    pub tetrises: u64,
    /// Full-stripe writes.
    pub full_stripes: u64,
    /// Partial-stripe writes.
    pub partial_stripes: u64,
    /// Blocks read for parity computation.
    pub parity_reads: u64,
    /// Parity blocks written.
    pub parity_writes: u64,
    /// Data blocks per data device.
    pub per_device_blocks: Vec<u64>,
    /// Write chains per data device.
    pub per_device_chains: Vec<u64>,
    /// Media time for this group (max across its devices — they operate
    /// in parallel), µs.
    pub media_us: f64,
}

/// Measured wall-clock time of one CP's pipeline phases, µs.
///
/// Every completed CP records these from a monotonic clock around each
/// pipeline section — the only real-time measurement below the harness
/// layer (the simulated cost model behind [`CpStats::cpu_us`] never
/// reads a clock). About ten `Instant` reads per multi-millisecond CP,
/// so the overlay itself is measurement noise. `simulate --check`
/// compares these against the cost model's per-phase terms and reports
/// the ratio drift (see [`WallClockOverlay`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpWallClock {
    /// Virtual (per-volume) allocation planning.
    pub plan_virtual_us: f64,
    /// Physical (per-group) allocation planning, including quota
    /// computation and any shortfall re-planning rounds.
    pub plan_physical_us: f64,
    /// Applying planned allocation runs to the bitmaps, plus the
    /// metafile dirty-page accounting.
    pub apply_us: f64,
    /// Logical→virtual→physical binding and queued deletions.
    pub bind_us: f64,
    /// Delayed-free flush: virtual frees, then physical frees.
    pub frees_us: f64,
    /// Per-group media costing.
    pub costing_us: f64,
    /// CP-boundary cache rebalance (batch application + replenish).
    pub rebalance_us: f64,
    /// The whole CP pipeline, entry to completion.
    pub total_us: f64,
}

impl CpWallClock {
    /// Merge another CP's wall clock into an accumulator.
    pub fn accumulate(&mut self, other: &CpWallClock) {
        self.plan_virtual_us += other.plan_virtual_us;
        self.plan_physical_us += other.plan_physical_us;
        self.apply_us += other.apply_us;
        self.bind_us += other.bind_us;
        self.frees_us += other.frees_us;
        self.costing_us += other.costing_us;
        self.rebalance_us += other.rebalance_us;
        self.total_us += other.total_us;
    }

    /// Sum of the individually timed phases (excludes pipeline glue that
    /// only `total_us` covers).
    pub fn phase_sum_us(&self) -> f64 {
        self.plan_virtual_us
            + self.plan_physical_us
            + self.apply_us
            + self.bind_us
            + self.frees_us
            + self.costing_us
            + self.rebalance_us
    }
}

/// Advance a lap timer: elapsed µs since the last mark, then re-mark.
fn lap_us(mark: &mut std::time::Instant) -> f64 {
    let us = mark.elapsed().as_secs_f64() * 1e6;
    *mark = std::time::Instant::now();
    us
}

/// One phase's wall-vs-model comparison inside a [`WallClockOverlay`].
#[derive(Clone, Debug, Serialize)]
pub struct PhaseDrift {
    /// Phase label (see [`WallClockOverlay::from_window`] for the
    /// wall↔model phase mapping).
    pub phase: String,
    /// This phase's fraction of the measured wall-clock phase time.
    pub wall_fraction: f64,
    /// This phase's fraction of the modelled CPU time.
    pub model_fraction: f64,
    /// `wall_fraction - model_fraction`.
    pub drift: f64,
    /// Measured wall time in this phase over the window, µs.
    pub wall_us: f64,
    /// Modelled cost mapped to this phase over the window, µs.
    pub model_us: f64,
    /// `wall_us - model_us` — the absolute drift. This is the signal to
    /// read for phases the model prices at zero (`costing` always; any
    /// phase over a window of empty CPs), where a wall/model quotient
    /// would be infinite or NaN.
    pub drift_us: f64,
    /// `wall_us / model_us`, or `None` when the modelled cost is zero —
    /// never NaN/inf, so the JSON health report stays finite.
    pub ratio: Option<f64>,
}

/// Wall-clock overlay over a measurement window: how the CP pipeline's
/// *measured* phase ratios compare with the simulated cost model's — the
/// ROADMAP item "validate the model's phase ratios against real
/// execution time". Built from an accumulated [`CpStats`] window; the
/// model terms are re-derived from the window's counters and the
/// [`CpuModel`](crate::CpuModel) exactly as the CP engine computed them.
#[derive(Clone, Debug, Serialize)]
pub struct WallClockOverlay {
    /// Mean measured pipeline time per CP, µs.
    pub wall_us_per_cp: f64,
    /// Mean modelled CPU time per CP, µs.
    pub model_us_per_cp: f64,
    /// `wall_us_per_cp / model_us_per_cp` — how much real time a unit of
    /// modelled time took on this host (hardware-dependent; the *ratios*
    /// below are the portable signal).
    pub total_ratio: f64,
    /// Per-phase fractions and their drift.
    pub phases: Vec<PhaseDrift>,
    /// Largest absolute per-phase drift.
    pub max_abs_drift: f64,
}

impl WallClockOverlay {
    /// Build the overlay from an accumulated window of `cps` consistency
    /// points. Phase mapping (wall ↔ model):
    ///
    /// | label | wall phases | model terms |
    /// |---|---|---|
    /// | `allocation` | plan_virtual + plan_physical | alloc-candidate scan |
    /// | `metafile_apply` | apply + frees | metafile page updates |
    /// | `binding` | bind | per-op base + per-block |
    /// | `cache_maintenance` | rebalance | cache ops + replenish scans |
    /// | `costing` | costing | — (the model itself; no model term) |
    ///
    /// Returns `None` for an empty window (no completed CPs).
    pub fn from_window(
        stats: &CpStats,
        cps: u64,
        cpu: &crate::config::CpuModel,
    ) -> Option<WallClockOverlay> {
        if cps == 0 {
            return None;
        }
        let w = &stats.wall;
        let wall_sum = w.phase_sum_us();
        let model_client = stats.ops as f64 * cpu.base_us_per_op;
        let model_metafile = stats.metafile_pages as f64 * cpu.us_per_metafile_page;
        let model_blocks = stats.blocks_written as f64 * cpu.us_per_block;
        let model_alloc = stats.blocks_examined as f64 * cpu.us_per_alloc_candidate;
        let model_cache = stats.cache_maintenance_us;
        let model_replenish = stats.replenish_pages as f64 * cpu.us_per_scan_page;
        let model_sum = stats.cpu_us;
        if wall_sum <= 0.0 {
            return None;
        }
        let pairs = [
            (
                "allocation",
                w.plan_virtual_us + w.plan_physical_us,
                model_alloc,
            ),
            ("metafile_apply", w.apply_us + w.frees_us, model_metafile),
            ("binding", w.bind_us, model_client + model_blocks),
            (
                "cache_maintenance",
                w.rebalance_us,
                model_cache + model_replenish,
            ),
            ("costing", w.costing_us, 0.0),
        ];
        let phases: Vec<PhaseDrift> = pairs
            .iter()
            .map(|&(name, wall, model)| {
                let wall_fraction = wall / wall_sum;
                // A window of empty CPs models zero cost everywhere;
                // 0/0 fractions must not poison the report with NaN.
                let model_fraction = if model_sum > 0.0 {
                    model / model_sum
                } else {
                    0.0
                };
                PhaseDrift {
                    phase: name.to_string(),
                    wall_fraction,
                    model_fraction,
                    drift: wall_fraction - model_fraction,
                    wall_us: wall,
                    model_us: model,
                    drift_us: wall - model,
                    ratio: (model > 0.0).then(|| wall / model),
                }
            })
            .collect();
        let max_abs_drift = phases.iter().map(|p| p.drift.abs()).fold(0.0, f64::max);
        Some(WallClockOverlay {
            wall_us_per_cp: w.total_us / cps as f64,
            model_us_per_cp: model_sum / cps as f64,
            total_ratio: if model_sum > 0.0 {
                w.total_us / model_sum
            } else {
                0.0
            },
            phases,
            max_abs_drift,
        })
    }
}

/// Results of one consistency point.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpStats {
    /// CP sequence number.
    pub cp_index: u64,
    /// Client write operations flushed.
    pub ops: u64,
    /// Data blocks written (= ops for 4 KiB ops).
    pub blocks_written: u64,
    /// Distinct bitmap-metafile pages dirtied (aggregate + volumes) —
    /// the §2.5 currency.
    pub metafile_pages: u64,
    /// Per-group breakdown.
    pub per_rg: Vec<RgCpStats>,
    /// Media time of the CP: max across groups (all devices work in
    /// parallel), µs.
    pub media_us: f64,
    /// Sum of device time across all devices, µs (for utilisation math).
    pub media_us_total: f64,
    /// Modelled CPU time consumed by this CP, µs.
    pub cpu_us: f64,
    /// CPU time spent purely on AA-cache maintenance, µs (the §4.1.2
    /// "0.002 % of CPU" measurement).
    pub cache_maintenance_us: f64,
    /// Candidate block positions examined by the allocator (the §4.1.2
    /// CPU effect: fuller AAs force ~1/f candidates per allocation).
    pub blocks_examined: u64,
    /// AAs picked for physical allocation: count and summed free fraction.
    pub agg_picks: u64,
    /// Sum over picked physical AAs of (score / AA blocks).
    pub agg_pick_free_sum: f64,
    /// AAs picked for virtual allocation: count and summed free fraction.
    pub vol_picks: u64,
    /// Sum over picked virtual AAs of (score / AA blocks).
    pub vol_pick_free_sum: f64,
    /// Bitmap pages scanned by replenish walks during this CP.
    pub replenish_pages: u64,
    /// Delayed frees applied by the background processor this CP (only
    /// with `batched_frees`).
    pub delayed_frees_applied: u64,
    /// Metafile pages the delayed-free processor wrote this CP.
    pub delayed_free_pages: u64,
    /// Volume drains that resumed from a per-AA cursor instead of
    /// re-walking the AA's allocated prefix.
    pub cursor_hits: u64,
    /// Volume drains that started from the AA's first VBN.
    pub cursor_misses: u64,
    /// Measured wall-clock phase times of the CP pipeline (the overlay;
    /// all other durations in this struct are simulated).
    pub wall: CpWallClock,
}

impl CpStats {
    /// Mean free fraction of the physical AAs picked this CP.
    pub fn agg_pick_free_mean(&self) -> f64 {
        if self.agg_picks == 0 {
            0.0
        } else {
            self.agg_pick_free_sum / self.agg_picks as f64
        }
    }

    /// Mean free fraction of the virtual AAs picked this CP.
    pub fn vol_pick_free_mean(&self) -> f64 {
        if self.vol_picks == 0 {
            0.0
        } else {
            self.vol_pick_free_sum / self.vol_picks as f64
        }
    }

    /// Fraction of written stripes that were full.
    pub fn full_stripe_fraction(&self) -> f64 {
        let (f, p): (u64, u64) = self.per_rg.iter().fold((0, 0), |(f, p), rg| {
            (f + rg.full_stripes, p + rg.partial_stripes)
        });
        if f + p == 0 {
            0.0
        } else {
            f as f64 / (f + p) as f64
        }
    }

    /// Merge a CP into an accumulator (used by measurement windows).
    pub fn accumulate(&mut self, other: &CpStats) {
        self.ops += other.ops;
        self.blocks_written += other.blocks_written;
        self.blocks_examined += other.blocks_examined;
        self.metafile_pages += other.metafile_pages;
        self.media_us += other.media_us;
        self.media_us_total += other.media_us_total;
        self.cpu_us += other.cpu_us;
        self.cache_maintenance_us += other.cache_maintenance_us;
        self.agg_picks += other.agg_picks;
        self.agg_pick_free_sum += other.agg_pick_free_sum;
        self.vol_picks += other.vol_picks;
        self.vol_pick_free_sum += other.vol_pick_free_sum;
        self.replenish_pages += other.replenish_pages;
        self.delayed_frees_applied += other.delayed_frees_applied;
        self.delayed_free_pages += other.delayed_free_pages;
        self.cursor_hits += other.cursor_hits;
        self.cursor_misses += other.cursor_misses;
        self.wall.accumulate(&other.wall);
        if self.per_rg.len() < other.per_rg.len() {
            self.per_rg.resize(other.per_rg.len(), RgCpStats::default());
        }
        for (acc, rg) in self.per_rg.iter_mut().zip(&other.per_rg) {
            acc.blocks += rg.blocks;
            acc.tetrises += rg.tetrises;
            acc.full_stripes += rg.full_stripes;
            acc.partial_stripes += rg.partial_stripes;
            acc.parity_reads += rg.parity_reads;
            acc.parity_writes += rg.parity_writes;
            acc.media_us += rg.media_us;
            if acc.per_device_blocks.len() < rg.per_device_blocks.len() {
                acc.per_device_blocks.resize(rg.per_device_blocks.len(), 0);
                acc.per_device_chains.resize(rg.per_device_chains.len(), 0);
            }
            for (a, b) in acc.per_device_blocks.iter_mut().zip(&rg.per_device_blocks) {
                *a += b;
            }
            for (a, b) in acc.per_device_chains.iter_mut().zip(&rg.per_device_chains) {
                *a += b;
            }
        }
    }
}

impl Aggregate {
    /// Run one consistency point over every operation collected since the
    /// last. Returns the CP's cost and layout statistics.
    pub fn run_cp(&mut self) -> WaflResult<CpStats> {
        match self.run_cp_inner(None, None)? {
            CpOutcome::Completed(stats) => Ok(stats),
            CpOutcome::Crashed(_) => unreachable!("no crash site was scheduled"),
        }
    }

    /// Run a consistency point that a fault plan may cut short. With
    /// `crash: None` this is exactly [`Aggregate::run_cp`]. With a
    /// [`CrashSite`], the CP performs its persistent mutations up to that
    /// site, discards all volatile state (as a power loss would), and
    /// returns [`CpOutcome::Crashed`] — the torn state is then the
    /// recovery stack's problem, not an `Err`.
    pub fn run_cp_with_faults(&mut self, crash: Option<CrashSite>) -> WaflResult<CpOutcome> {
        self.run_cp_inner(crash, None)
    }

    /// [`Aggregate::run_cp_with_faults`] plus a live [`FaultSession`]: due
    /// runtime scribbles fire at the CP's start (in-memory corruption of
    /// summary counters / cached scores while the aggregate serves
    /// traffic), and the runtime scrubber's verify reads go through the
    /// session's scrub read-error schedule.
    pub fn run_cp_with_session(
        &mut self,
        crash: Option<CrashSite>,
        faults: Option<&mut FaultSession<'_>>,
    ) -> WaflResult<CpOutcome> {
        self.run_cp_inner(crash, faults)
    }

    fn run_cp_inner(
        &mut self,
        crash: Option<CrashSite>,
        mut faults: Option<&mut FaultSession<'_>>,
    ) -> WaflResult<CpOutcome> {
        // ---- 0. runtime fault injection + scrub step --------------------
        // Scribbles land first (memory corruption strikes at arbitrary
        // points; the CP boundary is where the simulation quantizes it),
        // then the scrubber gets its budgeted verification pass — before
        // any allocation of this CP trusts the summary counters.
        if let Some(session) = faults.as_deref_mut() {
            crate::scrub::apply_due_runtime_scribbles(self, session);
        }
        if self.scrub.enabled() {
            crate::scrub::run_step(self, faults)?;
        }
        let dirty = std::mem::take(&mut self.dirty);
        // Invalidate every volume's dirty stamps in O(1): stamps from
        // earlier epochs read as clean.
        self.bump_epoch();
        let n = dirty.len();
        let mut stats = CpStats {
            cp_index: self.cp_count,
            ops: n as u64,
            blocks_written: n as u64,
            ..CpStats::default()
        };
        if n == 0
            && self.pending_deletes.is_empty()
            && self.free_log.pending() == 0
            && self.delayed_pvbn_frees.is_empty()
            && self.vols.iter().all(|v| v.delayed_vvbn_frees.is_empty())
        {
            if let Some(site) = crash {
                // Nothing to tear: the process still dies at the site.
                self.lose_volatile_state();
                return Ok(CpOutcome::Crashed(site));
            }
            self.cp_count += 1;
            return Ok(CpOutcome::Completed(stats));
        }

        // ---- 1. group dirtied blocks by volume ------------------------
        let mut per_vol: Vec<Vec<u64>> = vec![Vec::new(); self.vols.len()];
        for DirtyBlock { vol, logical } in &dirty {
            per_vol[vol.index()].push(*logical);
        }

        // ---- 2. virtual allocation, parallel across volumes -----------
        // Flight recorder epoch: the engine-track phase spans are
        // synthesized at step 10 from the wall-clock laps, anchored here.
        // The tracer rides into the rayon closures as a clone (the ring
        // is shared behind an Arc), leaving `self` free for par_iter_mut.
        let trace_t0 = self.obs.trace_now_us();
        let tracer = self.obs.tracer.clone();
        let trace_cp = stats.cp_index;
        let cp_t0 = std::time::Instant::now();
        let mut mark = cp_t0;
        let mut wall = CpWallClock::default();
        let cp_seed = self.cp_count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let vol_outcomes: Vec<WaflResult<AllocOutcome>> = self
            .vols
            .par_iter_mut()
            .zip(per_vol.par_iter())
            .enumerate()
            .map(|(i, (vol, logicals))| {
                if logicals.is_empty() {
                    return Ok(AllocOutcome::default());
                }
                let mode = if vol.config().aa_cache {
                    AllocatorMode::CacheGuided
                } else {
                    AllocatorMode::RandomAa
                };
                allocate_vvbns(vol, logicals.len(), cp_seed ^ i as u64, mode)
            })
            .collect();
        let vol_outcomes = vol_outcomes.into_iter().collect::<WaflResult<Vec<_>>>()?;
        // Observability accumulators (exported after the CP commits).
        let mut pick_errors: Vec<(u32, u32)> = Vec::new();
        let mut sweep_picks = 0u64;
        let mut batch_sizes: Vec<u64> = Vec::new();
        let mut heap_batch_sizes: Vec<u64> = Vec::new();
        // Per-volume cursor traffic, kept aside for the vol=<id> labelled
        // export in step 10 (the outcomes themselves are consumed by the
        // binding step below).
        let per_vol_cursor: Vec<(u64, u64)> = vol_outcomes
            .iter()
            .map(|out| (out.cursor_hits, out.cursor_misses))
            .collect();
        for out in &vol_outcomes {
            stats.vol_picks += out.picked.len() as u64;
            stats.replenish_pages += out.replenish_pages;
            stats.blocks_examined += out.blocks_examined;
            stats.cursor_hits += out.cursor_hits;
            stats.cursor_misses += out.cursor_misses;
            pick_errors.extend_from_slice(&out.pick_errors);
            sweep_picks += out.sweep_picks;
        }
        for (vol, out) in self.vols.iter().zip(&vol_outcomes) {
            for &(aa, score) in &out.picked {
                let max = vol.topology.aa_blocks(aa) as f64;
                stats.vol_pick_free_sum += score.get() as f64 / max.max(1.0);
            }
        }

        wall.plan_virtual_us += lap_us(&mut mark);

        // ---- 3. physical allocation: quotas, then parallel plans ------
        let mode = if self.cfg.raid_aware_cache {
            AllocatorMode::CacheGuided
        } else {
            AllocatorMode::RandomAa
        };
        let quotas = self.rg_quotas(n);
        let bitmap = &self.bitmap;
        let audit_sample = self.cfg.pick_audit_sample;
        let shards = self.cfg.write_shards;
        let plans: Vec<WaflResult<(AllocOutcome, crate::sharded::ShardStats)>> = self
            .groups
            .par_iter_mut()
            .zip(quotas.par_iter())
            .enumerate()
            .map(|(i, (g, &quota))| {
                crate::sharded::plan_raid_group_sharded(
                    g,
                    bitmap,
                    quota,
                    mode,
                    cp_seed ^ (0xABCD + i as u64),
                    audit_sample,
                    shards,
                    tracer.as_ref(),
                    trace_cp,
                )
            })
            .collect();
        let mut shard_stats = crate::sharded::ShardStats::default();
        let plans: Vec<AllocOutcome> = plans
            .into_iter()
            .map(|r| {
                r.map(|(out, s)| {
                    shard_stats.accumulate(&s);
                    out
                })
            })
            .collect::<WaflResult<_>>()?;
        wall.plan_physical_us += lap_us(&mut mark);
        // Apply the plans to the shared bitmap (serial, cheap bit sets).
        if let Some(site @ CrashSite::AfterBlockWrites(limit)) = crash {
            // Power loss after `limit` physical block writes hit stable
            // storage: their bitmap bits are set, but no logical binding
            // or ownership was ever recorded — allocated-but-unowned
            // leaks in both VBN spaces (the vvbn bits were set in step 2).
            let mut applied = 0u64;
            'apply: for plan in &plans {
                for &vbn in &plan.vbns {
                    if applied >= limit {
                        break 'apply;
                    }
                    self.bitmap.allocate(vbn)?;
                    applied += 1;
                }
            }
            self.lose_volatile_state();
            return Ok(CpOutcome::Crashed(site));
        }
        let mut pvbns: Vec<Vbn> = Vec::with_capacity(n);
        // Media costing (step 7) works per run; carry each group's runs
        // forward.
        let mut per_rg_runs: Vec<Vec<(Vbn, u64)>> = Vec::with_capacity(self.groups.len());
        // Every group's runs are disjoint (groups own disjoint VBN
        // ranges; within a group, shards drained disjoint AAs), so the
        // whole CP applies as one sorted, page-partitioned bulk mutation.
        let mut all_runs: Vec<(Vbn, u64)> =
            plans.iter().flat_map(|p| p.runs.iter().copied()).collect();
        all_runs.sort_unstable_by_key(|&(start, _)| start.get());
        self.bitmap
            .mutate_runs_partitioned(&all_runs, true, shards)?;
        for plan in &plans {
            pvbns.extend_from_slice(&plan.vbns);
            per_rg_runs.push(plan.runs.clone());
        }
        for (g, plan) in self.groups.iter().zip(&plans) {
            stats.agg_picks += plan.picked.len() as u64;
            stats.blocks_examined += plan.blocks_examined;
            stats.replenish_pages += plan.replenish_pages;
            pick_errors.extend_from_slice(&plan.pick_errors);
            sweep_picks += plan.sweep_picks;
            for &(aa, score) in &plan.picked {
                let max = g.topology.aa_blocks(aa) as f64;
                stats.agg_pick_free_sum += score.get() as f64 / max.max(1.0);
            }
        }
        wall.apply_us += lap_us(&mut mark);
        // Shortfall: serial second round against the updated bitmap.
        let mut drained_late: Vec<(usize, wafl_types::AaId)> = Vec::new();
        let mut shortfall = n.saturating_sub(pvbns.len());
        while shortfall > 0 {
            let mut progressed = false;
            for (i, g) in self.groups.iter_mut().enumerate() {
                if shortfall == 0 {
                    break;
                }
                let plan = plan_raid_group(
                    g,
                    &self.bitmap,
                    shortfall,
                    mode,
                    cp_seed ^ (0xF00D + i as u64),
                    audit_sample,
                )?;
                if plan.vbns.is_empty() {
                    continue;
                }
                progressed = true;
                for &(start, len) in &plan.runs {
                    self.bitmap.allocate_run(start, len)?;
                }
                shortfall -= plan.vbns.len();
                stats.agg_picks += plan.picked.len() as u64;
                stats.blocks_examined += plan.blocks_examined;
                stats.replenish_pages += plan.replenish_pages;
                pick_errors.extend_from_slice(&plan.pick_errors);
                sweep_picks += plan.sweep_picks;
                for &(aa, score) in &plan.picked {
                    let max = g.topology.aa_blocks(aa) as f64;
                    stats.agg_pick_free_sum += score.get() as f64 / max.max(1.0);
                }
                pvbns.extend_from_slice(&plan.vbns);
                per_rg_runs[i].extend_from_slice(&plan.runs);
                for &aa in &plan.drained {
                    drained_late.push((i, aa));
                }
            }
            if !progressed {
                if self.free_log.pending() > 0 {
                    // Space pressure: pull the logged frees forward (the
                    // [18]-style reclamation path racing the allocator).
                    let Aggregate {
                        bitmap,
                        groups,
                        pvbn_owner,
                        free_log,
                        ..
                    } = &mut *self;
                    let dstats = free_log.force_drain(bitmap, |pvbn, _| {
                        pvbn_owner[pvbn.index()] = OWNER_NONE;
                        let g = groups
                            .iter_mut()
                            .find(|g| g.geometry.contains(pvbn))
                            .expect("freed pvbn belongs to a group");
                        let aa = g.topology.aa_of_vbn(pvbn)?;
                        g.batch.record_freed(aa, 1);
                        Ok(())
                    })?;
                    stats.delayed_frees_applied += dstats.frees_applied;
                    stats.delayed_free_pages += dstats.pages_processed;
                    // The heaps still carry pre-free scores mid-CP; that
                    // only costs pick quality. Retry the plans.
                    continue;
                }
                return Err(WaflError::SpaceExhausted);
            }
        }

        wall.plan_physical_us += lap_us(&mut mark);

        // ---- 4. bind logical -> virtual -> physical; collect frees ----
        // Each volume's pvbns occupy one contiguous chunk (allocation
        // filled `pvbns` in `per_vol` order), so the volume-local part
        // of the bind — the logical and vvbn map updates — fans out
        // over volumes with no shared state. The aggregate-side owner
        // table and delayed-free list update serially after, in volume
        // order (the same visit order a fully serial bind would use).
        {
            let mut chunks: Vec<&[Vbn]> = Vec::with_capacity(per_vol.len());
            let mut off = 0usize;
            for logicals in &per_vol {
                chunks.push(&pvbns[off..off + logicals.len()]);
                off += logicals.len();
            }
            let items: Vec<(&Vec<u64>, &AllocOutcome, &[Vbn])> = per_vol
                .iter()
                .zip(vol_outcomes.iter())
                .zip(chunks.iter())
                .map(|((l, o), c)| (l, o, *c))
                .collect();
            let freed_per_vol: Vec<Vec<Vbn>> = self
                .vols
                .par_iter_mut()
                .zip(items.into_par_iter())
                .map(|(vol, (logicals, outcome, chunk))| {
                    debug_assert_eq!(outcome.vbns.len(), logicals.len());
                    vol.remap_batch(logicals, &outcome.vbns, chunk)
                })
                .collect();
            for ((vol, chunk), outcome) in self.vols.iter().zip(&chunks).zip(&vol_outcomes) {
                for (&pvbn, &vvbn) in chunk.iter().zip(&outcome.vbns) {
                    self.pvbn_owner[pvbn.index()] = pack_owner(vol.id, vvbn);
                }
            }
            for freed in freed_per_vol {
                self.delayed_pvbn_frees.extend(freed);
            }
        }

        // ---- 4b. deletions queued since the last CP --------------------
        for DirtyBlock { vol, logical } in std::mem::take(&mut self.pending_deletes) {
            let v = &mut self.vols[vol.index()];
            if let Some((old_v, old_p)) = v.unmap(logical) {
                v.delayed_vvbn_frees.push(old_v);
                self.delayed_pvbn_frees.push(old_p);
            }
        }

        if let Some(site @ CrashSite::AfterBind) = crash {
            // Power loss after the new mappings and owners committed but
            // before any delayed free applied: the overwritten blocks'
            // old versions stay allocated in both VBN spaces, the old
            // pvbns with stale owner entries (their vvbns are gone from
            // the volume maps).
            self.lose_volatile_state();
            return Ok(CpOutcome::Crashed(site));
        }

        wall.bind_us += lap_us(&mut mark);

        // ---- 5. delayed frees at the CP boundary (§3.3) ---------------
        let flush_results: Vec<WaflResult<u64>> = self
            .vols
            .par_iter_mut()
            .map(|vol| vol.flush_delayed_frees())
            .collect();
        for r in flush_results {
            r?;
        }
        if let Some(site @ CrashSite::MidFreeLogApply(k)) = crash {
            // The crash interrupts delayed-free application: `k` frees
            // reach the bitmap, the last of them with its owner update
            // torn off. The rest stay pending — in the persistent log
            // when batched (replayed idempotently after remount), lost
            // outright (leaked) when not.
            if self.cfg.batched_frees {
                for pvbn in std::mem::take(&mut self.delayed_pvbn_frees) {
                    self.free_log.log_free(pvbn)?;
                }
                let pending = self.free_log.pending_vbns();
                let k = (k as usize).min(pending.len());
                for (idx, &pvbn) in pending[..k].iter().enumerate() {
                    self.bitmap.free(pvbn)?;
                    if idx + 1 < k {
                        self.pvbn_owner[pvbn.index()] = OWNER_NONE;
                    }
                }
            } else {
                let frees = std::mem::take(&mut self.delayed_pvbn_frees);
                let k = (k as usize).min(frees.len());
                for (idx, &pvbn) in frees[..k].iter().enumerate() {
                    self.bitmap.free(pvbn)?;
                    if idx + 1 < k {
                        self.pvbn_owner[pvbn.index()] = OWNER_NONE;
                    }
                }
            }
            self.lose_volatile_state();
            return Ok(CpOutcome::Crashed(site));
        }
        let trim = self.cfg.trim_on_free;
        if self.cfg.batched_frees {
            // §3.3.2's second HBPS use: log the frees; the background
            // processor applies them below, fullest page first.
            for pvbn in std::mem::take(&mut self.delayed_pvbn_frees) {
                self.free_log.log_free(pvbn)?;
            }
            let budget = self.cfg.free_pages_per_cp;
            let Aggregate {
                bitmap,
                groups,
                pvbn_owner,
                free_log,
                ..
            } = self;
            let dstats = free_log.process(bitmap, budget, |pvbn, _| {
                pvbn_owner[pvbn.index()] = OWNER_NONE;
                let g = groups
                    .iter_mut()
                    .find(|g| g.geometry.contains(pvbn))
                    .expect("freed pvbn belongs to a group");
                let aa = g.topology.aa_of_vbn(pvbn)?;
                g.batch.record_freed(aa, 1);
                if trim {
                    let loc = g.geometry.vbn_to_loc(pvbn)?;
                    if let DeviceMedia::Ssd(ftl) = &mut g.media[loc.device.index()] {
                        ftl.trim(loc.dbn.get() as u32)?;
                    }
                }
                Ok(())
            })?;
            stats.delayed_frees_applied = dstats.frees_applied;
            stats.delayed_free_pages = dstats.pages_processed;
        } else {
            // Sort, walk the batch once for owner, trim, and per-AA
            // score accounting (the groups go by monotonically — they
            // are ordered by base VBN), then clear every bit with the
            // word-masked batch free instead of one bit flip per block.
            // The score deltas commute, so the reordering is
            // state-neutral.
            let mut frees = std::mem::take(&mut self.delayed_pvbn_frees);
            if !frees.is_empty() {
                frees.sort_unstable();
                let mut gi = 0usize;
                // Sorted input means whole AA spans go by between
                // topology lookups: one aa_span_of_vbn call per span
                // crossed, not one aa_of_vbn per block — and one
                // record_freed per span rather than per block, so the
                // score batch sees a handful of AA entries instead of
                // thousands of single-block updates.
                let mut span_aa = wafl_types::AaId(0);
                let mut span_end = Vbn(0);
                let mut span_gi = 0usize;
                let mut span_freed: u32 = 0;
                for &pvbn in &frees {
                    self.pvbn_owner[pvbn.index()] = OWNER_NONE;
                    while !self.groups[gi].geometry.contains(pvbn) {
                        gi += 1;
                    }
                    if pvbn >= span_end {
                        if span_freed > 0 {
                            self.groups[span_gi].batch.record_freed(span_aa, span_freed);
                        }
                        (span_aa, span_end) = self.groups[gi].topology.aa_span_of_vbn(pvbn)?;
                        span_gi = gi;
                        span_freed = 0;
                    }
                    span_freed += 1;
                    if trim {
                        let g = &mut self.groups[gi];
                        let loc = g.geometry.vbn_to_loc(pvbn)?;
                        if let DeviceMedia::Ssd(ftl) = &mut g.media[loc.device.index()] {
                            ftl.trim(loc.dbn.get() as u32)?;
                        }
                    }
                }
                if span_freed > 0 {
                    self.groups[span_gi].batch.record_freed(span_aa, span_freed);
                }
                self.bitmap.free_sorted_blocks(&frees)?;
            }
        }

        wall.frees_us += lap_us(&mut mark);

        // ---- 6. metafile I/O accounting (§2.5) -------------------------
        let mut pages = self.bitmap.take_dirty_stats().pages_dirtied;
        for vol in &mut self.vols {
            pages += vol.bitmap.take_dirty_stats().pages_dirtied;
        }
        stats.metafile_pages = pages;
        wall.apply_us += lap_us(&mut mark);

        // ---- 7. media costing, parallel per group ----------------------
        // Run-interval analysis — same numbers as the per-block analysis
        // `wafl-oracle` preserves (equivalence is pinned by the parity
        // suites), a fraction of the work.
        let checksum = self.cfg.checksum;
        let rg_stats: Vec<WaflResult<RgCpStats>> = self
            .groups
            .par_iter_mut()
            .zip(per_rg_runs.par_iter())
            .map(|(g, runs)| cost_raid_group_runs(g, runs, checksum))
            .collect();
        let mut cache_ops = 0u64;
        for rg in rg_stats {
            let rg = rg?;
            stats.media_us = stats.media_us.max(rg.media_us);
            stats.media_us_total += rg.media_us;
            stats.per_rg.push(rg);
        }
        wall.costing_us += lap_us(&mut mark);

        // ---- 8. CP-boundary cache rebalance (§3.3) ----------------------
        let bitmap_ref = &self.bitmap;
        for g in &mut self.groups {
            match g.cache.as_mut() {
                Some(GroupCache::Heap(cache)) => {
                    let touched = g.batch.touched_aas() as u64;
                    cache_ops += touched;
                    if touched > 0 {
                        batch_sizes.push(touched);
                        heap_batch_sizes.push(touched);
                    }
                    cache.apply_batch(&mut g.batch);
                    // Drained AAs are reinserted below, post-batch.
                }
                Some(GroupCache::Hbps(hbps)) => {
                    // Like the volume path: derive old scores from the
                    // post-CP bitmap and the batched delta; no per-AA
                    // score array exists (§3.3.2).
                    let touched = g.batch.touched_aas() as u64;
                    cache_ops += touched;
                    if touched > 0 {
                        batch_sizes.push(touched);
                    }
                    for (aa, delta) in g.batch.drain() {
                        let new = g.topology.score_from_bitmap(bitmap_ref, aa);
                        let max = g.topology.aa_blocks(aa) as u32;
                        let old = new.apply(wafl_types::ScoreDelta(-delta.0), max);
                        hbps.on_score_change(aa, old, new)?;
                    }
                }
                None => {
                    let _ = g.batch.drain().count();
                }
            }
        }
        // Re-insert AAs fully drained this CP with their post-batch scores
        // (frees during the same CP may have given them a head start).
        for (g, plan) in self.groups.iter_mut().zip(&plans) {
            if let Some(GroupCache::Heap(cache)) = g.cache.as_mut() {
                for &aa in &plan.drained {
                    let score = cache.score_of(aa);
                    cache.insert(aa, score)?;
                    cache_ops += 1;
                }
            }
            // HBPS-cached ranges: drained AAs re-enter via the batched
            // score change above (the histogram never stopped counting
            // them).
        }
        for (i, aa) in drained_late {
            if let Some(GroupCache::Heap(cache)) = self.groups[i].cache.as_mut() {
                let score = cache.score_of(aa);
                cache.insert(aa, score)?;
                cache_ops += 1;
            }
        }
        let vol_results: Vec<WaflResult<(u64, u64)>> = self
            .vols
            .par_iter_mut()
            .map(|vol| {
                if let Some(cache) = vol.cache.as_mut() {
                    let touched = vol.batch.touched_aas() as u64;
                    cache.apply_cp_batch(&mut vol.batch, &vol.bitmap)?;
                    // §3.3.2's background scan: if takes have drained the
                    // list faster than frees re-populate it — or quality
                    // degraded — walk the bitmap and rebuild.
                    let pages = if cache.maybe_replenish(&vol.bitmap)? {
                        // The rescan re-derived the AA scores; the drain
                        // cursor's claim of "nothing free behind me" is no
                        // longer backed by anything.
                        vol.drain_cursor = None;
                        if let Some(t) = &tracer {
                            t.emit(
                                trace_cp,
                                None,
                                TraceData::CursorInvalidated {
                                    vol: vol.id.0,
                                    reason: "replenish",
                                },
                            );
                        }
                        vol.bitmap.page_count() as u64
                    } else {
                        0
                    };
                    Ok((touched, pages))
                } else {
                    let _ = vol.batch.drain().count();
                    Ok((0, 0))
                }
            })
            .collect();
        for r in vol_results {
            let (touched, pages) = r?;
            cache_ops += touched;
            stats.replenish_pages += pages;
            if touched > 0 {
                batch_sizes.push(touched);
            }
        }
        wall.rebalance_us += lap_us(&mut mark);

        // ---- 9. CPU model (§4.1.2) --------------------------------------
        // The per-phase terms below come from the simulated cost model
        // only (no wall clocks in the CP path); they are summed into
        // `cpu_us` and exported individually to the phase histograms.
        let cpu = self.cfg.cpu;
        let client_us = n as f64 * cpu.base_us_per_op;
        let metafile_us = pages as f64 * cpu.us_per_metafile_page;
        let blocks_us = n as f64 * cpu.us_per_block;
        let alloc_scan_us = stats.blocks_examined as f64 * cpu.us_per_alloc_candidate;
        stats.cache_maintenance_us = cache_ops as f64 * cpu.us_per_cache_op;
        let replenish_us = stats.replenish_pages as f64 * cpu.us_per_scan_page;
        stats.cpu_us = client_us
            + metafile_us
            + blocks_us
            + alloc_scan_us
            + stats.cache_maintenance_us
            + replenish_us;

        wall.total_us = cp_t0.elapsed().as_secs_f64() * 1e6;

        stats.wall = wall;

        self.cp_count += 1;
        stats.cp_index = self.cp_count - 1;
        if let Some(site) = crash {
            // BeforeTopAaPersist / AfterTopAaPersist: the CP itself
            // committed; the difference is whether the caller's TopAA
            // image is one CP stale, which only the caller (holding the
            // persisted image) can model. Either way the process dies
            // here and the in-memory stats die with it — a crashed CP
            // exports no metrics, like a crashed host losing its RAM.
            self.lose_volatile_state();
            return Ok(CpOutcome::Crashed(site));
        }

        // ---- 10. observability export ----------------------------------
        self.obs.cp_completed.inc(1);
        self.obs.aas_claimed.inc(stats.vol_picks + stats.agg_picks);
        self.obs.blocks_examined.inc(stats.blocks_examined);
        self.obs.replenish_pages.inc(stats.replenish_pages);
        self.obs.sweep_fallback_picks.inc(sweep_picks);
        self.obs.cursor_hits.inc(stats.cursor_hits);
        self.obs.cursor_misses.inc(stats.cursor_misses);
        for (err, width) in pick_errors {
            self.obs
                .pick_score_error
                .observe(err as f64 / width.max(1) as f64);
        }
        for &b in &batch_sizes {
            self.obs.cp_batch_size.observe(b as f64);
        }
        for &b in &heap_batch_sizes {
            self.obs.heap_rebalance_batch.observe(b as f64);
        }
        self.obs.cp_phase_client_us.observe(client_us);
        self.obs.cp_phase_metafile_us.observe(metafile_us);
        self.obs.cp_phase_blocks_us.observe(blocks_us);
        self.obs.cp_phase_alloc_scan_us.observe(alloc_scan_us);
        self.obs
            .cp_phase_cache_us
            .observe(stats.cache_maintenance_us);
        self.obs.cp_phase_replenish_us.observe(replenish_us);
        self.obs.cp_phase_media_us.observe(stats.media_us);
        self.obs.cp_wall_total_us.observe(wall.total_us);
        self.obs
            .cp_wall_plan_virtual_us
            .observe(wall.plan_virtual_us);
        self.obs
            .cp_wall_plan_physical_us
            .observe(wall.plan_physical_us);
        self.obs.cp_wall_apply_us.observe(wall.apply_us);
        self.obs.cp_wall_bind_us.observe(wall.bind_us);
        self.obs.cp_wall_frees_us.observe(wall.frees_us);
        self.obs.cp_wall_costing_us.observe(wall.costing_us);
        self.obs.cp_wall_rebalance_us.observe(wall.rebalance_us);
        // Flight recorder: synthesize the CP-engine track from the wall
        // laps. Spans are journaled whole (start + duration), so the
        // exported begin/end pairs stay balanced even when the ring
        // drops events. Phases are laid out sequentially from the CP's
        // anchor — the same order the pipeline accumulates them — under
        // one enclosing `cp` span; each carries the cost-model term the
        // drift overlay maps to it.
        if let Some(t0) = trace_t0 {
            let cp = stats.cp_index;
            self.obs.trace_at(
                t0,
                cp,
                None,
                TraceData::Span {
                    name: "cp",
                    dur_us: wall.total_us,
                    model_us: stats.cpu_us,
                },
            );
            let phases = [
                ("cp.plan_virtual", wall.plan_virtual_us, 0.0),
                ("cp.plan_physical", wall.plan_physical_us, alloc_scan_us),
                ("cp.apply", wall.apply_us, metafile_us),
                ("cp.bind", wall.bind_us, client_us + blocks_us),
                ("cp.frees", wall.frees_us, 0.0),
                ("cp.costing", wall.costing_us, 0.0),
                (
                    "cp.rebalance",
                    wall.rebalance_us,
                    stats.cache_maintenance_us + replenish_us,
                ),
            ];
            let mut ts = t0;
            for (name, dur_us, model_us) in phases {
                self.obs.trace_at(
                    ts,
                    cp,
                    None,
                    TraceData::Span {
                        name,
                        dur_us,
                        model_us,
                    },
                );
                ts += dur_us;
            }
            if sweep_picks > 0 {
                self.obs.trace_at(
                    t0,
                    cp,
                    None,
                    TraceData::SweepFallback { picks: sweep_picks },
                );
            }
        }
        // Per-shard lease traffic (registered only when write_shards > 1;
        // the fallback paths report empty stats).
        for (i, (&leases, &steals)) in shard_stats
            .leases
            .iter()
            .zip(&shard_stats.steals)
            .enumerate()
        {
            if let Some(shard_obs) = self.obs.shard.get(i) {
                shard_obs.leases.inc(leases);
                shard_obs.steals.inc(steals);
            }
        }
        // Delta-scrape the maintenance counters of every cache structure
        // (plain u64s in wafl-core; this is their only reader).
        let free_log_delta = self.free_log.take_hbps_stats();
        self.obs.record_hbps_stats(free_log_delta);
        for g in &mut self.groups {
            match g.cache.as_mut() {
                Some(GroupCache::Heap(cache)) => {
                    let delta = cache.take_stats();
                    self.obs.record_heap_stats(delta);
                }
                Some(GroupCache::Hbps(hbps)) => {
                    let delta = hbps.take_stats();
                    self.obs.record_hbps_stats(delta);
                }
                None => {}
            }
        }
        for vol in &mut self.vols {
            if let Some(cache) = vol.cache.as_mut() {
                let delta = cache.take_hbps_stats();
                self.obs.record_hbps_stats(delta);
            }
        }
        // Space gauges: cheap scalars from the summary counters. The
        // per-group gauges are name-formatted (dynamic group count) —
        // once per completed CP, not on any hot path.
        self.obs
            .gauge_free_fraction
            .set(self.bitmap.free_fraction());
        self.obs
            .gauge_delayed_free_backlog
            .set(self.free_log.pending() as f64);
        for (i, g) in self.groups.iter().enumerate() {
            let data = g.geometry.data_blocks();
            let free = self.bitmap.free_count_range(g.geometry.base_vbn, data);
            self.obs
                .registry()
                .gauge(&format!("group.{i}.free_fraction"))
                .set(free as f64 / data.max(1) as f64);
            let active_score = g
                .active_aa
                .map(|aa| g.topology.score_from_bitmap(&self.bitmap, aa).get())
                .unwrap_or(0);
            self.obs
                .registry()
                .gauge(&format!("group.{i}.active_aa_score"))
                .set(active_score as f64);
        }
        // Per-volume metrics under the vol=<id> label prefix: cursor
        // traffic from this CP's drains plus the volume's space gauge.
        // Name-formatted like the group gauges — CP-boundary only.
        for (vol, &(hits, misses)) in self.vols.iter().zip(&per_vol_cursor) {
            if hits > 0 {
                self.obs
                    .vol_counter(vol.id, "allocator.cursor_hits")
                    .inc(hits);
            }
            if misses > 0 {
                self.obs
                    .vol_counter(vol.id, "allocator.cursor_misses")
                    .inc(misses);
            }
            self.obs
                .vol_gauge(vol.id, "space.free_fraction")
                .set(vol.bitmap.free_fraction());
        }
        // One time-series row per completed CP (no-op when tracing is
        // off): the registry deltas since the previous sample.
        self.obs.sample_cp_series(stats.cp_index);
        Ok(CpOutcome::Completed(stats))
    }

    /// Physical-allocation quotas per RAID group for `n` blocks. With the
    /// cache enabled, weight each group by its best AA score — the §4.2
    /// bias that sends more blocks to emptier groups; apply the §3.3.1
    /// back-off threshold. Without the cache, weight by raw free space.
    fn rg_quotas(&self, n: usize) -> Vec<usize> {
        let weights: Vec<f64> = self
            .groups
            .iter()
            .map(|g| {
                if let Some(cache) = g.cache.as_ref() {
                    // The active AA is out of the cache while draining;
                    // the group's quality is the better of it and the
                    // cache's best.
                    let cache_best = match cache {
                        GroupCache::Heap(h) => h.best().map(|(_, s)| s.get()).unwrap_or(0),
                        GroupCache::Hbps(h) => h.peek_best().map(|(_, s)| s.get()).unwrap_or(0),
                    };
                    let active = g
                        .active_aa
                        .map(|aa| g.topology.score_from_bitmap(&self.bitmap, aa).get())
                        .unwrap_or(0);
                    let best = cache_best.max(active) as f64;
                    let max = (g.stripes_per_aa * g.geometry.data_devices as u64) as f64;
                    let frac = best / max.max(1.0);
                    if frac < self.cfg.rg_backoff_threshold {
                        0.0
                    } else if g.profile.media == wafl_types::MediaType::Ssd {
                        best * self.cfg.ssd_tier_bias
                    } else {
                        best
                    }
                } else {
                    // No cache: weight by raw free space. The per-page
                    // summary counters answer this in O(pages-touched-
                    // partially) — full pages never popcount, so quota
                    // computation stays cheap even on million-block
                    // groups.
                    self.bitmap
                        .free_count_range(g.geometry.base_vbn, g.geometry.data_blocks())
                        as f64
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Everything backed off or empty: spread evenly; the shortfall
            // loop in run_cp deals with reality.
            let per = n / self.groups.len().max(1);
            let mut q = vec![per; self.groups.len()];
            if let Some(first) = q.first_mut() {
                *first += n - per * self.groups.len();
            }
            return q;
        }
        let mut quotas: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor() as usize)
            .collect();
        let assigned: usize = quotas.iter().sum();
        // Hand out the rounding remainder to the heaviest groups.
        let mut order: Vec<usize> = (0..quotas.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        for i in 0..n - assigned {
            quotas[order[i % order.len()]] += 1;
        }
        quotas
    }
}

/// Cost one CP's writes to a group over allocation runs. The retired
/// per-block costing path lives on in `wafl-oracle`; its numbers are
/// identical (the run analyzer is equivalence-tested against the
/// per-block one, and the media models see the same sorted chain/DBN
/// sequences), but this hot path scales with run count, not block count.
fn cost_raid_group_runs(
    g: &mut crate::aggregate::RaidGroupState,
    runs: &[(Vbn, u64)],
    checksum: ChecksumStyle,
) -> WaflResult<RgCpStats> {
    let rw = analyze_cp_write_runs(&g.geometry, runs)?;
    let analysis = &rw.analysis;
    let mut rg = RgCpStats {
        blocks: analysis.data_blocks,
        tetrises: analysis.tetrises,
        full_stripes: analysis.full_stripes,
        partial_stripes: analysis.partial_stripes,
        parity_reads: analysis.parity_reads,
        parity_writes: analysis.parity_writes,
        per_device_blocks: analysis.per_device_blocks.clone(),
        per_device_chains: analysis.per_device_chains.clone(),
        media_us: 0.0,
    };
    if analysis.data_blocks == 0 {
        return Ok(rg);
    }
    let d = g.geometry.data_devices as usize;
    let mut dev_times: Vec<f64> = Vec::with_capacity(g.media.len());
    let azcs_next = &mut g.azcs_next;
    for (i, media) in g.media.iter_mut().enumerate() {
        // Data devices write their merged chains; each parity device
        // writes one block per written stripe — the stripe union.
        let chains: &[(u64, u64)] = if i < d {
            &rw.device_chains[i]
        } else {
            &rw.stripe_intervals
        };
        if chains.is_empty() {
            dev_times.push(0.0);
            continue;
        }
        let us = match media {
            DeviceMedia::Hdd(h) => {
                let blocks: u64 = chains.iter().map(|&(_, l)| l).sum();
                h.write_cost_us(chains.len() as u64, blocks)
            }
            DeviceMedia::Ssd(ftl) => ftl.write_batch(
                chains
                    .iter()
                    .flat_map(|&(s, l)| (s..s + l).map(|b| b as u32)),
            )?,
            DeviceMedia::Smr(smr) => {
                let phys = match checksum {
                    ChecksumStyle::Azcs => azcs_physical_chains(&mut azcs_next[i], chains),
                    ChecksumStyle::Sector520 => chains.to_vec(),
                };
                let mut t = 0.0;
                for (start, len) in phys {
                    t += smr.write_chain(start, len)?;
                }
                t
            }
            DeviceMedia::Object(o) => o.write_cost_us(chains),
        };
        dev_times.push(us);
    }
    let parity_read_us = match g.media.first() {
        Some(DeviceMedia::Hdd(h)) => h.random_read_cost_us(analysis.parity_reads),
        Some(DeviceMedia::Ssd(s)) => {
            s.random_read_cost_us(analysis.parity_reads) / s.channels.max(1.0)
        }
        Some(DeviceMedia::Smr(s)) => analysis.parity_reads as f64 * (s.position_us + s.transfer_us),
        Some(DeviceMedia::Object(o)) => o.random_read_cost_us(analysis.parity_reads),
        None => 0.0,
    };
    rg.media_us = dev_times.iter().copied().fold(0.0, f64::max) + parity_read_us;
    Ok(rg)
}

/// No open AZCS stream on the device.
const AZCS_IDLE: u64 = u64::MAX;

/// Translate data-space chains into physical chains on an AZCS device
/// (§3.2.4): every 63 data blocks are followed by their checksum block.
///
/// Stateful per device: `next` is the data DBN expected to extend the
/// device's open region. A chain continuing at `next` streams on; its
/// regions get their checksum blocks written in-line as each completes,
/// and an incomplete tail region stays *open* (its checksum is buffered —
/// the next CP continues the same AA sequentially). A chain that *jumps*
/// (AA switch) first flushes the open region's checksum block as a
/// separate write — random, and behind the zone write pointer once later
/// writes fill the region — which is exactly the Fig 9 penalty that
/// AZCS-aligned AA sizing eliminates (aligned AAs always end on a region
/// boundary, so no region is ever left open at a switch).
fn azcs_physical_chains(next: &mut u64, data_chains: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let phys = |d: u64| d + d / AZCS_DATA_BLOCKS;
    let mut out = Vec::new();
    for &(start, len) in data_chains {
        let end = start + len; // exclusive, data space
        if *next != AZCS_IDLE && start != *next && !(*next).is_multiple_of(AZCS_DATA_BLOCKS) {
            // Abandoning an open region: flush its checksum block.
            let open_region = (*next - 1) / AZCS_DATA_BLOCKS;
            out.push((open_region * AZCS_REGION_BLOCKS + AZCS_DATA_BLOCKS, 1));
        }
        let first_region = start / AZCS_DATA_BLOCKS;
        let last_region = (end - 1) / AZCS_DATA_BLOCKS;
        for r in first_region..=last_region {
            let r_data_start = r * AZCS_DATA_BLOCKS;
            let r_data_end = r_data_start + AZCS_DATA_BLOCKS;
            let seg_start = start.max(r_data_start);
            let seg_end = end.min(r_data_end);
            let p_start = phys(seg_start);
            let p_len = seg_end - seg_start;
            if seg_end == r_data_end {
                // Region completes: its checksum block streams in-line.
                out.push((p_start, p_len + 1));
            } else {
                // Region left open; checksum buffered until it completes
                // or the stream jumps away.
                out.push((p_start, p_len));
            }
        }
        *next = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn agg(raid_cache: bool, vol_cache: bool) -> Aggregate {
        let cfg = AggregateConfig {
            raid_aware_cache: raid_cache,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        };
        Aggregate::new(
            cfg,
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: vol_cache,
                    aa_blocks: None,
                },
                50_000,
            )],
            42,
        )
        .unwrap()
    }

    #[test]
    fn empty_cp_is_a_noop() {
        let mut a = agg(true, true);
        let s = a.run_cp().unwrap();
        assert_eq!(s.ops, 0);
        assert_eq!(s.blocks_written, 0);
        assert_eq!(a.cp_count(), 1);
    }

    #[test]
    fn first_writes_allocate_both_vbn_spaces() {
        let mut a = agg(true, true);
        for l in 0..1000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(s.ops, 1000);
        assert_eq!(s.blocks_written, 1000);
        // 1000 virtual + 1000 physical blocks allocated.
        assert_eq!(a.volumes()[0].free_blocks(), 8 * 32768 - 1000);
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096 - 1000);
        // Fresh FS: everything lands in empty AAs, colocated — few pages.
        assert!(s.metafile_pages <= 6, "pages {}", s.metafile_pages);
        assert!(s.media_us > 0.0);
        assert!(s.cpu_us > 0.0);
        // The logical blocks are mapped.
        let vol = &a.volumes()[0];
        assert!(vol.lookup_logical(0).is_some());
        assert!(vol.lookup_logical(999).is_some());
        assert!(vol.lookup_logical(1000).is_none());
    }

    #[test]
    fn overwrites_free_old_blocks_at_cp_boundary() {
        let mut a = agg(true, true);
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        let free_v = a.volumes()[0].free_blocks();
        let free_p = a.bitmap().free_blocks();
        // Overwrite the same logical blocks: COW allocates new, frees old.
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
        // Net occupancy unchanged: 500 new allocated, 500 old freed.
        assert_eq!(a.volumes()[0].free_blocks(), free_v);
        assert_eq!(a.bitmap().free_blocks(), free_p);
    }

    #[test]
    fn fresh_fs_writes_full_stripes() {
        let mut a = agg(true, true);
        // Enough blocks to fill whole stripes (4 data devices).
        for l in 0..4096 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        let rg = &s.per_rg[0];
        assert!(
            rg.full_stripes > 0,
            "a fresh AA drain must produce full stripes"
        );
        assert!(rg.full_stripes * 4 >= rg.blocks * 9 / 10);
    }

    #[test]
    fn cp_works_without_caches() {
        let mut a = agg(false, false);
        for l in 0..2000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(s.blocks_written, 2000);
        assert_eq!(a.bitmap().free_blocks(), 4 * 16 * 4096 - 2000);
        // No cache maintenance happened... but batches still drained.
        assert!(a.groups()[0].batch.is_empty());
    }

    #[test]
    fn quotas_follow_best_scores() {
        // Two groups; one aged. More blocks should go to the fresh one.
        let cfg = AggregateConfig {
            raid_groups: vec![
                RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 8 * 4096,
                    profile: MediaProfile::hdd(),
                },
                RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 8 * 4096,
                    profile: MediaProfile::hdd(),
                },
            ],
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 1,
                parity_devices: 0,
                device_blocks: 1,
                profile: MediaProfile::hdd(),
            })
        };
        let mut a = Aggregate::new(
            cfg,
            &[(
                FlexVolConfig {
                    size_blocks: 16 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                100_000,
            )],
            7,
        )
        .unwrap();
        // Age group 0 by allocating half its blocks randomly.
        crate::aging::seed_rg_random_occupancy(&mut a, 0, 0.5, 123).unwrap();
        for l in 0..10_000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert!(
            s.per_rg[1].blocks > s.per_rg[0].blocks,
            "fresh group {} vs aged {}",
            s.per_rg[1].blocks,
            s.per_rg[0].blocks
        );
    }

    #[test]
    fn azcs_chain_translation() {
        let mut st = AZCS_IDLE;
        // A chain covering exactly one region (63 data blocks from 0):
        // physical 0..63 plus the checksum block at 63, in-line -> (0, 64).
        assert_eq!(azcs_physical_chains(&mut st, &[(0, 63)]), vec![(0, 64)]);
        assert_eq!(st, 63);
        // A continuing chain leaves the next region open — no checksum
        // emitted yet (it is buffered until the region completes).
        assert_eq!(azcs_physical_chains(&mut st, &[(63, 10)]), vec![(64, 10)]);
        assert_eq!(st, 73);
        // A jump (AA switch) flushes the open region's checksum block as a
        // separate write, then streams the new chain.
        let chains = azcs_physical_chains(&mut st, &[(630, 5)]);
        assert_eq!(chains, vec![(127, 1), (640, 5)]);
        // Continuing the new position to the region's end absorbs its
        // checksum in-line: region 10 is data 630..693.
        let chains = azcs_physical_chains(&mut st, &[(635, 58)]);
        assert_eq!(chains, vec![(645, 59)]); // 58 data + 1 checksum
                                             // A chain spanning two regions from a fresh stream, ending
                                             // mid-second-region: first region in-line, second left open.
        let mut st2 = AZCS_IDLE;
        let chains = azcs_physical_chains(&mut st2, &[(0, 70)]);
        assert_eq!(chains, vec![(0, 64), (64, 7)]);
    }

    #[test]
    fn stats_accumulate() {
        let mut acc = CpStats::default();
        let mut a = agg(true, true);
        for round in 0..3 {
            for l in 0..100 {
                a.client_overwrite(VolumeId(0), l + round * 100).unwrap();
            }
            let s = a.run_cp().unwrap();
            acc.accumulate(&s);
        }
        assert_eq!(acc.ops, 300);
        assert_eq!(acc.blocks_written, 300);
        assert!(acc.cpu_us > 0.0);
    }

    /// Every number in the drift overlay must stay finite even when the
    /// model prices a phase at zero — `costing` always, and every phase
    /// over a window of empty CPs. The zero-model phases report `ratio:
    /// None` (serialised as JSON `null`) and carry the signal in
    /// `drift_us` instead of an inf/NaN quotient.
    #[test]
    fn drift_overlay_stays_finite_with_zero_model_phases() {
        let cpu = crate::config::CpuModel::default();

        // A normal window: `costing` has wall time but a zero model term.
        let mut acc = CpStats::default();
        let mut a = agg(true, true);
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        acc.accumulate(&a.run_cp().unwrap());
        let overlay = WallClockOverlay::from_window(&acc, 1, &cpu).unwrap();
        assert_eq!(overlay.phases.len(), 5);
        let costing = overlay
            .phases
            .iter()
            .find(|p| p.phase == "costing")
            .unwrap();
        assert_eq!(costing.model_us, 0.0);
        assert!(costing.ratio.is_none(), "zero-model phase must not divide");
        assert!(costing.drift_us.is_finite());
        assert_eq!(costing.drift_us, costing.wall_us);
        for p in &overlay.phases {
            assert!(p.wall_us.is_finite() && p.model_us.is_finite());
            assert!(p.drift_us.is_finite() && p.drift.is_finite());
            if let Some(r) = p.ratio {
                assert!(r.is_finite(), "{}: ratio {r}", p.phase);
            }
        }
        let json = serde_json::to_string(&overlay).unwrap();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        assert!(json.contains("\"ratio\":null"), "{json}");

        // An all-empty window: wall time accrues (the pipeline still
        // runs) but the model prices the whole window at zero. The
        // overlay must still appear, with absolute-µs drift and no
        // NaN/inf anywhere.
        let mut empty = CpStats::default();
        let mut b = agg(true, true);
        for _ in 0..3 {
            empty.accumulate(&b.run_cp().unwrap());
        }
        assert_eq!(empty.cpu_us, 0.0);
        if empty.wall.phase_sum_us() > 0.0 {
            let overlay = WallClockOverlay::from_window(&empty, 3, &cpu).unwrap();
            assert_eq!(overlay.total_ratio, 0.0);
            for p in &overlay.phases {
                assert!(p.ratio.is_none());
                assert!(p.drift_us.is_finite() && p.model_fraction == 0.0);
            }
            let json = serde_json::to_string(&overlay).unwrap();
            assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        }
    }
}

#[cfg(test)]
mod trim_tests {
    use crate::aggregate::Aggregate;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn ssd_agg(trim: bool) -> Aggregate {
        Aggregate::new(
            AggregateConfig {
                trim_on_free: trim,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 128 * 120,
                    profile: MediaProfile {
                        erase_block_blocks: 128,
                        ..MediaProfile::ssd()
                    },
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 2 * 32768,
                    aa_cache: true,
                    aa_blocks: Some(2048),
                },
                20_000,
            )],
            6,
        )
        .unwrap()
    }

    /// Extension beyond the paper: forwarding WAFL's delayed frees to the
    /// FTL as TRIMs lets garbage collection skip dead-but-unoverwritten
    /// pages, lowering write amplification further.
    #[test]
    fn trim_on_free_reduces_write_amplification() {
        let measure = |trim: bool| {
            let mut agg = ssd_agg(trim);
            aging::fill_volume(&mut agg, VolumeId(0), 2048).unwrap();
            agg.reset_media_stats();
            aging::random_overwrite_churn(&mut agg, VolumeId(0), 60_000, 2048, 11).unwrap();
            agg.mean_write_amplification()
        };
        let (without, with) = (measure(false), measure(true));
        assert!(
            with <= without,
            "TRIM must not worsen WA: with {with} vs without {without}"
        );
    }
}

#[cfg(test)]
mod batched_free_tests {
    use crate::aggregate::Aggregate;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn agg(batched: bool) -> Aggregate {
        Aggregate::new(
            AggregateConfig {
                batched_frees: batched,
                free_pages_per_cp: 2,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            8,
        )
        .unwrap()
    }

    #[test]
    fn batched_frees_eventually_reclaim_everything() {
        let mut a = agg(true);
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 60_000, 4096, 3).unwrap();
        // Idle CPs let the background processor drain the log.
        while a.free_log().pending() > 0 {
            a.run_cp().unwrap();
        }
        // Net occupancy identical to the immediate-free world.
        assert_eq!(a.bitmap().space_len() - a.bitmap().free_blocks(), 60_000);
    }

    #[test]
    fn space_pressure_force_drains_the_log() {
        // A volume nearly as large as the aggregate: overwrites quickly
        // exhaust fresh space, so allocation succeeds only by pulling
        // logged frees forward.
        let mut a = Aggregate::new(
            AggregateConfig {
                batched_frees: true,
                free_pages_per_cp: 1,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 2,
                    parity_devices: 1,
                    device_blocks: 8 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                55_000, // ~84 % of the 65,536-block aggregate
            )],
            8,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        // Several full overwrite passes cannot fit without reclaiming.
        aging::random_overwrite_churn(&mut a, VolumeId(0), 120_000, 4096, 5).unwrap();
        assert_eq!(
            a.bitmap().space_len() - a.bitmap().free_blocks(),
            55_000 + a.free_log().pending()
        );
    }

    #[test]
    fn batched_mode_touches_fewer_free_pages_per_cp() {
        let run = |batched: bool| {
            let mut a = agg(batched);
            aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
            a.bitmapless_dirty_reset();
            let stats =
                aging::random_overwrite_churn(&mut a, VolumeId(0), 30_000, 1024, 9).unwrap();
            stats.metafile_pages
        };
        let immediate = run(false);
        let batched = run(true);
        assert!(
            batched < immediate,
            "batched {batched} pages vs immediate {immediate}"
        );
    }
}
