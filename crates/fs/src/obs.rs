//! Pre-registered observability handles for the allocator pipeline.
//!
//! Every [`Aggregate`](crate::Aggregate) owns one [`FsObs`], built around a
//! shared [`wafl_obs::Registry`]. The hot paths never format metric names
//! or touch the registry lock: each emitting site clones its handle once at
//! construction and bumps an atomic. `docs/observability.md` catalogs every
//! metric, its unit, and its emitting site.
//!
//! Durations under `cp.phase.*` come exclusively from the CP engine's
//! simulated cost model ([`CpuModel`](crate::CpuModel) and the media
//! models). The `cp.wall.*` family is the one exception: it carries the
//! CP pipeline's *measured* wall-clock phase times, recorded by the
//! monotonic-clock overlay so `simulate --check` can report how far the
//! model's phase ratios drift from real execution time.

use wafl_core::{HbpsStats, HeapCacheStats};
use wafl_obs::trace::{PerCpSeries, TraceData, Tracer};
use wafl_obs::{Counter, Gauge, Histogram, Registry};

/// Bucket bounds for the chosen-AA score error, in bin widths. The HBPS
/// guarantee is error < 1 bin width, so everything should land in the
/// first two buckets; the tail exists to make violations visible.
const PICK_ERROR_BOUNDS: &[f64] = &[0.25, 0.5, 1.0, 2.0, 4.0];

/// Bucket bounds for score-delta batch sizes (touched AAs per structure
/// per CP).
const BATCH_SIZE_BOUNDS: &[f64] = &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0];

/// Bucket bounds for simulated per-phase CP latencies, in microseconds.
const PHASE_US_BOUNDS: &[f64] = &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// The aggregate's observability handles, one per metric.
///
/// Counters accumulate over the aggregate's lifetime; they survive
/// crashes and remounts of the same in-memory [`Aggregate`](crate::Aggregate)
/// (the registry is host state, not file-system state).
#[derive(Clone, Debug)]
pub struct FsObs {
    registry: Registry,

    // ---- fs::allocator --------------------------------------------------
    /// AAs claimed by the write allocator (volume and RAID-group picks).
    pub(crate) aas_claimed: Counter,
    /// Candidate blocks examined while draining active AAs.
    pub(crate) blocks_examined: Counter,
    /// Bitmap pages charged to HBPS replenish scans.
    pub(crate) replenish_pages: Counter,
    /// Picks served by the linear bitmap sweep (cache-less or stale-cache
    /// fallback — e.g. a degraded-mount volume running without its cache).
    pub(crate) sweep_fallback_picks: Counter,
    /// Chosen-AA score error vs. the true best at pick time, in bin
    /// widths. The §3.3.2 guarantee bounds this below 1.0.
    pub(crate) pick_score_error: Histogram,
    /// Volume drains that resumed from the per-AA cursor instead of
    /// re-walking the AA's allocated prefix.
    pub(crate) cursor_hits: Counter,
    /// Volume drains that started from the AA's first VBN (no cursor, or
    /// the cursor was invalidated by frees/quarantine/replenish).
    pub(crate) cursor_misses: Counter,

    // ---- core::hbps (scraped at CP boundaries) --------------------------
    /// HBPS score changes that crossed a bin boundary.
    pub(crate) hbps_bin_moves: Counter,
    /// HBPS single-element boundary rotations in the list page.
    pub(crate) hbps_boundary_rotations: Counter,
    /// HBPS list-page insertions.
    pub(crate) hbps_list_inserts: Counter,
    /// HBPS list-page evictions (deepest segment displaced).
    pub(crate) hbps_list_evictions: Counter,
    /// HBPS full list refills (replenish scans).
    pub(crate) hbps_list_refills: Counter,

    // ---- core::heap_cache (scraped at CP boundaries) --------------------
    /// RAID-aware heap CP-boundary rebalances.
    pub(crate) heap_rebalances: Counter,
    /// Per-AA score updates applied across heap rebalances.
    pub(crate) heap_rebalance_updates: Counter,
    /// Heap element swaps while restoring order.
    pub(crate) heap_sift_swaps: Counter,
    /// Touched AAs per heap rebalance batch.
    pub(crate) heap_rebalance_batch: Histogram,

    // ---- fs::cp ---------------------------------------------------------
    /// Consistency points completed (crashed CPs are not counted).
    pub(crate) cp_completed: Counter,
    /// Touched AAs per score-delta batch (per structure per CP).
    pub(crate) cp_batch_size: Histogram,
    /// Simulated CP CPU time: fixed per-op overheads.
    pub(crate) cp_phase_client_us: Histogram,
    /// Simulated CP CPU time: bitmap metafile page updates.
    pub(crate) cp_phase_metafile_us: Histogram,
    /// Simulated CP CPU time: per-block write processing.
    pub(crate) cp_phase_blocks_us: Histogram,
    /// Simulated CP CPU time: allocation candidate examination.
    pub(crate) cp_phase_alloc_scan_us: Histogram,
    /// Simulated CP CPU time: AA-cache maintenance.
    pub(crate) cp_phase_cache_us: Histogram,
    /// Simulated CP CPU time: replenish bitmap scans.
    pub(crate) cp_phase_replenish_us: Histogram,
    /// Simulated media time for the CP's device writes (slowest device).
    pub(crate) cp_phase_media_us: Histogram,
    /// Measured wall-clock time of the whole CP pipeline.
    pub(crate) cp_wall_total_us: Histogram,
    /// Measured wall clock: virtual (per-volume) allocation planning.
    pub(crate) cp_wall_plan_virtual_us: Histogram,
    /// Measured wall clock: physical (per-group) allocation planning.
    pub(crate) cp_wall_plan_physical_us: Histogram,
    /// Measured wall clock: applying planned runs to the bitmaps.
    pub(crate) cp_wall_apply_us: Histogram,
    /// Measured wall clock: logical→virtual→physical binding.
    pub(crate) cp_wall_bind_us: Histogram,
    /// Measured wall clock: delayed-free flush (virtual + physical).
    pub(crate) cp_wall_frees_us: Histogram,
    /// Measured wall clock: per-group media costing.
    pub(crate) cp_wall_costing_us: Histogram,
    /// Measured wall clock: CP-boundary cache rebalance.
    pub(crate) cp_wall_rebalance_us: Histogram,

    // ---- fs::sharded (per-shard lease traffic, exported per CP) ---------
    /// Per-shard lease/steal counters (`allocator.shard.{i}.*`), present
    /// when the aggregate was configured with `write_shards > 1`. Worker
    /// shards never touch these mid-CP: they tally plain integers in
    /// their private outcomes, and the CP boundary folds the totals in
    /// through these lock-free handles.
    pub(crate) shard: Vec<ShardObs>,

    // ---- fs::mount ------------------------------------------------------
    /// Structures (groups + volumes) fast-pathed from a TopAA seed.
    pub(crate) mount_seed_hits: Counter,
    /// DegradationEvents: structures that fell back to a cold scan.
    pub(crate) mount_degradations: Counter,
    /// Bitmap pages walked by cold-scan cache rebuilds.
    pub(crate) mount_cold_pages: Counter,
    /// Transient read failures absorbed by mount retries.
    pub(crate) mount_retries: Counter,

    // ---- fs::iron -------------------------------------------------------
    /// Full `iron::check` audits run.
    pub(crate) iron_audits: Counter,
    /// Repairs performed by `iron::repair`.
    pub(crate) iron_repairs: Counter,

    // ---- fs::scrub ------------------------------------------------------
    /// Verification units checked by the runtime scrubber (budgeted, so
    /// this advances by exactly `scrub_pages_per_cp` per CP).
    pub(crate) scrub_pages_scanned: Counter,
    /// Scrub verifies that found a divergence (or an unreadable
    /// structure) in a previously unticketed unit.
    pub(crate) scrub_faults_detected: Counter,
    /// AAs newly quarantined by scrub detections.
    pub(crate) scrub_aas_quarantined: Counter,
    /// AAs and structure flags released after successful repairs (or
    /// clean passes over mount-quarantined structures).
    pub(crate) scrub_released: Counter,
    /// Repair tickets scheduled by scrub detections.
    pub(crate) scrub_repairs_scheduled: Counter,
    /// Repair tickets that completed (repair applied and re-verified
    /// clean).
    pub(crate) scrub_repairs_succeeded: Counter,
    /// Transient read failures absorbed by scrub repair retries.
    pub(crate) scrub_read_retries: Counter,
    /// Summary counters rewritten by structure-scoped scrub repairs.
    pub(crate) scrub_counters_repaired: Counter,

    // ---- health gauges --------------------------------------------------
    /// Health state machine position: 0 healthy, 1 degraded, 2 read-only.
    pub(crate) gauge_health_state: Gauge,
    /// AAs currently quarantined across all groups and volumes.
    pub(crate) gauge_quarantined_aas: Gauge,
    /// Cache structures currently under structure quarantine.
    pub(crate) gauge_quarantined_structures: Gauge,
    /// Repair tickets awaiting processing.
    pub(crate) gauge_pending_repairs: Gauge,

    // ---- space gauges (exported at CP boundaries) -----------------------
    /// Fraction of the physical space free.
    pub(crate) gauge_free_fraction: Gauge,
    /// Delayed-free log backlog in blocks (0 unless `batched_frees`).
    pub(crate) gauge_delayed_free_backlog: Gauge,

    // ---- flight recorder (optional) -------------------------------------
    /// Trace journal, present when the aggregate was configured with
    /// `trace_events > 0`. Emission through [`FsObs::trace`] costs one
    /// `Option` check when tracing is off; the handle itself is safe to
    /// share with rayon workers.
    pub(crate) tracer: Option<Tracer>,
    /// Per-CP time series sampled at the end of CP step 10, enabled
    /// together with the tracer.
    pub(crate) cp_series: Option<PerCpSeries>,
}

impl FsObs {
    /// Register every pipeline metric against `registry`.
    pub fn new(registry: Registry) -> FsObs {
        FsObs {
            aas_claimed: registry.counter("allocator.aas_claimed"),
            blocks_examined: registry.counter("allocator.blocks_examined"),
            replenish_pages: registry.counter("allocator.replenish_pages"),
            sweep_fallback_picks: registry.counter("allocator.sweep_fallback_picks"),
            pick_score_error: registry
                .histogram("allocator.pick_score_error_bin_widths", PICK_ERROR_BOUNDS),
            cursor_hits: registry.counter("allocator.cursor_hits"),
            cursor_misses: registry.counter("allocator.cursor_misses"),
            hbps_bin_moves: registry.counter("hbps.bin_moves"),
            hbps_boundary_rotations: registry.counter("hbps.boundary_rotations"),
            hbps_list_inserts: registry.counter("hbps.list_inserts"),
            hbps_list_evictions: registry.counter("hbps.list_evictions"),
            hbps_list_refills: registry.counter("hbps.list_refills"),
            heap_rebalances: registry.counter("heap.rebalances"),
            heap_rebalance_updates: registry.counter("heap.rebalance_updates"),
            heap_sift_swaps: registry.counter("heap.sift_swaps"),
            heap_rebalance_batch: registry.histogram("heap.rebalance_batch_aas", BATCH_SIZE_BOUNDS),
            cp_completed: registry.counter("cp.completed"),
            cp_batch_size: registry.histogram("cp.score_delta_batch_aas", BATCH_SIZE_BOUNDS),
            cp_phase_client_us: registry.histogram("cp.phase.client_ops_us", PHASE_US_BOUNDS),
            cp_phase_metafile_us: registry.histogram("cp.phase.metafile_us", PHASE_US_BOUNDS),
            cp_phase_blocks_us: registry.histogram("cp.phase.block_writes_us", PHASE_US_BOUNDS),
            cp_phase_alloc_scan_us: registry.histogram("cp.phase.alloc_scan_us", PHASE_US_BOUNDS),
            cp_phase_cache_us: registry.histogram("cp.phase.cache_maintenance_us", PHASE_US_BOUNDS),
            cp_phase_replenish_us: registry
                .histogram("cp.phase.replenish_scan_us", PHASE_US_BOUNDS),
            cp_phase_media_us: registry.histogram("cp.phase.media_us", PHASE_US_BOUNDS),
            cp_wall_total_us: registry.histogram("cp.wall.total_us", PHASE_US_BOUNDS),
            cp_wall_plan_virtual_us: registry.histogram("cp.wall.plan_virtual_us", PHASE_US_BOUNDS),
            cp_wall_plan_physical_us: registry
                .histogram("cp.wall.plan_physical_us", PHASE_US_BOUNDS),
            cp_wall_apply_us: registry.histogram("cp.wall.apply_us", PHASE_US_BOUNDS),
            cp_wall_bind_us: registry.histogram("cp.wall.bind_us", PHASE_US_BOUNDS),
            cp_wall_frees_us: registry.histogram("cp.wall.frees_us", PHASE_US_BOUNDS),
            cp_wall_costing_us: registry.histogram("cp.wall.costing_us", PHASE_US_BOUNDS),
            cp_wall_rebalance_us: registry.histogram("cp.wall.rebalance_us", PHASE_US_BOUNDS),
            shard: Vec::new(),
            mount_seed_hits: registry.counter("mount.topaa_seed_hits"),
            mount_degradations: registry.counter("mount.degradation_events"),
            mount_cold_pages: registry.counter("mount.cold_scan_pages"),
            mount_retries: registry.counter("mount.transient_retries"),
            iron_audits: registry.counter("iron.audits_run"),
            iron_repairs: registry.counter("iron.counters_repaired"),
            scrub_pages_scanned: registry.counter("scrub.pages_scanned"),
            scrub_faults_detected: registry.counter("scrub.faults_detected"),
            scrub_aas_quarantined: registry.counter("scrub.aas_quarantined"),
            scrub_released: registry.counter("scrub.released"),
            scrub_repairs_scheduled: registry.counter("scrub.repairs_scheduled"),
            scrub_repairs_succeeded: registry.counter("scrub.repairs_succeeded"),
            scrub_read_retries: registry.counter("scrub.read_retries"),
            scrub_counters_repaired: registry.counter("scrub.counters_repaired"),
            gauge_health_state: registry.gauge("health.state"),
            gauge_quarantined_aas: registry.gauge("health.quarantined_aas"),
            gauge_quarantined_structures: registry.gauge("health.quarantined_structures"),
            gauge_pending_repairs: registry.gauge("health.pending_repairs"),
            gauge_free_fraction: registry.gauge("space.free_fraction"),
            gauge_delayed_free_backlog: registry.gauge("delayed_free.backlog_blocks"),
            tracer: None,
            cp_series: None,
            registry,
        }
    }

    /// The shared registry backing these handles.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Pre-register the `allocator.shard.{i}.*` lease-traffic counters
    /// for `n` worker shards. Called once at aggregate construction when
    /// sharded write allocation is configured; idempotent per name (the
    /// registry returns the existing handle on re-registration).
    pub(crate) fn register_shards(&mut self, n: usize) {
        self.shard = (0..n)
            .map(|i| ShardObs {
                leases: self
                    .registry
                    .counter(&format!("allocator.shard.{i}.leases")),
                steals: self
                    .registry
                    .counter(&format!("allocator.shard.{i}.steals")),
            })
            .collect();
    }

    /// Switch on the flight recorder: a bounded trace journal with room
    /// for `capacity` events plus the per-CP time series. Called once at
    /// aggregate construction, after [`FsObs::register_shards`] so the
    /// series can track the per-shard lease counters.
    pub(crate) fn enable_tracing(&mut self, capacity: usize) {
        let mut counters: Vec<String> = [
            "cp.completed",
            "allocator.aas_claimed",
            "allocator.blocks_examined",
            "allocator.cursor_hits",
            "allocator.cursor_misses",
            "allocator.sweep_fallback_picks",
            "scrub.faults_detected",
            "scrub.aas_quarantined",
            "scrub.released",
            wafl_obs::trace::DROPPED_EVENTS,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        for i in 0..self.shard.len() {
            counters.push(format!("allocator.shard.{i}.leases"));
            counters.push(format!("allocator.shard.{i}.steals"));
        }
        let counter_refs: Vec<&str> = counters.iter().map(|s| s.as_str()).collect();
        self.cp_series = Some(PerCpSeries::new(
            &self.registry,
            &counter_refs,
            &["cp.wall.total_us", "cp.phase.media_us"],
            &[
                "space.free_fraction",
                "health.state",
                "health.quarantined_aas",
                "delayed_free.backlog_blocks",
            ],
        ));
        self.tracer = Some(Tracer::new(capacity, &self.registry));
    }

    /// Append a trace event stamped now; a no-op costing one `Option`
    /// check when tracing is off.
    #[inline]
    pub(crate) fn trace(&self, cp: u64, shard: Option<u32>, data: TraceData) {
        if let Some(t) = &self.tracer {
            t.emit(cp, shard, data);
        }
    }

    /// Append a trace event with an explicit timestamp (the CP engine's
    /// reconstructed phase timeline).
    #[inline]
    pub(crate) fn trace_at(&self, ts_us: f64, cp: u64, shard: Option<u32>, data: TraceData) {
        if let Some(t) = &self.tracer {
            t.emit_at(ts_us, cp, shard, data);
        }
    }

    /// µs since the tracer's epoch, when tracing is on.
    #[inline]
    pub(crate) fn trace_now_us(&self) -> Option<f64> {
        self.tracer.as_ref().map(|t| t.now_us())
    }

    /// Record one per-CP series row, when tracing is on.
    pub(crate) fn sample_cp_series(&mut self, cp: u64) {
        if let Some(series) = &mut self.cp_series {
            series.sample(cp);
        }
    }

    /// Per-volume metric name under the `vol=<id>` label prefix, so
    /// multi-volume runs stay attributable per volume in snapshot output.
    pub fn vol_metric_name(vol: wafl_types::VolumeId, name: &str) -> String {
        format!("vol={}.{name}", vol.get())
    }

    /// Counter handle under the volume's `vol=<id>` label prefix. This
    /// formats the name (and takes the registry lock), so it belongs at
    /// CP-boundary frequency, never on a per-op path.
    pub(crate) fn vol_counter(&self, vol: wafl_types::VolumeId, name: &str) -> Counter {
        self.registry.counter(&Self::vol_metric_name(vol, name))
    }

    /// Gauge handle under the volume's `vol=<id>` label prefix; same
    /// CP-boundary-only caveat as [`FsObs::vol_counter`].
    pub(crate) fn vol_gauge(&self, vol: wafl_types::VolumeId, name: &str) -> Gauge {
        self.registry.gauge(&Self::vol_metric_name(vol, name))
    }

    /// Fold one HBPS maintenance-stats delta into the counters.
    pub(crate) fn record_hbps_stats(&self, s: HbpsStats) {
        self.hbps_bin_moves.inc(s.bin_moves);
        self.hbps_boundary_rotations.inc(s.boundary_rotations);
        self.hbps_list_inserts.inc(s.list_inserts);
        self.hbps_list_evictions.inc(s.list_evictions);
        self.hbps_list_refills.inc(s.refills);
    }

    /// Fold one heap-cache maintenance-stats delta into the counters.
    pub(crate) fn record_heap_stats(&self, s: HeapCacheStats) {
        self.heap_rebalances.inc(s.rebalances);
        self.heap_rebalance_updates.inc(s.rebalance_updates);
        self.heap_sift_swaps.inc(s.sift_swaps);
    }
}

impl Default for FsObs {
    fn default() -> FsObs {
        FsObs::new(Registry::new())
    }
}

/// One worker shard's lease-traffic counters.
///
/// The unit of both counters is a *lease* — one batch of AA ranges
/// handed out by the lease manager — not an individual AA (a single
/// lease typically spans several AA ranges).
#[derive(Clone, Debug)]
pub(crate) struct ShardObs {
    /// Lease batches this shard drew from its own pre-partitioned queue
    /// (the rank-ordered drain prefix is dealt round-robin into
    /// per-shard queues up front).
    pub(crate) leases: Counter,
    /// Lease batches this shard stole after its *own* queue ran dry:
    /// the most recently queued lease (`pop_back`) of the most-loaded
    /// sibling. Attributed to the stealing shard, not the victim.
    pub(crate) steals: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_registry() {
        let obs = FsObs::default();
        obs.aas_claimed.inc(4);
        obs.record_hbps_stats(HbpsStats {
            bin_moves: 2,
            ..Default::default()
        });
        obs.record_heap_stats(HeapCacheStats {
            rebalances: 1,
            ..Default::default()
        });
        let reg = obs.registry();
        assert_eq!(reg.counter_value("allocator.aas_claimed"), Some(4));
        assert_eq!(reg.counter_value("hbps.bin_moves"), Some(2));
        assert_eq!(reg.counter_value("heap.rebalances"), Some(1));
    }

    #[test]
    fn snapshot_mentions_every_subsystem() {
        let obs = FsObs::default();
        let json = obs.registry().snapshot_json();
        for key in [
            "allocator.aas_claimed",
            "allocator.pick_score_error_bin_widths",
            "hbps.bin_moves",
            "heap.rebalances",
            "cp.completed",
            "cp.phase.media_us",
            "mount.topaa_seed_hits",
            "iron.audits_run",
            "scrub.pages_scanned",
            "scrub.faults_detected",
            "health.state",
            "health.quarantined_aas",
            "space.free_fraction",
            "delayed_free.backlog_blocks",
        ] {
            assert!(json.contains(key), "snapshot missing {key}");
        }
    }
}
