//! Online scrub & quarantine: continuous integrity verification of the
//! free-space metadata, with a per-aggregate health state machine and
//! allocator avoidance of suspect regions.
//!
//! The mount/Iron stack (§3.4) catches damage *at remount*: scribbled
//! TopAA blocks degrade to cold scans, and `iron::check` audits the whole
//! aggregate when someone asks. Nothing catches a memory scribble that
//! lands *while the aggregate is serving traffic* — a flipped summary
//! counter silently misdirects the allocator toward full regions (or
//! double-allocates, if the counter claims free space that is not there)
//! until the next remount.
//!
//! This module closes that gap with an **incremental scrubber** wired
//! into the CP engine: every consistency point, a budget of
//! [`AggregateConfig::scrub_pages_per_cp`](crate::AggregateConfig)
//! verification units is checked against popcount ground truth — bitmap
//! summary pages (per-page and per-AA free counters) and TopAA cache
//! structures (per-AA heap scores). On a mismatch:
//!
//! 1. the affected scope is **quarantined**: the allocator skips
//!    quarantined AAs entirely and bypasses quarantined cache structures
//!    (falling back to a popcount-guided sweep), so no write ever lands
//!    on free-space metadata that is known to be lying;
//! 2. a **repair ticket** is scheduled, reusing the structure-scoped
//!    Iron machinery ([`wafl_bitmap::Bitmap::rebuild_page_summary`], cache
//!    rebuilds) with capped exponential backoff measured in CP counts
//!    ([`RetryPolicy::backoff_cps`]);
//! 3. the per-aggregate **health state machine** advances:
//!    `Healthy → Degraded(n) → ReadOnly`, with hysteresis on the way
//!    back — the aggregate returns to `Healthy` only after
//!    [`ScrubState::hysteresis_cps`] consecutive fault-free scrub steps.
//!    `ReadOnly` (entered when a repair exhausts its retry budget, e.g.
//!    a persistently unreadable metafile) rejects new client mutations
//!    while still running CPs, so repairs keep being attempted.
//!
//! Verification always popcounts raw bits ([`wafl_bitmap::Bitmap::
//! free_count_range_popcount`]) rather than trusting the summary-
//! accelerated paths — the summaries are exactly the state under
//! suspicion.
//!
//! See `docs/recovery.md` ("Runtime scrub & quarantine") for the state
//! diagram, the escalation table, and seed-reproduction instructions for
//! the runtime torture suite.

use crate::aggregate::{build_group_cache, Aggregate, GroupCache};
use std::collections::BTreeSet;
use std::fmt;
use wafl_core::RaidAgnosticCache;
use wafl_faults::{FaultSession, ReadOutcome, RuntimeTarget, StructureId};
use wafl_obs::trace::TraceData;
use wafl_types::{AaId, AaScore, RetryPolicy, Vbn, WaflError, WaflResult, BITS_PER_BITMAP_BLOCK};

/// Aggregate health as driven by the runtime scrubber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// No quarantined state and no pending repairs.
    Healthy,
    /// `n` structures/regions are quarantined or awaiting repair; the
    /// allocator routes around them and traffic continues.
    Degraded(u32),
    /// A repair exhausted its retry budget (persistent metafile damage):
    /// new client mutations are rejected until repairs succeed and the
    /// hysteresis window passes.
    ReadOnly,
}

impl HealthState {
    /// Numeric encoding for the `health.state` gauge: 0 / 1 / 2.
    pub fn as_gauge(self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Degraded(_) => 1.0,
            HealthState::ReadOnly => 2.0,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded(n) => write!(f, "degraded({n})"),
            HealthState::ReadOnly => write!(f, "read-only"),
        }
    }
}

/// One verifiable unit of derived free-space state. The scrub cursor
/// enumerates these in a fixed order: group caches, aggregate bitmap
/// pages, then per volume its cache followed by its bitmap pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ScrubTarget {
    /// One per-page summary counter of the aggregate bitmap (plus any
    /// per-AA counters whose tiling intersects the page).
    AggPage(usize),
    /// A RAID group's in-memory TopAA cache (heap scores vs popcount).
    GroupCache(usize),
    /// A FlexVol's AA cache structure.
    VolCache(usize),
    /// One per-page summary counter of a volume bitmap (plus intersecting
    /// per-AA counters).
    VolPage(usize, usize),
}

/// A scheduled structure-scoped repair, produced by a failed verify.
#[derive(Clone, Copy, Debug)]
struct RepairTicket {
    target: ScrubTarget,
    /// Deferred attempts consumed so far (each inline attempt may itself
    /// retry reads within [`RetryPolicy::max_retries`]).
    attempts: u32,
    /// CP count before which this ticket is not processed (capped
    /// exponential backoff).
    not_before_cp: u64,
}

/// Runtime scrubber state, owned by the [`Aggregate`]. Volatile: a crash
/// loses the cursor, tickets, and health (remount re-derives health from
/// its own degradation events via [`refresh_health`]).
#[derive(Debug)]
pub struct ScrubState {
    /// Verification units checked per CP (0 disables the scrubber).
    pages_per_cp: u64,
    /// Next unit index (modulo the current unit count).
    cursor: u64,
    /// Read-retry budget and deferred backoff schedule for repairs.
    policy: RetryPolicy,
    /// Consecutive fault-free scrub steps required to return to
    /// [`HealthState::Healthy`].
    hysteresis_cps: u64,
    tickets: Vec<RepairTicket>,
    health: HealthState,
    clean_cps: u64,
    read_only_reason: Option<String>,
}

impl ScrubState {
    /// Fresh state with the given per-CP verification budget.
    pub(crate) fn new(pages_per_cp: u64) -> ScrubState {
        ScrubState {
            pages_per_cp,
            cursor: 0,
            policy: RetryPolicy::default(),
            hysteresis_cps: 2,
            tickets: Vec::new(),
            health: HealthState::Healthy,
            clean_cps: 0,
            read_only_reason: None,
        }
    }

    /// Current health.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Why the aggregate is read-only, if it is.
    pub fn read_only_reason(&self) -> Option<&str> {
        self.read_only_reason.as_deref()
    }

    /// Replace the repair retry/backoff policy.
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Whether the scrubber runs at CP boundaries.
    pub fn enabled(&self) -> bool {
        self.pages_per_cp > 0
    }

    /// Drop everything a power loss would: cursor, tickets, hysteresis,
    /// health. The quarantine flags live on the groups/volumes and are
    /// cleared by [`crate::mount::crash`] alongside the caches.
    pub(crate) fn reset_volatile(&mut self) {
        self.cursor = 0;
        self.tickets.clear();
        self.clean_cps = 0;
        self.health = HealthState::Healthy;
        self.read_only_reason = None;
    }
}

/// Public snapshot of the scrubber (CLI `--check`, harness assertions).
#[derive(Clone, Debug)]
pub struct ScrubStatus {
    /// Current health state.
    pub health: HealthState,
    /// Repair tickets awaiting processing.
    pub pending_repairs: usize,
    /// Quarantined AAs across all groups and volumes.
    pub quarantined_aas: u64,
    /// Cache structures (groups + volumes) under structure quarantine.
    pub quarantined_structures: u64,
    /// Consecutive fault-free scrub steps (hysteresis progress).
    pub clean_cps: u64,
    /// Why the aggregate is read-only, if it is.
    pub read_only_reason: Option<String>,
    /// Verification units in the current enumeration.
    pub total_units: u64,
}

/// Verification units currently enumerable: one per group cache, one per
/// aggregate bitmap page, and per volume one cache unit plus its bitmap
/// pages. Recomputed every step so growth (`add_raid_group`) is picked up.
pub(crate) fn total_units(agg: &Aggregate) -> u64 {
    let mut total = agg.groups.len() as u64 + agg.bitmap.page_count() as u64;
    for v in &agg.vols {
        total += 1 + v.bitmap().page_count() as u64;
    }
    total
}

/// The unit at enumeration index `idx` (callers reduce modulo
/// [`total_units`] first).
fn target_at(agg: &Aggregate, mut idx: u64) -> ScrubTarget {
    let groups = agg.groups.len() as u64;
    if idx < groups {
        return ScrubTarget::GroupCache(idx as usize);
    }
    idx -= groups;
    let agg_pages = agg.bitmap.page_count() as u64;
    if idx < agg_pages {
        return ScrubTarget::AggPage(idx as usize);
    }
    idx -= agg_pages;
    for (v, vol) in agg.vols.iter().enumerate() {
        if idx == 0 {
            return ScrubTarget::VolCache(v);
        }
        idx -= 1;
        let pages = vol.bitmap().page_count() as u64;
        if idx < pages {
            return ScrubTarget::VolPage(v, idx as usize);
        }
        idx -= pages;
    }
    // Unreachable when idx < total_units(agg); fall back defensively.
    ScrubTarget::AggPage(0)
}

/// The persisted structure a scrub read of `target` touches — what the
/// fault injector's read-error schedule keys on.
fn structure_of(agg: &Aggregate, target: ScrubTarget) -> StructureId {
    match target {
        ScrubTarget::GroupCache(g) => StructureId::Group(g),
        ScrubTarget::AggPage(p) => {
            let start = Vbn(p as u64 * BITS_PER_BITMAP_BLOCK);
            let g = agg
                .groups
                .iter()
                .position(|g| g.geometry.contains(start))
                .unwrap_or(0);
            StructureId::Group(g)
        }
        ScrubTarget::VolCache(v) | ScrubTarget::VolPage(v, _) => StructureId::Volume(v),
    }
}

/// Physical AAs whose tiling intersects aggregate bitmap page `p`, as
/// `(group index, AA)` pairs. A page can span a group boundary.
fn agg_page_aas(agg: &Aggregate, p: usize) -> Vec<(usize, AaId)> {
    let page_start = p as u64 * BITS_PER_BITMAP_BLOCK;
    let page_end = (page_start + BITS_PER_BITMAP_BLOCK).min(agg.bitmap.space_len());
    let mut out = Vec::new();
    if page_start >= page_end {
        return out;
    }
    for (gi, g) in agg.groups.iter().enumerate() {
        let base = g.geometry.base_vbn.get();
        let end = g.geometry.end_vbn().get();
        let s = page_start.max(base);
        let e = page_end.min(end);
        if s >= e {
            continue;
        }
        let (Ok(first), Ok(last)) = (
            g.topology.aa_of_vbn(Vbn(s)),
            g.topology.aa_of_vbn(Vbn(e - 1)),
        ) else {
            continue;
        };
        for aa in first.get()..=last.get() {
            out.push((gi, AaId(aa)));
        }
    }
    out
}

/// Virtual AAs whose tiling intersects volume `v`'s bitmap page `p`.
fn vol_page_aas(agg: &Aggregate, v: usize, p: usize) -> Vec<AaId> {
    let Some(vol) = agg.vols.get(v) else {
        return Vec::new();
    };
    let page_start = p as u64 * BITS_PER_BITMAP_BLOCK;
    let page_end = (page_start + BITS_PER_BITMAP_BLOCK).min(vol.bitmap().space_len());
    if page_start >= page_end {
        return Vec::new();
    }
    let (Ok(first), Ok(last)) = (
        vol.topology().aa_of_vbn(Vbn(page_start)),
        vol.topology().aa_of_vbn(Vbn(page_end - 1)),
    ) else {
        return Vec::new();
    };
    (first.get()..=last.get()).map(AaId).collect()
}

/// Divergent counters in one bitmap page's summary scope: the per-page
/// free counter plus any per-AA counters intersecting the page, each
/// checked against a popcount of the raw bits.
fn verify_bitmap_page(bitmap: &wafl_bitmap::Bitmap, p: usize) -> u64 {
    let Some(page) = bitmap.page(p) else {
        return 0;
    };
    let mut bad = 0u64;
    if bitmap.page_free_count(p).unwrap_or(0) != page.free_count() {
        bad += 1;
    }
    if let Some(aa_blocks) = bitmap.aa_summary_blocks() {
        if let Some(counts) = bitmap.aa_free_counts(aa_blocks) {
            let page_start = p as u64 * BITS_PER_BITMAP_BLOCK;
            let page_end = (page_start + BITS_PER_BITMAP_BLOCK).min(bitmap.space_len());
            if page_start < page_end {
                let first = (page_start / aa_blocks) as usize;
                let last = ((page_end - 1) / aa_blocks) as usize;
                for (aa, &count) in counts.iter().enumerate().take(last + 1).skip(first) {
                    let start = Vbn(aa as u64 * aa_blocks);
                    if count != bitmap.free_count_range_popcount(start, aa_blocks) {
                        bad += 1;
                    }
                }
            }
        }
    }
    bad
}

/// Divergences in one verification unit; 0 = clean. All comparisons run
/// against popcount ground truth — never the summary-accelerated paths.
fn verify(agg: &Aggregate, target: ScrubTarget) -> u64 {
    match target {
        ScrubTarget::AggPage(p) => verify_bitmap_page(&agg.bitmap, p),
        ScrubTarget::VolPage(v, p) => agg
            .vols
            .get(v)
            .map(|vol| verify_bitmap_page(vol.bitmap(), p))
            .unwrap_or(0),
        ScrubTarget::GroupCache(gi) => {
            let Some(g) = agg.groups.get(gi) else {
                return 0;
            };
            match g.cache.as_ref() {
                Some(GroupCache::Heap(cache)) => {
                    let mut bad = 0u64;
                    for aa in 0..g.topology.aa_count() {
                        let aa = AaId(aa);
                        // Absent AAs are legitimate: actively draining, or
                        // awaiting a seeded cache's background rebuild.
                        if !cache.contains(aa) {
                            continue;
                        }
                        let truth: u32 = g
                            .topology
                            .aa_vbn_ranges(aa)
                            .iter()
                            .map(|&(s, l)| agg.bitmap.free_count_range_popcount(s, l))
                            .sum();
                        if cache.score_of(aa).get() != truth {
                            bad += 1;
                        }
                    }
                    bad
                }
                // HBPS holds no falsifiable per-AA scores (bin drift is
                // self-healing via replenish); a disabled cache has no
                // derived state at all.
                Some(GroupCache::Hbps(_)) | None => 0,
            }
        }
        ScrubTarget::VolCache(v) => {
            // The volume cache is HBPS-backed: nothing per-AA to falsify.
            // The only detectable damage is the cache being gone while
            // the volume is configured to have one.
            agg.vols
                .get(v)
                .map(|vol| u64::from(vol.config().aa_cache && vol.cache().is_none()))
                .unwrap_or(0)
        }
    }
}

/// Quarantine the scope of a failed unit so allocation avoids it.
/// Returns the number of AAs newly quarantined (structure flags count 0).
///
/// `diverged` is the evidence gate for the page arms: a unit the scrubber
/// could not *read* is unknown, not known-bad, and a bitmap page's AA
/// scope is large (device-major layout puts half a device column — half
/// the group's AAs — under one page). Quarantining that scope on a mere
/// read failure lets a burst of transient IO errors fence off every AA
/// and fail CPs with free space on hand, so AAs are quarantined only
/// when a popcount comparison proved the counters wrong. Cache
/// structures quarantine on any fault either way — their fallback is the
/// popcount-guided sweep, which keeps serving writes.
fn quarantine(agg: &mut Aggregate, target: ScrubTarget, diverged: bool) -> u64 {
    match target {
        ScrubTarget::GroupCache(gi) => {
            if let Some(g) = agg.groups.get_mut(gi) {
                g.cache_quarantined = true;
            }
            0
        }
        ScrubTarget::VolCache(v) => {
            if let Some(vol) = agg.vols.get_mut(v) {
                vol.cache_quarantined = true;
            }
            0
        }
        ScrubTarget::AggPage(_) | ScrubTarget::VolPage(..) if !diverged => 0,
        ScrubTarget::AggPage(p) => {
            let mut n = 0u64;
            for (gi, aa) in agg_page_aas(agg, p) {
                if agg.groups[gi].quarantined_aas.insert(aa) {
                    n += 1;
                }
            }
            n
        }
        ScrubTarget::VolPage(v, p) => {
            let aas = vol_page_aas(agg, v, p);
            let mut n = 0u64;
            if let Some(vol) = agg.vols.get_mut(v) {
                for aa in aas {
                    if vol.quarantined_aas.insert(aa) {
                        // The quarantined AA may be the cursor's: the
                        // allocator must not resume into (or trust) it.
                        if vol.drain_cursor.map(|(c, _)| c) == Some(aa) {
                            vol.invalidate_drain_cursor();
                        }
                        n += 1;
                    }
                }
            }
            n
        }
    }
}

/// Lift the quarantine of a repaired unit, keeping anything still covered
/// by another pending ticket. Returns AAs + structure flags released.
fn release(agg: &mut Aggregate, target: ScrubTarget, remaining: &[RepairTicket]) -> u64 {
    match target {
        ScrubTarget::GroupCache(gi) => {
            let still = remaining
                .iter()
                .any(|t| t.target == ScrubTarget::GroupCache(gi));
            match agg.groups.get_mut(gi) {
                Some(g) if !still && g.cache_quarantined => {
                    g.cache_quarantined = false;
                    1
                }
                _ => 0,
            }
        }
        ScrubTarget::VolCache(v) => {
            let still = remaining
                .iter()
                .any(|t| t.target == ScrubTarget::VolCache(v));
            match agg.vols.get_mut(v) {
                Some(vol) if !still && vol.cache_quarantined => {
                    vol.cache_quarantined = false;
                    1
                }
                _ => 0,
            }
        }
        ScrubTarget::AggPage(p) => {
            let keep: BTreeSet<(usize, AaId)> = remaining
                .iter()
                .filter_map(|t| match t.target {
                    ScrubTarget::AggPage(q) => Some(agg_page_aas(agg, q)),
                    _ => None,
                })
                .flatten()
                .collect();
            let scope = agg_page_aas(agg, p);
            let mut released = 0u64;
            for (gi, aa) in scope {
                if keep.contains(&(gi, aa)) {
                    continue;
                }
                if agg.groups[gi].quarantined_aas.remove(&aa) {
                    released += 1;
                }
            }
            released
        }
        ScrubTarget::VolPage(v, p) => {
            let keep: BTreeSet<AaId> = remaining
                .iter()
                .filter_map(|t| match t.target {
                    ScrubTarget::VolPage(w, q) if w == v => Some(vol_page_aas(agg, w, q)),
                    _ => None,
                })
                .flatten()
                .collect();
            let scope = vol_page_aas(agg, v, p);
            let mut released = 0u64;
            if let Some(vol) = agg.vols.get_mut(v) {
                for aa in scope {
                    if keep.contains(&aa) {
                        continue;
                    }
                    if vol.quarantined_aas.remove(&aa) {
                        released += 1;
                    }
                }
            }
            released
        }
    }
}

/// Structure-scoped repair: recompute exactly the damaged unit from the
/// authoritative raw bits (the Iron machinery, scoped down from the
/// whole-aggregate [`crate::iron::repair`]). Returns counters rewritten
/// (bitmap-page repairs; cache rebuilds return 0 and are counted as
/// repairs by the caller).
fn repair(agg: &mut Aggregate, target: ScrubTarget) -> WaflResult<u64> {
    match target {
        ScrubTarget::AggPage(p) => Ok(agg.bitmap.rebuild_page_summary(p)),
        ScrubTarget::VolPage(v, p) => Ok(agg
            .vols
            .get_mut(v)
            .map(|vol| vol.bitmap.rebuild_page_summary(p))
            .unwrap_or(0)),
        ScrubTarget::GroupCache(gi) => {
            if agg.cfg.raid_aware_cache && gi < agg.groups.len() {
                let cache = build_group_cache(&agg.groups[gi], &agg.bitmap)?;
                agg.groups[gi].cache = Some(cache);
                agg.groups[gi].active_aa = None;
            }
            Ok(0)
        }
        ScrubTarget::VolCache(v) => {
            if let Some(vol) = agg.vols.get_mut(v) {
                if vol.config().aa_cache {
                    vol.cache = Some(RaidAgnosticCache::build(
                        vol.topology().clone(),
                        &vol.bitmap,
                    )?);
                    vol.active_aa = None;
                    vol.invalidate_drain_cursor();
                }
            }
            Ok(0)
        }
    }
}

/// One gated metafile read for the scrubber, retried inline within the
/// policy's budget. With no fault session every read succeeds.
fn gated_read(
    faults: &mut Option<&mut FaultSession<'_>>,
    target: StructureId,
    policy: RetryPolicy,
) -> (WaflResult<()>, u32) {
    let Some(session) = faults.as_deref_mut() else {
        return (Ok(()), 0);
    };
    policy.run(|| match session.on_scrub_read(target) {
        ReadOutcome::Ok => Ok(()),
        ReadOutcome::Transient => Err(WaflError::TransientIo {
            reason: format!("scrub read failed for {target:?}"),
        }),
        ReadOutcome::Persistent => Err(WaflError::CorruptMetafile {
            reason: format!("metafile persistently unreadable for {target:?}"),
        }),
    })
}

/// Quarantined state not covered by any pending ticket, plus the tickets
/// themselves — the "pending" count the health state machine keys on.
fn pending_count(agg: &Aggregate) -> u32 {
    let tickets = &agg.scrub.tickets;
    let mut pending = tickets.len() as u32;
    let any_agg_page = tickets
        .iter()
        .any(|t| matches!(t.target, ScrubTarget::AggPage(_)));
    for (gi, g) in agg.groups.iter().enumerate() {
        if g.cache_quarantined
            && !tickets
                .iter()
                .any(|t| t.target == ScrubTarget::GroupCache(gi))
        {
            pending += 1;
        }
        // Coarse: quarantined AAs are normally ticket-covered; unticketed
        // ones (should not happen) still hold the aggregate out of
        // Healthy, which is the safe direction.
        if !g.quarantined_aas.is_empty() && !any_agg_page {
            pending += 1;
        }
    }
    for (v, vol) in agg.vols.iter().enumerate() {
        if vol.cache_quarantined && !tickets.iter().any(|t| t.target == ScrubTarget::VolCache(v)) {
            pending += 1;
        }
        let vol_page_ticketed = tickets
            .iter()
            .any(|t| matches!(t.target, ScrubTarget::VolPage(w, _) if w == v));
        if !vol.quarantined_aas.is_empty() && !vol_page_ticketed {
            pending += 1;
        }
    }
    pending
}

/// Export the health gauges from the current state.
fn export_gauges(agg: &Aggregate) {
    let status = status(agg);
    agg.obs.gauge_health_state.set(status.health.as_gauge());
    agg.obs
        .gauge_quarantined_aas
        .set(status.quarantined_aas as f64);
    agg.obs
        .gauge_quarantined_structures
        .set(status.quarantined_structures as f64);
    agg.obs
        .gauge_pending_repairs
        .set(status.pending_repairs as f64);
}

/// Snapshot the scrubber for callers outside the CP engine.
pub(crate) fn status(agg: &Aggregate) -> ScrubStatus {
    let mut quarantined_aas = 0u64;
    let mut quarantined_structures = 0u64;
    for g in &agg.groups {
        quarantined_aas += g.quarantined_aas.len() as u64;
        quarantined_structures += u64::from(g.cache_quarantined);
    }
    for v in &agg.vols {
        quarantined_aas += v.quarantined_aas.len() as u64;
        quarantined_structures += u64::from(v.cache_quarantined);
    }
    ScrubStatus {
        health: agg.scrub.health,
        pending_repairs: agg.scrub.tickets.len(),
        quarantined_aas,
        quarantined_structures,
        clean_cps: agg.scrub.clean_cps,
        read_only_reason: agg.scrub.read_only_reason.clone(),
        total_units: total_units(agg),
    }
}

/// Recompute health directly from the quarantine/ticket state, without
/// hysteresis — used at mount (degradations quarantine structures before
/// any scrub step runs) and after a full Iron repair.
pub(crate) fn refresh_health(agg: &mut Aggregate) {
    let before = agg.scrub.health;
    let pending = pending_count(agg);
    if pending == 0 {
        agg.scrub.health = HealthState::Healthy;
        agg.scrub.read_only_reason = None;
    } else if agg.scrub.health != HealthState::ReadOnly {
        agg.scrub.health = HealthState::Degraded(pending);
    }
    agg.scrub.clean_cps = 0;
    trace_health_change(agg, before);
    export_gauges(agg);
}

/// Journal a health transition if the state machine moved (the flight
/// recorder's `health.state` instants; `Degraded(n)` collapses to its
/// gauge encoding — different `n` is not a transition).
fn trace_health_change(agg: &Aggregate, before: HealthState) {
    let (from, to) = (before.as_gauge() as u8, agg.scrub.health.as_gauge() as u8);
    if from != to {
        agg.obs
            .trace(agg.cp_count, None, TraceData::HealthChange { from, to });
    }
}

/// Clear every quarantine and ticket (a full Iron repair rebuilt all the
/// derived state, so nothing remains suspect) and return to Healthy.
pub(crate) fn clear_all(agg: &mut Aggregate) {
    for g in &mut agg.groups {
        g.quarantined_aas.clear();
        g.cache_quarantined = false;
    }
    for v in &mut agg.vols {
        v.quarantined_aas.clear();
        v.cache_quarantined = false;
    }
    agg.scrub.tickets.clear();
    agg.scrub.clean_cps = 0;
    agg.scrub.health = HealthState::Healthy;
    agg.scrub.read_only_reason = None;
    export_gauges(agg);
}

/// Fire every runtime scribble due at the current CP count: in-memory
/// corruption of live summary counters / cached scores, applied while
/// the aggregate serves traffic. Returns the number that actually changed
/// state (a scribble aimed at an absent structure hits nothing).
pub fn apply_due_runtime_scribbles(agg: &mut Aggregate, session: &mut FaultSession<'_>) -> u64 {
    let mut applied = 0u64;
    for fault in session.take_due_runtime_scribbles(agg.cp_count) {
        match fault.target {
            RuntimeTarget::AggSummaryPage { page } => {
                let pages = agg.bitmap.page_count();
                if pages == 0 {
                    continue;
                }
                let p = page % pages;
                let cur = agg.bitmap.page_free_count(p).unwrap_or(0) as u16;
                let xor = ((fault.value_seed >> 16) as u16) | 1;
                agg.bitmap.scribble_page_counter(p, cur ^ xor);
                applied += 1;
            }
            RuntimeTarget::VolSummaryPage { vol, page } => {
                if agg.vols.is_empty() {
                    continue;
                }
                let v = vol % agg.vols.len();
                let pages = agg.vols[v].bitmap.page_count();
                if pages == 0 {
                    continue;
                }
                let p = page % pages;
                let cur = agg.vols[v].bitmap.page_free_count(p).unwrap_or(0) as u16;
                let xor = ((fault.value_seed >> 16) as u16) | 1;
                agg.vols[v].bitmap.scribble_page_counter(p, cur ^ xor);
                applied += 1;
            }
            RuntimeTarget::GroupCacheScore { group } => {
                if agg.groups.is_empty() {
                    continue;
                }
                let gi = group % agg.groups.len();
                if let Some(GroupCache::Heap(cache)) = agg.groups[gi].cache.as_mut() {
                    // Corrupt the best AA's cached score downward (always
                    // within the heap's max clamp, always a real change).
                    if let Some((aa, score)) = cache.best() {
                        if score.get() > 0 {
                            let dec = (fault.value_seed as u32 % score.get()) + 1;
                            let corrupted = AaScore(score.get() - dec);
                            if cache.insert(aa, corrupted).is_ok() {
                                applied += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    applied
}

/// One scrub step, run by the CP engine at the start of every CP (before
/// any allocation of the CP touches the bitmaps):
///
/// 1. process due repair tickets (gated read → repair → re-verify →
///    release, with escalation on failure);
/// 2. scan exactly `pages_per_cp` verification units from the cursor,
///    ticketing every fault; a verified counter divergence additionally
///    quarantines the page's AA scope (an unreadable unit only tickets —
///    see [`quarantine`]);
/// 3. advance the health state machine and export the gauges.
pub(crate) fn run_step(
    agg: &mut Aggregate,
    mut faults: Option<&mut FaultSession<'_>>,
) -> WaflResult<()> {
    let cp = agg.cp_count;
    let policy = agg.scrub.policy;
    let health_before = agg.scrub.health;

    // ---- 1. due repair tickets -------------------------------------
    let mut tickets = std::mem::take(&mut agg.scrub.tickets);
    let mut i = 0;
    while i < tickets.len() {
        if tickets[i].not_before_cp > cp {
            i += 1;
            continue;
        }
        let target = tickets[i].target;
        let sid = structure_of(agg, target);
        let (read, retries) = gated_read(&mut faults, sid, policy);
        agg.obs.scrub_read_retries.inc(retries as u64);
        let outcome = match read {
            Ok(()) => {
                let fixed = repair(agg, target)?;
                agg.obs.scrub_counters_repaired.inc(fixed);
                if verify(agg, target) == 0 {
                    Ok(())
                } else {
                    Err(WaflError::CorruptMetafile {
                        reason: format!("scrub repair did not converge for {target:?}"),
                    })
                }
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok(()) => {
                let ticket = tickets.remove(i);
                let released = release(agg, ticket.target, &tickets);
                agg.obs.scrub_released.inc(released);
                agg.obs.scrub_repairs_succeeded.inc(1);
                if released > 0 {
                    agg.obs
                        .trace(cp, None, TraceData::Release { units: released });
                }
                // `i` stays: the next ticket shifted into this slot.
            }
            Err(e) => {
                tickets[i].attempts += 1;
                tickets[i].not_before_cp = cp + policy.backoff_cps(tickets[i].attempts);
                if tickets[i].attempts > policy.max_retries
                    && agg.scrub.health != HealthState::ReadOnly
                {
                    agg.scrub.health = HealthState::ReadOnly;
                    agg.scrub.read_only_reason = Some(e.to_string());
                }
                i += 1;
            }
        }
    }
    agg.scrub.tickets = tickets;

    // ---- 2. budgeted verification scan -----------------------------
    let total = total_units(agg);
    if total > 0 {
        for _ in 0..agg.scrub.pages_per_cp {
            let idx = agg.scrub.cursor % total;
            agg.scrub.cursor = (idx + 1) % total;
            agg.obs.scrub_pages_scanned.inc(1);
            let target = target_at(agg, idx);
            // Already ticketed: the repair path owns it. The unit still
            // consumes budget, keeping the per-CP cost exact.
            if agg.scrub.tickets.iter().any(|t| t.target == target) {
                continue;
            }
            let sid = structure_of(agg, target);
            let read_ok = match faults.as_deref_mut() {
                Some(session) => session.on_scrub_read(sid) == ReadOutcome::Ok,
                None => true,
            };
            let diverged = read_ok && verify(agg, target) > 0;
            let faulty = !read_ok || diverged;
            if faulty {
                agg.obs.scrub_faults_detected.inc(1);
                let quarantined = quarantine(agg, target, diverged);
                agg.obs.scrub_aas_quarantined.inc(quarantined);
                agg.obs.trace(
                    cp,
                    None,
                    TraceData::Quarantine {
                        units: quarantined.max(1), // structure quarantines fence 1 unit
                    },
                );
                agg.scrub.tickets.push(RepairTicket {
                    target,
                    attempts: 0,
                    not_before_cp: cp + policy.backoff_cps(0),
                });
                agg.obs.scrub_repairs_scheduled.inc(1);
            } else {
                // A clean pass over a mount-quarantined structure (no
                // ticket — mount degradations quarantine directly) lifts
                // the quarantine: the cold-rebuilt cache verified fine.
                match target {
                    ScrubTarget::GroupCache(gi) if agg.groups[gi].cache_quarantined => {
                        agg.groups[gi].cache_quarantined = false;
                        agg.obs.scrub_released.inc(1);
                        agg.obs.trace(cp, None, TraceData::Release { units: 1 });
                    }
                    ScrubTarget::VolCache(v) if agg.vols[v].cache_quarantined => {
                        agg.vols[v].cache_quarantined = false;
                        agg.obs.scrub_released.inc(1);
                        agg.obs.trace(cp, None, TraceData::Release { units: 1 });
                    }
                    _ => {}
                }
            }
        }
    }

    // ---- 3. health state machine + gauges --------------------------
    let pending = pending_count(agg);
    if pending == 0 {
        agg.scrub.clean_cps += 1;
        if agg.scrub.clean_cps >= agg.scrub.hysteresis_cps {
            agg.scrub.health = HealthState::Healthy;
            agg.scrub.read_only_reason = None;
        }
    } else {
        agg.scrub.clean_cps = 0;
        if agg.scrub.health != HealthState::ReadOnly {
            agg.scrub.health = HealthState::Degraded(pending);
        }
    }
    trace_health_change(agg, health_before);
    export_gauges(agg);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_media::MediaProfile;

    fn agg(scrub_budget: u64) -> Aggregate {
        Aggregate::new(
            AggregateConfig {
                scrub_pages_per_cp: scrub_budget,
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            12,
        )
        .unwrap()
    }

    #[test]
    fn unit_enumeration_covers_everything_once() {
        let a = agg(4);
        let total = total_units(&a);
        // 1 group cache + 8 agg pages (4*16*4096 / 32768) + 1 vol cache
        // + 8 vol pages.
        assert_eq!(total, 1 + 8 + 1 + 8);
        let mut groups = 0;
        let mut agg_pages = 0;
        let mut vol_caches = 0;
        let mut vol_pages = 0;
        for idx in 0..total {
            match target_at(&a, idx) {
                ScrubTarget::GroupCache(_) => groups += 1,
                ScrubTarget::AggPage(_) => agg_pages += 1,
                ScrubTarget::VolCache(_) => vol_caches += 1,
                ScrubTarget::VolPage(..) => vol_pages += 1,
            }
        }
        assert_eq!((groups, agg_pages, vol_caches, vol_pages), (1, 8, 1, 8));
    }

    #[test]
    fn clean_aggregate_verifies_clean() {
        let a = agg(4);
        for idx in 0..total_units(&a) {
            let t = target_at(&a, idx);
            assert_eq!(verify(&a, t), 0, "unit {t:?} dirty on a fresh aggregate");
        }
    }

    #[test]
    fn scribbled_page_counter_is_detected_quarantined_and_repaired() {
        let mut a = agg(0);
        a.vols[0].bitmap.scribble_page_counter(2, u16::MAX);
        let t = ScrubTarget::VolPage(0, 2);
        assert!(verify(&a, t) > 0);
        let q = quarantine(&mut a, t, true);
        assert!(q > 0, "page quarantine must cover at least one AA");
        assert!(!a.vols[0].quarantined_aas.is_empty());
        let fixed = repair(&mut a, t).unwrap();
        assert!(fixed > 0);
        assert_eq!(verify(&a, t), 0);
        let released = release(&mut a, t, &[]);
        assert_eq!(released, q);
        assert!(a.vols[0].quarantined_aas.is_empty());
    }

    #[test]
    fn health_degrades_on_fault_and_recovers_with_hysteresis() {
        let mut a = agg(64); // budget covers everything each step
        a.bitmap.scribble_page_counter(1, 12_345);
        run_step(&mut a, None).unwrap();
        assert!(matches!(a.scrub.health, HealthState::Degraded(_)));
        assert!(!a.groups[0].quarantined_aas.is_empty());
        // Ticket processes next CP (backoff base 1); then hysteresis.
        a.cp_count += 1;
        run_step(&mut a, None).unwrap();
        assert!(a.groups[0].quarantined_aas.is_empty(), "repair releases");
        assert!(
            matches!(
                a.scrub.health,
                HealthState::Degraded(_) | HealthState::Healthy
            ),
            "one clean step is not enough for Healthy: {:?}",
            a.scrub.health
        );
        a.cp_count += 1;
        run_step(&mut a, None).unwrap();
        a.cp_count += 1;
        run_step(&mut a, None).unwrap();
        assert_eq!(a.scrub.health, HealthState::Healthy);
        assert_eq!(a.bitmap.summary_divergences(), 0);
    }

    #[test]
    fn persistent_scrub_read_error_escalates_to_read_only() {
        use wafl_faults::{FaultPlan, ReadErrorFault};
        let mut a = agg(64);
        a.scrub.set_policy(RetryPolicy {
            max_retries: 1,
            backoff_base_cps: 1,
            backoff_cap_cps: 4,
        });
        a.bitmap.scribble_page_counter(0, 999);
        let plan = FaultPlan {
            scrub_read_errors: vec![ReadErrorFault {
                target: StructureId::Group(0),
                failures: u32::MAX, // persistent
            }],
            ..FaultPlan::none()
        };
        let mut session = FaultSession::new(&plan);
        // Detection: the scan itself hits the read error -> ticket.
        run_step(&mut a, Some(&mut session)).unwrap();
        assert!(matches!(a.scrub.health, HealthState::Degraded(_)));
        // Repair attempts exhaust against the persistent error.
        for _ in 0..8 {
            a.cp_count += 1;
            run_step(&mut a, Some(&mut session)).unwrap();
        }
        assert_eq!(a.scrub.health, HealthState::ReadOnly);
        assert!(a.scrub.read_only_reason().is_some());
        // Every group-0 unit (cache + 8 agg pages) hit the persistent
        // error and ticketed; backoff is capped, nothing panics.
        assert_eq!(a.scrub.tickets.len(), 9);
        for t in &a.scrub.tickets {
            assert!(t.not_before_cp <= a.cp_count + 4);
        }
    }

    #[test]
    fn scan_read_error_tickets_without_aa_quarantine() {
        use wafl_faults::{FaultPlan, ReadErrorFault};
        let mut a = agg(64); // budget covers everything each step
        let plan = FaultPlan {
            scrub_read_errors: vec![ReadErrorFault {
                target: StructureId::Group(0),
                failures: 2, // transient: hits GroupCache(0) then AggPage(0)
            }],
            ..FaultPlan::none()
        };
        let mut session = FaultSession::new(&plan);
        run_step(&mut a, Some(&mut session)).unwrap();
        assert!(matches!(a.scrub.health, HealthState::Degraded(_)));
        assert_eq!(a.scrub.tickets.len(), 2);
        assert!(a.groups[0].cache_quarantined, "cache falls back to sweep");
        assert!(
            a.groups[0].quarantined_aas.is_empty(),
            "a failed read is not divergence evidence: the page's AA \
             scope (half the group) must stay allocatable"
        );
        // Failures exhausted: the next ticket pass re-reads, repairs,
        // and releases everything.
        a.cp_count += 1;
        run_step(&mut a, Some(&mut session)).unwrap();
        assert!(a.scrub.tickets.is_empty());
        assert!(!a.groups[0].cache_quarantined);
    }

    #[test]
    fn scan_budget_is_exact() {
        let mut a = agg(3);
        for step in 1..=6u64 {
            run_step(&mut a, None).unwrap();
            a.cp_count += 1;
            assert_eq!(
                a.obs.registry().counter_value("scrub.pages_scanned"),
                Some(3 * step)
            );
        }
        // 18 units total, 3 per step: full coverage in 6 steps.
        assert_eq!(a.scrub.cursor, 0);
    }

    #[test]
    fn corrupted_heap_score_is_detected_and_rebuilt() {
        use wafl_faults::RuntimeScribbleFault;
        let mut a = agg(64);
        crate::aging::fill_volume(&mut a, wafl_types::VolumeId(0), 4096).unwrap();
        let plan = wafl_faults::FaultPlan {
            runtime_scribbles: vec![RuntimeScribbleFault {
                target: RuntimeTarget::GroupCacheScore { group: 0 },
                at_cp: 0,
                value_seed: 0xDEAD_BEEF,
            }],
            ..wafl_faults::FaultPlan::none()
        };
        let mut session = FaultSession::new(&plan);
        let applied = apply_due_runtime_scribbles(&mut a, &mut session);
        assert_eq!(applied, 1);
        assert!(verify(&a, ScrubTarget::GroupCache(0)) > 0);
        run_step(&mut a, Some(&mut session)).unwrap();
        assert!(a.groups[0].cache_quarantined, "structure quarantined");
        a.cp_count += 1;
        run_step(&mut a, Some(&mut session)).unwrap();
        assert!(!a.groups[0].cache_quarantined, "repair lifts quarantine");
        assert_eq!(verify(&a, ScrubTarget::GroupCache(0)), 0);
    }
}
