//! Online consistency checking and repair — the WAFL Iron analogue.
//!
//! §3.4: "In rare cases, if the metafile blocks are damaged in the
//! physical media and RAID is unable to reconstruct them, the online WAFL
//! repair tool — WAFL Iron — is used to recompute and recover them."
//! This module is that tool for the simulated stack: it audits every
//! cross-structure invariant the allocator depends on and recomputes
//! derived state (AA caches, ownership) from the authoritative bitmaps
//! and volume maps.
//!
//! Check phases:
//! 1. **Mappings** — every logical→virtual→physical chain resolves to
//!    allocated bits in both spaces, and no two virtual VBNs share a
//!    physical block.
//! 2. **Ownership** — the reverse `pvbn_owner` map agrees with the volume
//!    maps in both directions.
//! 3. **Space accounting** — per-volume and aggregate occupancy equals
//!    live mappings (plus orphaned aging seeds and logged-but-unapplied
//!    delayed frees).
//! 4. **Caches** — every cached AA score equals the bitmap-derived score.
//!
//! [`check`] reports; [`repair`] additionally rebuilds what can be
//! recomputed (caches, ownership) and reports what it fixed.

use crate::aggregate::{
    build_group_cache, pack_owner, Aggregate, GroupCache, OWNER_NONE, OWNER_ORPHAN,
};
use serde::{Deserialize, Serialize};
use wafl_core::RaidAgnosticCache;
use wafl_types::{AaId, Vbn, WaflResult};

/// Findings of a consistency check.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IronReport {
    /// Logical blocks whose mapping chain is broken (dangling vvbn or
    /// pvbn, or bit not set where required).
    pub broken_mappings: u64,
    /// Physical blocks whose owner entry disagrees with the volume maps.
    pub owner_mismatches: u64,
    /// Allocated physical blocks with no owner and no pending free —
    /// leaked space.
    pub leaked_blocks: u64,
    /// Cached AA scores that disagree with the bitmaps (active AAs are
    /// exempt — they legitimately lag until their drain completes).
    pub stale_scores: u64,
    /// Volumes whose occupancy count disagrees with their live mappings.
    pub volume_accounting_errors: u64,
    /// Repairs performed (zero for a pure check).
    pub repairs: u64,
}

impl IronReport {
    /// True when no inconsistency was found.
    pub fn is_clean(&self) -> bool {
        self.broken_mappings == 0
            && self.owner_mismatches == 0
            && self.leaked_blocks == 0
            && self.stale_scores == 0
            && self.volume_accounting_errors == 0
    }
}

/// Audit the aggregate without modifying it.
pub fn check(agg: &Aggregate) -> WaflResult<IronReport> {
    let mut report = IronReport::default();

    // Phase 1: logical mapping chains resolve through allocated bits.
    let mut expected_owner = vec![OWNER_NONE; agg.bitmap.space_len() as usize];
    for vol in &agg.vols {
        for l in 0..vol.logical_blocks() {
            let Some(vvbn) = vol.lookup_logical(l) else {
                continue;
            };
            let vvbn_ok = vol.bitmap().is_free(vvbn).map(|f| !f).unwrap_or(false);
            let Some(pvbn) = vol.lookup_vvbn(vvbn) else {
                report.broken_mappings += 1;
                continue;
            };
            let pvbn_ok = agg.bitmap.is_free(pvbn).map(|f| !f).unwrap_or(false);
            if !vvbn_ok || !pvbn_ok {
                report.broken_mappings += 1;
            }
        }
        // Phase 2 input: every *referenced* pair — active file system plus
        // snapshot-pinned blocks — is what the owner map mirrors.
        let mut referenced = 0u64;
        for (vvbn, pvbn) in vol.vvbn_entries() {
            referenced += 1;
            let slot = &mut expected_owner[pvbn.index()];
            if *slot != OWNER_NONE {
                // Two virtual blocks share one physical block.
                report.broken_mappings += 1;
            }
            *slot = pack_owner(vol.id, vvbn);
        }
        if vol.size_blocks() - vol.free_blocks() != referenced {
            report.volume_accounting_errors += 1;
        }
    }

    // Phase 2+3: compare against the recorded owners; find leaks.
    // Pending delayed frees are allocated bits whose ownership was
    // already superseded; the log's count absolves that many.
    let pending_count = agg.free_log.pending();
    let mut orphans = 0u64;
    let mut unowned_allocated = 0u64;
    for v in 0..agg.bitmap.space_len() {
        let vbn = Vbn(v);
        let allocated = !agg.bitmap.is_free(vbn)?;
        let recorded = agg.pvbn_owner[vbn.index()];
        let expected = expected_owner[vbn.index()];
        if allocated {
            match (recorded, expected) {
                (OWNER_ORPHAN, OWNER_NONE) => orphans += 1,
                (r, e) if r == e && r != OWNER_NONE => {}
                (OWNER_NONE, OWNER_NONE) => unowned_allocated += 1,
                _ => report.owner_mismatches += 1,
            }
        } else if recorded != OWNER_NONE {
            report.owner_mismatches += 1;
        }
    }
    // Allocated blocks owned by nobody: either a logged-but-unapplied
    // delayed free (fine) or a leak.
    report.leaked_blocks = unowned_allocated.saturating_sub(pending_count);
    let _ = orphans;

    // Phase 4: cached scores versus bitmap truth. Only AAs *present* in
    // the heap participate: the active AA legitimately lags until its
    // drain completes, and a TopAA-seeded cache (§3.4) holds only its
    // seed until the background rebuild supplies the rest.
    for g in &agg.groups {
        match g.cache.as_ref() {
            Some(GroupCache::Heap(cache)) => {
                for aa in 0..g.topology.aa_count() {
                    let aa = AaId(aa);
                    if !cache.contains(aa) {
                        continue;
                    }
                    let truth = g.topology.score_from_bitmap(&agg.bitmap, aa);
                    if cache.score_of(aa) != truth {
                        report.stale_scores += 1;
                    }
                }
            }
            Some(GroupCache::Hbps(_)) | None => {
                // HBPS stores no per-AA scores to compare; histogram
                // drift is self-healing via replenish.
            }
        }
    }
    Ok(report)
}

/// Audit and repair: rebuilds AA caches from the bitmaps and the owner
/// map from the volume maps. Broken mapping chains are reported but not
/// invented (data loss cannot be repaired from metadata alone — matching
/// the real tool's behaviour of flagging, not fabricating).
pub fn repair(agg: &mut Aggregate) -> WaflResult<IronReport> {
    let mut report = check(agg)?;
    if report.is_clean() {
        return Ok(report);
    }
    // Recompute ownership from the volume maps.
    if report.owner_mismatches > 0 || report.leaked_blocks > 0 {
        for slot in agg.pvbn_owner.iter_mut() {
            if *slot != OWNER_ORPHAN {
                *slot = OWNER_NONE;
            }
        }
        for vi in 0..agg.vols.len() {
            let vol = &agg.vols[vi];
            let id = vol.id;
            let mut fixes: Vec<(usize, u64)> = Vec::new();
            for l in 0..vol.logical_blocks() {
                if let Some(vvbn) = vol.lookup_logical(l) {
                    if let Some(pvbn) = vol.lookup_vvbn(vvbn) {
                        fixes.push((pvbn.index(), pack_owner(id, vvbn)));
                    }
                }
            }
            for (idx, owner) in fixes {
                agg.pvbn_owner[idx] = owner;
                report.repairs += 1;
            }
        }
    }
    // Rebuild every cache from the bitmaps (recomputing what the paper
    // says Iron recomputes: the TopAA-backed structures).
    if report.stale_scores > 0 {
        for i in 0..agg.groups.len() {
            if agg.groups[i].cache.is_some() {
                let cache = build_group_cache(&agg.groups[i], &agg.bitmap)?;
                agg.groups[i].cache = Some(cache);
                agg.groups[i].active_aa = None;
                report.repairs += 1;
            }
        }
    }
    for vol in &mut agg.vols {
        if vol.cache.is_some() {
            vol.cache = Some(RaidAgnosticCache::build(
                vol.topology.clone(),
                &vol.bitmap,
            )?);
            vol.active_aa = None;
            report.repairs += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_core::ScoreDeltaBatch;
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn agg() -> Aggregate {
        let mut a = Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            12,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 30_000, 4096, 13).unwrap();
        a
    }

    #[test]
    fn healthy_aggregate_checks_clean() {
        let a = agg();
        let report = check(&a).unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn scribbled_cache_is_detected_and_repaired() {
        let mut a = agg();
        // Scribble a cached score (the §3.4 memory-scribble scenario):
        // knock the best (nonzero-score) AA's cached value down without
        // touching the bitmap.
        if let Some(GroupCache::Heap(cache)) = a.groups[0].cache.as_mut() {
            let victim = cache.best().expect("aged group has AAs").0;
            let mut batch = ScoreDeltaBatch::new();
            batch.record_allocated(victim, 12_345);
            cache.apply_batch(&mut batch);
        }
        let report = check(&a).unwrap();
        assert!(report.stale_scores > 0);
        let fixed = repair(&mut a).unwrap();
        assert!(fixed.repairs > 0);
        assert!(check(&a).unwrap().is_clean());
        // The repaired system keeps serving traffic.
        for l in 0..1000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
    }

    #[test]
    fn corrupted_owner_map_is_detected_and_repaired() {
        let mut a = agg();
        // Corrupt a few owner entries behind the allocator's back.
        let victims: Vec<usize> = (0..a.pvbn_owner.len())
            .filter(|&i| a.pvbn_owner[i] != super::OWNER_NONE)
            .take(5)
            .collect();
        for &i in &victims {
            a.pvbn_owner[i] = pack_owner(VolumeId(7), Vbn(1));
        }
        let report = check(&a).unwrap();
        assert!(report.owner_mismatches > 0, "{report:?}");
        repair(&mut a).unwrap();
        assert!(check(&a).unwrap().is_clean());
        // Segment cleaning (the owner map's consumer) works again.
        crate::cleaning::clean_top_aas(&mut a, 0, 1).unwrap();
        assert!(check(&a).unwrap().is_clean());
    }

    #[test]
    fn pending_delayed_frees_are_not_leaks() {
        let mut a = Aggregate::new(
            AggregateConfig {
                batched_frees: true,
                free_pages_per_cp: 0, // never process: everything stays logged
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            12,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 20_000, 4096, 14).unwrap();
        assert!(a.free_log().pending() > 0);
        let report = check(&a).unwrap();
        assert_eq!(report.leaked_blocks, 0, "{report:?}");
    }
}
