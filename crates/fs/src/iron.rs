//! Online consistency checking and repair — the WAFL Iron analogue.
//!
//! §3.4: "In rare cases, if the metafile blocks are damaged in the
//! physical media and RAID is unable to reconstruct them, the online WAFL
//! repair tool — WAFL Iron — is used to recompute and recover them."
//! This module is that tool for the simulated stack: it audits every
//! cross-structure invariant the allocator depends on and recomputes
//! derived state (AA caches, ownership) from the authoritative bitmaps
//! and volume maps.
//!
//! Check phases:
//! 1. **Mappings** — every logical→virtual→physical chain resolves to
//!    allocated bits in both spaces, and no two virtual VBNs share a
//!    physical block.
//! 2. **Ownership** — the reverse `pvbn_owner` map agrees with the volume
//!    maps in both directions.
//! 3. **Space accounting** — per-volume and aggregate occupancy equals
//!    live mappings (plus orphaned aging seeds and logged-but-unapplied
//!    delayed frees).
//! 4. **Caches** — every cached AA score equals the bitmap-derived score.
//!
//! [`check`] reports; [`repair`] additionally rebuilds what can be
//! recomputed (caches, ownership) and reports what it fixed.

use crate::aggregate::{
    build_group_cache, pack_owner, Aggregate, GroupCache, OWNER_NONE, OWNER_ORPHAN,
};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use wafl_core::RaidAgnosticCache;
use wafl_types::{AaId, Vbn, WaflResult};

/// Findings of a consistency check.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IronReport {
    /// Logical blocks whose mapping chain is broken (dangling vvbn or
    /// pvbn, or bit not set where required).
    pub broken_mappings: u64,
    /// Physical blocks whose owner entry disagrees with the volume maps.
    pub owner_mismatches: u64,
    /// Allocated physical blocks with no owner and no pending free —
    /// leaked space.
    pub leaked_blocks: u64,
    /// Allocated virtual VBNs no volume map references — leaked virtual
    /// space (the signature of a crash between vvbn allocation and
    /// binding, or of lost delayed vvbn frees).
    pub leaked_vvbns: u64,
    /// Allocated physical blocks owned by an aging seed rather than any
    /// volume. Deliberate test-fixture state, not an inconsistency — but
    /// capacity planning wants the number, so it is surfaced instead of
    /// discarded.
    pub orphaned_blocks: u64,
    /// Cached AA scores that disagree with the bitmaps (active AAs are
    /// exempt — they legitimately lag until their drain completes).
    pub stale_scores: u64,
    /// Bitmap free-count summary counters (per-page, per-AA, or the
    /// top-level total) that disagree with the popcount ground truth of
    /// the raw bits — scribbled derived state, rebuilt by repair.
    pub stale_summary_counters: u64,
    /// Volumes whose occupancy count disagrees with their live mappings.
    pub volume_accounting_errors: u64,
    /// Repairs performed (zero for a pure check).
    pub repairs: u64,
}

impl IronReport {
    /// True when no inconsistency was found. Orphaned aging-seed blocks
    /// do not count — they are deliberate fixture state, not damage.
    pub fn is_clean(&self) -> bool {
        self.broken_mappings == 0
            && self.owner_mismatches == 0
            && self.leaked_blocks == 0
            && self.leaked_vvbns == 0
            && self.stale_scores == 0
            && self.stale_summary_counters == 0
            && self.volume_accounting_errors == 0
    }
}

/// Audit the aggregate without modifying it.
pub fn check(agg: &Aggregate) -> WaflResult<IronReport> {
    agg.obs.iron_audits.inc(1);
    let mut report = IronReport::default();

    // Phase 1: logical mapping chains resolve through allocated bits.
    let mut expected_owner = vec![OWNER_NONE; agg.bitmap.space_len() as usize];
    for vol in &agg.vols {
        for l in 0..vol.logical_blocks() {
            let Some(vvbn) = vol.lookup_logical(l) else {
                continue;
            };
            let vvbn_ok = vol.bitmap().is_free(vvbn).map(|f| !f).unwrap_or(false);
            let Some(pvbn) = vol.lookup_vvbn(vvbn) else {
                report.broken_mappings += 1;
                continue;
            };
            let pvbn_ok = agg.bitmap.is_free(pvbn).map(|f| !f).unwrap_or(false);
            if !vvbn_ok || !pvbn_ok {
                report.broken_mappings += 1;
            }
        }
        // Phase 2 input: every *referenced* pair — active file system plus
        // snapshot-pinned blocks — is what the owner map mirrors.
        let mut referenced = 0u64;
        for (vvbn, pvbn) in vol.vvbn_entries() {
            referenced += 1;
            let slot = &mut expected_owner[pvbn.index()];
            if *slot != OWNER_NONE {
                // Two virtual blocks share one physical block.
                report.broken_mappings += 1;
            }
            *slot = pack_owner(vol.id, vvbn);
        }
        if vol.size_blocks() - vol.free_blocks() != referenced {
            report.volume_accounting_errors += 1;
        }
        // Virtual leaks: an allocated vvbn bit nothing maps. Snapshot-
        // pinned and detached blocks stay in `vvbn_map`, so bit-set ⟺
        // mapped is the invariant; a gap means a crash between vvbn
        // allocation and binding, or a lost delayed vvbn free.
        for v in 0..vol.size_blocks() {
            let vvbn = Vbn(v);
            let set = vol.bitmap().is_free(vvbn).map(|f| !f).unwrap_or(false);
            if set && vol.lookup_vvbn(vvbn).is_none() {
                report.leaked_vvbns += 1;
            }
        }
    }

    // Phase 2+3: compare against the recorded owners; find leaks.
    // Blocks in the delayed-free log are absolved precisely (by VBN, not
    // by count): a logged free's bit stays set and its owner entry stays
    // stale until a processing pass applies it — expected in-between
    // state, not damage.
    let pending: HashSet<u64> = agg
        .free_log
        .pending_vbns()
        .iter()
        .map(|v| v.get())
        .collect();
    for v in 0..agg.bitmap.space_len() {
        let vbn = Vbn(v);
        let allocated = !agg.bitmap.is_free(vbn)?;
        let recorded = agg.pvbn_owner[vbn.index()];
        let expected = expected_owner[vbn.index()];
        if pending.contains(&v) {
            if allocated {
                continue; // awaiting its logged free; any state is fine
            }
            // Already free yet still logged: a crash tore the bitmap
            // write from the owner update. Replay skips the bit safely,
            // but a surviving stale owner is damage.
            if recorded != OWNER_NONE {
                report.owner_mismatches += 1;
            }
            continue;
        }
        if allocated {
            match (recorded, expected) {
                (OWNER_ORPHAN, OWNER_NONE) => report.orphaned_blocks += 1,
                (r, e) if r == e && r != OWNER_NONE => {}
                (OWNER_NONE, OWNER_NONE) => report.leaked_blocks += 1,
                _ => report.owner_mismatches += 1,
            }
        } else if recorded != OWNER_NONE {
            report.owner_mismatches += 1;
        }
    }

    // Phase 4: cached scores versus bitmap truth. Only AAs *present* in
    // the heap participate: the active AA legitimately lags until its
    // drain completes, and a TopAA-seeded cache (§3.4) holds only its
    // seed until the background rebuild supplies the rest.
    for g in &agg.groups {
        match g.cache.as_ref() {
            Some(GroupCache::Heap(cache)) => {
                for aa in 0..g.topology.aa_count() {
                    let aa = AaId(aa);
                    if !cache.contains(aa) {
                        continue;
                    }
                    let truth = g.topology.score_from_bitmap(&agg.bitmap, aa);
                    if cache.score_of(aa) != truth {
                        report.stale_scores += 1;
                    }
                }
            }
            Some(GroupCache::Hbps(_)) | None => {
                // HBPS stores no per-AA scores to compare; histogram
                // drift is self-healing via replenish.
            }
        }
    }

    // Phase 5: the bitmap free-count summaries are derived state exactly
    // like the caches — every counter must match a popcount of the raw
    // bits. (This is the audit that makes "crash/remount never leaves a
    // stale summary" a checked invariant rather than a hope.)
    report.stale_summary_counters += agg.bitmap.summary_divergences();
    for vol in &agg.vols {
        report.stale_summary_counters += vol.bitmap().summary_divergences();
    }
    Ok(report)
}

/// Audit and repair: rebuilds AA caches from the bitmaps, the owner map
/// from the volume maps, and reclaims leaked blocks in both VBN spaces
/// (the residue of a torn CP). Broken mapping chains are reported but
/// not invented (data loss cannot be repaired from metadata alone —
/// matching the real tool's behaviour of flagging, not fabricating).
pub fn repair(agg: &mut Aggregate) -> WaflResult<IronReport> {
    let mut report = check(agg)?;
    if report.is_clean() {
        return Ok(report);
    }
    // Rebuild scribbled free-count summaries FIRST: the repairs below
    // mutate bitmaps through allocate/free, which maintain the summary
    // incrementally and therefore need sane counters to start from.
    if report.stale_summary_counters > 0 {
        agg.bitmap.rebuild_summary();
        for vol in &mut agg.vols {
            vol.bitmap.rebuild_summary();
        }
        report.repairs += report.stale_summary_counters;
    }
    // Recompute ownership from the volume maps — every *referenced* pair
    // (`vvbn_entries`: active plus snapshot-pinned), not just the live
    // logical chains, or repair itself would orphan pinned blocks.
    if report.owner_mismatches > 0 || report.leaked_blocks > 0 {
        for slot in agg.pvbn_owner.iter_mut() {
            if *slot != OWNER_ORPHAN {
                *slot = OWNER_NONE;
            }
        }
        for vi in 0..agg.vols.len() {
            let id = agg.vols[vi].id;
            let fixes: Vec<(usize, u64)> = agg.vols[vi]
                .vvbn_entries()
                .map(|(vvbn, pvbn)| (pvbn.index(), pack_owner(id, vvbn)))
                .collect();
            for (idx, owner) in fixes {
                agg.pvbn_owner[idx] = owner;
                report.repairs += 1;
            }
        }
    }
    // Reclaim leaked virtual blocks: allocated vvbn bits nothing maps.
    if report.leaked_vvbns > 0 || report.volume_accounting_errors > 0 {
        for vol in &mut agg.vols {
            let leaked: Vec<Vbn> = (0..vol.size_blocks())
                .map(Vbn)
                .filter(|&v| {
                    vol.bitmap().is_free(v).map(|f| !f).unwrap_or(false)
                        && vol.lookup_vvbn(v).is_none()
                })
                .collect();
            for v in leaked {
                vol.bitmap.free(v)?;
                vol.note_vvbn_freed(v);
                report.repairs += 1;
            }
        }
    }
    // Reclaim leaked physical blocks: allocated, unowned after the owner
    // recompute above, and not awaiting a logged delayed free. (Orphaned
    // aging seeds keep their OWNER_ORPHAN marker and are untouched.)
    let mut freed_pvbns = 0u64;
    if report.leaked_blocks > 0 || report.owner_mismatches > 0 {
        let pending: HashSet<u64> = agg
            .free_log
            .pending_vbns()
            .iter()
            .map(|v| v.get())
            .collect();
        for v in 0..agg.bitmap.space_len() {
            let vbn = Vbn(v);
            if !agg.bitmap.is_free(vbn)?
                && agg.pvbn_owner[vbn.index()] == OWNER_NONE
                && !pending.contains(&v)
            {
                agg.bitmap.free(vbn)?;
                freed_pvbns += 1;
                report.repairs += 1;
            }
        }
    }
    // Rebuild every cache whose inputs changed (recomputing what the
    // paper says Iron recomputes: the TopAA-backed structures). Freeing
    // leaked pvbns invalidates cached group scores even when the check
    // found none stale.
    if report.stale_scores > 0 || freed_pvbns > 0 {
        for i in 0..agg.groups.len() {
            if agg.groups[i].cache.is_some() {
                let cache = build_group_cache(&agg.groups[i], &agg.bitmap)?;
                agg.groups[i].cache = Some(cache);
                agg.groups[i].active_aa = None;
                report.repairs += 1;
            }
        }
    }
    for vol in &mut agg.vols {
        if vol.cache.is_some() {
            vol.cache = Some(RaidAgnosticCache::build(vol.topology.clone(), &vol.bitmap)?);
            vol.active_aa = None;
            vol.invalidate_drain_cursor();
            report.repairs += 1;
        }
    }
    agg.obs.iron_repairs.inc(report.repairs);
    // A full repair rebuilt every summary and cache from the raw bits:
    // nothing remains suspect, so all runtime quarantines and pending
    // scrub tickets are settled and the aggregate returns to Healthy.
    crate::scrub::clear_all(agg);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aging;
    use crate::config::{AggregateConfig, FlexVolConfig, RaidGroupSpec};
    use wafl_core::ScoreDeltaBatch;
    use wafl_media::MediaProfile;
    use wafl_types::VolumeId;

    fn agg() -> Aggregate {
        let mut a = Aggregate::new(
            AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            }),
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            12,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 30_000, 4096, 13).unwrap();
        a
    }

    #[test]
    fn healthy_aggregate_checks_clean() {
        let a = agg();
        let report = check(&a).unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn scribbled_cache_is_detected_and_repaired() {
        let mut a = agg();
        // Scribble a cached score (the §3.4 memory-scribble scenario):
        // knock the best (nonzero-score) AA's cached value down without
        // touching the bitmap.
        if let Some(GroupCache::Heap(cache)) = a.groups[0].cache.as_mut() {
            let victim = cache.best().expect("aged group has AAs").0;
            let mut batch = ScoreDeltaBatch::new();
            batch.record_allocated(victim, 12_345);
            cache.apply_batch(&mut batch);
        }
        let report = check(&a).unwrap();
        assert!(report.stale_scores > 0);
        let fixed = repair(&mut a).unwrap();
        assert!(fixed.repairs > 0);
        assert!(check(&a).unwrap().is_clean());
        // The repaired system keeps serving traffic.
        for l in 0..1000 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
    }

    #[test]
    fn scribbled_summary_counter_is_detected_and_repaired() {
        let mut a = agg();
        // Scribble a per-page free-count summary counter on the physical
        // bitmap: the bits are intact, only derived state is damaged.
        a.bitmap.scribble_page_counter(3, u16::MAX);
        let report = check(&a).unwrap();
        assert!(report.stale_summary_counters > 0, "{report:?}");
        repair(&mut a).unwrap();
        assert!(check(&a).unwrap().is_clean());
        // And the repaired summary keeps serving allocation traffic.
        for l in 0..500 {
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        a.run_cp().unwrap();
    }

    #[test]
    fn corrupted_owner_map_is_detected_and_repaired() {
        let mut a = agg();
        // Corrupt a few owner entries behind the allocator's back.
        let victims: Vec<usize> = (0..a.pvbn_owner.len())
            .filter(|&i| a.pvbn_owner[i] != super::OWNER_NONE)
            .take(5)
            .collect();
        for &i in &victims {
            a.pvbn_owner[i] = pack_owner(VolumeId(7), Vbn(1));
        }
        let report = check(&a).unwrap();
        assert!(report.owner_mismatches > 0, "{report:?}");
        repair(&mut a).unwrap();
        assert!(check(&a).unwrap().is_clean());
        // Segment cleaning (the owner map's consumer) works again.
        crate::cleaning::clean_top_aas(&mut a, 0, 1).unwrap();
        assert!(check(&a).unwrap().is_clean());
    }

    #[test]
    fn pending_delayed_frees_are_not_leaks() {
        let mut a = Aggregate::new(
            AggregateConfig {
                batched_frees: true,
                free_pages_per_cp: 0, // never process: everything stays logged
                ..AggregateConfig::single_group(RaidGroupSpec {
                    data_devices: 4,
                    parity_devices: 1,
                    device_blocks: 16 * 4096,
                    profile: MediaProfile::hdd(),
                })
            },
            &[(
                FlexVolConfig {
                    size_blocks: 8 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                60_000,
            )],
            12,
        )
        .unwrap();
        aging::fill_volume(&mut a, VolumeId(0), 4096).unwrap();
        aging::random_overwrite_churn(&mut a, VolumeId(0), 20_000, 4096, 14).unwrap();
        assert!(a.free_log().pending() > 0);
        let report = check(&a).unwrap();
        assert_eq!(report.leaked_blocks, 0, "{report:?}");
    }
}
