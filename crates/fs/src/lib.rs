//! A copy-on-write file-system simulator reproducing the WAFL structures
//! the paper's evaluation exercises.
//!
//! ONTAP nests two WAFL layers: FlexVol volumes (virtual VBNs) inside an
//! aggregate (physical VBNs); write allocation assigns both numbers for
//! every dirtied block (§2.1). This crate simulates that machinery at the
//! block-number level:
//!
//! * [`Aggregate`] — the physical layer: RAID groups with per-device media
//!   models, the physical activemap, RAID-aware AA caches, and hosted
//!   [`FlexVol`]s with their virtual activemaps and HBPS caches.
//! * [`CpStats`] / [`Aggregate::run_cp`] — the consistency point: collect
//!   dirtied logical blocks, allocate virtual + physical VBNs from the
//!   emptiest AAs, apply the delayed frees of overwritten blocks, dirty
//!   bitmap-metafile pages, cost the resulting RAID tetrises against the
//!   media models, and batch-update every AA cache (§3.3).
//! * [`mount`] — unmount/mount with and without TopAA metafiles (§3.4),
//!   measuring the metafile I/O each path needs before the first CP.
//! * [`aging`] — fill/fragment recipes that reproduce the paper's aged
//!   file systems (§4.1's "thoroughly fragmented by applying heavy random
//!   write traffic").
//! * [`cleaning`] — just-in-time segment cleaning of top-of-heap AAs
//!   (§3.3.1), the paper's defragmentation hook.
//!
//! Client operations arrive via [`Aggregate::client_overwrite`] /
//! [`Aggregate::client_read`]; a CP flushes everything collected since the
//! previous one, exactly like WAFL's delayed batched flushing (§2.1).

#![warn(missing_docs)]

mod aggregate;
pub mod aging;
mod allocator;
pub mod cleaning;
mod config;
mod cp;
pub mod delayed_free;
pub mod iron;
pub mod mount;
pub mod obs;
mod paged_map;
pub mod scrub;
pub mod sharded;
pub mod snapshot;
mod volume;

pub use aggregate::{Aggregate, RaidGroupState};
pub use allocator::AllocatorMode;
pub use config::{default_write_shards, AggregateConfig, CpuModel, FlexVolConfig, RaidGroupSpec};
pub use cp::{CpOutcome, CpStats, CpWallClock, PhaseDrift, WallClockOverlay};
pub use scrub::{HealthState, ScrubStatus};
pub use volume::FlexVol;
