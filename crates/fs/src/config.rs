//! Configuration of a simulated aggregate and its volumes.

use serde::{Deserialize, Serialize};
use wafl_media::MediaProfile;
use wafl_types::{AaSizingPolicy, ChecksumStyle};

/// One RAID group of identical devices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaidGroupSpec {
    /// Number of data devices.
    pub data_devices: u32,
    /// Number of parity devices.
    pub parity_devices: u32,
    /// Blocks per device (= stripes in the group).
    pub device_blocks: u64,
    /// Media backing every device of the group.
    pub profile: MediaProfile,
}

impl RaidGroupSpec {
    /// PVBNs contributed by this group.
    pub fn data_blocks(&self) -> u64 {
        self.data_devices as u64 * self.device_blocks
    }
}

/// Aggregate-level configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateConfig {
    /// The RAID groups, in PVBN order.
    pub raid_groups: Vec<RaidGroupSpec>,
    /// Checksum scheme for all groups (§3.2.4).
    pub checksum: ChecksumStyle,
    /// Override the per-media default AA sizing policy (used by the Fig 8
    /// and Fig 9 experiments, which deliberately run SSD/SMR with the
    /// HDD-sized AA).
    pub aa_policy_override: Option<AaSizingPolicy>,
    /// Whether RAID-aware AA caches guide physical allocation. Disabled in
    /// the Fig 6 "Aggregate AA cache off" arm; allocation then picks
    /// random AAs.
    pub raid_aware_cache: bool,
    /// Skip RAID groups whose best AA score falls below this fraction of
    /// the AA size (§3.3.1's "if the best AA score in a RAID group is
    /// below some threshold ... stop writing to that RAID group").
    /// `0.0` disables the back-off.
    pub rg_backoff_threshold: f64,
    /// Forward delayed frees to SSD FTLs as TRIMs (extension beyond the
    /// paper's experiments; default off).
    pub trim_on_free: bool,
    /// Flash Pool bias (§2.1): multiply SSD RAID groups' allocation
    /// weights so hot write traffic concentrates on the fast tier of a
    /// mixed SSD+HDD aggregate. `1.0` = unbiased.
    pub ssd_tier_bias: f64,
    /// Batch physical frees through the delayed-free log (§3.3.2's second
    /// HBPS use case): freed blocks are applied to the bitmap by a
    /// background processor, fullest metafile page first, instead of
    /// immediately at the CP that freed them. Default off (the paper's
    /// experiments measure the AA caches, not the reclamation path).
    pub batched_frees: bool,
    /// Metafile pages the delayed-free processor may write per CP when
    /// `batched_frees` is on.
    pub free_pages_per_cp: usize,
    /// Scrub units (bitmap summary pages / TopAA cache structures) the
    /// runtime scrubber verifies per CP. `0` disables online scrub —
    /// corruption is then only caught at remount, as before. See
    /// `docs/recovery.md` ("Runtime scrub & quarantine").
    pub scrub_pages_per_cp: u64,
    /// Audit 1 in this many HBPS-guided RAID-group picks against the
    /// exact ground-truth best score (the `pick_score_error` histogram).
    /// The exact audit is a full-group score scan, so it must not ride
    /// every pick; the sampled scan is additionally memoized per plan
    /// call, amortizing to at most one scan per group per CP. `0`
    /// disables the group-path audit entirely. Volume picks answer the
    /// audit from their O(aa_count) free-count summary and are always
    /// audited regardless of this knob.
    pub pick_audit_sample: u32,
    /// CPU cost model for the per-op overhead accounting (§4.1.2).
    pub cpu: CpuModel,
    /// Worker shards for the CP write pipeline. AAs are the sharding
    /// unit: each shard leases disjoint AAs from the TopAA ranking and
    /// drains them with no shared state on the per-block path; leases
    /// return (re-ranked) at the CP boundary. `1` runs the sharded
    /// pipeline single-threaded and fully deterministically; values
    /// above 1 fan planning, binding, and the bulk bitmap applies out
    /// over that many workers (capped by the host's cores). The default
    /// — [`default_write_shards`] — is the host's detected parallelism.
    /// `0` is rejected: the pre-sharding legacy pipeline it used to
    /// select now lives in the test-only `wafl-oracle` crate. See
    /// `docs/perf.md` ("Sharded write allocation").
    pub write_shards: usize,
    /// Flight-recorder journal capacity in events; `0` (the default)
    /// disables tracing entirely. When set, the aggregate journals CP
    /// phase spans, shard lease traffic, scrub/health transitions, and
    /// mount phases into a bounded ring (overflow drops events and bumps
    /// `trace.dropped_events` — the hot path never blocks), and samples a
    /// per-CP time series of registry deltas. See `docs/observability.md`
    /// ("Flight recorder").
    pub trace_events: usize,
}

/// The detected default for [`AggregateConfig::write_shards`]: the
/// host's available parallelism, 1 if detection fails. Every shard
/// count produces the same observable file-system state (pinned by the
/// parity suites), so the config can safely follow the hardware.
pub fn default_write_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl AggregateConfig {
    /// A single-RAID-group config with the given spec and defaults
    /// matching the paper's standard setup.
    pub fn single_group(spec: RaidGroupSpec) -> AggregateConfig {
        AggregateConfig {
            raid_groups: vec![spec],
            checksum: ChecksumStyle::Sector520,
            aa_policy_override: None,
            raid_aware_cache: true,
            rg_backoff_threshold: 0.0,
            trim_on_free: false,
            ssd_tier_bias: 1.0,
            batched_frees: false,
            free_pages_per_cp: 4,
            scrub_pages_per_cp: 0,
            pick_audit_sample: 64,
            cpu: CpuModel::default(),
            write_shards: default_write_shards(),
            trace_events: 0,
        }
    }

    /// Total PVBNs across all groups.
    pub fn total_data_blocks(&self) -> u64 {
        self.raid_groups.iter().map(|g| g.data_blocks()).sum()
    }
}

/// One FlexVol volume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlexVolConfig {
    /// Virtual VBN space size in blocks. Thin provisioning lets the sum
    /// across volumes exceed the aggregate (§3.3.2).
    pub size_blocks: u64,
    /// Whether the HBPS-based AA cache guides virtual allocation (the
    /// Fig 6 "FlexVol AA cache" arm). Disabled means random AA picks.
    pub aa_cache: bool,
    /// Virtual AA size in blocks. `None` uses the paper's 32 Ki default
    /// (§3.2.1); scaled-down experiments may shrink it to preserve the
    /// AA-count structure of production volumes. Must be a multiple of
    /// the HBPS bin count (32).
    pub aa_blocks: Option<u64>,
}

impl Default for FlexVolConfig {
    fn default() -> FlexVolConfig {
        FlexVolConfig {
            size_blocks: wafl_types::RAID_AGNOSTIC_AA_BLOCKS,
            aa_cache: true,
            aa_blocks: None,
        }
    }
}

/// The CPU-time model behind the §4.1.2 "computational overhead per
/// operation" measurements. All values in microseconds.
///
/// The absolute numbers are calibrated to land in the paper's regime
/// (~300 µs of WAFL code path per client write op); what the experiments
/// compare is how the *metafile-page* and *cache-maintenance* terms move
/// when caches are enabled or disabled.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Fixed WAFL code-path cost per client operation.
    pub base_us_per_op: f64,
    /// Cost per candidate block the allocator examines while collecting
    /// free VBNs (buffer walk, context checks). Fuller AAs examine ~1/f
    /// candidates per allocation — this term carries the §4.1.2 CPU
    /// difference between cache-guided and random AA selection.
    pub us_per_alloc_candidate: f64,
    /// Cost of updating one dirtied bitmap-metafile page in a CP (read,
    /// modify, checksum, write-back bookkeeping).
    pub us_per_metafile_page: f64,
    /// Per-block allocation bookkeeping cost.
    pub us_per_block: f64,
    /// Cost of one AA-cache operation (heap sift / HBPS bin move). The
    /// paper measures ~0.002 % of CPU here — small but nonzero.
    pub us_per_cache_op: f64,
    /// Cost of scanning one bitmap page in a replenish/rebuild walk.
    pub us_per_scan_page: f64,
    /// Cost of reading one metafile block from storage at mount time
    /// (dominates the Fig 10 first-CP comparison).
    pub us_per_metafile_read: f64,
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel {
            base_us_per_op: 200.0,
            us_per_alloc_candidate: 35.0,
            us_per_metafile_page: 30.0,
            us_per_block: 0.15,
            us_per_cache_op: 0.2,
            us_per_scan_page: 4.0,
            us_per_metafile_read: 150.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_groups() {
        let spec = RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 1000,
            profile: MediaProfile::hdd(),
        };
        assert_eq!(spec.data_blocks(), 4000);
        let mut cfg = AggregateConfig::single_group(spec.clone());
        cfg.raid_groups.push(spec);
        assert_eq!(cfg.total_data_blocks(), 8000);
    }
}
