//! Quarantine-avoidance and scrub-budget integration tests.
//!
//! The allocator contract under quarantine: a quarantined AA receives
//! zero allocations — under any quarantine set, in any allocator mode —
//! and an aggregate whose every AA is quarantined fails allocation with
//! a clean [`WaflError::SpaceExhausted`], never a hang or panic. The
//! scrubber contract: exactly `scrub_pages_per_cp` verification units
//! per CP, so full coverage lands within `ceil(units / budget)` CPs.
//!
//! These drive only public API (fault plans, empty CPs, test quarantine
//! hooks), so they are debug-safe: no scribbled counter survives to a
//! non-empty CP's summary assertion.

use proptest::prelude::*;
use wafl_faults::{FaultPlan, FaultSession, RuntimeScribbleFault, RuntimeTarget};
use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{AaId, VolumeId, WaflError, BITS_PER_BITMAP_BLOCK};

const WRITTEN: u64 = 4096;

/// One group, one cache-guided volume, aged just enough that both cache
/// layers carry real scores. Scrub stays off unless a test enables it —
/// quarantine release must come only from the hooks under test.
fn quarantine_agg(scrub_budget: u64) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig {
            raid_aware_cache: true,
            scrub_pages_per_cp: scrub_budget,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::ssd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 4 * BITS_PER_BITMAP_BLOCK,
                aa_cache: true,
                aa_blocks: None,
            },
            30_000,
        )],
        5,
    )
    .unwrap();
    aging::fill_volume(&mut agg, VolumeId(0), WRITTEN as usize).unwrap();
    agg
}

/// Popcount free counts of the given physical AAs (ground truth — does
/// not consult the summaries the allocator is told to distrust).
fn phys_free(agg: &Aggregate, aas: &[AaId]) -> Vec<u64> {
    let g = &agg.groups()[0];
    aas.iter()
        .map(|&aa| {
            g.topology()
                .aa_vbn_ranges(aa)
                .into_iter()
                .map(|(s, l)| agg.bitmap().free_count_range_popcount(s, l) as u64)
                .sum()
        })
        .collect()
}

/// Popcount free counts of the given virtual AAs of volume 0.
fn virt_free(agg: &Aggregate, aas: &[AaId]) -> Vec<u64> {
    let v = &agg.volumes()[0];
    aas.iter()
        .map(|&aa| {
            v.topology()
                .aa_vbn_ranges(aa)
                .into_iter()
                .map(|(s, l)| v.bitmap().free_count_range_popcount(s, l) as u64)
                .sum()
        })
        .collect()
}

/// Subset of `0..count` selected by the bits of `mask` (wrapping past 64).
fn masked_aas(mask: u64, count: u32) -> Vec<AaId> {
    (0..count)
        .filter(|i| mask >> (i % 64) & 1 == 1)
        .map(AaId)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary quarantine set, a quarantined AA's popcount
    /// free count never decreases across CPs of real overwrite traffic:
    /// frees may land there, allocations must not.
    #[test]
    fn allocation_avoids_arbitrary_quarantine_sets(
        phys_mask in 0u64..u64::MAX,
        virt_mask in 0u64..u64::MAX,
        ops in 50u64..400,
    ) {
        let mut agg = quarantine_agg(0);
        let phys = masked_aas(phys_mask, agg.groups()[0].topology().aa_count());
        let virt = masked_aas(virt_mask, agg.volumes()[0].topology().aa_count());
        agg.quarantine_physical_aas(0, &phys);
        agg.quarantine_virtual_aas(VolumeId(0), &virt);

        let phys_before = phys_free(&agg, &phys);
        let virt_before = virt_free(&agg, &virt);
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(phys_mask ^ virt_mask);
        for _ in 0..ops {
            agg.client_overwrite(VolumeId(0), rng.random_range(0..WRITTEN)).unwrap();
        }
        match agg.run_cp() {
            Ok(_) => {
                prop_assert!(
                    phys_free(&agg, &phys)
                        .iter()
                        .zip(&phys_before)
                        .all(|(now, before)| now >= before),
                    "allocation landed in a quarantined physical AA"
                );
                prop_assert!(
                    virt_free(&agg, &virt)
                        .iter()
                        .zip(&virt_before)
                        .all(|(now, before)| now >= before),
                    "allocation landed in a quarantined virtual AA"
                );
            }
            // Dense quarantine sets can legitimately exhaust space; the
            // contract is a clean error, not success.
            Err(WaflError::SpaceExhausted) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

#[test]
fn fully_quarantined_aggregate_fails_cleanly() {
    let mut agg = quarantine_agg(0);
    let all: Vec<AaId> = (0..agg.groups()[0].topology().aa_count())
        .map(AaId)
        .collect();
    agg.quarantine_physical_aas(0, &all);
    agg.client_overwrite(VolumeId(0), 1).unwrap();
    match agg.run_cp() {
        Err(WaflError::SpaceExhausted) => {}
        other => panic!("expected SpaceExhausted, got {other:?}"),
    }
}

#[test]
fn fully_quarantined_volume_fails_cleanly() {
    let mut agg = quarantine_agg(0);
    let all: Vec<AaId> = (0..agg.volumes()[0].topology().aa_count())
        .map(AaId)
        .collect();
    agg.quarantine_virtual_aas(VolumeId(0), &all);
    agg.client_overwrite(VolumeId(0), 1).unwrap();
    match agg.run_cp() {
        Err(WaflError::SpaceExhausted) => {}
        other => panic!("expected SpaceExhausted, got {other:?}"),
    }
}

/// The scan budget is exact — `scrub_pages_per_cp` units per CP, no
/// more, no fewer — and a fault is therefore detected within one full
/// cycle (`ceil(total_units / budget)` CPs) of landing.
#[test]
fn scrub_budget_is_exact_and_covers_in_ceil_cps() {
    const BUDGET: u64 = 5;
    let mut agg = quarantine_agg(BUDGET);
    let total = agg.scrub_status().total_units;
    assert!(total > BUDGET, "fixture too small to exercise the cursor");
    let cycle = total.div_ceil(BUDGET);

    let base = agg.obs().counter_value("scrub.pages_scanned").unwrap_or(0);
    for cp in 1..=cycle {
        agg.run_cp().unwrap(); // empty CP: scrub still runs its budget
        let scanned = agg.obs().counter_value("scrub.pages_scanned").unwrap() - base;
        assert_eq!(scanned, BUDGET * cp, "budget must be exact per CP");
    }

    // Land one counter scribble, then prove detection within one cycle.
    let plan = FaultPlan {
        runtime_scribbles: vec![RuntimeScribbleFault {
            target: RuntimeTarget::AggSummaryPage { page: 0 },
            at_cp: agg.cp_count() + 1,
            value_seed: 0x5EED,
        }],
        ..FaultPlan::none()
    };
    let mut session = FaultSession::new(&plan);
    // The scribble lands on the second CP below; the worst case (the
    // unit was scanned just before landing) needs one full cycle after
    // that, so `cycle + 2` CPs bound the detection latency.
    let mut detected_after = None;
    for cp in 1..=cycle + 2 {
        agg.run_cp_with_session(None, Some(&mut session)).unwrap();
        if agg
            .obs()
            .counter_value("scrub.faults_detected")
            .unwrap_or(0)
            > 0
        {
            detected_after = Some(cp);
            break;
        }
    }
    detected_after.expect("fault not detected within one scrub cycle of landing");
}
