//! End-to-end flight-recorder coverage: a sharded aggregate with tracing
//! enabled journals CP phase spans, shard lease traffic, and allocator
//! events; the Chrome-trace export validates (balanced spans, per-track
//! CP ordering, the expected track set); and the per-CP series carries
//! one row per completed CP.

use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_obs::trace::{
    chrome_trace_json, parse_chrome_trace, validate_chrome_trace, TraceData, TraceEvent,
};
use wafl_types::VolumeId;

const SHARDS: usize = 4;

fn traced_agg(trace_events: usize) -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            write_shards: SHARDS,
            trace_events,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            50_000,
        )],
        42,
    )
    .unwrap()
}

fn churn(a: &mut Aggregate, rounds: usize) {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    for _ in 0..rounds {
        for _ in 0..2000 {
            a.client_overwrite(VolumeId(0), rng.random_range(0..50_000))
                .unwrap();
        }
        a.run_cp().unwrap();
    }
}

#[test]
fn tracing_off_journals_nothing() {
    let mut a = traced_agg(0);
    churn(&mut a, 2);
    assert!(a.tracer().is_none());
    assert!(a.cp_series().is_none());
    assert!(a.obs().counter_value("trace.dropped_events").is_none());
}

#[test]
fn sharded_cps_journal_phase_spans_and_lease_events() {
    let mut a = traced_agg(65_536);
    churn(&mut a, 4);
    let tracer = a.tracer().expect("tracing enabled");
    assert_eq!(tracer.dropped(), 0, "ring sized well above the event count");
    let events = tracer.events();
    assert!(!events.is_empty());

    // Every CP emitted its engine-track phase timeline...
    let phase_names = [
        "cp",
        "cp.plan_virtual",
        "cp.plan_physical",
        "cp.apply",
        "cp.bind",
        "cp.frees",
        "cp.costing",
        "cp.rebalance",
    ];
    for name in phase_names {
        let count = events
            .iter()
            .filter(
                |e| matches!(e.data, TraceData::Span { name: n, .. } if n == name && e.shard.is_none()),
            )
            .count();
        assert_eq!(count, 4, "span {name} once per CP");
    }
    // ...and the shard workers their lease grants and drain spans.
    let leases = events
        .iter()
        .filter(|e| matches!(e.data, TraceData::Lease { .. }))
        .count();
    assert!(leases > 0, "sharded CPs must journal lease grants");
    for e in &events {
        if let TraceData::Lease { take, .. } = e.data {
            let shard = e.shard.expect("lease events ride shard tracks") as usize;
            assert!(shard < SHARDS);
            assert!(take > 0);
        }
    }
    let drains = events
        .iter()
        .filter(|e| {
            matches!(
                e.data,
                TraceData::Span {
                    name: "shard.drain",
                    ..
                }
            )
        })
        .count();
    assert_eq!(drains, 4 * SHARDS, "one drain span per shard per CP");

    // CP sequence numbers cover exactly the completed CPs.
    let max_cp = events.iter().map(|e| e.cp).max().unwrap();
    assert_eq!(max_cp, 3);
}

#[test]
fn chrome_export_of_a_real_run_validates() {
    let mut a = traced_agg(65_536);
    churn(&mut a, 3);
    let events: Vec<TraceEvent> = a.tracer().unwrap().events();
    let json = chrome_trace_json(&events, SHARDS);
    let parsed = parse_chrome_trace(&json).expect("exporter output parses");
    let stats = validate_chrome_trace(&parsed, Some(SHARDS)).expect("trace validates");
    assert_eq!(stats.shard_tracks, SHARDS);
    assert!(stats.engine_track);
    assert!(stats.spans > 0);
    assert_eq!(stats.max_cp, 2);
}

#[test]
fn per_cp_series_has_one_row_per_cp() {
    let mut a = traced_agg(65_536);
    churn(&mut a, 5);
    let series = a.cp_series().expect("series sampled when tracing is on");
    let rows = series.rows();
    assert_eq!(rows.len(), 5, "one sample per completed CP");
    let columns = series.columns();
    let cp_completed = columns
        .iter()
        .position(|c| c == "cp.completed")
        .expect("series tracks cp.completed");
    let wall = columns
        .iter()
        .position(|c| c == "cp.wall.total_us.sum")
        .expect("series tracks the wall histogram sum");
    // Column 0 is "cp"; a row's `values` start at column 1.
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.cp, i as u64, "cp column is the CP sequence");
        assert_eq!(
            row.values[cp_completed - 1],
            1.0,
            "each row is one CP's delta"
        );
        assert!(row.values[wall - 1] > 0.0, "wall time accrues every CP");
    }
    // Per-shard lease counters are present and saw traffic overall.
    let lease_cols: Vec<usize> = (0..SHARDS)
        .map(|i| {
            columns
                .iter()
                .position(|c| c == &format!("allocator.shard.{i}.leases"))
                .expect("shard lease columns registered")
        })
        .collect();
    let total: f64 = rows
        .iter()
        .flat_map(|r| lease_cols.iter().map(|&c| r.values[c - 1]))
        .sum();
    assert!(total > 0.0, "lease traffic shows up in the series");
}

#[test]
fn ring_overflow_drops_and_counts_but_cps_still_complete() {
    let mut a = traced_agg(8); // absurdly small ring
    churn(&mut a, 3);
    let tracer = a.tracer().unwrap();
    assert_eq!(tracer.recorded(), 8);
    assert!(tracer.dropped() > 0);
    assert_eq!(
        a.obs().counter_value("trace.dropped_events"),
        Some(tracer.dropped())
    );
    // Dropped spans never unbalance the export: spans are journaled
    // whole, so begin/end pairs are synthesized only for survivors.
    let events = tracer.events();
    let json = chrome_trace_json(&events, SHARDS);
    let parsed = parse_chrome_trace(&json).unwrap();
    validate_chrome_trace(&parsed, None).expect("partial journal still balances");
}
