//! Sharded-pipeline parity: N worker shards over disjoint AA leases must
//! leave the file system in the same *observable* state as the
//! single-threaded planner.
//!
//! Physical block placement legitimately differs across shard counts (the
//! lease batches split the rank order differently), so parity here means
//! the invariants the rest of the system depends on, not bit-for-bit
//! physical layout:
//!
//! * the virtual side is untouched by physical sharding — every volume's
//!   logical→virtual map and virtual bitmap are identical;
//! * space accounting agrees exactly — aggregate free blocks, per-volume
//!   free blocks, and live-mapping counts;
//! * the Iron audit is clean, so summaries, owners, and caches are
//!   internally consistent at every shard count.
//!
//! Shards=1 versus the sequential reference planner (the test-only
//! `wafl-oracle` crate, which preserves the retired `write_shards: 0`
//! pipeline) is stricter — identical per-page physical counts — because
//! one shard drains in exact rank order, like the legacy planner; see
//! `oracle_parity.rs`.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_fs::{iron, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::VolumeId;

const LOGICALS: u64 = 30_000;

fn build(shards: usize) -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            write_shards: shards,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[
            (
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                LOGICALS,
            ),
            (
                FlexVolConfig {
                    size_blocks: 4 * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                LOGICALS,
            ),
        ],
        5,
    )
    .unwrap()
}

/// One op of the generated workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    Overwrite(u8, u64),
    Delete(u8, u64),
    Cp,
}

fn apply(agg: &mut Aggregate, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Overwrite(v, l) => agg
                .client_overwrite(VolumeId(v as u32), l % LOGICALS)
                .unwrap(),
            Op::Delete(v, l) => agg.client_delete(VolumeId(v as u32), l % LOGICALS).unwrap(),
            Op::Cp => {
                agg.run_cp().unwrap();
            }
        }
    }
    // Always end on a CP so nothing is left pending when we compare.
    agg.run_cp().unwrap();
}

/// The virtual-side digest that must be identical at every shard count.
fn virtual_state(agg: &Aggregate) -> Vec<(u64, Vec<Option<u64>>, Vec<u16>)> {
    agg.volumes()
        .iter()
        .map(|vol| {
            let map: Vec<Option<u64>> = (0..LOGICALS)
                .map(|l| vol.lookup_logical(l).map(|v| v.get()))
                .collect();
            let pages: Vec<u16> = vol.bitmap().page_free_counts().to_vec();
            (vol.free_blocks(), map, pages)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random overwrite/delete/CP sequences leave an N-shard aggregate
    /// and a 1-shard aggregate in the same observable state.
    #[test]
    fn n_shards_match_single_threaded_planner(
        shards in 2usize..6,
        seed in 0u64..1_000,
        rounds in 2usize..5,
    ) {
        let mut ops = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            for _ in 0..1500 {
                let vol = (rng.random_range(0..2u8), rng.random_range(0..u64::MAX));
                if rng.random_range(0..10) == 0 {
                    ops.push(Op::Delete(vol.0, vol.1));
                } else {
                    ops.push(Op::Overwrite(vol.0, vol.1));
                }
            }
            ops.push(Op::Cp);
        }

        let mut sharded = build(shards);
        let mut single = build(1);
        apply(&mut sharded, &ops);
        apply(&mut single, &ops);

        // Both audits clean: counters, owners, and caches all consistent.
        prop_assert!(iron::check(&sharded).unwrap().is_clean());
        prop_assert!(iron::check(&single).unwrap().is_clean());

        // Virtual side: identical down to the mapping level.
        prop_assert_eq!(virtual_state(&sharded), virtual_state(&single));

        // Physical side: identical space accounting.
        prop_assert_eq!(
            sharded.bitmap().free_blocks(),
            single.bitmap().free_blocks()
        );
        sharded.bitmap().verify_summary();
        single.bitmap().verify_summary();
    }
}

/// Determinism: the same op sequence on the same shard count reproduces
/// the identical physical layout, run to run (the rayon shim's ordered
/// merge plus rank-ordered lease batches leave no scheduling dependence
/// in the *result*).
#[test]
fn sharded_runs_are_deterministic() {
    let drive = || {
        let mut agg = build(4);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            for _ in 0..2000 {
                agg.client_overwrite(
                    VolumeId(rng.random_range(0..2u32)),
                    rng.random_range(0..LOGICALS),
                )
                .unwrap();
            }
            agg.run_cp().unwrap();
        }
        let pages: Vec<u16> = agg.bitmap().page_free_counts().to_vec();
        (agg.bitmap().free_blocks(), pages)
    };
    assert_eq!(drive(), drive());
}
