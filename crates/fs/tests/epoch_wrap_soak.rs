//! Dirty-epoch stamp wraparound soak.
//!
//! Overwrite dedup rides a one-byte stamp per logical block: a block is
//! queued for the next CP iff its stamp equals the current epoch byte
//! `1 + cp_epoch % 255` (`0` = never stamped), and the CP boundary
//! "clears" every stamp in O(1) by bumping the epoch. The byte cycles,
//! so a stamp written at epoch `e` reads identical to the byte of epoch
//! `e + 255`; the aggregate defends against that by zeroing every stamp
//! array each time `cp_epoch` reaches a multiple of 255 — within any
//! 255-epoch window. These tests soak the wrap: a stale stamp must
//! never alias the current epoch byte and silently swallow a write.
//!
//! Run at one shard, an explicit multi-shard count, and the detected
//! default — the stamp machinery sits upstream of the write pipeline,
//! and must behave identically under all of them.

use wafl_fs::{default_write_shards, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::VolumeId;

const LOGICALS: u64 = 10_000;

fn agg(shards: usize) -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            write_shards: shards,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 4 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            LOGICALS,
        )],
        1,
    )
    .unwrap()
}

/// The targeted 255-gap scenario: write a block, advance the epoch until
/// its byte value comes round again (epoch `e` and epoch `e + 255` share
/// the same stamp byte), then overwrite the block. Without the zeroing
/// pass the stale stamp would equal the fresh epoch byte and the
/// overwrite would be deduped away as "already dirty this CP"; with it,
/// the write must queue and flush.
fn gap_255_alias(shards: usize) {
    let mut a = agg(shards);
    // Epoch 1 (stamp byte 2): write L and flush it.
    a.client_overwrite(VolumeId(0), 7).unwrap();
    let s = a.run_cp().unwrap();
    assert_eq!(s.ops, 1);
    let before = a.volumes()[0].lookup_logical(7).map(|v| v.get()).unwrap();

    // 254 empty CPs carry cp_epoch from 2 to 256 — past the zeroing at
    // 255 and onto the epoch whose byte (2) aliases the original stamp.
    for _ in 0..254 {
        let s = a.run_cp().unwrap();
        assert_eq!(s.ops, 0);
    }

    // The overwrite must queue (stale stamp zeroed, not aliasing) and
    // the next CP must flush exactly it, moving the block's mapping.
    a.client_overwrite(VolumeId(0), 7).unwrap();
    let s = a.run_cp().unwrap();
    assert_eq!(
        s.ops, 1,
        "shards {shards}: overwrite swallowed by a stale aliased stamp"
    );
    let after = a.volumes()[0].lookup_logical(7).map(|v| v.get()).unwrap();
    assert_ne!(before, after, "shards {shards}: COW must move the block");
}

/// Soak across >255 CPs: every round overwrites a fixed working set
/// twice (the double write checks within-CP coalescing keeps working
/// after stamp zeroing too) and the CP must flush exactly the distinct
/// set — no round may lose writes to a stale stamp or double-queue
/// after the wrap.
fn soak(shards: usize) {
    const ROUNDS: u64 = 300; // > 255: crosses the zeroing epoch and beyond
    const SET: u64 = 64;
    let mut a = agg(shards);
    for round in 0..ROUNDS {
        // A sliding window of logicals; revisits earlier blocks often so
        // old stamps are plentiful when the epoch byte comes round.
        let base = (round * 17) % (LOGICALS - SET);
        for l in base..base + SET {
            a.client_overwrite(VolumeId(0), l).unwrap();
            a.client_overwrite(VolumeId(0), l).unwrap();
        }
        let s = a.run_cp().unwrap();
        assert_eq!(
            s.ops, SET,
            "shards {shards} round {round}: CP flushed a wrong dirty set"
        );
    }
    assert_eq!(a.cp_count(), ROUNDS);
}

#[test]
fn gap_255_alias_one_shard() {
    gap_255_alias(1);
}

#[test]
fn gap_255_alias_multi_shard() {
    gap_255_alias(4);
}

#[test]
fn gap_255_alias_default_shards() {
    gap_255_alias(default_write_shards());
}

#[test]
fn soak_one_shard() {
    soak(1);
}

#[test]
fn soak_multi_shard() {
    soak(4);
}

#[test]
fn soak_default_shards() {
    soak(default_write_shards());
}
