//! Crash-consistency and degraded-mount integration tests.
//!
//! The torture driver closes the loop the paper leaves to WAFL Iron
//! (§3.4): damage the persisted TopAA state, tear a consistency point at
//! a scheduled crash site, remount in degraded mode, and prove the
//! system either checks clean or repairs to clean — then keeps serving
//! CPs. Every schedule is derived from a seed, so any failure reproduces
//! from its seed alone.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_faults::{
    CrashSite, FaultPlan, FaultSession, PageSel, PlanShape, ReadErrorFault, ScribbleFault,
    StructureId, PERSISTENT,
};
use wafl_fs::mount::{self, DegradedPart};
use wafl_fs::{aging, iron, Aggregate, AggregateConfig, CpOutcome, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{RetryPolicy, VolumeId};

const GROUPS: usize = 2;
const VOLS: usize = 2;
const VOL_BLOCKS: u64 = 4 * 32768;
const WRITTEN: u64 = 4096;

/// Two RAID groups, two volumes, aged with enough churn that every cache
/// has meaningful content and the delayed-free machinery carries state.
fn aged_agg(batched_frees: bool) -> Aggregate {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: 16 * 4096,
        profile: MediaProfile::hdd(),
    };
    let mut cfg = AggregateConfig::single_group(spec.clone());
    cfg.raid_groups.push(spec);
    cfg.batched_frees = batched_frees;
    if batched_frees {
        cfg.free_pages_per_cp = 2;
    }
    let vol_cfgs: Vec<_> = (0..VOLS)
        .map(|_| {
            (
                FlexVolConfig {
                    size_blocks: VOL_BLOCKS,
                    aa_cache: true,
                    aa_blocks: None,
                },
                30_000,
            )
        })
        .collect();
    let mut a = Aggregate::new(cfg, &vol_cfgs, 3).unwrap();
    for v in 0..VOLS {
        aging::fill_volume(&mut a, VolumeId(v as u32), WRITTEN as usize).unwrap();
        aging::random_overwrite_churn(
            &mut a,
            VolumeId(v as u32),
            6_000,
            WRITTEN as usize,
            v as u64,
        )
        .unwrap();
    }
    a
}

/// Bitmap pages one RAID group's cold rebuild scans.
fn group_pages(a: &Aggregate, i: usize) -> u64 {
    a.groups()[i]
        .geometry
        .data_blocks()
        .div_ceil(wafl_types::BITS_PER_BITMAP_BLOCK)
}

// ---------------------------------------------------------------------
// Satellite: orphan accounting surfaced instead of discarded.
// ---------------------------------------------------------------------

#[test]
fn orphaned_aging_seeds_are_counted_not_flagged() {
    let mut a = aged_agg(false);
    let before = iron::check(&a).unwrap();
    assert!(before.is_clean(), "{before:?}");
    assert_eq!(before.orphaned_blocks, 0);

    aging::seed_rg_random_occupancy(&mut a, 1, 0.3, 7).unwrap();
    let report = iron::check(&a).unwrap();
    assert!(report.orphaned_blocks > 0, "{report:?}");
    assert!(
        report.is_clean(),
        "orphans are fixture state, not damage: {report:?}"
    );
    // Repair on a clean-but-orphaned aggregate is a no-op.
    let repaired = iron::repair(&mut a).unwrap();
    assert_eq!(repaired.repairs, 0, "{repaired:?}");
    assert_eq!(repaired.orphaned_blocks, report.orphaned_blocks);
}

// ---------------------------------------------------------------------
// Satellite: per-structure degradation with mixed mount cost.
// ---------------------------------------------------------------------

#[test]
fn scribbled_group_degrades_alone_others_fast_path() {
    let mut a = aged_agg(false);
    let mut image = mount::save_topaa(&a);
    mount::crash(&mut a);

    let plan = FaultPlan::scribble(StructureId::Group(0), PageSel::First, 42);
    mount::apply_scribbles(&mut image, &plan);
    let stats = mount::mount_auto(&mut a, &image);

    assert_eq!(stats.degraded.len(), 1, "{:?}", stats.degraded);
    let ev = &stats.degraded[0];
    assert_eq!(ev.part, DegradedPart::Group(0));
    assert_eq!(ev.pages_scanned, group_pages(&a, 0));
    // Mixed cost: more than an all-fast mount (1 block per heap group +
    // 2 per volume), less than an all-cold one (every bitmap page).
    let fast = (GROUPS + 2 * VOLS) as u64;
    let cold: u64 = (0..GROUPS).map(|i| group_pages(&a, i)).sum::<u64>()
        + a.volumes()
            .iter()
            .map(|v| v.bitmap().page_count() as u64)
            .sum::<u64>();
    assert!(
        stats.metafile_blocks_read > fast && stats.metafile_blocks_read < cold,
        "mixed mount read {} blocks (fast={fast}, cold={cold})",
        stats.metafile_blocks_read
    );
    // Every structure has an operational cache; the degraded group's is
    // complete (cold rebuilds scan everything), so less background debt
    // than a fully fast mount would owe it.
    assert!(a.groups()[0].cache().unwrap().is_complete());
    for v in a.volumes() {
        assert!(v.cache().is_some());
    }
    // And the aggregate still serves a CP.
    for l in 0..500 {
        a.client_overwrite(VolumeId(0), l).unwrap();
    }
    a.run_cp().unwrap();
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn every_structure_scribbled_still_mounts() {
    let mut a = aged_agg(false);
    let mut image = mount::save_topaa(&a);
    mount::crash(&mut a);

    let mut plan = FaultPlan::none();
    for g in 0..GROUPS {
        plan.scribbles.push(ScribbleFault {
            target: StructureId::Group(g),
            page: PageSel::First,
            offset: 64,
            len: 48,
            pattern_seed: g as u64,
        });
    }
    for v in 0..VOLS {
        for page in [PageSel::First, PageSel::Second] {
            plan.scribbles.push(ScribbleFault {
                target: StructureId::Volume(v),
                page,
                offset: 512,
                len: 16,
                pattern_seed: 100 + v as u64,
            });
        }
    }
    mount::apply_scribbles(&mut image, &plan);
    let stats = mount::mount_auto(&mut a, &image);
    assert_eq!(stats.degraded.len(), GROUPS + VOLS, "{:?}", stats.degraded);
    for g in a.groups() {
        assert!(g.cache().is_some());
    }
    for v in a.volumes() {
        assert!(v.cache().is_some());
    }
    for l in 0..500 {
        a.client_overwrite(VolumeId(1), l).unwrap();
    }
    a.run_cp().unwrap();
}

// ---------------------------------------------------------------------
// Transient vs persistent metafile read errors.
// ---------------------------------------------------------------------

#[test]
fn transient_read_errors_are_retried_not_degraded() {
    let mut a = aged_agg(false);
    let image = mount::save_topaa(&a);
    mount::crash(&mut a);

    let plan = FaultPlan {
        read_errors: vec![ReadErrorFault {
            target: StructureId::Group(0),
            failures: 2,
        }],
        ..FaultPlan::default()
    };
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(&mut a, &image, &mut session, RetryPolicy::default());
    assert_eq!(stats.transient_retries, 2);
    assert!(stats.degraded.is_empty(), "{:?}", stats.degraded);
    assert!(!a.groups()[0].cache().unwrap().is_complete(), "fast path");
}

#[test]
fn transient_errors_beyond_retry_budget_degrade() {
    let mut a = aged_agg(false);
    let image = mount::save_topaa(&a);
    mount::crash(&mut a);

    let plan = FaultPlan {
        read_errors: vec![ReadErrorFault {
            target: StructureId::Volume(0),
            failures: 10, // more than the retry budget, but not PERSISTENT
        }],
        ..FaultPlan::default()
    };
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(
        &mut a,
        &image,
        &mut session,
        RetryPolicy::with_max_retries(3),
    );
    assert_eq!(stats.degraded.len(), 1);
    assert_eq!(stats.degraded[0].part, DegradedPart::Volume(0));
    assert_eq!(stats.transient_retries, 3, "budget fully consumed");
    assert!(a.volumes()[0].cache().is_some());
}

#[test]
fn persistent_read_error_degrades_only_its_structure() {
    let mut a = aged_agg(false);
    let image = mount::save_topaa(&a);
    mount::crash(&mut a);

    let plan = FaultPlan {
        read_errors: vec![ReadErrorFault {
            target: StructureId::Volume(1),
            failures: PERSISTENT,
        }],
        ..FaultPlan::default()
    };
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(&mut a, &image, &mut session, RetryPolicy::default());
    assert_eq!(stats.transient_retries, 0, "no point retrying");
    assert_eq!(stats.degraded.len(), 1);
    assert_eq!(stats.degraded[0].part, DegradedPart::Volume(1));
    for l in 0..200 {
        a.client_overwrite(VolumeId(1), l).unwrap();
    }
    a.run_cp().unwrap();
    assert!(iron::check(&a).unwrap().is_clean());
}

#[test]
fn missing_image_structures_degrade_instead_of_erroring() {
    let mut a = aged_agg(false);
    let mut image = mount::save_topaa(&a);
    mount::crash(&mut a);
    image.rg_blocks[1] = None;
    image.vol_pages[0] = None;
    let stats = mount::mount_auto(&mut a, &image);
    let parts: Vec<_> = stats.degraded.iter().map(|e| e.part).collect();
    assert_eq!(
        parts,
        vec![DegradedPart::Group(1), DegradedPart::Volume(0)],
        "{:?}",
        stats.degraded
    );
}

// ---------------------------------------------------------------------
// The torture loop: traffic → torn CP + corruption → degraded remount →
// check/repair → more traffic. Seeded and fully reproducible.
// ---------------------------------------------------------------------

fn torture_one(seed: u64) {
    let batched = seed.is_multiple_of(2);
    let mut agg = aged_agg(batched);
    let shape = PlanShape {
        groups: GROUPS,
        volumes: VOLS,
        max_progress: 600,
    };
    let plan = FaultPlan::random(seed, shape);

    // Client traffic since the last CP: overwrites with a sprinkle of
    // deletes, so the torn CP has binds, delayed frees, and deletions
    // in flight.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7051_7051);
    for _ in 0..600 {
        let vol = VolumeId(rng.random_range(0..VOLS as u32));
        let logical = rng.random_range(0..WRITTEN);
        if rng.random_bool(0.05) {
            let _ = agg.client_delete(vol, logical);
        } else {
            agg.client_overwrite(vol, logical).unwrap();
        }
    }

    // The TopAA image persisted by the *previous* CP survives the crash;
    // only a CP that reached its TopAA-persist step refreshes it.
    let mut image = mount::save_topaa(&agg);
    match agg
        .run_cp_with_faults(plan.crash)
        .unwrap_or_else(|e| panic!("seed {seed}: CP failed outright: {e}"))
    {
        CpOutcome::Completed(_) | CpOutcome::Crashed(CrashSite::AfterTopAaPersist) => {
            image = mount::save_topaa(&agg);
        }
        CpOutcome::Crashed(_) => {} // image stays one CP stale
    }

    mount::crash(&mut agg);
    mount::apply_scribbles(&mut image, &plan);
    let mut session = FaultSession::new(&plan);
    let stats = mount::mount_auto_with(&mut agg, &image, &mut session, RetryPolicy::default());

    // Invariant 1: degraded mount always completes with operational caches.
    for g in agg.groups() {
        assert!(g.cache().is_some(), "seed {seed}: group cache missing");
    }
    for v in agg.volumes() {
        assert!(v.cache().is_some(), "seed {seed}: volume cache missing");
    }

    // Invariant 2: the aggregate checks clean, or repairs to clean.
    let report = iron::check(&agg).unwrap();
    if !report.is_clean() {
        let repaired = iron::repair(&mut agg).unwrap();
        assert!(
            repaired.repairs > 0,
            "seed {seed}: dirty check but no repairs: {repaired:?} (mount: {stats:?})"
        );
        let after = iron::check(&agg).unwrap();
        assert!(
            after.is_clean(),
            "seed {seed}: still dirty after repair: {after:?} (was {report:?})"
        );
    }

    // Invariant 3: the remounted aggregate keeps serving CPs.
    for _ in 0..300 {
        let vol = VolumeId(rng.random_range(0..VOLS as u32));
        agg.client_overwrite(vol, rng.random_range(0..WRITTEN))
            .unwrap();
    }
    agg.run_cp()
        .unwrap_or_else(|e| panic!("seed {seed}: post-remount CP failed: {e}"));
    assert!(
        iron::check(&agg).unwrap().is_clean(),
        "seed {seed}: dirty after post-remount CP"
    );
}

#[test]
fn torture_smoke() {
    for seed in 0..25 {
        torture_one(seed);
    }
}

/// The full acceptance run: `cargo test -p wafl-fs --test crash_consistency -- --ignored`
#[test]
#[ignore = "long-running: 200 seeded crash/corrupt/remount schedules"]
fn torture_full() {
    for seed in 0..200 {
        torture_one(seed);
    }
}
