//! Runtime-scrub torture: seeded rounds of mid-run in-memory corruption
//! against an online, traffic-serving aggregate.
//!
//! Each round (driven by `wafl_workloads::torture::scrub_torture_round`)
//! generates a [`FaultPlan::random_runtime`] schedule from its seed —
//! counter scribbles, transient scrub-read errors, sometimes a torn CP —
//! and asserts the detect → quarantine → repair → release cycle: no
//! allocation ever lands in a quarantined AA, health returns to Healthy,
//! and every bitmap summary converges back to popcount ground truth.
//!
//! **Release-only**: a debug build's bitmap summary assertion fires on
//! the first non-empty CP after a scribble lands — deliberately, and
//! before the scrubber's budgeted scan can reach it. The full run is
//! `scripts/ci.sh --scrub-torture`, i.e.
//! `cargo test --release -p wafl-fs --test scrub_torture -- --ignored`.
//! Any failure reproduces from its printed seed alone.

use wafl_fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, HealthState, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_types::{VolumeId, WaflError};
use wafl_workloads::torture::scrub_torture_round;
use wafl_workloads::OltpMix;

const VOLS: usize = 2;
const VOL_BLOCKS: u64 = 4 * 32768;
const WRITTEN: u64 = 4096;

/// 28 verification units at 16 per CP: a full scrub cycle is 2 CPs, so
/// detection always outruns the 2-step healthy hysteresis.
const SCRUB_BUDGET: u64 = 16;

/// Two groups, two cache-guided volumes, aged enough that heap and HBPS
/// caches carry real scores for the score-scribble fault to corrupt.
fn scrub_agg() -> Aggregate {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: 16 * 4096,
        profile: MediaProfile::hdd(),
    };
    let mut cfg = AggregateConfig::single_group(spec.clone());
    cfg.raid_groups.push(spec);
    cfg.scrub_pages_per_cp = SCRUB_BUDGET;
    let vol_cfgs: Vec<_> = (0..VOLS)
        .map(|_| {
            (
                FlexVolConfig {
                    size_blocks: VOL_BLOCKS,
                    aa_cache: true,
                    aa_blocks: None,
                },
                30_000,
            )
        })
        .collect();
    let mut agg = Aggregate::new(cfg, &vol_cfgs, 3).unwrap();
    for v in 0..VOLS {
        aging::fill_volume(&mut agg, VolumeId(v as u32), WRITTEN as usize).unwrap();
    }
    agg
}

fn torture_one(seed: u64) {
    let mut agg = scrub_agg();
    let luns: Vec<_> = (0..VOLS).map(|v| (VolumeId(v as u32), WRITTEN)).collect();
    let mut workload = OltpMix::new(luns, 0.3, seed);

    let round = scrub_torture_round(&mut agg, &mut workload, 16, 512, seed)
        .unwrap_or_else(|e| panic!("seed {seed}: round machinery failed: {e}"));

    // Invariant 1: the allocator never touched a quarantined AA.
    assert_eq!(
        round.quarantine_violations, 0,
        "seed {seed}: allocations landed in quarantined AAs: {round:?}"
    );

    // Invariant 2: in an uninterrupted round every scheduled scribble
    // corrupts live state, so the scrubber must have detected faults.
    // (A torn CP can legitimately heal corruption by rebuilding from
    // the raw bits before the scan reaches it.)
    if round.crashed.is_none() {
        assert!(
            round.faults_detected >= 1,
            "seed {seed}: {} scribbles landed but none detected: {round:?}",
            round.scribbles_scheduled
        );
    }

    // Settle: one more full scrub cycle catches anything still latent
    // (a scribble can land inside the round's final hysteresis window),
    // then bounded draining lets its repair ticket complete.
    for _ in 0..3 {
        agg.run_cp().unwrap();
    }
    let mut extra = 0;
    while agg.health() != HealthState::Healthy {
        assert!(
            extra < 64,
            "seed {seed}: health wedged at {:?}",
            agg.scrub_status()
        );
        agg.run_cp().unwrap();
        extra += 1;
    }

    // Invariant 3: quarantine fully released, summaries back to truth.
    let status = agg.scrub_status();
    assert_eq!(status.quarantined_aas, 0, "seed {seed}: {status:?}");
    assert_eq!(status.pending_repairs, 0, "seed {seed}: {status:?}");
    assert_eq!(
        agg.bitmap().summary_divergences(),
        0,
        "seed {seed}: aggregate summaries diverge after recovery"
    );
    for (v, vol) in agg.volumes().iter().enumerate() {
        assert_eq!(
            vol.bitmap().summary_divergences(),
            0,
            "seed {seed}: volume {v} summaries diverge after recovery"
        );
    }

    // Invariant 4: the recovered aggregate keeps serving traffic.
    for i in 0..300u64 {
        match agg.client_overwrite(VolumeId((i % VOLS as u64) as u32), i % WRITTEN) {
            Ok(()) | Err(WaflError::SpaceExhausted) => {}
            Err(e) => panic!("seed {seed}: post-recovery write failed: {e}"),
        }
    }
    agg.run_cp()
        .unwrap_or_else(|e| panic!("seed {seed}: post-recovery CP failed: {e}"));
    assert_eq!(agg.health(), HealthState::Healthy, "seed {seed}");
}

/// The full acceptance run:
/// `cargo test --release -p wafl-fs --test scrub_torture -- --ignored`.
#[test]
#[ignore = "long-running, release-only: 200 seeded runtime corruption schedules"]
// A const block would fail the *compile* of debug test builds; the guard
// must only fire when the ignored test is actually run.
#[allow(clippy::assertions_on_constants)]
fn scrub_torture_full() {
    assert!(
        !cfg!(debug_assertions),
        "run with --release: debug bitmap assertions fire on latent \
         scribbles before the scrubber can repair them"
    );
    for seed in 0..200 {
        torture_one(seed);
    }
}
