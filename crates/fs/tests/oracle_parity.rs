//! Oracle parity: the sharded production pipeline versus the frozen
//! sequential reference planner in `wafl-oracle`.
//!
//! The oracle is a verbatim transcription of the retired legacy
//! (`write_shards == 0`) pipeline — per-block bind, per-block frees,
//! per-block costing — validated bit-for-bit against that code before
//! it was deleted. These tests keep the production pipeline pinned to
//! it at every shard count:
//!
//! * physical and virtual layout match page for page (the lease
//!   batches split the TopAA rank order, but their union is the same
//!   rank-order drain prefix the sequential planner takes);
//! * logical→virtual mappings are identical;
//! * per-group media costing is f64-bit-identical (run-interval
//!   analysis vs the oracle's per-block analysis).
//!
//! The `#[ignore]`d seed sweep is the `scripts/ci.sh --oracle-parity`
//! gate: a release-mode sweep over seeds × shard counts with zero
//! diffs allowed.

use rand::prelude::*;
use rand::rngs::StdRng;
use wafl_fs::{Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_media::MediaProfile;
use wafl_oracle::{OracleAggregate, OracleRaidGroupSpec, OracleVolSpec};
use wafl_types::VolumeId;

const LOGICALS: u64 = 50_000;

fn agg(shards: usize) -> Aggregate {
    Aggregate::new(
        AggregateConfig {
            write_shards: shards,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            LOGICALS,
        )],
        1,
    )
    .unwrap()
}

fn oracle() -> OracleAggregate {
    OracleAggregate::new(
        &[OracleRaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 16 * 4096,
        }],
        &[(
            OracleVolSpec {
                size_blocks: 8 * 32768,
                aa_blocks: None,
            },
            LOGICALS,
        )],
    )
    .unwrap()
}

/// Drive both planners through the identical workload and assert full
/// parity after every CP. Returns the number of CPs compared.
fn assert_parity(agg: &mut Aggregate, orc: &mut OracleAggregate, seed: u64, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..rounds {
        let ops: Vec<(u64, bool)> = (0..2500)
            .map(|_| {
                (
                    rng.random_range(0..LOGICALS),
                    rng.random_range(0..10u32) == 0,
                )
            })
            .collect();
        for &(l, del) in &ops {
            if del {
                agg.client_delete(VolumeId(0), l).unwrap();
                orc.client_delete(VolumeId(0), l).unwrap();
            } else {
                agg.client_overwrite(VolumeId(0), l).unwrap();
                orc.client_overwrite(VolumeId(0), l).unwrap();
            }
        }
        let sa = agg.run_cp().unwrap();
        let so = orc.run_cp().unwrap();

        // Physical layout: page-exact.
        assert_eq!(
            agg.bitmap().free_blocks(),
            orc.bitmap().free_blocks(),
            "seed {seed} round {round}: physical free blocks diverge"
        );
        assert_eq!(
            agg.bitmap().page_free_counts(),
            orc.bitmap().page_free_counts(),
            "seed {seed} round {round}: physical page counts diverge"
        );
        // Virtual layout and mappings: bit-identical.
        let av = &agg.volumes()[0];
        let ov = &orc.volumes()[0];
        assert_eq!(
            av.free_blocks(),
            ov.free_blocks(),
            "seed {seed} round {round}"
        );
        assert_eq!(
            av.bitmap().page_free_counts(),
            ov.bitmap().page_free_counts(),
            "seed {seed} round {round}"
        );
        for l in 0..LOGICALS {
            assert_eq!(
                av.lookup_logical(l).map(|v| v.get()),
                ov.lookup_logical(l).map(|v| v.get()),
                "seed {seed} round {round}: logical {l} maps diverge"
            );
        }
        // Costing: f64-bit-identical per-group stats.
        assert_eq!(sa.per_rg.len(), so.per_rg.len());
        for (a, b) in sa.per_rg.iter().zip(&so.per_rg) {
            assert_eq!(a.blocks, b.blocks, "seed {seed} round {round}");
            assert_eq!(a.tetrises, b.tetrises, "seed {seed} round {round}");
            assert_eq!(a.full_stripes, b.full_stripes, "seed {seed} round {round}");
            assert_eq!(
                a.partial_stripes, b.partial_stripes,
                "seed {seed} round {round}"
            );
            assert_eq!(a.parity_reads, b.parity_reads, "seed {seed} round {round}");
            assert_eq!(
                a.parity_writes, b.parity_writes,
                "seed {seed} round {round}"
            );
            assert_eq!(
                a.per_device_blocks, b.per_device_blocks,
                "seed {seed} round {round}"
            );
            assert_eq!(
                a.per_device_chains, b.per_device_chains,
                "seed {seed} round {round}"
            );
            assert_eq!(
                a.media_us.to_bits(),
                b.media_us.to_bits(),
                "seed {seed} round {round}"
            );
        }
        assert_eq!(sa.ops, so.ops, "seed {seed} round {round}");
        assert_eq!(
            sa.metafile_pages, so.metafile_pages,
            "seed {seed} round {round}"
        );
        assert_eq!(
            sa.media_us.to_bits(),
            so.media_us.to_bits(),
            "seed {seed} round {round}"
        );
    }
}

#[test]
fn sharded_default_matches_oracle() {
    // The detected-parallelism default — whatever this host resolves it
    // to — must match the oracle exactly.
    let shards = wafl_fs::default_write_shards();
    assert_parity(&mut agg(shards), &mut oracle(), 7, 6);
}

#[test]
fn one_shard_matches_oracle() {
    assert_parity(&mut agg(1), &mut oracle(), 7, 6);
}

#[test]
fn four_shards_match_oracle() {
    assert_parity(&mut agg(4), &mut oracle(), 11, 6);
}

#[test]
fn multi_group_multi_vol_matches_oracle() {
    let groups = [
        RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 8 * 4096,
            profile: MediaProfile::hdd(),
        },
        RaidGroupSpec {
            data_devices: 6,
            parity_devices: 2,
            device_blocks: 8 * 4096,
            profile: MediaProfile::hdd(),
        },
    ];
    let mut cfg = AggregateConfig::single_group(groups[0].clone());
    cfg.raid_groups = groups.to_vec();
    cfg.write_shards = 4;
    let vols = [(4u64 * 32768, 20_000u64), (2 * 32768, 10_000)];
    let mut agg = Aggregate::new(
        cfg,
        &vols
            .iter()
            .map(|&(size, logical)| {
                (
                    FlexVolConfig {
                        size_blocks: size,
                        aa_cache: true,
                        aa_blocks: None,
                    },
                    logical,
                )
            })
            .collect::<Vec<_>>(),
        1,
    )
    .unwrap();
    let mut orc = OracleAggregate::new(
        &[
            OracleRaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 8 * 4096,
            },
            OracleRaidGroupSpec {
                data_devices: 6,
                parity_devices: 2,
                device_blocks: 8 * 4096,
            },
        ],
        &vols
            .iter()
            .map(|&(size, logical)| {
                (
                    OracleVolSpec {
                        size_blocks: size,
                        aa_blocks: None,
                    },
                    logical,
                )
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..5 {
        for _ in 0..3000 {
            let v = rng.random_range(0..2u32);
            let l = rng.random_range(0..vols[v as usize].1);
            if rng.random_range(0..12u32) == 0 {
                agg.client_delete(VolumeId(v), l).unwrap();
                orc.client_delete(VolumeId(v), l).unwrap();
            } else {
                agg.client_overwrite(VolumeId(v), l).unwrap();
                orc.client_overwrite(VolumeId(v), l).unwrap();
            }
        }
        let sa = agg.run_cp().unwrap();
        let so = orc.run_cp().unwrap();
        assert_eq!(
            agg.bitmap().page_free_counts(),
            orc.bitmap().page_free_counts(),
            "round {round}"
        );
        for (av, ov) in agg.volumes().iter().zip(orc.volumes()) {
            assert_eq!(av.free_blocks(), ov.free_blocks(), "round {round}");
            assert_eq!(
                av.bitmap().page_free_counts(),
                ov.bitmap().page_free_counts(),
                "round {round}"
            );
        }
        assert_eq!(sa.per_rg.len(), so.per_rg.len());
        for (a, b) in sa.per_rg.iter().zip(&so.per_rg) {
            assert_eq!(a.per_device_blocks, b.per_device_blocks, "round {round}");
            assert_eq!(a.per_device_chains, b.per_device_chains, "round {round}");
            assert_eq!(a.media_us.to_bits(), b.media_us.to_bits(), "round {round}");
        }
    }
}

#[test]
fn legacy_shard_count_is_rejected() {
    // write_shards == 0 used to select the in-tree legacy pipeline; the
    // pipeline moved to wafl-oracle and the config value is now invalid.
    let result = Aggregate::new(
        AggregateConfig {
            write_shards: 0,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(FlexVolConfig::default(), 1024)],
        1,
    );
    assert!(matches!(
        result,
        Err(wafl_types::WaflError::InvalidConfig { .. })
    ));
}

/// The `scripts/ci.sh --oracle-parity` gate: seeds × shard counts, zero
/// plan diffs allowed. Release-only (ignored by the default test run).
#[test]
#[ignore = "release-mode CI gate: run via scripts/ci.sh --oracle-parity"]
fn oracle_parity_seed_sweep() {
    for seed in [1u64, 3, 17, 99, 123, 1024] {
        for shards in [1usize, 2, 3, 4, 8] {
            assert_parity(&mut agg(shards), &mut oracle(), seed, 4);
        }
    }
}
