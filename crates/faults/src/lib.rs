//! Deterministic fault injection for the WAFL free-space simulator.
//!
//! §3.4 of the paper leans on WAFL Iron to "recompute and recover"
//! damaged TopAA metafile blocks, but nothing in a clean-room simulator
//! damages blocks on its own. This crate is the damage generator: a
//! [`FaultPlan`] is a pure-data, seed-reproducible schedule of
//!
//! * **scribbles** — byte corruption of persisted TopAA blocks and HBPS
//!   pages ([`ScribbleFault`]),
//! * **read errors** — transient (succeed after retries) or persistent
//!   ([`ReadErrorFault`]) metafile read failures,
//! * **a crash point** — a [`CrashSite`] mid-consistency-point where the
//!   in-memory state is torn down as a power loss would.
//!
//! `wafl-fs` consumes a plan through a [`FaultSession`], which tracks
//! per-structure attempt counts so "fail the first N reads" semantics
//! are stateful while the plan itself stays immutable and replayable.
//! The same seed always yields the same plan and the same session
//! behavior — crash-consistency failures found by the torture test
//! reproduce from their seed alone.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Which persisted metafile structure a fault targets.
///
/// TopAA state is persisted per RAID group (one 4 KiB block, or two HBPS
/// pages for object-store groups) and per FlexVol (two HBPS pages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureId {
    /// A RAID group's TopAA block / HBPS page pair.
    Group(usize),
    /// A FlexVol's HBPS page pair.
    Volume(usize),
}

/// Which 4 KiB page of a structure a scribble lands on.
///
/// Heap-style TopAA state is a single block (`First`); HBPS state is a
/// histogram page (`First`) plus a candidate-list page (`Second`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageSel {
    /// The TopAA block or the HBPS histogram page.
    First,
    /// The HBPS candidate-list page (ignored for heap-style groups).
    Second,
}

/// Byte corruption of one persisted page.
///
/// The corruption XORs `len` bytes starting at `offset` with a non-zero
/// pattern derived from `pattern_seed`, so applying it always changes
/// the page (an all-zero XOR would be a no-op "corruption").
#[derive(Clone, Copy, Debug)]
pub struct ScribbleFault {
    /// Structure whose persisted page is damaged.
    pub target: StructureId,
    /// Which of the structure's pages.
    pub page: PageSel,
    /// First corrupted byte offset within the 4 KiB page.
    pub offset: usize,
    /// Number of corrupted bytes.
    pub len: usize,
    /// Seed for the XOR pattern.
    pub pattern_seed: u64,
}

impl ScribbleFault {
    /// Apply the corruption to a persisted page image.
    ///
    /// Out-of-range portions are clamped to the page, and the XOR bytes
    /// are forced non-zero, so at least one byte changes whenever
    /// `offset` is inside the page.
    pub fn apply(&self, page: &mut [u8]) {
        if self.offset >= page.len() || self.len == 0 {
            return;
        }
        let end = (self.offset + self.len).min(page.len());
        let mut rng = StdRng::seed_from_u64(self.pattern_seed);
        for byte in &mut page[self.offset..end] {
            *byte ^= rng.random_range(1u8..=u8::MAX);
        }
    }
}

/// A metafile read failure schedule for one structure.
#[derive(Clone, Copy, Debug)]
pub struct ReadErrorFault {
    /// Structure whose reads fail.
    pub target: StructureId,
    /// How many leading read attempts fail. [`PERSISTENT`] means every
    /// attempt fails (media gone, not flaky).
    pub failures: u32,
}

/// `failures` value meaning "every read attempt fails".
pub const PERSISTENT: u32 = u32::MAX;

impl ReadErrorFault {
    /// True if no finite number of retries will succeed.
    pub fn is_persistent(&self) -> bool {
        self.failures == PERSISTENT
    }
}

/// Where a crash cuts a consistency point short.
///
/// Sites are ordered by CP progress; each leaves a characteristic torn
/// state that `iron::check`/`iron::repair` must handle (see
/// `docs/recovery.md` for the fault matrix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// After `n` physical block allocations are written, before any
    /// logical→physical binding: leaks allocated-but-unowned pvbns.
    AfterBlockWrites(u64),
    /// After binding and ownership updates, before delayed frees apply:
    /// old block versions still allocated with stale owners.
    AfterBind,
    /// After `n` delayed-free log entries applied: the rest of the log
    /// is lost (absolved), possibly with one torn entry.
    MidFreeLogApply(u64),
    /// CP work complete but the TopAA metafile was not persisted: the
    /// on-disk TopAA image is one CP stale.
    BeforeTopAaPersist,
    /// Crash immediately after TopAA persist: the cleanest tear.
    AfterTopAaPersist,
}

/// Which piece of *live, in-memory* free-space metadata a runtime
/// scribble corrupts. Unlike [`ScribbleFault`] (which damages persisted
/// page images before a remount), these fire while the aggregate is
/// serving traffic — the latent corruption the runtime scrubber exists
/// to catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeTarget {
    /// One per-page free-count summary counter of the aggregate bitmap.
    AggSummaryPage {
        /// Metafile page index (reduced modulo the page count on apply).
        page: usize,
    },
    /// One per-page free-count summary counter of a FlexVol bitmap.
    VolSummaryPage {
        /// Volume index (reduced modulo the volume count on apply).
        vol: usize,
        /// Metafile page index (reduced modulo the page count on apply).
        page: usize,
    },
    /// A cached AA score inside a RAID group's in-memory TopAA cache.
    GroupCacheScore {
        /// Group index (reduced modulo the group count on apply).
        group: usize,
    },
}

/// A scheduled in-memory corruption: at the start of the consistency
/// point numbered `at_cp`, the target counter/score is XORed with a
/// non-zero value derived from `value_seed`, guaranteeing a change.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeScribbleFault {
    /// What live structure is damaged.
    pub target: RuntimeTarget,
    /// CP count at whose start the scribble fires (fires on the first CP
    /// with `cp_count >= at_cp`, exactly once).
    pub at_cp: u64,
    /// Seed for the corrupting value.
    pub value_seed: u64,
}

/// A complete, immutable fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Corruptions applied to the persisted image before remount.
    pub scribbles: Vec<ScribbleFault>,
    /// Read failures observed during remount.
    pub read_errors: Vec<ReadErrorFault>,
    /// Optional mid-CP crash point.
    pub crash: Option<CrashSite>,
    /// In-memory corruptions fired mid-run at scheduled CP counts.
    pub runtime_scribbles: Vec<RuntimeScribbleFault>,
    /// Read failures observed by the runtime scrubber's verify reads
    /// (a separate channel from `read_errors`, which fire at mount).
    pub scrub_read_errors: Vec<ReadErrorFault>,
}

/// Dimensions of the system a random plan is generated against.
#[derive(Clone, Copy, Debug)]
pub struct PlanShape {
    /// Number of RAID groups in the aggregate.
    pub groups: usize,
    /// Number of FlexVols.
    pub volumes: usize,
    /// Rough upper bound for [`CrashSite::AfterBlockWrites`] /
    /// [`CrashSite::MidFreeLogApply`] progress counts.
    pub max_progress: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Corrupt one structure's page with a seed-derived pattern.
    pub fn scribble(target: StructureId, page: PageSel, seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultPlan {
            scribbles: vec![ScribbleFault {
                target,
                page,
                offset: rng.random_range(0usize..4096),
                len: rng.random_range(1usize..=64),
                pattern_seed: rng.next_u64(),
            }],
            ..FaultPlan::default()
        }
    }

    /// Generate a random schedule from `seed`. Every draw comes from a
    /// `StdRng` seeded with `seed`, so equal seeds yield equal plans.
    pub fn random(seed: u64, shape: PlanShape) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();

        let pick_target = |rng: &mut StdRng| {
            if shape.volumes > 0 && rng.random_bool(0.4) {
                StructureId::Volume(rng.random_range(0..shape.volumes))
            } else {
                StructureId::Group(rng.random_range(0..shape.groups.max(1)))
            }
        };

        // Scribbles: usually zero or one structure, sometimes a couple.
        let n_scribbles = [0usize, 0, 1, 1, 1, 2][rng.random_range(0usize..6)];
        for _ in 0..n_scribbles {
            let page = if rng.random_bool(0.5) {
                PageSel::First
            } else {
                PageSel::Second
            };
            plan.scribbles.push(ScribbleFault {
                target: pick_target(&mut rng),
                page,
                offset: rng.random_range(0usize..4096),
                len: rng.random_range(1usize..=256),
                pattern_seed: rng.next_u64(),
            });
        }

        // Read errors: mostly transient (1–3 failures), occasionally
        // persistent.
        let n_read_errors = [0usize, 0, 0, 1, 1, 2][rng.random_range(0usize..6)];
        for _ in 0..n_read_errors {
            let failures = if rng.random_bool(0.25) {
                PERSISTENT
            } else {
                rng.random_range(1u32..=3)
            };
            plan.read_errors.push(ReadErrorFault {
                target: pick_target(&mut rng),
                failures,
            });
        }

        // Crash point: present in most schedules — the torture test is
        // about crash consistency first, corruption second.
        if rng.random_bool(0.8) {
            let progress = rng.random_range(0..shape.max_progress.max(1));
            plan.crash = Some(match rng.random_range(0u32..5) {
                0 => CrashSite::AfterBlockWrites(progress),
                1 => CrashSite::AfterBind,
                2 => CrashSite::MidFreeLogApply(progress),
                3 => CrashSite::BeforeTopAaPersist,
                _ => CrashSite::AfterTopAaPersist,
            });
        }
        plan
    }

    /// Generate a random *runtime* schedule from `seed`: 1–2 in-memory
    /// scribbles at CP counts in `[1, cps)` plus occasionally a transient
    /// scrub-read error, and (30% of seeds) a crash site to tear a CP
    /// while repairs may be pending. Scrub-read errors here are always
    /// transient — a persistent verify failure pins its structure in
    /// quarantine forever, which is its own (deliberate, non-random)
    /// test scenario.
    pub fn random_runtime(seed: u64, shape: PlanShape, cps: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C0B_5C0B_5C0B_5C0B);
        let mut plan = FaultPlan::default();
        let cps = cps.max(2);

        let pick_runtime_target = |rng: &mut StdRng| match rng.random_range(0u32..3) {
            0 => RuntimeTarget::AggSummaryPage {
                page: rng.random_range(0usize..1024),
            },
            1 if shape.volumes > 0 => RuntimeTarget::VolSummaryPage {
                vol: rng.random_range(0..shape.volumes),
                page: rng.random_range(0usize..1024),
            },
            _ => RuntimeTarget::GroupCacheScore {
                group: rng.random_range(0..shape.groups.max(1)),
            },
        };

        let n_scribbles = [1usize, 1, 1, 2, 2][rng.random_range(0usize..5)];
        for _ in 0..n_scribbles {
            plan.runtime_scribbles.push(RuntimeScribbleFault {
                target: pick_runtime_target(&mut rng),
                at_cp: rng.random_range(1..cps),
                value_seed: rng.next_u64(),
            });
        }

        if rng.random_bool(0.3) {
            let target = if shape.volumes > 0 && rng.random_bool(0.4) {
                StructureId::Volume(rng.random_range(0..shape.volumes))
            } else {
                StructureId::Group(rng.random_range(0..shape.groups.max(1)))
            };
            plan.scrub_read_errors.push(ReadErrorFault {
                target,
                failures: rng.random_range(1u32..=3),
            });
        }

        if rng.random_bool(0.3) {
            let progress = rng.random_range(0..shape.max_progress.max(1));
            plan.crash = Some(match rng.random_range(0u32..5) {
                0 => CrashSite::AfterBlockWrites(progress),
                1 => CrashSite::AfterBind,
                2 => CrashSite::MidFreeLogApply(progress),
                3 => CrashSite::BeforeTopAaPersist,
                _ => CrashSite::AfterTopAaPersist,
            });
        }
        plan
    }

    /// Scribbles aimed at `target`.
    pub fn scribbles_for(&self, target: StructureId) -> impl Iterator<Item = &ScribbleFault> + '_ {
        self.scribbles.iter().filter(move |s| s.target == target)
    }
}

/// Outcome of one faulted read attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read succeeds.
    Ok,
    /// The read fails but a retry may succeed.
    Transient,
    /// The read fails and retrying is pointless.
    Persistent,
}

/// Runtime state for consuming a [`FaultPlan`]: tracks how many read
/// attempts each structure has absorbed so transient errors clear after
/// their scheduled failure count.
#[derive(Debug)]
pub struct FaultSession<'a> {
    plan: &'a FaultPlan,
    attempts: std::collections::HashMap<StructureId, u32>,
    scrub_attempts: std::collections::HashMap<StructureId, u32>,
    fired_runtime: Vec<bool>,
}

impl<'a> FaultSession<'a> {
    /// Start consuming `plan`.
    pub fn new(plan: &'a FaultPlan) -> FaultSession<'a> {
        FaultSession {
            plan,
            attempts: std::collections::HashMap::new(),
            scrub_attempts: std::collections::HashMap::new(),
            fired_runtime: vec![false; plan.runtime_scribbles.len()],
        }
    }

    /// The plan this session consumes.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Record a read attempt against `target` and report its outcome.
    pub fn on_read(&mut self, target: StructureId) -> ReadOutcome {
        let Some(fault) = self.plan.read_errors.iter().find(|f| f.target == target) else {
            return ReadOutcome::Ok;
        };
        if fault.is_persistent() {
            return ReadOutcome::Persistent;
        }
        let seen = self.attempts.entry(target).or_insert(0);
        if *seen < fault.failures {
            *seen += 1;
            ReadOutcome::Transient
        } else {
            ReadOutcome::Ok
        }
    }

    /// Record a *scrub* read attempt against `target` and report its
    /// outcome. A separate attempt channel from [`FaultSession::on_read`]
    /// so mount-time and runtime failure schedules don't consume each
    /// other's budgets.
    pub fn on_scrub_read(&mut self, target: StructureId) -> ReadOutcome {
        let Some(fault) = self
            .plan
            .scrub_read_errors
            .iter()
            .find(|f| f.target == target)
        else {
            return ReadOutcome::Ok;
        };
        if fault.is_persistent() {
            return ReadOutcome::Persistent;
        }
        let seen = self.scrub_attempts.entry(target).or_insert(0);
        if *seen < fault.failures {
            *seen += 1;
            ReadOutcome::Transient
        } else {
            ReadOutcome::Ok
        }
    }

    /// Runtime scribbles due at CP count `cp` that have not fired yet,
    /// in plan order. Each is returned exactly once across the session.
    pub fn take_due_runtime_scribbles(&mut self, cp: u64) -> Vec<RuntimeScribbleFault> {
        let mut due = Vec::new();
        for (i, fault) in self.plan.runtime_scribbles.iter().enumerate() {
            if !self.fired_runtime[i] && fault.at_cp <= cp {
                self.fired_runtime[i] = true;
                due.push(*fault);
            }
        }
        due
    }

    /// The crash point, if the plan schedules one.
    pub fn crash_site(&self) -> Option<CrashSite> {
        self.plan.crash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let shape = PlanShape {
            groups: 4,
            volumes: 3,
            max_progress: 10_000,
        };
        for seed in 0..200 {
            let a = FaultPlan::random(seed, shape);
            let b = FaultPlan::random(seed, shape);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
        // And different seeds do differ somewhere in 200 tries.
        let all: std::collections::HashSet<String> = (0..200)
            .map(|s| format!("{:?}", FaultPlan::random(s, shape)))
            .collect();
        assert!(all.len() > 100, "only {} distinct plans", all.len());
    }

    #[test]
    fn scribble_always_changes_the_page() {
        for seed in 0..100 {
            let plan = FaultPlan::scribble(StructureId::Group(0), PageSel::First, seed);
            let mut page = vec![0xA5u8; 4096];
            let orig = page.clone();
            plan.scribbles[0].apply(&mut page);
            assert_ne!(page, orig, "seed {seed} produced a no-op scribble");
        }
    }

    #[test]
    fn scribble_clamps_to_page_bounds() {
        let fault = ScribbleFault {
            target: StructureId::Group(0),
            page: PageSel::First,
            offset: 4090,
            len: 100,
            pattern_seed: 7,
        };
        let mut page = vec![0u8; 4096];
        fault.apply(&mut page);
        assert!(page[..4090].iter().all(|&b| b == 0));
        assert!(page[4090..].iter().any(|&b| b != 0));
    }

    #[test]
    fn transient_errors_clear_after_scheduled_failures() {
        let plan = FaultPlan {
            read_errors: vec![ReadErrorFault {
                target: StructureId::Group(1),
                failures: 2,
            }],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        assert_eq!(
            session.on_read(StructureId::Group(1)),
            ReadOutcome::Transient
        );
        assert_eq!(
            session.on_read(StructureId::Group(1)),
            ReadOutcome::Transient
        );
        assert_eq!(session.on_read(StructureId::Group(1)), ReadOutcome::Ok);
        // Unrelated structures never fail.
        assert_eq!(session.on_read(StructureId::Group(0)), ReadOutcome::Ok);
        assert_eq!(session.on_read(StructureId::Volume(0)), ReadOutcome::Ok);
    }

    #[test]
    fn persistent_errors_never_clear() {
        let plan = FaultPlan {
            read_errors: vec![ReadErrorFault {
                target: StructureId::Volume(2),
                failures: PERSISTENT,
            }],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        for _ in 0..50 {
            assert_eq!(
                session.on_read(StructureId::Volume(2)),
                ReadOutcome::Persistent
            );
        }
    }

    #[test]
    fn runtime_plans_are_seed_deterministic_and_bounded() {
        let shape = PlanShape {
            groups: 2,
            volumes: 3,
            max_progress: 1000,
        };
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..200 {
            let a = FaultPlan::random_runtime(seed, shape, 24);
            let b = FaultPlan::random_runtime(seed, shape, 24);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            distinct.insert(format!("{a:?}"));
            assert!(
                !a.runtime_scribbles.is_empty(),
                "seed {seed} injects nothing"
            );
            for f in &a.runtime_scribbles {
                assert!((1..24).contains(&f.at_cp));
                match f.target {
                    RuntimeTarget::VolSummaryPage { vol, .. } => assert!(vol < 3),
                    RuntimeTarget::GroupCacheScore { group } => assert!(group < 2),
                    RuntimeTarget::AggSummaryPage { .. } => {}
                }
            }
            for f in &a.scrub_read_errors {
                assert!(!f.is_persistent(), "runtime read errors must clear");
                assert!((1..=3).contains(&f.failures));
            }
        }
        assert!(
            distinct.len() > 100,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn runtime_scribbles_fire_exactly_once_when_due() {
        let plan = FaultPlan {
            runtime_scribbles: vec![
                RuntimeScribbleFault {
                    target: RuntimeTarget::AggSummaryPage { page: 0 },
                    at_cp: 3,
                    value_seed: 1,
                },
                RuntimeScribbleFault {
                    target: RuntimeTarget::GroupCacheScore { group: 0 },
                    at_cp: 5,
                    value_seed: 2,
                },
            ],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        assert!(session.take_due_runtime_scribbles(2).is_empty());
        assert_eq!(session.take_due_runtime_scribbles(3).len(), 1);
        assert!(session.take_due_runtime_scribbles(4).is_empty());
        // A skipped CP count still delivers the overdue fault, once.
        assert_eq!(session.take_due_runtime_scribbles(9).len(), 1);
        assert!(session.take_due_runtime_scribbles(10).is_empty());
    }

    #[test]
    fn scrub_reads_use_their_own_attempt_channel() {
        let plan = FaultPlan {
            read_errors: vec![ReadErrorFault {
                target: StructureId::Group(0),
                failures: 1,
            }],
            scrub_read_errors: vec![ReadErrorFault {
                target: StructureId::Group(0),
                failures: 2,
            }],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        // Mount-time reads consume only the mount-time schedule...
        assert_eq!(
            session.on_read(StructureId::Group(0)),
            ReadOutcome::Transient
        );
        assert_eq!(session.on_read(StructureId::Group(0)), ReadOutcome::Ok);
        // ...and the scrub schedule still has both failures left.
        assert_eq!(
            session.on_scrub_read(StructureId::Group(0)),
            ReadOutcome::Transient
        );
        assert_eq!(
            session.on_scrub_read(StructureId::Group(0)),
            ReadOutcome::Transient
        );
        assert_eq!(
            session.on_scrub_read(StructureId::Group(0)),
            ReadOutcome::Ok
        );
    }

    #[test]
    fn random_plans_respect_shape_bounds() {
        let shape = PlanShape {
            groups: 3,
            volumes: 2,
            max_progress: 500,
        };
        for seed in 0..300 {
            let plan = FaultPlan::random(seed, shape);
            for s in &plan.scribbles {
                match s.target {
                    StructureId::Group(g) => assert!(g < 3),
                    StructureId::Volume(v) => assert!(v < 2),
                }
                assert!(s.offset < 4096);
            }
            if let Some(CrashSite::AfterBlockWrites(n) | CrashSite::MidFreeLogApply(n)) = plan.crash
            {
                assert!(n < 500);
            }
        }
    }
}
