//! Deterministic fault injection for the WAFL free-space simulator.
//!
//! §3.4 of the paper leans on WAFL Iron to "recompute and recover"
//! damaged TopAA metafile blocks, but nothing in a clean-room simulator
//! damages blocks on its own. This crate is the damage generator: a
//! [`FaultPlan`] is a pure-data, seed-reproducible schedule of
//!
//! * **scribbles** — byte corruption of persisted TopAA blocks and HBPS
//!   pages ([`ScribbleFault`]),
//! * **read errors** — transient (succeed after retries) or persistent
//!   ([`ReadErrorFault`]) metafile read failures,
//! * **a crash point** — a [`CrashSite`] mid-consistency-point where the
//!   in-memory state is torn down as a power loss would.
//!
//! `wafl-fs` consumes a plan through a [`FaultSession`], which tracks
//! per-structure attempt counts so "fail the first N reads" semantics
//! are stateful while the plan itself stays immutable and replayable.
//! The same seed always yields the same plan and the same session
//! behavior — crash-consistency failures found by the torture test
//! reproduce from their seed alone.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Which persisted metafile structure a fault targets.
///
/// TopAA state is persisted per RAID group (one 4 KiB block, or two HBPS
/// pages for object-store groups) and per FlexVol (two HBPS pages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureId {
    /// A RAID group's TopAA block / HBPS page pair.
    Group(usize),
    /// A FlexVol's HBPS page pair.
    Volume(usize),
}

/// Which 4 KiB page of a structure a scribble lands on.
///
/// Heap-style TopAA state is a single block (`First`); HBPS state is a
/// histogram page (`First`) plus a candidate-list page (`Second`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageSel {
    /// The TopAA block or the HBPS histogram page.
    First,
    /// The HBPS candidate-list page (ignored for heap-style groups).
    Second,
}

/// Byte corruption of one persisted page.
///
/// The corruption XORs `len` bytes starting at `offset` with a non-zero
/// pattern derived from `pattern_seed`, so applying it always changes
/// the page (an all-zero XOR would be a no-op "corruption").
#[derive(Clone, Copy, Debug)]
pub struct ScribbleFault {
    /// Structure whose persisted page is damaged.
    pub target: StructureId,
    /// Which of the structure's pages.
    pub page: PageSel,
    /// First corrupted byte offset within the 4 KiB page.
    pub offset: usize,
    /// Number of corrupted bytes.
    pub len: usize,
    /// Seed for the XOR pattern.
    pub pattern_seed: u64,
}

impl ScribbleFault {
    /// Apply the corruption to a persisted page image.
    ///
    /// Out-of-range portions are clamped to the page, and the XOR bytes
    /// are forced non-zero, so at least one byte changes whenever
    /// `offset` is inside the page.
    pub fn apply(&self, page: &mut [u8]) {
        if self.offset >= page.len() || self.len == 0 {
            return;
        }
        let end = (self.offset + self.len).min(page.len());
        let mut rng = StdRng::seed_from_u64(self.pattern_seed);
        for byte in &mut page[self.offset..end] {
            *byte ^= rng.random_range(1u8..=u8::MAX);
        }
    }
}

/// A metafile read failure schedule for one structure.
#[derive(Clone, Copy, Debug)]
pub struct ReadErrorFault {
    /// Structure whose reads fail.
    pub target: StructureId,
    /// How many leading read attempts fail. [`PERSISTENT`] means every
    /// attempt fails (media gone, not flaky).
    pub failures: u32,
}

/// `failures` value meaning "every read attempt fails".
pub const PERSISTENT: u32 = u32::MAX;

impl ReadErrorFault {
    /// True if no finite number of retries will succeed.
    pub fn is_persistent(&self) -> bool {
        self.failures == PERSISTENT
    }
}

/// Where a crash cuts a consistency point short.
///
/// Sites are ordered by CP progress; each leaves a characteristic torn
/// state that `iron::check`/`iron::repair` must handle (see
/// `docs/recovery.md` for the fault matrix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// After `n` physical block allocations are written, before any
    /// logical→physical binding: leaks allocated-but-unowned pvbns.
    AfterBlockWrites(u64),
    /// After binding and ownership updates, before delayed frees apply:
    /// old block versions still allocated with stale owners.
    AfterBind,
    /// After `n` delayed-free log entries applied: the rest of the log
    /// is lost (absolved), possibly with one torn entry.
    MidFreeLogApply(u64),
    /// CP work complete but the TopAA metafile was not persisted: the
    /// on-disk TopAA image is one CP stale.
    BeforeTopAaPersist,
    /// Crash immediately after TopAA persist: the cleanest tear.
    AfterTopAaPersist,
}

/// A complete, immutable fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Corruptions applied to the persisted image before remount.
    pub scribbles: Vec<ScribbleFault>,
    /// Read failures observed during remount.
    pub read_errors: Vec<ReadErrorFault>,
    /// Optional mid-CP crash point.
    pub crash: Option<CrashSite>,
}

/// Dimensions of the system a random plan is generated against.
#[derive(Clone, Copy, Debug)]
pub struct PlanShape {
    /// Number of RAID groups in the aggregate.
    pub groups: usize,
    /// Number of FlexVols.
    pub volumes: usize,
    /// Rough upper bound for [`CrashSite::AfterBlockWrites`] /
    /// [`CrashSite::MidFreeLogApply`] progress counts.
    pub max_progress: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Corrupt one structure's page with a seed-derived pattern.
    pub fn scribble(target: StructureId, page: PageSel, seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultPlan {
            scribbles: vec![ScribbleFault {
                target,
                page,
                offset: rng.random_range(0usize..4096),
                len: rng.random_range(1usize..=64),
                pattern_seed: rng.next_u64(),
            }],
            ..FaultPlan::default()
        }
    }

    /// Generate a random schedule from `seed`. Every draw comes from a
    /// `StdRng` seeded with `seed`, so equal seeds yield equal plans.
    pub fn random(seed: u64, shape: PlanShape) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();

        let pick_target = |rng: &mut StdRng| {
            if shape.volumes > 0 && rng.random_bool(0.4) {
                StructureId::Volume(rng.random_range(0..shape.volumes))
            } else {
                StructureId::Group(rng.random_range(0..shape.groups.max(1)))
            }
        };

        // Scribbles: usually zero or one structure, sometimes a couple.
        let n_scribbles = [0usize, 0, 1, 1, 1, 2][rng.random_range(0usize..6)];
        for _ in 0..n_scribbles {
            let page = if rng.random_bool(0.5) {
                PageSel::First
            } else {
                PageSel::Second
            };
            plan.scribbles.push(ScribbleFault {
                target: pick_target(&mut rng),
                page,
                offset: rng.random_range(0usize..4096),
                len: rng.random_range(1usize..=256),
                pattern_seed: rng.next_u64(),
            });
        }

        // Read errors: mostly transient (1–3 failures), occasionally
        // persistent.
        let n_read_errors = [0usize, 0, 0, 1, 1, 2][rng.random_range(0usize..6)];
        for _ in 0..n_read_errors {
            let failures = if rng.random_bool(0.25) {
                PERSISTENT
            } else {
                rng.random_range(1u32..=3)
            };
            plan.read_errors.push(ReadErrorFault {
                target: pick_target(&mut rng),
                failures,
            });
        }

        // Crash point: present in most schedules — the torture test is
        // about crash consistency first, corruption second.
        if rng.random_bool(0.8) {
            let progress = rng.random_range(0..shape.max_progress.max(1));
            plan.crash = Some(match rng.random_range(0u32..5) {
                0 => CrashSite::AfterBlockWrites(progress),
                1 => CrashSite::AfterBind,
                2 => CrashSite::MidFreeLogApply(progress),
                3 => CrashSite::BeforeTopAaPersist,
                _ => CrashSite::AfterTopAaPersist,
            });
        }
        plan
    }

    /// Scribbles aimed at `target`.
    pub fn scribbles_for(&self, target: StructureId) -> impl Iterator<Item = &ScribbleFault> + '_ {
        self.scribbles.iter().filter(move |s| s.target == target)
    }
}

/// Outcome of one faulted read attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read succeeds.
    Ok,
    /// The read fails but a retry may succeed.
    Transient,
    /// The read fails and retrying is pointless.
    Persistent,
}

/// Runtime state for consuming a [`FaultPlan`]: tracks how many read
/// attempts each structure has absorbed so transient errors clear after
/// their scheduled failure count.
#[derive(Debug)]
pub struct FaultSession<'a> {
    plan: &'a FaultPlan,
    attempts: std::collections::HashMap<StructureId, u32>,
}

impl<'a> FaultSession<'a> {
    /// Start consuming `plan`.
    pub fn new(plan: &'a FaultPlan) -> FaultSession<'a> {
        FaultSession {
            plan,
            attempts: std::collections::HashMap::new(),
        }
    }

    /// The plan this session consumes.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Record a read attempt against `target` and report its outcome.
    pub fn on_read(&mut self, target: StructureId) -> ReadOutcome {
        let Some(fault) = self.plan.read_errors.iter().find(|f| f.target == target) else {
            return ReadOutcome::Ok;
        };
        if fault.is_persistent() {
            return ReadOutcome::Persistent;
        }
        let seen = self.attempts.entry(target).or_insert(0);
        if *seen < fault.failures {
            *seen += 1;
            ReadOutcome::Transient
        } else {
            ReadOutcome::Ok
        }
    }

    /// The crash point, if the plan schedules one.
    pub fn crash_site(&self) -> Option<CrashSite> {
        self.plan.crash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let shape = PlanShape {
            groups: 4,
            volumes: 3,
            max_progress: 10_000,
        };
        for seed in 0..200 {
            let a = FaultPlan::random(seed, shape);
            let b = FaultPlan::random(seed, shape);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
        // And different seeds do differ somewhere in 200 tries.
        let all: std::collections::HashSet<String> = (0..200)
            .map(|s| format!("{:?}", FaultPlan::random(s, shape)))
            .collect();
        assert!(all.len() > 100, "only {} distinct plans", all.len());
    }

    #[test]
    fn scribble_always_changes_the_page() {
        for seed in 0..100 {
            let plan = FaultPlan::scribble(StructureId::Group(0), PageSel::First, seed);
            let mut page = vec![0xA5u8; 4096];
            let orig = page.clone();
            plan.scribbles[0].apply(&mut page);
            assert_ne!(page, orig, "seed {seed} produced a no-op scribble");
        }
    }

    #[test]
    fn scribble_clamps_to_page_bounds() {
        let fault = ScribbleFault {
            target: StructureId::Group(0),
            page: PageSel::First,
            offset: 4090,
            len: 100,
            pattern_seed: 7,
        };
        let mut page = vec![0u8; 4096];
        fault.apply(&mut page);
        assert!(page[..4090].iter().all(|&b| b == 0));
        assert!(page[4090..].iter().any(|&b| b != 0));
    }

    #[test]
    fn transient_errors_clear_after_scheduled_failures() {
        let plan = FaultPlan {
            read_errors: vec![ReadErrorFault {
                target: StructureId::Group(1),
                failures: 2,
            }],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        assert_eq!(
            session.on_read(StructureId::Group(1)),
            ReadOutcome::Transient
        );
        assert_eq!(
            session.on_read(StructureId::Group(1)),
            ReadOutcome::Transient
        );
        assert_eq!(session.on_read(StructureId::Group(1)), ReadOutcome::Ok);
        // Unrelated structures never fail.
        assert_eq!(session.on_read(StructureId::Group(0)), ReadOutcome::Ok);
        assert_eq!(session.on_read(StructureId::Volume(0)), ReadOutcome::Ok);
    }

    #[test]
    fn persistent_errors_never_clear() {
        let plan = FaultPlan {
            read_errors: vec![ReadErrorFault {
                target: StructureId::Volume(2),
                failures: PERSISTENT,
            }],
            ..FaultPlan::default()
        };
        let mut session = FaultSession::new(&plan);
        for _ in 0..50 {
            assert_eq!(
                session.on_read(StructureId::Volume(2)),
                ReadOutcome::Persistent
            );
        }
    }

    #[test]
    fn random_plans_respect_shape_bounds() {
        let shape = PlanShape {
            groups: 3,
            volumes: 2,
            max_progress: 500,
        };
        for seed in 0..300 {
            let plan = FaultPlan::random(seed, shape);
            for s in &plan.scribbles {
                match s.target {
                    StructureId::Group(g) => assert!(g < 3),
                    StructureId::Volume(v) => assert!(v < 2),
                }
                assert!(s.offset < 4096);
            }
            if let Some(CrashSite::AfterBlockWrites(n) | CrashSite::MidFreeLogApply(n)) = plan.crash
            {
                assert!(n < 500);
            }
        }
    }
}
