//! RAID group geometry and the stripe-level write cost model.
//!
//! The aggregate's physical VBN space is carved into RAID groups; WAFL
//! "maintains the mapping of physical VBN ranges to storage devices based
//! on their RAID topology" (paper §3.1). This crate owns that mapping:
//!
//! * [`RaidGeometry`] — data/parity device counts, per-device capacity, and
//!   the PVBN ↔ (device, DBN) mapping. As in WAFL, each device owns a
//!   contiguous PVBN range, so an *allocation area* (a run of consecutive
//!   stripes, §3.1 Figure 2) is one VBN range **per data device**.
//! * [`CpWriteAnalysis`] — given the set of blocks a consistency point
//!   writes to a group, classifies every stripe as a *full stripe write*
//!   (parity computed without reads) or a *partial stripe write*
//!   (read-modify-write or reconstruct write, whichever reads less, §2.3),
//!   groups stripes into *tetrises* (64 consecutive stripes, the RAID I/O
//!   unit, §4.2), and accounts per-device writes and write-chain lengths
//!   (§2.4).

#![warn(missing_docs)]

mod geometry;
mod write_analysis;

pub use geometry::{DeviceLoc, RaidGeometry};
pub use write_analysis::{
    analyze_cp_write, analyze_cp_write_runs, CpWriteAnalysis, RunWriteAnalysis,
};
