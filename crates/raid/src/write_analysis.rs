//! Classification of one consistency point's writes to a RAID group.

use crate::geometry::RaidGeometry;
use serde::{Deserialize, Serialize};
use wafl_types::{Vbn, WaflResult, TETRIS_STRIPES};

/// What one CP's writes to a RAID group cost, in RAID terms.
///
/// Produced by [`analyze_cp_write`]. The media layer turns the I/O counts
/// into time; the harness reports `tetrises` and per-device blocks for
/// Figure 7 and uses full/partial stripe ratios everywhere latency is
/// modelled.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpWriteAnalysis {
    /// Data blocks written.
    pub data_blocks: u64,
    /// Stripes with every data block written — parity computed with no
    /// reads (§2.3).
    pub full_stripes: u64,
    /// Stripes with only some data blocks written.
    pub partial_stripes: u64,
    /// Parity blocks written: `(full + partial) * parity_devices`.
    pub parity_writes: u64,
    /// Blocks read to compute parity for partial stripes. Per stripe WAFL's
    /// RAID layer picks the cheaper of read-modify-write (read the old data
    /// plus old parity of the written blocks) and reconstruct-write (read
    /// the unwritten data blocks).
    pub parity_reads: u64,
    /// Tetrises (64-stripe RAID I/O units) that contained at least one
    /// written stripe.
    pub tetrises: u64,
    /// Data blocks written per device, indexed by data-device id.
    pub per_device_blocks: Vec<u64>,
    /// Number of contiguous write chains per device (a chain is a maximal
    /// run of consecutive DBNs written on one device, §2.4 — fewer chains
    /// for the same block count means longer sequential writes).
    pub per_device_chains: Vec<u64>,
}

impl CpWriteAnalysis {
    /// Fraction of written stripes that were full.
    pub fn full_stripe_fraction(&self) -> f64 {
        let total = self.full_stripes + self.partial_stripes;
        if total == 0 {
            0.0
        } else {
            self.full_stripes as f64 / total as f64
        }
    }

    /// Mean write-chain length across devices (blocks per chain).
    pub fn mean_chain_len(&self) -> f64 {
        let chains: u64 = self.per_device_chains.iter().sum();
        if chains == 0 {
            0.0
        } else {
            self.data_blocks as f64 / chains as f64
        }
    }

    /// Total device I/O operations implied: one per chain per device plus
    /// parity traffic (reads and writes are both I/Os). A coarse but
    /// monotone proxy used by the HDD cost model.
    pub fn device_ios(&self) -> u64 {
        let chain_ios: u64 = self.per_device_chains.iter().sum();
        chain_ios + self.parity_writes + self.parity_reads
    }
}

/// Analyze the set of PVBNs one CP writes to `geometry`'s group.
///
/// `blocks` need not be sorted; duplicates are an error upstream (a VBN is
/// allocated once per CP) and are debug-asserted here.
pub fn analyze_cp_write(geometry: &RaidGeometry, blocks: &[Vbn]) -> WaflResult<CpWriteAnalysis> {
    let d = geometry.data_devices as usize;
    let mut per_device: Vec<Vec<u64>> = vec![Vec::new(); d];
    // Blocks written per stripe, keyed densely by stripe id. A CP writes a
    // tiny fraction of the group's stripes, so use a sorted-vec approach:
    // collect (stripe, device) pairs, sort, then run-length scan.
    let mut stripe_hits: Vec<u64> = Vec::with_capacity(blocks.len());
    for &vbn in blocks {
        let loc = geometry.vbn_to_loc(vbn)?;
        per_device[loc.device.index()].push(loc.dbn.get());
        stripe_hits.push(loc.dbn.get());
    }

    let mut analysis = CpWriteAnalysis {
        data_blocks: blocks.len() as u64,
        per_device_blocks: per_device.iter().map(|v| v.len() as u64).collect(),
        per_device_chains: vec![0; d],
        ..CpWriteAnalysis::default()
    };

    // Stripe classification.
    stripe_hits.sort_unstable();
    let p = geometry.parity_devices as u64;
    let mut tetrises: Vec<u64> = Vec::new();
    let mut i = 0;
    while i < stripe_hits.len() {
        let stripe = stripe_hits[i];
        let mut k = 0u64;
        while i < stripe_hits.len() && stripe_hits[i] == stripe {
            k += 1;
            i += 1;
        }
        debug_assert!(k <= d as u64, "more writes than devices in stripe {stripe}");
        if k == d as u64 {
            analysis.full_stripes += 1;
        } else {
            analysis.partial_stripes += 1;
            // RMW reads k old-data + p old-parity; reconstruct reads the
            // d-k untouched data blocks. Take the cheaper.
            let rmw = k + p;
            let reconstruct = d as u64 - k;
            analysis.parity_reads += rmw.min(reconstruct);
        }
        analysis.parity_writes += p;
        tetrises.push(stripe / TETRIS_STRIPES);
    }
    tetrises.dedup();
    analysis.tetrises = tetrises.len() as u64;

    // Write chains per device.
    for (dev, dbns) in per_device.iter_mut().enumerate() {
        dbns.sort_unstable();
        debug_assert!(
            dbns.windows(2).all(|w| w[0] != w[1]),
            "duplicate block written on device {dev}"
        );
        let mut chains = 0u64;
        let mut prev: Option<u64> = None;
        for &dbn in dbns.iter() {
            if prev != Some(dbn.wrapping_sub(1)) {
                chains += 1;
            }
            prev = Some(dbn);
        }
        analysis.per_device_chains[dev] = chains;
    }

    Ok(analysis)
}

/// [`analyze_cp_write`] in interval form, for run-based plans.
///
/// Carries the per-device write chains and the union of written stripes
/// as intervals so the media costing never has to materialize per-block
/// lists (the sharded CP pipeline hands over a few hundred runs where
/// the block list would be tens of thousands of VBNs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunWriteAnalysis {
    /// The same classification [`analyze_cp_write`] produces.
    pub analysis: CpWriteAnalysis,
    /// Maximal write chains per data device: sorted, disjoint `(dbn, len)`.
    pub device_chains: Vec<Vec<(u64, u64)>>,
    /// Union of written stripes as sorted, disjoint `(stripe, len)`
    /// intervals — exactly the blocks each parity device writes.
    pub stripe_intervals: Vec<(u64, u64)>,
}

/// Analyze one CP's writes given as allocation runs instead of blocks.
///
/// Equivalent to expanding `runs` and calling [`analyze_cp_write`] (the
/// equivalence is tested below), but costs O(runs log runs): stripe
/// classification is a coverage sweep over run endpoints, so a thousand
/// multi-block runs never touch per-block state. Runs may cross device
/// boundaries; overlapping runs are an upstream error, debug-asserted
/// here like duplicate blocks are in [`analyze_cp_write`].
pub fn analyze_cp_write_runs(
    geometry: &RaidGeometry,
    runs: &[(Vbn, u64)],
) -> WaflResult<RunWriteAnalysis> {
    let d = geometry.data_devices as usize;
    let p = geometry.parity_devices as u64;

    // Split runs at device boundaries into per-device DBN intervals.
    let mut per_dev: Vec<Vec<(u64, u64)>> = vec![Vec::new(); d];
    let mut data_blocks = 0u64;
    for &(start, len) in runs {
        let mut vbn = start;
        let mut rem = len;
        while rem > 0 {
            let loc = geometry.vbn_to_loc(vbn)?;
            let in_dev = (geometry.device_blocks - loc.dbn.get()).min(rem);
            per_dev[loc.device.index()].push((loc.dbn.get(), in_dev));
            data_blocks += in_dev;
            vbn = Vbn(vbn.get() + in_dev);
            rem -= in_dev;
        }
    }

    // Merge per-device intervals into maximal chains.
    let mut out = RunWriteAnalysis {
        analysis: CpWriteAnalysis {
            data_blocks,
            per_device_blocks: vec![0; d],
            per_device_chains: vec![0; d],
            ..CpWriteAnalysis::default()
        },
        device_chains: Vec::with_capacity(d),
        stripe_intervals: Vec::new(),
    };
    for (dev, mut ivals) in per_dev.into_iter().enumerate() {
        ivals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ivals.len());
        for (s, l) in ivals {
            out.analysis.per_device_blocks[dev] += l;
            match merged.last_mut() {
                Some(&mut (ms, ref mut ml)) if ms + *ml >= s => {
                    debug_assert!(ms + *ml == s, "overlapping runs on device {dev}");
                    *ml += l;
                }
                _ => merged.push((s, l)),
            }
        }
        out.analysis.per_device_chains[dev] = merged.len() as u64;
        out.device_chains.push(merged);
    }

    // Stripe classification: sweep the chain endpoints, tracking how many
    // devices cover each stripe span. Between consecutive endpoints the
    // coverage `k` is constant, so a whole span of stripes classifies at
    // once.
    let mut events: Vec<(u64, i8)> = Vec::new();
    for chains in &out.device_chains {
        for &(s, l) in chains {
            events.push((s, 1));
            events.push((s + l, -1));
        }
    }
    events.sort_unstable();
    let mut k = 0u64;
    let mut prev_pos = 0u64;
    let mut open = 0u64;
    let mut idx = 0;
    while idx < events.len() {
        let pos = events[idx].0;
        if k > 0 {
            let width = pos - prev_pos;
            if k == d as u64 {
                out.analysis.full_stripes += width;
            } else {
                out.analysis.partial_stripes += width;
                // Per stripe: RMW reads k old-data + p old-parity,
                // reconstruct reads the d-k untouched blocks; cheaper wins.
                out.analysis.parity_reads += width * (k + p).min(d as u64 - k);
            }
            out.analysis.parity_writes += width * p;
        }
        let was = k;
        while idx < events.len() && events[idx].0 == pos {
            match events[idx].1 {
                1 => k += 1,
                _ => k -= 1,
            }
            idx += 1;
        }
        if was == 0 && k > 0 {
            open = pos;
        }
        if was > 0 && k == 0 {
            out.stripe_intervals.push((open, pos - open));
        }
        prev_pos = pos;
    }

    // Tetrises touched: count tetris ids covered by the stripe union,
    // deduplicating the id shared by adjacent intervals.
    let mut prev_last: Option<u64> = None;
    for &(s, l) in &out.stripe_intervals {
        let first = s / TETRIS_STRIPES;
        let last = (s + l - 1) / TETRIS_STRIPES;
        out.analysis.tetrises += last - first + 1;
        if prev_last == Some(first) {
            out.analysis.tetrises -= 1;
        }
        prev_last = Some(last);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_types::{Dbn, DeviceId, RaidGroupId};

    fn g() -> RaidGeometry {
        RaidGeometry::new(RaidGroupId(0), 4, 1, 10_000, Vbn(0)).unwrap()
    }

    fn vbn(g: &RaidGeometry, dev: u32, dbn: u64) -> Vbn {
        g.loc_to_vbn(crate::geometry::DeviceLoc {
            device: DeviceId(dev),
            dbn: Dbn(dbn),
        })
        .unwrap()
    }

    #[test]
    fn empty_write_is_zero_cost() {
        let a = analyze_cp_write(&g(), &[]).unwrap();
        assert_eq!(
            a,
            CpWriteAnalysis {
                per_device_blocks: vec![0; 4],
                per_device_chains: vec![0; 4],
                ..CpWriteAnalysis::default()
            }
        );
        assert_eq!(a.full_stripe_fraction(), 0.0);
        assert_eq!(a.mean_chain_len(), 0.0);
    }

    #[test]
    fn full_stripe_needs_no_parity_reads() {
        let g = g();
        let blocks: Vec<Vbn> = (0..4).map(|d| vbn(&g, d, 42)).collect();
        let a = analyze_cp_write(&g, &blocks).unwrap();
        assert_eq!(a.full_stripes, 1);
        assert_eq!(a.partial_stripes, 0);
        assert_eq!(a.parity_reads, 0);
        assert_eq!(a.parity_writes, 1);
        assert_eq!(a.full_stripe_fraction(), 1.0);
        assert_eq!(a.tetrises, 1);
    }

    #[test]
    fn partial_stripe_picks_cheaper_parity_path() {
        let g = g(); // 4 data + 1 parity
                     // One block in a stripe: RMW = 1+1 = 2 reads, reconstruct = 3.
        let a = analyze_cp_write(&g, &[vbn(&g, 0, 7)]).unwrap();
        assert_eq!(a.partial_stripes, 1);
        assert_eq!(a.parity_reads, 2);
        // Three blocks: RMW = 3+1 = 4, reconstruct = 1. Reconstruct wins.
        let blocks: Vec<Vbn> = (0..3).map(|d| vbn(&g, d, 8)).collect();
        let a = analyze_cp_write(&g, &blocks).unwrap();
        assert_eq!(a.partial_stripes, 1);
        assert_eq!(a.parity_reads, 1);
    }

    #[test]
    fn tetris_grouping() {
        let g = g();
        // Stripes 0, 63 share tetris 0; stripe 64 is tetris 1; 6400 is 100.
        let blocks = vec![
            vbn(&g, 0, 0),
            vbn(&g, 1, 63),
            vbn(&g, 2, 64),
            vbn(&g, 3, 6400),
        ];
        let a = analyze_cp_write(&g, &blocks).unwrap();
        assert_eq!(a.tetrises, 3);
        assert_eq!(a.partial_stripes, 4);
    }

    #[test]
    fn chains_count_contiguity_per_device() {
        let g = g();
        // Device 0: dbns 10,11,12 (1 chain) + 20 (1 chain).
        // Device 1: dbns 5, 7, 9 (3 chains).
        let blocks = vec![
            vbn(&g, 0, 10),
            vbn(&g, 0, 11),
            vbn(&g, 0, 12),
            vbn(&g, 0, 20),
            vbn(&g, 1, 5),
            vbn(&g, 1, 7),
            vbn(&g, 1, 9),
        ];
        let a = analyze_cp_write(&g, &blocks).unwrap();
        assert_eq!(a.per_device_blocks, vec![4, 3, 0, 0]);
        assert_eq!(a.per_device_chains, vec![2, 3, 0, 0]);
        assert!((a.mean_chain_len() - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn contiguous_aa_write_yields_full_stripes_and_one_chain_per_device() {
        // Writing every block of a stripe range — what the allocator does
        // when it drains an empty AA — is all full stripes, one chain per
        // device. This is the §2.4/§2.3 ideal case.
        let g = g();
        let mut blocks = Vec::new();
        for d in 0..4 {
            for s in 100..164 {
                blocks.push(vbn(&g, d, s));
            }
        }
        let a = analyze_cp_write(&g, &blocks).unwrap();
        assert_eq!(a.full_stripes, 64);
        assert_eq!(a.partial_stripes, 0);
        assert_eq!(a.parity_reads, 0);
        assert_eq!(a.per_device_chains, vec![1, 1, 1, 1]);
        assert_eq!(a.tetrises, 2); // stripes 100..164 touch tetrises 1 and 2
        assert_eq!(a.device_ios(), 4 + 64); // 4 chains + 64 parity writes
    }

    #[test]
    fn out_of_group_vbn_is_error() {
        let g = g();
        assert!(analyze_cp_write(&g, &[Vbn(40_000 * 2)]).is_err());
    }

    /// Expand runs to blocks and check both analyzers agree exactly.
    fn assert_runs_equivalent(geometry: &RaidGeometry, runs: &[(Vbn, u64)]) {
        let blocks: Vec<Vbn> = runs
            .iter()
            .flat_map(|&(s, l)| (0..l).map(move |i| Vbn(s.get() + i)))
            .collect();
        let per_block = analyze_cp_write(geometry, &blocks).unwrap();
        let by_runs = analyze_cp_write_runs(geometry, runs).unwrap();
        assert_eq!(by_runs.analysis, per_block, "runs {runs:?}");
        // The interval outputs must agree with the per-block counts too.
        for (dev, chains) in by_runs.device_chains.iter().enumerate() {
            assert_eq!(chains.len() as u64, per_block.per_device_chains[dev]);
            assert_eq!(
                chains.iter().map(|&(_, l)| l).sum::<u64>(),
                per_block.per_device_blocks[dev]
            );
        }
        let stripes: u64 = by_runs.stripe_intervals.iter().map(|&(_, l)| l).sum();
        assert_eq!(stripes, per_block.full_stripes + per_block.partial_stripes);
    }

    #[test]
    fn run_analysis_matches_per_block_on_crafted_patterns() {
        let g = g();
        let v = |dev: u32, dbn: u64| vbn(&g, dev, dbn);
        // Empty, one block, one full device-crossing run (10_000 blocks per
        // device means a run off device 0's end continues on device 1),
        // a full stripe built from four single-block runs, a dense AA-style
        // drain, and ragged partial coverage around a tetris boundary.
        assert_runs_equivalent(&g, &[]);
        assert_runs_equivalent(&g, &[(v(0, 7), 1)]);
        assert_runs_equivalent(&g, &[(v(0, 9_990), 25)]);
        assert_runs_equivalent(
            &g,
            &[(v(0, 42), 1), (v(1, 42), 1), (v(2, 42), 1), (v(3, 42), 1)],
        );
        assert_runs_equivalent(
            &g,
            &[
                (v(0, 100), 64),
                (v(1, 100), 64),
                (v(2, 100), 64),
                (v(3, 100), 64),
            ],
        );
        assert_runs_equivalent(
            &g,
            &[
                (v(0, 60), 10),
                (v(1, 62), 3),
                (v(2, 63), 2),
                (v(3, 64), 1),
                (v(0, 127), 2),
            ],
        );
    }

    #[test]
    fn run_analysis_matches_per_block_on_random_workloads() {
        use rand::prelude::*;
        let g = g();
        for seed in 0..20 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Disjoint runs over the whole group VBN space: random gaps and
            // lengths, so runs cross devices and tetrises arbitrarily.
            let mut runs: Vec<(Vbn, u64)> = Vec::new();
            let space = 4 * 10_000u64;
            let mut pos = rng.random_range(0u64..100);
            while pos < space {
                let len = rng.random_range(1u64..=80).min(space - pos);
                runs.push((Vbn(pos), len));
                pos += len + rng.random_range(1u64..500);
            }
            // Scrambled order: neither analyzer may depend on sortedness.
            runs.shuffle(&mut rng);
            assert_runs_equivalent(&g, &runs);
        }
    }
}
