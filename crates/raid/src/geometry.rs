//! PVBN ↔ device mapping for one RAID group.

use serde::{Deserialize, Serialize};
use wafl_types::{AaId, Dbn, DeviceId, RaidGroupId, StripeId, Vbn, WaflError, WaflResult};

/// A block's physical location: which device of the group, and where on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceLoc {
    /// Data device index within the group (`0..data_devices`). Parity
    /// devices never appear here — parity blocks are not addressable by
    /// PVBN.
    pub device: DeviceId,
    /// Block offset on that device; equals the stripe index.
    pub dbn: Dbn,
}

/// Geometry of one RAID group.
///
/// Layout follows WAFL: the group owns the contiguous PVBN range
/// `base_vbn .. base_vbn + data_devices * device_blocks`, and **each data
/// device owns a contiguous sub-range** (`device d` holds
/// `base + d*device_blocks ..`). A stripe is the set of blocks at the same
/// DBN across all devices; the parity device(s) hold the stripe's parity
/// and consume no PVBNs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaidGeometry {
    /// Identifier of this group within the aggregate.
    pub id: RaidGroupId,
    /// Number of data devices (Figure 2 uses 3; real deployments more).
    pub data_devices: u32,
    /// Number of parity devices (RAID 4 = 1, RAID-DP = 2, RTP = 3).
    pub parity_devices: u32,
    /// Blocks per device — also the number of stripes in the group.
    pub device_blocks: u64,
    /// First PVBN owned by this group in the aggregate's space.
    pub base_vbn: Vbn,
}

impl RaidGeometry {
    /// Validated constructor.
    pub fn new(
        id: RaidGroupId,
        data_devices: u32,
        parity_devices: u32,
        device_blocks: u64,
        base_vbn: Vbn,
    ) -> WaflResult<RaidGeometry> {
        if data_devices == 0 || device_blocks == 0 {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "RAID group {id} needs >=1 data device and >=1 block \
                     (got {data_devices} devices x {device_blocks} blocks)"
                ),
            });
        }
        Ok(RaidGeometry {
            id,
            data_devices,
            parity_devices,
            device_blocks,
            base_vbn,
        })
    }

    /// Number of PVBNs (data blocks) owned by the group.
    #[inline]
    pub fn data_blocks(&self) -> u64 {
        self.data_devices as u64 * self.device_blocks
    }

    /// Number of stripes in the group.
    #[inline]
    pub fn stripes(&self) -> u64 {
        self.device_blocks
    }

    /// One-past-the-last PVBN of this group.
    #[inline]
    pub fn end_vbn(&self) -> Vbn {
        Vbn(self.base_vbn.get() + self.data_blocks())
    }

    /// Whether `vbn` falls inside this group's PVBN range.
    #[inline]
    pub fn contains(&self, vbn: Vbn) -> bool {
        vbn >= self.base_vbn && vbn < self.end_vbn()
    }

    /// Map a PVBN to its device location.
    pub fn vbn_to_loc(&self, vbn: Vbn) -> WaflResult<DeviceLoc> {
        if !self.contains(vbn) {
            return Err(WaflError::VbnOutOfRange {
                vbn,
                space_len: self.data_blocks(),
            });
        }
        let rel = vbn.get() - self.base_vbn.get();
        Ok(DeviceLoc {
            device: DeviceId((rel / self.device_blocks) as u32),
            dbn: Dbn(rel % self.device_blocks),
        })
    }

    /// Map a device location back to its PVBN.
    pub fn loc_to_vbn(&self, loc: DeviceLoc) -> WaflResult<Vbn> {
        if loc.device.get() >= self.data_devices || loc.dbn.get() >= self.device_blocks {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "location {:?} outside group of {} devices x {} blocks",
                    loc, self.data_devices, self.device_blocks
                ),
            });
        }
        Ok(Vbn(self.base_vbn.get()
            + loc.device.get() as u64 * self.device_blocks
            + loc.dbn.get()))
    }

    /// The stripe containing a PVBN (the stripe index equals the DBN).
    pub fn stripe_of(&self, vbn: Vbn) -> WaflResult<StripeId> {
        Ok(StripeId(self.vbn_to_loc(vbn)?.dbn.get()))
    }

    /// Number of AAs when each AA is `stripes_per_aa` consecutive stripes
    /// (§3.1). The trailing partial AA counts.
    pub fn aa_count(&self, stripes_per_aa: u64) -> u32 {
        self.stripes().div_ceil(stripes_per_aa) as u32
    }

    /// Stripe range `[start, end)` covered by AA `aa`.
    pub fn aa_stripe_range(&self, aa: AaId, stripes_per_aa: u64) -> (u64, u64) {
        let start = aa.get() as u64 * stripes_per_aa;
        let end = (start + stripes_per_aa).min(self.stripes());
        (start, end)
    }

    /// Total data blocks in AA `aa` (accounts for a short trailing AA).
    pub fn aa_blocks(&self, aa: AaId, stripes_per_aa: u64) -> u64 {
        let (s, e) = self.aa_stripe_range(aa, stripes_per_aa);
        (e - s) * self.data_devices as u64
    }

    /// The VBN ranges making up AA `aa`: one `(first_vbn, len)` pair per
    /// data device, in device order. Because devices own contiguous PVBN
    /// sub-ranges, a consecutive-stripe AA is D disjoint runs.
    pub fn aa_vbn_ranges(
        &self,
        aa: AaId,
        stripes_per_aa: u64,
    ) -> impl Iterator<Item = (Vbn, u64)> + '_ {
        let (start, end) = self.aa_stripe_range(aa, stripes_per_aa);
        let len = end - start;
        let base = self.base_vbn.get();
        let dev_blocks = self.device_blocks;
        (0..self.data_devices).map(move |d| (Vbn(base + d as u64 * dev_blocks + start), len))
    }

    /// The AA containing `vbn` for the given AA height.
    pub fn aa_of_vbn(&self, vbn: Vbn, stripes_per_aa: u64) -> WaflResult<AaId> {
        let loc = self.vbn_to_loc(vbn)?;
        Ok(AaId((loc.dbn.get() / stripes_per_aa) as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> RaidGeometry {
        // 3 data + 1 parity, 1000 blocks/device, based at PVBN 5000.
        RaidGeometry::new(RaidGroupId(0), 3, 1, 1000, Vbn(5000)).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(RaidGeometry::new(RaidGroupId(0), 0, 1, 10, Vbn(0)).is_err());
        assert!(RaidGeometry::new(RaidGroupId(0), 3, 1, 0, Vbn(0)).is_err());
    }

    #[test]
    fn vbn_loc_round_trip() {
        let g = g();
        for vbn in [5000u64, 5999, 6000, 7999] {
            let loc = g.vbn_to_loc(Vbn(vbn)).unwrap();
            assert_eq!(g.loc_to_vbn(loc).unwrap(), Vbn(vbn));
        }
        // First block of each device.
        assert_eq!(
            g.vbn_to_loc(Vbn(5000)).unwrap(),
            DeviceLoc {
                device: DeviceId(0),
                dbn: Dbn(0)
            }
        );
        assert_eq!(
            g.vbn_to_loc(Vbn(6000)).unwrap(),
            DeviceLoc {
                device: DeviceId(1),
                dbn: Dbn(0)
            }
        );
        assert_eq!(
            g.vbn_to_loc(Vbn(7000)).unwrap(),
            DeviceLoc {
                device: DeviceId(2),
                dbn: Dbn(0)
            }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let g = g();
        assert!(g.vbn_to_loc(Vbn(4999)).is_err());
        assert!(g.vbn_to_loc(Vbn(8000)).is_err());
        assert!(g
            .loc_to_vbn(DeviceLoc {
                device: DeviceId(3),
                dbn: Dbn(0)
            })
            .is_err());
        assert!(g
            .loc_to_vbn(DeviceLoc {
                device: DeviceId(0),
                dbn: Dbn(1000)
            })
            .is_err());
    }

    #[test]
    fn stripe_groups_same_dbn() {
        let g = g();
        // Blocks at DBN 7 on all three devices share stripe 7.
        for dev in 0..3u32 {
            let vbn = g
                .loc_to_vbn(DeviceLoc {
                    device: DeviceId(dev),
                    dbn: Dbn(7),
                })
                .unwrap();
            assert_eq!(g.stripe_of(vbn).unwrap(), StripeId(7));
        }
    }

    #[test]
    fn aa_partition_covers_group() {
        let g = g();
        let spa = 256;
        assert_eq!(g.aa_count(spa), 4); // ceil(1000/256)
        let total: u64 = (0..4).map(|a| g.aa_blocks(AaId(a), spa)).sum();
        assert_eq!(total, g.data_blocks());
        // Trailing AA is short: 1000 - 3*256 = 232 stripes.
        assert_eq!(g.aa_stripe_range(AaId(3), spa), (768, 1000));
        assert_eq!(g.aa_blocks(AaId(3), spa), 232 * 3);
    }

    #[test]
    fn aa_vbn_ranges_are_disjoint_per_device() {
        let g = g();
        let ranges: Vec<_> = g.aa_vbn_ranges(AaId(1), 256).collect();
        assert_eq!(
            ranges,
            vec![
                (Vbn(5000 + 256), 256),
                (Vbn(6000 + 256), 256),
                (Vbn(7000 + 256), 256),
            ]
        );
        // Every VBN in those ranges maps back into AA 1.
        for &(start, len) in &ranges {
            for v in start.get()..start.get() + len {
                assert_eq!(g.aa_of_vbn(Vbn(v), 256).unwrap(), AaId(1));
            }
        }
    }

    #[test]
    fn aa_of_vbn_boundaries() {
        let g = g();
        assert_eq!(g.aa_of_vbn(Vbn(5000), 256).unwrap(), AaId(0));
        assert_eq!(g.aa_of_vbn(Vbn(5000 + 255), 256).unwrap(), AaId(0));
        assert_eq!(g.aa_of_vbn(Vbn(5000 + 256), 256).unwrap(), AaId(1));
        // Device 1's first block is stripe 0 -> AA 0 again.
        assert_eq!(g.aa_of_vbn(Vbn(6000), 256).unwrap(), AaId(0));
    }
}
