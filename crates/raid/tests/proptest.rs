//! Property-based tests for RAID geometry and write analysis.

use proptest::prelude::*;
use wafl_raid::{analyze_cp_write, RaidGeometry};
use wafl_types::{AaId, RaidGroupId, Vbn};

fn geometry() -> impl Strategy<Value = RaidGeometry> {
    (1u32..12, 0u32..3, 64u64..20_000, 0u64..1_000_000).prop_map(|(data, parity, blocks, base)| {
        RaidGeometry::new(RaidGroupId(0), data, parity, blocks, Vbn(base)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vbn_loc_round_trip(g in geometry(), offset in 0u64..1_000_000) {
        let vbn = Vbn(g.base_vbn.get() + offset % g.data_blocks());
        let loc = g.vbn_to_loc(vbn).unwrap();
        prop_assert_eq!(g.loc_to_vbn(loc).unwrap(), vbn);
        prop_assert!(loc.device.get() < g.data_devices);
        prop_assert!(loc.dbn.get() < g.device_blocks);
    }

    #[test]
    fn aa_ranges_partition_the_group(g in geometry(), spa in 1u64..5_000) {
        let mut covered = 0u64;
        for aa in 0..g.aa_count(spa) {
            let aa = AaId(aa);
            let blocks = g.aa_blocks(aa, spa);
            let from_ranges: u64 = g.aa_vbn_ranges(aa, spa).map(|(_, l)| l).sum();
            prop_assert_eq!(blocks, from_ranges);
            covered += blocks;
            // Every range's endpoints map back to this AA.
            for (start, len) in g.aa_vbn_ranges(aa, spa) {
                prop_assert_eq!(g.aa_of_vbn(start, spa).unwrap(), aa);
                prop_assert_eq!(
                    g.aa_of_vbn(Vbn(start.get() + len - 1), spa).unwrap(),
                    aa
                );
            }
        }
        prop_assert_eq!(covered, g.data_blocks());
    }

    #[test]
    fn analysis_conserves_blocks_and_bounds_stripes(
        g in geometry(),
        picks in proptest::collection::hash_set(0u64..50_000, 1..300),
    ) {
        let blocks: Vec<Vbn> = picks
            .iter()
            .map(|&o| Vbn(g.base_vbn.get() + o % g.data_blocks()))
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let a = analyze_cp_write(&g, &blocks).unwrap();
        prop_assert_eq!(a.data_blocks, blocks.len() as u64);
        prop_assert_eq!(
            a.per_device_blocks.iter().sum::<u64>(),
            blocks.len() as u64
        );
        // Stripe counts: every written stripe is full xor partial, and a
        // full stripe needs exactly data_devices blocks.
        let stripes = a.full_stripes + a.partial_stripes;
        prop_assert!(stripes <= blocks.len() as u64);
        prop_assert!(a.full_stripes * g.data_devices as u64 <= blocks.len() as u64);
        // Parity writes: parity_devices per written stripe.
        prop_assert_eq!(a.parity_writes, stripes * g.parity_devices as u64);
        // Chains never exceed blocks; tetrises never exceed stripes.
        prop_assert!(a.per_device_chains.iter().sum::<u64>() <= blocks.len() as u64);
        prop_assert!(a.tetrises <= stripes);
        prop_assert!(a.tetrises >= 1);
        // Parity reads only come from partial stripes, bounded by the
        // cheaper of RMW and reconstruct per stripe.
        let bound = a.partial_stripes
            * (g.data_devices.saturating_sub(1).max(1) as u64
                + g.parity_devices as u64);
        prop_assert!(a.parity_reads <= bound);
        if a.partial_stripes == 0 {
            prop_assert_eq!(a.parity_reads, 0);
        }
    }

    #[test]
    fn writing_full_stripes_is_detected(
        g in geometry(),
        stripe_offsets in proptest::collection::hash_set(0u64..5_000, 1..20),
    ) {
        // Write every data block of a set of stripes.
        let mut blocks = Vec::new();
        let mut stripes = std::collections::HashSet::new();
        for &s in &stripe_offsets {
            let stripe = s % g.device_blocks;
            if !stripes.insert(stripe) {
                continue;
            }
            for d in 0..g.data_devices {
                blocks.push(Vbn(
                    g.base_vbn.get() + d as u64 * g.device_blocks + stripe,
                ));
            }
        }
        let a = analyze_cp_write(&g, &blocks).unwrap();
        prop_assert_eq!(a.full_stripes, stripes.len() as u64);
        prop_assert_eq!(a.partial_stripes, 0);
        prop_assert_eq!(a.parity_reads, 0);
    }
}
